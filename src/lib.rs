//! # optimistic-sched
//!
//! A reproduction, as a Rust workspace, of *Towards Proving Optimistic
//! Multicore Schedulers* (Lepers et al., HotOS 2017): a multicore load
//! balancer built from the paper's three-step abstraction — lock-less
//! *filter*, lock-less *choice*, locked *steal* — together with everything
//! needed to execute it, stress it and verify that it is work-conserving.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | Crate | Role |
//! |---|---|
//! | [`core`] (`sched-core`) | the scheduler model, the three-step balancing round, policies, the work-conservation definition and the load-difference potential |
//! | [`topology`] (`sched-topology`) | sockets, NUMA nodes, cache domains, scheduling-domain trees |
//! | [`deque`] (`sched-deque`) | Chase–Lev work-stealing deque: lock-free owner push/pop, CAS stealing, deterministic race probes |
//! | [`rq`] (`sched-rq`) | concurrent per-core runqueues behind one `RqBackend` API: the mutex discipline (double-lock stealing) and the lock-free Chase–Lev discipline (CAS stealing) |
//! | [`sim`] (`sched-sim`) | deterministic discrete-event simulator with a CFS-like baseline and injectable "wasted cores" bugs |
//! | [`workloads`] (`sched-workloads`) | fork-join, OLTP, build, bursty and static-imbalance workload generators |
//! | [`metrics`] (`sched-metrics`) | idle-time accounting, convergence tracking, histograms, tables |
//! | [`verify`] (`sched-verify`) | the Leon-substitute: exhaustive lemma checking, interleaving exploration, counterexample search |
//! | [`dsl`] (`sched-dsl`) | the policy DSL with its executable and verification backends |
//!
//! # Quick start
//!
//! ```
//! use optimistic_sched::core::prelude::*;
//! use optimistic_sched::verify::{verify_policy, Scope};
//!
//! // Execute the paper's Listing 1 policy…
//! let mut system = SystemState::from_loads(&[0, 4, 1, 0]);
//! let balancer = Balancer::new(Policy::simple());
//! let run = converge(&mut system, &balancer, RoundSchedule::AllSelectThenSteal, 32);
//! assert!(run.converged());
//!
//! // …and verify it is work-conserving over an exhaustive scope.
//! let report = verify_policy(&balancer, &Scope::small(), false);
//! assert!(report.is_work_conserving());
//! ```

pub use sched_core as core;
pub use sched_deque as deque;
pub use sched_dsl as dsl;
pub use sched_metrics as metrics;
pub use sched_rq as rq;
pub use sched_sim as sim;
pub use sched_topology as topology;
pub use sched_verify as verify;
pub use sched_workloads as workloads;
