//! Quickstart: build a scheduler state, balance it, verify the policy.
//!
//! Run with: `cargo run --example quickstart`

use optimistic_sched::core::prelude::*;
use optimistic_sched::verify::{verify_policy, Scope};

fn run() {
    // A four-core machine: core 1 is drowning, core 0 and 3 are idle.
    let mut system = SystemState::from_loads(&[0, 5, 1, 0]);
    println!("initial loads:   {}", system.load_vector_string(LoadMetric::NrThreads));
    println!("work conserving? {}", system.is_work_conserving());

    // The paper's Listing 1 policy: steal one thread from a core at least
    // two threads ahead of us, choosing the most loaded candidate.
    let balancer = Balancer::new(Policy::simple());

    // Run concurrent balancing rounds (every core balances simultaneously,
    // so optimistic attempts can fail) until no core is idle while another
    // is overloaded.
    let result = converge(&mut system, &balancer, RoundSchedule::AllSelectThenSteal, 32);
    println!(
        "converged after {} round(s): {} steals, {} failed attempts",
        result.rounds.expect("Listing 1 always converges"),
        result.total_successes(),
        result.total_failures(),
    );
    println!("final loads:     {}", system.load_vector_string(LoadMetric::NrThreads));
    assert!(system.is_work_conserving());

    // The same policy object can be verified exhaustively: every initial
    // configuration with up to 3 cores and 5 threads, every interleaving of
    // every balancing round.
    let report = verify_policy(&balancer, &Scope::small(), false);
    println!("\n{report}");
    assert!(report.is_work_conserving());

    // The §4.3 greedy filter fails the same verification: the checker finds
    // the three-core ping-pong in which an idle core starves forever.
    let greedy = Balancer::new(Policy::greedy());
    let report = verify_policy(&greedy, &Scope::small(), false);
    println!("{report}");
    assert!(!report.is_work_conserving());
}

fn main() {
    run();
}

#[cfg(test)]
mod tests {
    /// `cargo test` drives the example's whole main path (see the
    /// `[[example]] test = true` entries in Cargo.toml), so examples
    /// cannot silently rot.
    #[test]
    fn smoke() {
        super::run();
    }
}
