//! Verifying policies — the Leon-substitute pipeline as a runnable example.
//!
//! Checks every lemma of the paper against the Listing 1 policy, the §4.3
//! greedy counterexample and the weighted policy, printing the per-lemma
//! verdicts and, for the greedy filter, the ping-pong counterexample trace.
//!
//! Run with: `cargo run --release --example verify_policy`

use optimistic_sched::core::prelude::*;
use optimistic_sched::verify::{find_non_conserving_cycle, verify_policy, ChoiceStrategy, Scope};

fn run() {
    let scope = Scope::small();
    println!("verification scope: {scope}\n");

    for (name, policy) in [
        ("listing1", Policy::simple()),
        ("greedy (§4.3 counterexample)", Policy::greedy()),
        ("weighted", Policy::weighted()),
    ] {
        let balancer = Balancer::new(policy);
        let report = verify_policy(&balancer, &scope, false);
        println!("=== {name} ===");
        println!("{report}");
    }

    // Show the ping-pong explicitly, with adversarial interleavings *and*
    // adversarial victim choices.
    let greedy = Balancer::new(Policy::greedy());
    let witness = find_non_conserving_cycle(&greedy, &scope, ChoiceStrategy::Adversarial)
        .expect("the greedy filter admits a non-converging execution");
    println!("=== the §4.3 ping-pong, reconstructed automatically ===");
    println!("{}", witness.to_counterexample().render());
}

fn main() {
    run();
}

#[cfg(test)]
mod tests {
    /// `cargo test` drives the example's whole main path (see the
    /// `[[example]] test = true` entries in Cargo.toml), so examples
    /// cannot silently rot.
    #[test]
    fn smoke() {
        super::run();
    }
}
