//! The E9 scenario as a runnable example: a fork-join scientific kernel on a
//! dual-socket machine, under the verified optimistic scheduler and under a
//! CFS-like baseline with the "wasted cores" bugs injected.
//!
//! Run with: `cargo run --release --example scientific_workload`

use optimistic_sched::core::Policy;
use optimistic_sched::sim::{CfsBugs, CfsLikeScheduler, Engine, OptimisticScheduler, SimConfig};
use optimistic_sched::topology::TopologyBuilder;
use optimistic_sched::workloads::ScientificWorkload;

fn run() {
    let topo = TopologyBuilder::new().sockets(2).cores_per_socket(8).build();
    let workload = ScientificWorkload {
        nr_threads: topo.nr_cpus(),
        iterations: 8,
        phase_ns: 4_000_000,
        jitter: 0.05,
        seed: 42,
        fork_on_core: Some(0),
    }
    .generate();
    println!("workload: {} on {} cores", workload.name, topo.nr_cpus());
    println!("ideal makespan: {:.2} ms\n", workload.ideal_makespan_ns(topo.nr_cpus()) as f64 / 1e6);

    let optimistic = Engine::new(
        SimConfig::default(),
        Some(&topo),
        &workload,
        Box::new(OptimisticScheduler::new(Policy::simple())),
    )
    .run();
    let buggy = Engine::new(
        SimConfig::default(),
        Some(&topo),
        &workload,
        Box::new(CfsLikeScheduler::new(CfsBugs::all())),
    )
    .run();

    for result in [&optimistic, &buggy] {
        println!(
            "{:<28} makespan {:>8.2} ms   violating idle {:>5.1}%   steals {} (failed {})",
            result.scheduler,
            result.makespan_ms(),
            result.violating_idle_fraction() * 100.0,
            result.balance.successes,
            result.balance.failures,
        );
    }
    println!(
        "\nslowdown of the buggy baseline: {:.2}x  (the paper reports \"many-fold\" degradation for scientific applications)",
        buggy.slowdown_vs(&optimistic)
    );
}

fn main() {
    run();
}

#[cfg(test)]
mod tests {
    /// `cargo test` drives the example's whole main path (see the
    /// `[[example]] test = true` entries in Cargo.toml), so examples
    /// cannot silently rot.
    #[test]
    fn smoke() {
        super::run();
    }
}
