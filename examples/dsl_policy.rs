//! Writing a policy in the DSL and pushing it through both backends.
//!
//! The paper's architecture: one policy source, compiled both to an
//! executable scheduler and to a verifiable artefact.  This example parses a
//! policy written in the DSL, runs it in the simulator-free pure model,
//! verifies it, and prints the generated Rust module.
//!
//! Run with: `cargo run --release --example dsl_policy`

use optimistic_sched::core::prelude::*;
use optimistic_sched::dsl;
use optimistic_sched::verify::Scope;

const MY_POLICY: &str = "\
# Steal one thread from any core at least three threads ahead of us,
# preferring the victim with the most threads.
policy cautious {
    metric threads;
    filter = victim.load - self.load >= 3;
    choose = max victim.load;
    steal  = 1;
}
";

fn run() {
    // Front-end: parse + type check + phase check.
    let compiled = dsl::compile_source(MY_POLICY).expect("the policy should compile");
    println!("compiled policy `{}`", compiled.def.name);
    for warning in &compiled.warnings {
        println!("  warning: {}", warning.message);
    }

    // Executable backend: run it on an imbalanced system.
    let mut system = SystemState::from_loads(&[0, 6, 1, 0]);
    let balancer = Balancer::new(compiled.policy);
    let result = converge(&mut system, &balancer, RoundSchedule::AllSelectThenSteal, 32);
    println!(
        "\nexecuted: converged after {:?} rounds, final loads {}",
        result.rounds,
        system.load_vector_string(LoadMetric::NrThreads)
    );

    // Verification backend: the full lemma suite.
    let verified = dsl::verify_source(MY_POLICY, &Scope::small()).expect("verification runs");
    println!("\n{}", verified.report);

    // Code generator: the standalone Rust module (the "C backend" analogue).
    println!("--- generated Rust (excerpt) ---");
    let generated = dsl::generate_rust(&compiled.def);
    for line in generated.lines().take(24) {
        println!("{line}");
    }
    println!("... ({} lines total)", generated.lines().count());

    // The greedy counterexample from the standard library, for contrast.
    let greedy =
        dsl::verify_source(dsl::stdlib::GREEDY, &Scope::small()).expect("verification runs");
    println!(
        "\nthe stdlib `greedy` policy verifies work-conserving? {}",
        greedy.is_work_conserving()
    );
}

fn main() {
    run();
}

#[cfg(test)]
mod tests {
    /// `cargo test` drives the example's whole main path (see the
    /// `[[example]] test = true` entries in Cargo.toml), so examples
    /// cannot silently rot.
    #[test]
    fn smoke() {
        super::run();
    }
}
