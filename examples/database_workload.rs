//! The E10 scenario as a runnable example: an OLTP workload on a dual-socket
//! machine, comparing throughput under the verified optimistic scheduler and
//! under the buggy CFS-like baseline.
//!
//! Run with: `cargo run --release --example database_workload`

use optimistic_sched::core::Policy;
use optimistic_sched::sim::{CfsBugs, CfsLikeScheduler, Engine, OptimisticScheduler, SimConfig};
use optimistic_sched::topology::TopologyBuilder;
use optimistic_sched::workloads::OltpWorkload;

fn run() {
    let topo = TopologyBuilder::new().sockets(2).cores_per_socket(8).build();
    let workload = OltpWorkload {
        nr_workers: topo.nr_cpus() * 2,
        transactions: 40,
        service_ns: 500_000,
        think_ns: 250_000,
        jitter: 0.2,
        seed: 7,
        initial_spread: 4,
    }
    .generate();
    println!("workload: {} on {} cores\n", workload.name, topo.nr_cpus());

    let optimistic = Engine::new(
        SimConfig::default(),
        Some(&topo),
        &workload,
        Box::new(OptimisticScheduler::new(Policy::simple())),
    )
    .run();
    let buggy = Engine::new(
        SimConfig::default(),
        Some(&topo),
        &workload,
        Box::new(CfsLikeScheduler::new(CfsBugs::all())),
    )
    .run();

    for result in [&optimistic, &buggy] {
        println!(
            "{:<28} throughput {:>9.0} txn/s   violating idle {:>5.1}%   p99 latency {:>6.0} us",
            result.scheduler,
            result.throughput_ops_per_sec(),
            result.violating_idle_fraction() * 100.0,
            result.latency.quantile(0.99) as f64 / 1e3,
        );
    }
    println!(
        "\nthroughput kept by the buggy baseline: {:.0}%  (the paper reports up to a 25% decrease)",
        buggy.relative_throughput(&optimistic) * 100.0
    );
}

fn main() {
    run();
}

#[cfg(test)]
mod tests {
    /// `cargo test` drives the example's whole main path (see the
    /// `[[example]] test = true` entries in Cargo.toml), so examples
    /// cannot silently rot.
    #[test]
    fn smoke() {
        super::run();
    }
}
