//! The per-core recorder: a fixed-capacity, lock-free, overwrite-oldest
//! ring of seqlock-stamped slots.
//!
//! Writers (there may be several per ring — a wakeup enqueues onto a
//! remote core, so a remote thread records on that core's ring) claim a
//! monotonically increasing *ticket* with one `fetch_add` and write the
//! slot `ticket % capacity`; they never wait, never allocate, and never
//! see each other.  Each slot carries a sequence word in the classic
//! seqlock discipline — `2·ticket + 1` while the write is in flight,
//! `2·ticket + 2` once the payload is published — so a reader re-reads
//! the sequence around the payload and rejects any slot that was torn by
//! a concurrent (or wrapping) writer instead of ever surfacing a mangled
//! event.  The sequence transitions use `fetch_max`, which keeps a stale
//! writer that was lapped by a full ring revolution from regressing the
//! sequence under a newer writer's feet.
//!
//! A full ring simply keeps going: ticket `t` overwrites the event of
//! ticket `t − capacity`, and [`Ring::dropped`] reports how many events
//! were lost that way.  Loss is visible, never silent.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Default per-core slot count used by the recording sinks.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One seqlock-stamped slot: the sequence word plus five payload words
/// (timestamp, global record sequence, tag word, and two operands — see
/// [`crate::event`]).
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 5],
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// One core's event ring (see the module docs).
#[derive(Debug)]
pub struct Ring {
    /// Next ticket to hand out; `head − capacity … head` are the live slots.
    head: AtomicU64,
    mask: usize,
    slots: Box<[Slot]>,
}

impl Ring {
    /// Creates a ring with at least `capacity` slots (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        Ring {
            head: AtomicU64::new(0),
            mask: capacity - 1,
            slots: (0..capacity).map(|_| Slot::new()).collect(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one event.  Never blocks: a full ring overwrites its oldest
    /// slot (counted by [`Ring::dropped`]).  `seq` is the writer's global
    /// record sequence — the cross-ring merge uses it to order
    /// same-timestamp events by commit order rather than by ring index.
    pub fn push(&self, ts: u64, seq: u64, tag: u64, a: u64, b: u64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & self.mask];
        // Mark the write in flight *before* any payload store becomes
        // visible; `fetch_max` so a lapped writer cannot regress a newer
        // writer's sequence.
        slot.seq.fetch_max(2 * ticket + 1, Ordering::AcqRel);
        fence(Ordering::Release);
        slot.words[0].store(ts, Ordering::Relaxed);
        slot.words[1].store(seq, Ordering::Relaxed);
        slot.words[2].store(tag, Ordering::Relaxed);
        slot.words[3].store(a, Ordering::Relaxed);
        slot.words[4].store(b, Ordering::Relaxed);
        slot.seq.fetch_max(2 * ticket + 2, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to overwrite-oldest so far.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// Reads the surviving events in record order as raw
    /// `(ts, seq, tag, a, b)` payloads.
    ///
    /// Intended for a quiescent ring (all writers done); a slot whose
    /// write is still in flight — or that a racing writer overwrote while
    /// this read was underway — fails its seqlock re-read and is skipped,
    /// so a torn payload is never returned.
    pub fn drain(&self) -> Vec<(u64, u64, u64, u64, u64)> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(self.capacity() as u64);
        let mut out = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            let slot = &self.slots[(ticket as usize) & self.mask];
            let want = 2 * ticket + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let payload = (
                slot.words[0].load(Ordering::Relaxed),
                slot.words[1].load(Ordering::Relaxed),
                slot.words[2].load(Ordering::Relaxed),
                slot.words[3].load(Ordering::Relaxed),
                slot.words[4].load(Ordering::Relaxed),
            );
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != want {
                continue;
            }
            out.push(payload);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_below_capacity() {
        let ring = Ring::with_capacity(8);
        for i in 0..5u64 {
            ring.push(i, 50 + i, 100 + i, i, 2 * i);
        }
        assert_eq!(ring.dropped(), 0);
        let events = ring.drain();
        assert_eq!(events.len(), 5);
        for (i, &(ts, seq, tag, a, b)) in events.iter().enumerate() {
            let i = i as u64;
            assert_eq!((ts, seq, tag, a, b), (i, 50 + i, 100 + i, i, 2 * i));
        }
    }

    #[test]
    fn overwrites_oldest_and_counts_the_loss() {
        let ring = Ring::with_capacity(4);
        for i in 0..11u64 {
            ring.push(i, i, i, 0, 0);
        }
        assert_eq!(ring.dropped(), 7, "11 recorded into 4 slots");
        let events = ring.drain();
        assert_eq!(events.len(), 4);
        let ts: Vec<u64> = events.iter().map(|e| e.0).collect();
        assert_eq!(ts, vec![7, 8, 9, 10], "the newest events survive, in order");
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(Ring::with_capacity(0).capacity(), 2);
        assert_eq!(Ring::with_capacity(3).capacity(), 4);
        assert_eq!(Ring::with_capacity(4096).capacity(), 4096);
    }

    #[test]
    fn concurrent_writers_never_produce_a_torn_event() {
        // Hammer one small ring from several threads, each writing slots
        // whose four words are derived from one value; any mix-and-match
        // of two writes would break the derivation and be a torn read.
        let ring = Ring::with_capacity(16);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..2048u64 {
                        let v = t * 1_000_000 + i;
                        ring.push(
                            v,
                            v.wrapping_mul(3),
                            v.wrapping_mul(5),
                            v.wrapping_mul(7),
                            v.wrapping_mul(11),
                        );
                    }
                });
            }
        });
        for (ts, seq, tag, a, b) in ring.drain() {
            assert_eq!(seq, ts.wrapping_mul(3), "slot words from different writes");
            assert_eq!(tag, ts.wrapping_mul(5), "slot words from different writes");
            assert_eq!(a, ts.wrapping_mul(7), "slot words from different writes");
            assert_eq!(b, ts.wrapping_mul(11), "slot words from different writes");
        }
        assert_eq!(ring.recorded(), 4 * 2048);
    }
}
