//! The typed event vocabulary and its fixed-size slot encoding.
//!
//! Every event packs into three `u64` payload words (plus the timestamp),
//! so a ring slot has a fixed shape and the writer never allocates.  The
//! encoding is an internal detail of the ring; consumers only ever see
//! [`TraceEvent`] values again.

use sched_core::{CoreId, StealOutcome, TaskId};
use sched_topology::StealLevel;

/// Outcome class of a recorded steal attempt — [`StealOutcome`] with the
/// task payload stripped (migrated tasks are carried by the per-task
/// [`TraceEvent::Migration`] events that follow a successful attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealOutcomeKind {
    /// The attempt migrated at least one task.
    Stole,
    /// The filter re-check failed on the live state (stale selection).
    RecheckFailed,
    /// The filter held but nothing was migratable.
    NothingToSteal,
    /// Selection produced no victim at all.
    NoCandidates,
}

impl StealOutcomeKind {
    /// The outcome class of a concrete [`StealOutcome`].
    pub fn of(outcome: &StealOutcome) -> Self {
        match outcome {
            StealOutcome::Stole { .. } => StealOutcomeKind::Stole,
            StealOutcome::RecheckFailed { .. } => StealOutcomeKind::RecheckFailed,
            StealOutcome::NothingToSteal { .. } => StealOutcomeKind::NothingToSteal,
            StealOutcome::NoCandidates => StealOutcomeKind::NoCandidates,
        }
    }

    /// Short lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            StealOutcomeKind::Stole => "stole",
            StealOutcomeKind::RecheckFailed => "recheck-failed",
            StealOutcomeKind::NothingToSteal => "nothing-to-steal",
            StealOutcomeKind::NoCandidates => "no-candidates",
        }
    }

    fn code(self) -> u64 {
        match self {
            StealOutcomeKind::Stole => 0,
            StealOutcomeKind::RecheckFailed => 1,
            StealOutcomeKind::NothingToSteal => 2,
            StealOutcomeKind::NoCandidates => 3,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(StealOutcomeKind::Stole),
            1 => Some(StealOutcomeKind::RecheckFailed),
            2 => Some(StealOutcomeKind::NothingToSteal),
            3 => Some(StealOutcomeKind::NoCandidates),
            _ => None,
        }
    }
}

/// One scheduling decision, recorded on the ring of the core that made it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A task became runnable (wakeup or arrival).
    TaskWake {
        /// The waking task.
        task: TaskId,
    },
    /// The placement decision for a runnable task: it was enqueued on
    /// `core` (recorded on the ring of the deciding core, which for the
    /// runqueue substrates is the target core itself).
    PlaceDecision {
        /// The placed task.
        task: TaskId,
        /// The core it was enqueued on.
        core: CoreId,
    },
    /// One balancing attempt by the recording (thief) core.
    StealAttempt {
        /// The victim chosen during selection, if any ([`None`] exactly
        /// when `outcome` is [`StealOutcomeKind::NoCandidates`]).
        victim: Option<CoreId>,
        /// Topological distance class of the victim, when known.
        level: Option<StealLevel>,
        /// What the attempt amounted to.
        outcome: StealOutcomeKind,
        /// How many tasks the attempt asked for (the batch size `k`).
        k: u32,
        /// How many tasks actually migrated (0 on failure).
        moved: u32,
    },
    /// One task moved from `from` to the recording (thief) core as part of
    /// the immediately preceding successful [`TraceEvent::StealAttempt`].
    Migration {
        /// The migrated task.
        task: TaskId,
        /// The victim core it left.
        from: CoreId,
    },
    /// A batch steal's per-task re-check stopped delivery early and looped
    /// `returned` claimed tasks back to the recording (victim) core.
    BatchTrim {
        /// Tasks returned to the victim's stealable set.
        returned: u64,
    },
    /// Ring overflow parked a task in the recording core's shared
    /// injector, where it stays claimable by anyone.
    InjectorPush {
        /// The overflowed task.
        task: TaskId,
    },
    /// Ring overflow parked a task in the recording core's *private* spill
    /// list (the quarantined [`sched_core`]-conservation hole of E22/E25):
    /// counted by load observers, unstealable until the next tick.
    OverflowSpill {
        /// The spilled task.
        task: TaskId,
    },
    /// A tick folded `moved` injector residents back into the recording
    /// core's ring (the aging drain).
    InjectorDrain {
        /// Residents moved into the ring.
        moved: u64,
    },
    /// A machine-wide balancing round started (recorded on core 0, with a
    /// running round counter).
    BalanceRound {
        /// Zero-based round number.
        round: u64,
    },
    /// The recording core went idle (nothing to run).
    Park,
    /// The recording core left idle (something to run again).
    Unpark,
    /// A task completed (or left the machine) on the recording core.
    TaskDone {
        /// The finished task.
        task: TaskId,
    },
    /// A task voluntarily left the recording core's runnable population
    /// (a sleep phase, a barrier wait) and will wake again later.  Without
    /// this event a sleeping task would keep inflating its core's derived
    /// occupancy in every trace consumer.
    TaskSleep {
        /// The task that went to sleep.
        task: TaskId,
    },
}

/// Sentinel payload word for "no core" (a `CoreId` is an index, so the
/// all-ones word can never collide with one).
const NO_CORE: u64 = u64::MAX;

const TAG_TASK_WAKE: u64 = 0;
const TAG_PLACE_DECISION: u64 = 1;
const TAG_STEAL_ATTEMPT: u64 = 2;
const TAG_MIGRATION: u64 = 3;
const TAG_BATCH_TRIM: u64 = 4;
const TAG_INJECTOR_PUSH: u64 = 5;
const TAG_OVERFLOW_SPILL: u64 = 6;
const TAG_INJECTOR_DRAIN: u64 = 7;
const TAG_BALANCE_ROUND: u64 = 8;
const TAG_PARK: u64 = 9;
const TAG_UNPARK: u64 = 10;
const TAG_TASK_DONE: u64 = 11;
const TAG_TASK_SLEEP: u64 = 12;

impl TraceEvent {
    /// Builds the [`TraceEvent::StealAttempt`] describing a concrete
    /// [`StealOutcome`] with the batch size it was attempted at.
    pub fn steal_attempt(outcome: &StealOutcome, level: Option<StealLevel>, k: usize) -> Self {
        let (victim, moved) = match outcome {
            StealOutcome::Stole { victim, tasks } => (Some(*victim), tasks.len() as u32),
            StealOutcome::RecheckFailed { victim } => (Some(*victim), 0),
            StealOutcome::NothingToSteal { victim } => (Some(*victim), 0),
            StealOutcome::NoCandidates => (None, 0),
        };
        TraceEvent::StealAttempt {
            victim,
            level,
            outcome: StealOutcomeKind::of(outcome),
            k: k.min(u32::MAX as usize) as u32,
            moved,
        }
    }

    /// Packs the event into `(tag_word, a, b)` — the three payload words of
    /// a ring slot.
    pub fn pack(&self) -> (u64, u64, u64) {
        match *self {
            TraceEvent::TaskWake { task } => (TAG_TASK_WAKE, task.0, 0),
            TraceEvent::PlaceDecision { task, core } => (TAG_PLACE_DECISION, task.0, core.0 as u64),
            TraceEvent::StealAttempt { victim, level, outcome, k, moved } => {
                let level_code = level.map_or(0, |l| l.index() as u64 + 1);
                let tag = TAG_STEAL_ATTEMPT | (outcome.code() << 8) | (level_code << 16);
                let victim_word = victim.map_or(NO_CORE, |v| v.0 as u64);
                (tag, victim_word, (u64::from(k) << 32) | u64::from(moved))
            }
            TraceEvent::Migration { task, from } => (TAG_MIGRATION, task.0, from.0 as u64),
            TraceEvent::BatchTrim { returned } => (TAG_BATCH_TRIM, returned, 0),
            TraceEvent::InjectorPush { task } => (TAG_INJECTOR_PUSH, task.0, 0),
            TraceEvent::OverflowSpill { task } => (TAG_OVERFLOW_SPILL, task.0, 0),
            TraceEvent::InjectorDrain { moved } => (TAG_INJECTOR_DRAIN, moved, 0),
            TraceEvent::BalanceRound { round } => (TAG_BALANCE_ROUND, round, 0),
            TraceEvent::Park => (TAG_PARK, 0, 0),
            TraceEvent::Unpark => (TAG_UNPARK, 0, 0),
            TraceEvent::TaskDone { task } => (TAG_TASK_DONE, task.0, 0),
            TraceEvent::TaskSleep { task } => (TAG_TASK_SLEEP, task.0, 0),
        }
    }

    /// Reverses [`TraceEvent::pack`].  Returns [`None`] for words no event
    /// packs to (a defensive guard — the ring's seqlock already rejects
    /// torn slots before they reach here).
    pub fn unpack(tag_word: u64, a: u64, b: u64) -> Option<Self> {
        match tag_word & 0xff {
            TAG_TASK_WAKE => Some(TraceEvent::TaskWake { task: TaskId(a) }),
            TAG_PLACE_DECISION => {
                Some(TraceEvent::PlaceDecision { task: TaskId(a), core: CoreId(b as usize) })
            }
            TAG_STEAL_ATTEMPT => {
                let outcome = StealOutcomeKind::from_code((tag_word >> 8) & 0xff)?;
                let level = match (tag_word >> 16) & 0xff {
                    0 => None,
                    code => Some(*StealLevel::ALL.get(code as usize - 1)?),
                };
                let victim = (a != NO_CORE).then_some(CoreId(a as usize));
                Some(TraceEvent::StealAttempt {
                    victim,
                    level,
                    outcome,
                    k: (b >> 32) as u32,
                    moved: b as u32,
                })
            }
            TAG_MIGRATION => {
                Some(TraceEvent::Migration { task: TaskId(a), from: CoreId(b as usize) })
            }
            TAG_BATCH_TRIM => Some(TraceEvent::BatchTrim { returned: a }),
            TAG_INJECTOR_PUSH => Some(TraceEvent::InjectorPush { task: TaskId(a) }),
            TAG_OVERFLOW_SPILL => Some(TraceEvent::OverflowSpill { task: TaskId(a) }),
            TAG_INJECTOR_DRAIN => Some(TraceEvent::InjectorDrain { moved: a }),
            TAG_BALANCE_ROUND => Some(TraceEvent::BalanceRound { round: a }),
            TAG_PARK => Some(TraceEvent::Park),
            TAG_UNPARK => Some(TraceEvent::Unpark),
            TAG_TASK_DONE => Some(TraceEvent::TaskDone { task: TaskId(a) }),
            TAG_TASK_SLEEP => Some(TraceEvent::TaskSleep { task: TaskId(a) }),
            _ => None,
        }
    }

    /// Short lower-case label used by the exporters and reports.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::TaskWake { .. } => "task-wake",
            TraceEvent::PlaceDecision { .. } => "place",
            TraceEvent::StealAttempt { .. } => "steal-attempt",
            TraceEvent::Migration { .. } => "migration",
            TraceEvent::BatchTrim { .. } => "batch-trim",
            TraceEvent::InjectorPush { .. } => "injector-push",
            TraceEvent::OverflowSpill { .. } => "overflow-spill",
            TraceEvent::InjectorDrain { .. } => "injector-drain",
            TraceEvent::BalanceRound { .. } => "balance-round",
            TraceEvent::Park => "park",
            TraceEvent::Unpark => "unpark",
            TraceEvent::TaskDone { .. } => "task-done",
            TraceEvent::TaskSleep { .. } => "task-sleep",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<TraceEvent> {
        let mut events = vec![
            TraceEvent::TaskWake { task: TaskId(7) },
            TraceEvent::PlaceDecision { task: TaskId(7), core: CoreId(3) },
            TraceEvent::Migration { task: TaskId(9), from: CoreId(5) },
            TraceEvent::BatchTrim { returned: 4 },
            TraceEvent::InjectorPush { task: TaskId(11) },
            TraceEvent::OverflowSpill { task: TaskId(12) },
            TraceEvent::InjectorDrain { moved: 3 },
            TraceEvent::BalanceRound { round: 42 },
            TraceEvent::Park,
            TraceEvent::Unpark,
            TraceEvent::TaskDone { task: TaskId(13) },
            TraceEvent::TaskSleep { task: TaskId(14) },
        ];
        for outcome in [
            StealOutcomeKind::Stole,
            StealOutcomeKind::RecheckFailed,
            StealOutcomeKind::NothingToSteal,
            StealOutcomeKind::NoCandidates,
        ] {
            for level in [None, Some(StealLevel::SmtSibling), Some(StealLevel::Remote)] {
                events.push(TraceEvent::StealAttempt {
                    victim: (outcome != StealOutcomeKind::NoCandidates).then_some(CoreId(2)),
                    level,
                    outcome,
                    k: 8,
                    moved: u32::from(outcome == StealOutcomeKind::Stole) * 3,
                });
            }
        }
        events
    }

    #[test]
    fn pack_unpack_round_trips_every_event() {
        for event in all_events() {
            let (tag, a, b) = event.pack();
            assert_eq!(TraceEvent::unpack(tag, a, b), Some(event), "{event:?}");
        }
    }

    #[test]
    fn steal_attempt_builder_matches_the_outcome_vocabulary() {
        let stole = StealOutcome::Stole { victim: CoreId(4), tasks: vec![TaskId(1), TaskId(2)] };
        match TraceEvent::steal_attempt(&stole, Some(StealLevel::SameNode), 8) {
            TraceEvent::StealAttempt { victim, level, outcome, k, moved } => {
                assert_eq!(victim, Some(CoreId(4)));
                assert_eq!(level, Some(StealLevel::SameNode));
                assert_eq!(outcome, StealOutcomeKind::Stole);
                assert_eq!(k, 8);
                assert_eq!(moved, 2);
            }
            other => panic!("expected a steal attempt, got {other:?}"),
        }
        match TraceEvent::steal_attempt(&StealOutcome::NoCandidates, None, 1) {
            TraceEvent::StealAttempt { victim: None, outcome, moved: 0, .. } => {
                assert_eq!(outcome, StealOutcomeKind::NoCandidates);
            }
            other => panic!("expected no-candidates, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tags_unpack_to_none() {
        assert_eq!(TraceEvent::unpack(0xfe, 0, 0), None);
        assert_eq!(TraceEvent::unpack(TAG_STEAL_ATTEMPT | (9 << 8), 0, 0), None);
        assert_eq!(TraceEvent::unpack(TAG_STEAL_ATTEMPT | (7 << 16), 0, 0), None);
    }
}
