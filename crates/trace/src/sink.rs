//! The handle the substrates record through, and the drained trace.
//!
//! A [`TraceSink`] is a cheap clone-anywhere handle: disabled it is an
//! empty `Option` and every record call is one branch — **zero atomic
//! operations**, which the runqueue tier-1 tests pin via [`write_ops`] —
//! while a recording sink carries one [`Ring`] per core plus a shared
//! logical-`now` word the simulator engines keep current so schedulers
//! can record without threading timestamps through every callback.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sched_core::CoreId;

use crate::event::TraceEvent;
use crate::ring::{Ring, DEFAULT_RING_CAPACITY};

/// Process-global count of ring writes performed by *enabled* sinks.
///
/// This is the observability layer observing itself: the zero-overhead
/// contract ("a disabled sink adds no atomic traffic to any hot path") is
/// asserted by driving a hot path with and without a sink attached and
/// comparing this counter's movement.  Relaxed and monotonic; only deltas
/// are meaningful.
static WRITE_OPS: AtomicU64 = AtomicU64::new(0);

/// Reads the global write-probe counter (see the `WRITE_OPS` doc).
pub fn write_ops() -> u64 {
    WRITE_OPS.load(Ordering::Relaxed)
}

/// The shared recording state behind an enabled sink.
#[derive(Debug)]
struct TraceBuffer {
    rings: Vec<Ring>,
    /// Logical "current time" for [`TraceSink::record_now`] callers; the
    /// engines store into it once per handled event.
    now: AtomicU64,
    /// Global record sequence: every write claims the next value, and the
    /// drain breaks same-timestamp ties by it.  Logical clocks are coarse
    /// (a whole balancing round can share one timestamp), so without it
    /// the merge would interleave same-time events by core id and destroy
    /// the causal order single-threaded substrates actually recorded in.
    seq: AtomicU64,
}

/// A recording handle (see the module docs).  Cloning shares the buffer.
#[derive(Debug, Clone, Default)]
pub struct TraceSink(Option<Arc<TraceBuffer>>);

impl TraceSink {
    /// A sink that records nothing and touches no shared state at all.
    pub fn disabled() -> Self {
        TraceSink(None)
    }

    /// A sink recording into one default-capacity ring per core.
    pub fn recording(nr_cores: usize) -> Self {
        Self::with_capacity(nr_cores, DEFAULT_RING_CAPACITY)
    }

    /// A sink recording into one `capacity`-slot ring per core.
    pub fn with_capacity(nr_cores: usize, capacity: usize) -> Self {
        let rings = (0..nr_cores).map(|_| Ring::with_capacity(capacity)).collect();
        TraceSink(Some(Arc::new(TraceBuffer {
            rings,
            now: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        })))
    }

    /// `true` when this sink actually records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records `event` on `core`'s ring at logical time `ts`.  On a
    /// disabled sink this is one branch and returns immediately.
    pub fn record(&self, core: CoreId, ts: u64, event: &TraceEvent) {
        if let Some(buf) = &self.0 {
            WRITE_OPS.fetch_add(1, Ordering::Relaxed);
            if let Some(ring) = buf.rings.get(core.0) {
                let seq = buf.seq.fetch_add(1, Ordering::Relaxed);
                let (tag, a, b) = event.pack();
                ring.push(ts, seq, tag, a, b);
            }
        }
    }

    /// Publishes the logical time subsequent [`TraceSink::record_now`]
    /// calls stamp events with.
    pub fn set_now(&self, ts: u64) {
        if let Some(buf) = &self.0 {
            buf.now.store(ts, Ordering::Release);
        }
    }

    /// Records `event` on `core`'s ring at the last
    /// [`TraceSink::set_now`] time.
    pub fn record_now(&self, core: CoreId, event: &TraceEvent) {
        if let Some(buf) = &self.0 {
            let now = buf.now.load(Ordering::Acquire);
            self.record(core, now, event);
        }
    }

    /// Total events lost to ring overwrite across all cores.
    pub fn dropped(&self) -> u64 {
        self.0.as_ref().map_or(0, |buf| buf.rings.iter().map(Ring::dropped).sum())
    }

    /// Reads the surviving events of every core, merged into one
    /// time-sorted stream — per-core record order preserved, ties broken
    /// by the global record sequence, so same-timestamp events come out
    /// in the order they were committed (for a single-threaded substrate
    /// that *is* the causal order).  Intended once the traced run is
    /// quiescent; a disabled sink drains to an empty trace.
    pub fn drain(&self) -> Trace {
        let Some(buf) = &self.0 else {
            return Trace { events: Vec::new(), dropped: 0, nr_cores: 0 };
        };
        let per_core: Vec<Vec<(u64, RecordedEvent)>> = buf
            .rings
            .iter()
            .enumerate()
            .map(|(core, ring)| {
                ring.drain()
                    .into_iter()
                    .filter_map(|(ts, seq, tag, a, b)| {
                        TraceEvent::unpack(tag, a, b)
                            .map(|event| (seq, RecordedEvent { core: CoreId(core), ts, event }))
                    })
                    .collect()
            })
            .collect();
        // K-way merge: pop the smallest (ts, seq) head each step.  The
        // sequence is globally unique, so the result is deterministic and
        // each core's own order survives (seq is monotonic per ring).
        let total = per_core.iter().map(Vec::len).sum();
        let mut cursors = vec![0usize; per_core.len()];
        let mut events = Vec::with_capacity(total);
        while events.len() < total {
            let (_, core) = per_core
                .iter()
                .enumerate()
                .filter_map(|(core, evs)| {
                    evs.get(cursors[core]).map(|(seq, e)| ((e.ts, *seq), core))
                })
                .min()
                .expect("some cursor is still behind its ring");
            events.push(per_core[core][cursors[core]].1);
            cursors[core] += 1;
        }
        Trace { events, dropped: self.dropped(), nr_cores: buf.rings.len() }
    }
}

/// One drained event with its recording core and timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedEvent {
    /// The core whose ring recorded the event (the decision site).
    pub core: CoreId,
    /// Logical timestamp (nanoseconds of the substrate's own clock).
    pub ts: u64,
    /// The decision itself.
    pub event: TraceEvent,
}

/// A drained, merged trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All surviving events, time-sorted (per-core order preserved).
    pub events: Vec<RecordedEvent>,
    /// Events lost to ring overwrite (conservation checks are suppressed
    /// when this is nonzero — the stream is knowingly incomplete).
    pub dropped: u64,
    /// Number of per-core rings the trace was recorded into.
    pub nr_cores: usize,
}

impl Trace {
    /// Events recorded on `core`, in record order.
    pub fn for_core(&self, core: CoreId) -> impl Iterator<Item = &RecordedEvent> {
        self.events.iter().filter(move |e| e.core == core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::TaskId;

    #[test]
    fn a_disabled_sink_records_nothing_and_counts_nothing() {
        let sink = TraceSink::disabled();
        let before = write_ops();
        sink.record(CoreId(0), 1, &TraceEvent::Park);
        sink.set_now(5);
        sink.record_now(CoreId(0), &TraceEvent::Unpark);
        assert_eq!(write_ops(), before, "disabled sinks must not touch the probe");
        assert!(!sink.is_enabled());
        let trace = sink.drain();
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn an_enabled_sink_moves_the_write_probe() {
        let sink = TraceSink::with_capacity(1, 8);
        let before = write_ops();
        sink.record(CoreId(0), 1, &TraceEvent::Park);
        sink.record(CoreId(0), 2, &TraceEvent::Unpark);
        assert_eq!(write_ops() - before, 2);
    }

    #[test]
    fn drain_merges_cores_by_time_preserving_per_core_order() {
        let sink = TraceSink::with_capacity(2, 8);
        sink.record(CoreId(0), 10, &TraceEvent::TaskWake { task: TaskId(0) });
        sink.record(CoreId(0), 30, &TraceEvent::TaskDone { task: TaskId(0) });
        sink.record(CoreId(1), 20, &TraceEvent::TaskWake { task: TaskId(1) });
        sink.record(CoreId(1), 30, &TraceEvent::TaskDone { task: TaskId(1) });
        let trace = sink.drain();
        let seen: Vec<(u64, usize)> = trace.events.iter().map(|e| (e.ts, e.core.0)).collect();
        assert_eq!(seen, vec![(10, 0), (20, 1), (30, 0), (30, 1)], "ties break by record order");
        assert_eq!(trace.nr_cores, 2);
        assert_eq!(trace.for_core(CoreId(1)).count(), 2);
    }

    #[test]
    fn same_timestamp_ties_merge_in_commit_order_not_core_order() {
        // A higher-numbered core records first at the shared timestamp:
        // the merge must keep its event first (a core-id tie-break would
        // invert the causal order the writer actually committed in).
        let sink = TraceSink::with_capacity(2, 8);
        sink.record(CoreId(1), 5, &TraceEvent::Park);
        sink.record(CoreId(0), 5, &TraceEvent::Unpark);
        let cores: Vec<usize> = sink.drain().events.iter().map(|e| e.core.0).collect();
        assert_eq!(cores, vec![1, 0], "commit order survives the merge");
    }

    #[test]
    fn record_now_uses_the_published_time() {
        let sink = TraceSink::with_capacity(1, 8);
        sink.set_now(77);
        sink.record_now(CoreId(0), &TraceEvent::Park);
        let trace = sink.drain();
        assert_eq!(trace.events[0].ts, 77);
    }

    #[test]
    fn out_of_range_cores_are_ignored_not_panicked_on() {
        let sink = TraceSink::with_capacity(1, 8);
        sink.record(CoreId(9), 1, &TraceEvent::Park);
        assert!(sink.drain().events.is_empty());
    }
}
