//! Re-deriving the aggregate balance counters from the event stream.
//!
//! The substrates keep aggregate counters (`sched-rq`'s `BalanceStats`,
//! `sched-sim`'s `RoundStats`) incremented at exactly the points where a
//! [`TraceEvent::StealAttempt`] is now recorded.  Folding a trace must
//! therefore reproduce those counters bit for bit — the `stats ==
//! fold(trace)` parity tests in each substrate pin that the trace is a
//! complete record of the decisions the counters summarise, not a lossy
//! echo of them.

use crate::event::{StealOutcomeKind, TraceEvent};
use crate::sink::Trace;

/// The balance counters derivable from a trace — the common shape of
/// `BalanceStats` and `RoundStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldedStats {
    /// Steal attempts that migrated at least one task.
    pub successes: u64,
    /// Attempts whose filter re-check failed on the live state.
    pub recheck_failures: u64,
    /// Attempts whose filter held but found nothing migratable.
    pub nothing_to_steal: u64,
    /// Attempts whose selection produced no victim at all.
    pub no_candidates: u64,
    /// Tasks migrated.
    pub migrations: u64,
    /// Tasks migrated per steal level, indexed by [`sched_topology::StealLevel::index`].
    pub level_migrations: [u64; 4],
}

impl FoldedStats {
    /// Folds a drained trace into the aggregate counters.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut stats = FoldedStats::default();
        for recorded in &trace.events {
            stats.observe(&recorded.event);
        }
        stats
    }

    /// Folds one event into the counters (the incremental half used by the
    /// online checker).
    pub fn observe(&mut self, event: &TraceEvent) {
        if let TraceEvent::StealAttempt { level, outcome, moved, .. } = event {
            match outcome {
                StealOutcomeKind::Stole => {
                    self.successes += 1;
                    self.migrations += u64::from(*moved);
                    if let Some(level) = level {
                        self.level_migrations[level.index()] += u64::from(*moved);
                    }
                }
                StealOutcomeKind::RecheckFailed => self.recheck_failures += 1,
                StealOutcomeKind::NothingToSteal => self.nothing_to_steal += 1,
                StealOutcomeKind::NoCandidates => self.no_candidates += 1,
            }
        }
    }

    /// Failed attempts in the paper's sense (a victim was chosen, nothing
    /// was stolen) — mirrors `BalanceStats::failures`.
    pub fn failures(&self) -> u64 {
        self.recheck_failures + self.nothing_to_steal
    }

    /// Attempts that chose a victim (successes plus failures).
    pub fn attempts(&self) -> u64 {
        self.successes + self.failures()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;
    use sched_core::{CoreId, StealOutcome, TaskId};
    use sched_topology::StealLevel;

    #[test]
    fn folding_reproduces_the_stats_semantics() {
        let sink = TraceSink::with_capacity(2, 32);
        let stole = StealOutcome::Stole { victim: CoreId(1), tasks: vec![TaskId(1), TaskId(2)] };
        sink.record(CoreId(0), 1, &TraceEvent::steal_attempt(&stole, Some(StealLevel::SameLlc), 4));
        sink.record(CoreId(0), 1, &TraceEvent::Migration { task: TaskId(1), from: CoreId(1) });
        sink.record(CoreId(0), 1, &TraceEvent::Migration { task: TaskId(2), from: CoreId(1) });
        sink.record(
            CoreId(0),
            2,
            &TraceEvent::steal_attempt(&StealOutcome::RecheckFailed { victim: CoreId(1) }, None, 1),
        );
        sink.record(
            CoreId(1),
            2,
            &TraceEvent::steal_attempt(
                &StealOutcome::NothingToSteal { victim: CoreId(0) },
                None,
                1,
            ),
        );
        sink.record(CoreId(1), 3, &TraceEvent::steal_attempt(&StealOutcome::NoCandidates, None, 1));
        let stats = FoldedStats::from_trace(&sink.drain());
        assert_eq!(stats.successes, 1);
        assert_eq!(stats.migrations, 2);
        assert_eq!(stats.level_migrations, [0, 2, 0, 0]);
        assert_eq!(stats.recheck_failures, 1);
        assert_eq!(stats.nothing_to_steal, 1);
        assert_eq!(stats.no_candidates, 1);
        assert_eq!(stats.failures(), 2);
        assert_eq!(stats.attempts(), 3, "no-candidates chose no victim");
    }

    #[test]
    fn non_steal_events_do_not_move_the_counters() {
        let sink = TraceSink::with_capacity(1, 8);
        sink.record(CoreId(0), 0, &TraceEvent::TaskWake { task: TaskId(0) });
        sink.record(CoreId(0), 0, &TraceEvent::Park);
        sink.record(CoreId(0), 0, &TraceEvent::InjectorPush { task: TaskId(0) });
        assert_eq!(FoldedStats::from_trace(&sink.drain()), FoldedStats::default());
    }
}
