//! Chrome/Perfetto `trace.json` export.
//!
//! Renders a drained [`Trace`] in the Chrome trace-event JSON format that
//! both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! open directly: one track (`tid`) per core under a single process,
//! instants for the individual decisions, duration slices for parked
//! (idle) intervals, and flow arrows from victim to thief for every
//! successful steal — the visual the paper's "idle cores next to
//! overloaded ones" complaint calls for, since a starving core shows as a
//! long `parked` slice with failed steal instants and no inbound arrows.
//!
//! The writer is hand-rolled (this workspace has no JSON dependency); all
//! emitted strings are fixed labels, so no escaping is needed.

use crate::event::{StealOutcomeKind, TraceEvent};
use crate::sink::Trace;

/// Microsecond timestamp field from a logical-nanosecond clock.
fn ts_us(ts: u64) -> String {
    format!("{:.3}", ts as f64 / 1000.0)
}

fn push_event(out: &mut String, fields: &str) {
    out.push_str("    {");
    out.push_str(fields);
    out.push_str("},\n");
}

/// Renders `trace` as a Chrome trace-event JSON document.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n");
    for core in 0..trace.nr_cores {
        push_event(
            &mut out,
            &format!(
                "\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {core}, \
                 \"args\": {{\"name\": \"core {core}\"}}"
            ),
        );
    }
    // Parked intervals become duration slices: remember each core's open
    // park, close it on the matching unpark (or at the trace's end).
    let mut parked_since: Vec<Option<u64>> = vec![None; trace.nr_cores];
    let mut flow_id = 0u64;
    let mut last_ts = 0u64;
    for recorded in &trace.events {
        let core = recorded.core.0;
        let ts = recorded.ts;
        last_ts = last_ts.max(ts);
        match &recorded.event {
            TraceEvent::Park => {
                if let Some(slot) = parked_since.get_mut(core) {
                    slot.get_or_insert(ts);
                }
            }
            TraceEvent::Unpark => {
                if let Some(since) = parked_since.get_mut(core).and_then(Option::take) {
                    push_event(
                        &mut out,
                        &format!(
                            "\"name\": \"parked\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                             \"pid\": 0, \"tid\": {core}",
                            ts_us(since),
                            ts_us(ts.saturating_sub(since)),
                        ),
                    );
                }
            }
            TraceEvent::StealAttempt { victim, level, outcome, k, moved } => {
                let victim_label = victim.map_or_else(|| "null".to_string(), |v| v.0.to_string());
                let level_label =
                    level.map_or_else(|| "\"unknown\"".to_string(), |l| format!("\"{l:?}\""));
                push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"steal:{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \
                         \"pid\": 0, \"tid\": {core}, \"args\": {{\"victim\": {victim_label}, \
                         \"level\": {level_label}, \"k\": {k}, \"moved\": {moved}}}",
                        outcome.label(),
                        ts_us(ts),
                    ),
                );
                if *outcome == StealOutcomeKind::Stole {
                    if let Some(victim) = victim {
                        // A flow arrow from the victim's track to the
                        // thief's: "s" starts it, "f" finishes it.
                        push_event(
                            &mut out,
                            &format!(
                                "\"name\": \"steal\", \"ph\": \"s\", \"id\": {flow_id}, \
                                 \"ts\": {}, \"pid\": 0, \"tid\": {}",
                                ts_us(ts),
                                victim.0,
                            ),
                        );
                        push_event(
                            &mut out,
                            &format!(
                                "\"name\": \"steal\", \"ph\": \"f\", \"bp\": \"e\", \
                                 \"id\": {flow_id}, \"ts\": {}, \"pid\": 0, \"tid\": {core}",
                                ts_us(ts),
                            ),
                        );
                        flow_id += 1;
                    }
                }
            }
            event => {
                let args = match event {
                    TraceEvent::TaskWake { task }
                    | TraceEvent::InjectorPush { task }
                    | TraceEvent::OverflowSpill { task }
                    | TraceEvent::TaskDone { task }
                    | TraceEvent::TaskSleep { task } => format!("{{\"task\": {}}}", task.0),
                    TraceEvent::PlaceDecision { task, core } => {
                        format!("{{\"task\": {}, \"core\": {}}}", task.0, core.0)
                    }
                    TraceEvent::Migration { task, from } => {
                        format!("{{\"task\": {}, \"from\": {}}}", task.0, from.0)
                    }
                    TraceEvent::BatchTrim { returned } => {
                        format!("{{\"returned\": {returned}}}")
                    }
                    TraceEvent::InjectorDrain { moved } => format!("{{\"moved\": {moved}}}"),
                    TraceEvent::BalanceRound { round } => format!("{{\"round\": {round}}}"),
                    _ => "{}".to_string(),
                };
                push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \
                         \"pid\": 0, \"tid\": {core}, \"args\": {args}",
                        event.label(),
                        ts_us(ts),
                    ),
                );
            }
        }
    }
    // Close still-open park slices at the last seen timestamp so the idle
    // tail is visible rather than silently truncated.
    for (core, since) in parked_since.iter().enumerate() {
        if let Some(since) = since {
            push_event(
                &mut out,
                &format!(
                    "\"name\": \"parked\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                     \"pid\": 0, \"tid\": {core}",
                    ts_us(*since),
                    ts_us(last_ts.saturating_sub(*since)),
                ),
            );
        }
    }
    push_event(
        &mut out,
        &format!(
            "\"name\": \"dropped_events\", \"ph\": \"C\", \"ts\": 0, \"pid\": 0, \"tid\": 0, \
             \"args\": {{\"dropped\": {}}}",
            trace.dropped
        ),
    );
    // Trailing comma removal keeps the writer simple.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;
    use sched_core::{CoreId, StealOutcome, TaskId};

    #[test]
    fn export_contains_tracks_flows_and_park_slices() {
        let sink = TraceSink::with_capacity(2, 32);
        sink.record(CoreId(1), 0, &TraceEvent::Park);
        sink.record(
            CoreId(0),
            500,
            &TraceEvent::PlaceDecision { task: TaskId(3), core: CoreId(0) },
        );
        let stole = StealOutcome::Stole { victim: CoreId(0), tasks: vec![TaskId(3)] };
        sink.record(CoreId(1), 1000, &TraceEvent::steal_attempt(&stole, None, 1));
        sink.record(CoreId(1), 1000, &TraceEvent::Unpark);
        let json = to_chrome_json(&sink.drain());
        assert!(json.contains("\"name\": \"core 0\""));
        assert!(json.contains("\"name\": \"core 1\""));
        assert!(json.contains("\"ph\": \"s\""), "flow start on the victim: {json}");
        assert!(json.contains("\"ph\": \"f\""), "flow finish on the thief");
        assert!(json.contains("\"name\": \"parked\", \"ph\": \"X\", \"ts\": 0.000, \"dur\": 1.000"));
        assert!(json.contains("steal:stole"));
        assert!(!json.contains(",\n  ]"), "no trailing comma before the close");
    }

    #[test]
    fn an_unclosed_park_is_flushed_at_the_end() {
        let sink = TraceSink::with_capacity(1, 8);
        sink.record(CoreId(0), 100, &TraceEvent::Park);
        sink.record(CoreId(0), 2100, &TraceEvent::BalanceRound { round: 0 });
        let json = to_chrome_json(&sink.drain());
        assert!(json.contains("\"dur\": 2.000"), "the idle tail must be visible: {json}");
    }

    #[test]
    fn empty_traces_render_valid_skeletons() {
        let json = to_chrome_json(&Trace::default());
        assert!(json.contains("traceEvents"));
        assert!(json.contains("dropped_events"));
    }
}
