//! The online invariant checker: folds the event stream incrementally and
//! flags violations with the offending event span attached.
//!
//! This is the paper's missing tooling, built from the trace alone: the
//! checker maintains a *derived* machine state (per-core occupancy from
//! placements, migrations and completions) and tests the scheduler's
//! invariants against it as each event arrives:
//!
//! * **idle-while-overloaded** — an idle thief keeps coming back
//!   empty-handed ([`StealOutcomeKind::NothingToSteal`]) from a victim
//!   whose derived occupancy says it has waiting work.  One such failure
//!   is a benign race; a *window* of them against an unchanged victim is
//!   exactly the work-conservation hole the paper describes (and exactly
//!   what the `PrivateSpill` overflow discipline reproduces in E25);
//! * **non-inversion** — a migration must never leave the thief strictly
//!   more loaded than it left the victim (beyond the one-task slack any
//!   single move has), or the steal inverted the imbalance it was sized
//!   against;
//! * **lost / duplicated tasks** — a task completed twice, completed
//!   without ever being placed, or placed while still resident elsewhere.
//!
//! The checker is deliberately conservative about concurrency: a drained
//! trace orders same-timestamp events by the global record sequence,
//! which for a single-threaded substrate is the causal order, but a
//! multi-threaded runqueue substrate can be descheduled between a queue
//! operation and its record call, so the committed order may lag the true
//! interleaving by a few events.  [`SanityChecker::relaxed`] widens the
//! windows and skips the strict identity checks accordingly;
//! [`SanityChecker::strict`] is for deterministic (model / simulator /
//! sequentially-driven) traces.  When the trace dropped events the
//! conservation checks are suppressed outright — the stream is knowingly
//! incomplete and the checker must not cry wolf over its own blind spot.

use std::collections::HashMap;
use std::fmt;

use sched_core::CoreId;

use crate::event::{StealOutcomeKind, TraceEvent};
use crate::sink::{RecordedEvent, Trace};

/// The invariant a [`SanityViolation`] breaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanityKind {
    /// An idle core repeatedly failed to obtain work from a victim whose
    /// derived occupancy shows waiting tasks.
    IdleWhileOverloaded,
    /// A migration left the thief more loaded than the victim it drained.
    NonInversion,
    /// A task id disappeared (completed twice, or completed unplaced),
    /// or the final derived occupancy undershoots the reported loads.
    TaskLost,
    /// A task id was duplicated (placed while still resident elsewhere),
    /// or the final derived occupancy overshoots the reported loads.
    TaskDuplicated,
}

impl fmt::Display for SanityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SanityKind::IdleWhileOverloaded => "idle-while-overloaded",
            SanityKind::NonInversion => "non-inversion",
            SanityKind::TaskLost => "task-lost",
            SanityKind::TaskDuplicated => "task-duplicated",
        };
        f.write_str(name)
    }
}

/// One flagged invariant breach, with the offending event span attached
/// (indices into the checked trace's event vector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanityViolation {
    /// Which invariant broke.
    pub kind: SanityKind,
    /// Human-readable specifics (cores, tasks, derived loads involved).
    pub detail: String,
    /// Index of the first event of the offending span.
    pub first_event: usize,
    /// Index of the last event of the offending span (inclusive).
    pub last_event: usize,
}

impl fmt::Display for SanityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] events {}..={}: {}",
            self.kind, self.first_event, self.last_event, self.detail
        )
    }
}

impl SanityViolation {
    /// Renders the offending span (± `context` surrounding events) of
    /// `trace` as indented text — the excerpt the fuzzer ships next to a
    /// repro scenario.
    pub fn excerpt(&self, trace: &Trace, context: usize) -> String {
        let first = self.first_event.saturating_sub(context);
        let last = (self.last_event + context).min(trace.events.len().saturating_sub(1));
        let mut out = format!("{self}\n");
        for (index, recorded) in trace.events.iter().enumerate().take(last + 1).skip(first) {
            let marker =
                if index >= self.first_event && index <= self.last_event { ">>" } else { "  " };
            out.push_str(&format!(
                "{marker} #{index} t={} core{} {:?}\n",
                recorded.ts, recorded.core.0, recorded.event
            ));
        }
        out
    }
}

/// State of one suspicious thief→victim failure window.
#[derive(Debug, Clone, Copy)]
struct FailWindow {
    first_event: usize,
    last_event: usize,
    victim_occupancy: i64,
    count: u32,
}

/// The incremental checker (see the module docs).
#[derive(Debug)]
pub struct SanityChecker {
    strict: bool,
    /// Derived tasks resident per core (running + queued), from
    /// placements, migrations and completions.
    occupancy: Vec<i64>,
    /// Where each live task id currently resides.
    location: HashMap<u64, usize>,
    /// Open idle-vs-overloaded failure windows, keyed thief → victim.
    windows: HashMap<(usize, usize), FailWindow>,
    /// Windows already reported (one violation per thief/victim pair),
    /// mapped to their violation's index so a still-growing window keeps
    /// extending the reported span.
    reported: HashMap<(usize, usize), usize>,
    violations: Vec<SanityViolation>,
    /// Events observed so far (the index of the *next* event).
    index: usize,
    /// Events the producing trace dropped; nonzero suppresses the
    /// conservation checks.
    dropped: u64,
    /// Consecutive empty-handed failures an idle thief must accumulate
    /// against an unchanged overloaded victim before the window is
    /// flagged.
    window_threshold: u32,
}

impl SanityChecker {
    /// A checker for deterministic traces (model, simulator engines, or a
    /// sequentially driven runqueue): every invariant is enforced exactly,
    /// and two consecutive empty-handed failures already flag a window.
    pub fn strict(nr_cores: usize) -> Self {
        SanityChecker {
            strict: true,
            occupancy: vec![0; nr_cores],
            location: HashMap::new(),
            windows: HashMap::new(),
            reported: HashMap::new(),
            violations: Vec::new(),
            index: 0,
            dropped: 0,
            window_threshold: 2,
        }
    }

    /// A checker for traces recorded under real concurrency: the derived
    /// state may lag the true interleaving by a few same-timestamp events,
    /// so identity checks are softened and windows need more consecutive
    /// failures before they are flagged.
    pub fn relaxed(nr_cores: usize) -> Self {
        SanityChecker { strict: false, window_threshold: 4, ..Self::strict(nr_cores) }
    }

    /// Tells the checker how many events the trace dropped (call before
    /// the first [`SanityChecker::observe`]); nonzero suppresses the
    /// conservation checks, which would otherwise blame the scheduler for
    /// the recorder's blind spot.
    pub fn set_dropped(&mut self, dropped: u64) {
        self.dropped = dropped;
    }

    /// Derived occupancy of `core` (running + queued tasks).
    pub fn occupancy(&self, core: CoreId) -> i64 {
        self.occupancy.get(core.0).copied().unwrap_or(0)
    }

    /// Violations flagged so far.
    pub fn violations(&self) -> &[SanityViolation] {
        &self.violations
    }

    fn flag(&mut self, kind: SanityKind, first: usize, last: usize, detail: String) {
        self.violations.push(SanityViolation {
            kind,
            detail,
            first_event: first,
            last_event: last,
        });
    }

    /// Feeds the next event of the stream into the checker.  Events must
    /// arrive in trace order (the index attached to violations is the
    /// observation order).
    pub fn observe(&mut self, recorded: &RecordedEvent) {
        let index = self.index;
        self.index += 1;
        let here = recorded.core.0;
        if here >= self.occupancy.len() {
            return;
        }
        match recorded.event {
            TraceEvent::TaskWake { .. }
            | TraceEvent::BatchTrim { .. }
            | TraceEvent::InjectorPush { .. }
            | TraceEvent::OverflowSpill { .. }
            | TraceEvent::InjectorDrain { .. }
            | TraceEvent::BalanceRound { .. }
            | TraceEvent::Park
            | TraceEvent::Unpark => {}
            TraceEvent::PlaceDecision { task, core } => {
                if core.0 >= self.occupancy.len() {
                    return;
                }
                if let Some(prev) = self.location.insert(task.0, core.0) {
                    if self.strict && self.dropped == 0 {
                        self.flag(
                            SanityKind::TaskDuplicated,
                            index,
                            index,
                            format!(
                                "task {} placed on core{} while still resident on core{prev}",
                                task.0, core.0
                            ),
                        );
                    }
                    self.occupancy[prev] -= 1;
                }
                self.occupancy[core.0] += 1;
                self.victim_changed(core.0);
            }
            TraceEvent::Migration { task, from } => {
                if from.0 >= self.occupancy.len() {
                    return;
                }
                match self.location.insert(task.0, here) {
                    Some(loc) if loc == from.0 => {}
                    Some(loc) => {
                        if self.strict && self.dropped == 0 {
                            self.flag(
                                SanityKind::TaskDuplicated,
                                index,
                                index,
                                format!(
                                    "task {} migrated from core{} but was resident on core{loc}",
                                    task.0, from.0
                                ),
                            );
                        }
                    }
                    None => {
                        if self.strict && self.dropped == 0 {
                            self.flag(
                                SanityKind::TaskLost,
                                index,
                                index,
                                format!(
                                    "task {} migrated from core{} without ever being placed",
                                    task.0, from.0
                                ),
                            );
                        }
                    }
                }
                self.occupancy[from.0] -= 1;
                self.occupancy[here] += 1;
                // The invariant every delivery re-check protects: one
                // migration may at most even the pair out (a one-task
                // slack), never leave the thief the more loaded side.
                let slack = if self.strict { 1 } else { 2 };
                if self.dropped == 0 && self.occupancy[here] > self.occupancy[from.0] + slack {
                    self.flag(
                        SanityKind::NonInversion,
                        index,
                        index,
                        format!(
                            "migrating task {} left thief core{here} at {} vs victim core{} at {}",
                            task.0, self.occupancy[here], from.0, self.occupancy[from.0]
                        ),
                    );
                }
                self.victim_changed(from.0);
                self.victim_changed(here);
            }
            TraceEvent::TaskDone { task } | TraceEvent::TaskSleep { task } => {
                match self.location.remove(&task.0) {
                    Some(loc) => {
                        self.occupancy[loc] -= 1;
                        self.victim_changed(loc);
                    }
                    None => {
                        if self.strict && self.dropped == 0 {
                            let how = match recorded.event {
                                TraceEvent::TaskDone { .. } => "completed",
                                _ => "went to sleep",
                            };
                            self.flag(
                                SanityKind::TaskLost,
                                index,
                                index,
                                format!(
                                    "task {} {how} on core{here} without ever being placed",
                                    task.0
                                ),
                            );
                        }
                    }
                }
            }
            TraceEvent::StealAttempt { victim, outcome, .. } => {
                let Some(victim) = victim else { return };
                if victim.0 >= self.occupancy.len() {
                    return;
                }
                match outcome {
                    StealOutcomeKind::NothingToSteal => {
                        self.observe_empty_handed(index, here, victim.0);
                    }
                    // A successful claim proves the victim's work was
                    // reachable: any window against it is vacated.  The
                    // re-check outcomes say nothing about reachability.
                    StealOutcomeKind::Stole => self.victim_changed(victim.0),
                    StealOutcomeKind::RecheckFailed | StealOutcomeKind::NoCandidates => {}
                }
            }
        }
    }

    /// An idle thief found nothing claimable at `victim`: open or extend
    /// the failure window, and flag it once it persists against an
    /// unchanged victim that derivably has waiting work.
    fn observe_empty_handed(&mut self, index: usize, thief: usize, victim: usize) {
        let thief_occupancy = self.occupancy[thief];
        let victim_occupancy = self.occupancy[victim];
        // A victim with ≥ 2 derived tasks has at least one *waiting* task
        // beyond the (unstealable) running one; an idle thief being told
        // "nothing to steal" by such a victim is the suspicious signature.
        if thief_occupancy > 0 || victim_occupancy < 2 {
            self.windows.remove(&(thief, victim));
            return;
        }
        let window = self
            .windows
            .entry((thief, victim))
            .and_modify(|w| {
                if w.victim_occupancy != victim_occupancy {
                    // The victim moved since the last failure: genuine
                    // race traffic, not a stuck window.  Start over.
                    *w = FailWindow {
                        first_event: index,
                        last_event: index,
                        victim_occupancy,
                        count: 1,
                    };
                } else {
                    w.last_event = index;
                    w.count += 1;
                }
            })
            .or_insert(FailWindow {
                first_event: index,
                last_event: index,
                victim_occupancy,
                count: 1,
            });
        let window = *window;
        if window.count < self.window_threshold {
            return;
        }
        match self.reported.get(&(thief, victim)) {
            Some(&at) => {
                // The window keeps growing: extend the reported span
                // instead of emitting one violation per extra failure.
                self.violations[at].last_event = window.last_event;
                self.violations[at].detail = Self::window_detail(thief, victim, &window);
            }
            None => {
                self.reported.insert((thief, victim), self.violations.len());
                self.flag(
                    SanityKind::IdleWhileOverloaded,
                    window.first_event,
                    window.last_event,
                    Self::window_detail(thief, victim, &window),
                );
            }
        }
    }

    /// The derived state of `victim` changed: every open window against it
    /// restarts (the next failure re-anchors on the new occupancy).
    fn victim_changed(&mut self, victim: usize) {
        self.windows.retain(|&(_, v), _| v != victim);
    }

    fn window_detail(thief: usize, victim: usize, window: &FailWindow) -> String {
        format!(
            "idle core{thief} failed {} consecutive steals from core{victim}, whose derived \
             occupancy stayed at {} waiting-capable tasks",
            window.count, window.victim_occupancy
        )
    }

    /// Ends the stream: cross-checks the derived occupancy against the
    /// substrate's own reported final loads (when given) and returns every
    /// violation.  Conservation mismatches are only meaningful on a
    /// complete trace, so they are suppressed when events were dropped.
    pub fn finish(mut self, final_loads: Option<&[u64]>) -> Vec<SanityViolation> {
        let last = self.index.saturating_sub(1);
        if self.dropped == 0 {
            if let Some(loads) = final_loads {
                for (core, &reported) in loads.iter().enumerate() {
                    let derived = self.occupancy.get(core).copied().unwrap_or(0);
                    if derived == reported as i64 {
                        continue;
                    }
                    let kind = if derived < reported as i64 {
                        SanityKind::TaskLost
                    } else {
                        SanityKind::TaskDuplicated
                    };
                    self.violations.push(SanityViolation {
                        kind,
                        detail: format!(
                            "core{core} finished with derived occupancy {derived} but reported \
                             load {reported}"
                        ),
                        first_event: 0,
                        last_event: last,
                    });
                }
            }
        }
        self.violations
    }

    /// Checks a whole drained trace in one call: strict or relaxed per
    /// `strict`, honouring the trace's own dropped-event count.
    pub fn check_trace(
        trace: &Trace,
        strict: bool,
        final_loads: Option<&[u64]>,
    ) -> Vec<SanityViolation> {
        let mut checker =
            if strict { Self::strict(trace.nr_cores) } else { Self::relaxed(trace.nr_cores) };
        checker.set_dropped(trace.dropped);
        for recorded in &trace.events {
            checker.observe(recorded);
        }
        checker.finish(final_loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;
    use sched_core::{StealOutcome, TaskId};

    fn place(sink: &TraceSink, ts: u64, task: u64, core: usize) {
        sink.record(
            CoreId(core),
            ts,
            &TraceEvent::PlaceDecision { task: TaskId(task), core: CoreId(core) },
        );
    }

    fn nothing(sink: &TraceSink, ts: u64, thief: usize, victim: usize) {
        sink.record(
            CoreId(thief),
            ts,
            &TraceEvent::steal_attempt(
                &StealOutcome::NothingToSteal { victim: CoreId(victim) },
                None,
                1,
            ),
        );
    }

    #[test]
    fn a_clean_sequential_run_has_no_violations() {
        let sink = TraceSink::with_capacity(2, 64);
        place(&sink, 0, 0, 0);
        place(&sink, 0, 1, 0);
        place(&sink, 0, 2, 0);
        let stole = StealOutcome::Stole { victim: CoreId(0), tasks: vec![TaskId(2)] };
        sink.record(CoreId(1), 1, &TraceEvent::steal_attempt(&stole, None, 1));
        sink.record(CoreId(1), 1, &TraceEvent::Migration { task: TaskId(2), from: CoreId(0) });
        for (ts, task, core) in [(2, 0, 0), (2, 2, 1), (3, 1, 0)] {
            sink.record(CoreId(core), ts, &TraceEvent::TaskDone { task: TaskId(task) });
        }
        let trace = sink.drain();
        let violations = SanityChecker::check_trace(&trace, true, Some(&[0, 0]));
        assert_eq!(violations, Vec::new());
    }

    #[test]
    fn persistent_empty_handed_failures_flag_idle_while_overloaded() {
        // Core 0 derivably holds 4 tasks; idle core 1 is told "nothing to
        // steal" three times with nothing changing in between — the
        // private-spill signature.
        let sink = TraceSink::with_capacity(2, 64);
        for task in 0..4 {
            place(&sink, 0, task, 0);
        }
        for ts in 1..=3 {
            nothing(&sink, ts, 1, 0);
        }
        let trace = sink.drain();
        let violations = SanityChecker::check_trace(&trace, true, None);
        assert_eq!(violations.len(), 1, "one violation per thief/victim pair: {violations:?}");
        let v = &violations[0];
        assert_eq!(v.kind, SanityKind::IdleWhileOverloaded);
        assert_eq!((v.first_event, v.last_event), (4, 6), "the span covers the failures");
        let excerpt = v.excerpt(&trace, 1);
        assert!(excerpt.contains(">> #4"), "span rows are marked: {excerpt}");
        assert!(excerpt.contains("   #3"), "context rows are not: {excerpt}");
    }

    #[test]
    fn a_single_empty_handed_race_is_tolerated() {
        let sink = TraceSink::with_capacity(2, 64);
        for task in 0..4 {
            place(&sink, 0, task, 0);
        }
        nothing(&sink, 1, 1, 0);
        // The victim moves (a task completes) before the next failure:
        // windows restart, nothing is flagged.
        sink.record(CoreId(0), 2, &TraceEvent::TaskDone { task: TaskId(3) });
        nothing(&sink, 3, 1, 0);
        let violations = SanityChecker::check_trace(&sink.drain(), true, None);
        assert_eq!(violations, Vec::new());
    }

    #[test]
    fn an_inverting_migration_is_flagged() {
        let sink = TraceSink::with_capacity(2, 64);
        for task in 0..3 {
            place(&sink, 0, task, 0);
        }
        // Core 1 takes all three: after the third migration it derives 3
        // tasks against the victim's 0 — far past the one-task slack.
        let stole = StealOutcome::Stole { victim: CoreId(0), tasks: (0..3).map(TaskId).collect() };
        sink.record(CoreId(1), 1, &TraceEvent::steal_attempt(&stole, None, 8));
        for task in 0..3 {
            sink.record(
                CoreId(1),
                1,
                &TraceEvent::Migration { task: TaskId(task), from: CoreId(0) },
            );
        }
        let violations = SanityChecker::check_trace(&sink.drain(), true, None);
        assert!(
            violations.iter().any(|v| v.kind == SanityKind::NonInversion),
            "the over-greedy batch must be flagged: {violations:?}"
        );
    }

    #[test]
    fn duplicated_and_unplaced_tasks_are_flagged_in_strict_mode() {
        let sink = TraceSink::with_capacity(2, 64);
        place(&sink, 0, 7, 0);
        place(&sink, 1, 7, 1); // still resident on core 0
        sink.record(CoreId(0), 2, &TraceEvent::TaskDone { task: TaskId(9) }); // never placed
        let violations = SanityChecker::check_trace(&sink.drain(), true, None);
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].kind, SanityKind::TaskDuplicated);
        assert_eq!(violations[1].kind, SanityKind::TaskLost);
    }

    #[test]
    fn final_load_mismatches_are_cross_checked() {
        let sink = TraceSink::with_capacity(2, 64);
        place(&sink, 0, 0, 0);
        place(&sink, 0, 1, 0);
        let violations = SanityChecker::check_trace(&sink.drain(), true, Some(&[2, 1]));
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, SanityKind::TaskLost);
        assert!(violations[0].detail.contains("core1"));
    }

    #[test]
    fn dropped_events_suppress_conservation_checks() {
        let sink = TraceSink::with_capacity(2, 64);
        place(&sink, 0, 0, 0);
        let mut trace = sink.drain();
        trace.dropped = 5;
        let violations = SanityChecker::check_trace(&trace, true, Some(&[0, 0]));
        assert_eq!(violations, Vec::new(), "an incomplete stream must not cry wolf");
    }
}
