//! Decision tracing for the scheduler substrates.
//!
//! The paper's complaint is not only that optimistic schedulers break their
//! invariants — it is that the breakage goes *unnoticed*, because the only
//! visibility into a scheduler is aggregate counters sampled after the
//! fact.  This crate is the remedy at the decision granularity: every
//! substrate (the pure model, both simulator engines, and both concurrent
//! runqueue backends) records its scheduling *decisions* — wakeup
//! placements, steal attempts with their outcome and level, overflow
//! spills, injector traffic, batch trims — into per-core, fixed-capacity,
//! lock-free ring recorders.
//!
//! Three consumers read the stream:
//!
//! * [`fold`] re-derives the aggregate counters (`BalanceStats` /
//!   `RoundStats`) from the events alone, so a parity test can pin
//!   `stats == fold(trace)` and the counters stop being a second source of
//!   truth;
//! * [`sanity`] folds the stream *incrementally* and flags invariant
//!   violations — idle-while-overloaded windows, steals that invert the
//!   imbalance they were sized against, lost or duplicated task ids —
//!   with the offending event span attached;
//! * [`perfetto`] renders the stream as a Chrome/Perfetto `trace.json`
//!   (one track per core, steal arrows as flow events) for human eyes.
//!
//! The writer side never blocks a hot path: a full ring overwrites its
//! oldest slot and counts the loss ([`Trace::dropped`]), and a disabled
//! sink ([`TraceSink::disabled`]) performs **zero** atomic operations —
//! pinned by a probe counter ([`write_ops`]) that the runqueue tests
//! assert against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fold;
pub mod perfetto;
pub mod ring;
pub mod sanity;
pub mod sink;

pub use event::{StealOutcomeKind, TraceEvent};
pub use fold::FoldedStats;
pub use perfetto::to_chrome_json;
pub use ring::Ring;
pub use sanity::{SanityChecker, SanityKind, SanityViolation};
pub use sink::{write_ops, RecordedEvent, Trace, TraceSink};
