//! Property tests for the ring's overwrite-oldest discipline: a
//! past-capacity ring always reports `dropped > 0`, never surfaces a torn
//! event (the seqlock re-read rejects it), and preserves per-core record
//! order through any amount of wrap-around.

use proptest::prelude::*;
use sched_core::{CoreId, TaskId};
use sched_trace::{Ring, TraceEvent, TraceSink};

proptest! {
    #[test]
    fn a_full_ring_reports_dropped_and_keeps_the_newest_suffix(
        min_cap in 1usize..=32,
        extra in 1u64..=200,
    ) {
        let ring = Ring::with_capacity(min_cap);
        let cap = ring.capacity() as u64;
        let total = cap + extra;
        for i in 0..total {
            ring.push(i, i, i, i, i);
        }
        prop_assert_eq!(ring.dropped(), extra);
        prop_assert!(ring.dropped() > 0);
        let events = ring.drain();
        prop_assert_eq!(events.len() as u64, cap);
        let ts: Vec<u64> = events.iter().map(|e| e.0).collect();
        let expected: Vec<u64> = (extra..total).collect();
        prop_assert_eq!(ts, expected);
    }

    #[test]
    fn under_capacity_nothing_is_dropped_and_order_is_exact(
        cap in 1usize..=64,
        pushes in 0u64..=64,
    ) {
        let ring = Ring::with_capacity(cap);
        let pushes = pushes.min(ring.capacity() as u64);
        for i in 0..pushes {
            ring.push(100 + i, i, 0, 0, 0);
        }
        prop_assert_eq!(ring.dropped(), 0);
        let ts: Vec<u64> = ring.drain().iter().map(|e| e.0).collect();
        prop_assert_eq!(ts, (100..100 + pushes).collect::<Vec<u64>>());
    }

    #[test]
    fn wrapped_sink_events_unpack_whole_never_torn(
        cap in 1usize..=16,
        total in 1u64..=300,
    ) {
        // Through the full sink pipeline: every event that survives the
        // overwrite storm must unpack to exactly what was recorded for its
        // timestamp — a torn slot would decode to a mismatched task id.
        let sink = TraceSink::with_capacity(1, cap);
        for i in 0..total {
            sink.record(
                CoreId(0),
                i,
                &TraceEvent::PlaceDecision { task: TaskId(i * 7 + 1), core: CoreId(0) },
            );
        }
        let trace = sink.drain();
        prop_assert_eq!(trace.dropped, total.saturating_sub(cap.next_power_of_two().max(2) as u64));
        let mut prev_ts = None;
        for recorded in &trace.events {
            match recorded.event {
                TraceEvent::PlaceDecision { task, core } => {
                    prop_assert_eq!(core, CoreId(0));
                    prop_assert_eq!(task, TaskId(recorded.ts * 7 + 1));
                }
                ref other => prop_assert!(false, "unexpected event {:?}", other),
            }
            if let Some(prev) = prev_ts {
                prop_assert!(recorded.ts > prev, "per-core order must survive wrap-around");
            }
            prev_ts = Some(recorded.ts);
        }
    }

    #[test]
    fn per_core_order_is_preserved_in_the_merged_drain(
        events_per_core in 1u64..=40,
        cores in 1usize..=4,
    ) {
        let sink = TraceSink::with_capacity(cores, 64);
        // Interleave writers round-robin with identical timestamps, the
        // worst case for a merge: each core's own sequence must still come
        // out in record order.
        for i in 0..events_per_core {
            for core in 0..cores {
                sink.record(
                    CoreId(core),
                    i / 4, // coarse clock: plenty of ties
                    &TraceEvent::TaskWake { task: TaskId(i) },
                );
            }
        }
        let trace = sink.drain();
        prop_assert_eq!(trace.events.len() as u64, events_per_core * cores as u64);
        for core in 0..cores {
            let ids: Vec<u64> = trace
                .for_core(CoreId(core))
                .map(|e| match e.event {
                    TraceEvent::TaskWake { task } => task.0,
                    _ => unreachable!(),
                })
                .collect();
            prop_assert_eq!(ids, (0..events_per_core).collect::<Vec<u64>>());
        }
    }
}
