//! The `stats == fold(trace)` parity contract on the runqueue substrate:
//! a drained decision trace, folded back into aggregate counters, must
//! reproduce the `BalanceStats` the same run recorded — on both the mutex
//! and the lock-free backend, under single-threaded and genuinely
//! concurrent rounds.  Parity is what certifies the trace as a *complete*
//! record of the round's decisions rather than a lossy echo of them.

use sched_core::{CoreId, Policy};
use sched_rq::{BalanceStats, DequeRq, MultiQueue, RqBackend, StealBatch};
use sched_trace::{FoldedStats, SanityChecker, TraceSink};

type DequeMq = MultiQueue<DequeRq>;

/// Asserts every counter the two shapes share agrees.
fn assert_parity(stats: &BalanceStats, fold: &FoldedStats) {
    assert_eq!(fold.successes, stats.successes(), "successes");
    assert_eq!(fold.recheck_failures, stats.recheck_failures(), "recheck failures");
    assert_eq!(fold.nothing_to_steal, stats.nothing_to_steal(), "nothing-to-steal");
    assert_eq!(fold.no_candidates, stats.no_candidates(), "no-candidates");
    assert_eq!(fold.migrations, stats.migrations(), "migrations");
    assert_eq!(fold.level_migrations, stats.level_migration_counts(), "level attribution");
    assert_eq!(fold.failures(), stats.failures(), "failure aggregate");
    assert_eq!(fold.attempts(), stats.attempts(), "attempt aggregate");
}

#[test]
fn mutex_backend_stats_equal_the_folded_trace() {
    let mut mq: MultiQueue = MultiQueue::new(8);
    mq.set_trace_sink(TraceSink::recording(8));
    for _ in 0..16 {
        mq.spawn_on(CoreId(7));
    }
    let policy = Policy::simple();
    let (rounds, stats) = mq.converge(&policy, 64);
    assert!(rounds.is_some(), "optimistic balancing must converge");
    let trace = mq.trace_sink().drain();
    assert_eq!(trace.dropped, 0, "this run fits the default rings");
    assert!(stats.successes() >= 7, "the trace has real content to fold");
    assert_parity(&stats, &FoldedStats::from_trace(&trace));
}

#[test]
fn deque_backend_stats_equal_the_folded_trace() {
    let mut mq: DequeMq = MultiQueue::new(8);
    mq.set_trace_sink(TraceSink::recording(8));
    for _ in 0..24 {
        mq.spawn_on(CoreId(3));
    }
    let policy = Policy::simple();
    let total = BalanceStats::new();
    let mut rounds = 0;
    while !mq.is_work_conserving() && rounds < 64 {
        // Batched rounds exercise the multi-claim path, whose partial
        // deliveries and trims are exactly where a lossy trace would
        // diverge from the counters.
        total.merge_from(&mq.concurrent_round_batched(&policy, StealBatch::HalfImbalance));
        rounds += 1;
    }
    assert!(mq.is_work_conserving());
    let trace = mq.trace_sink().drain();
    assert_eq!(trace.dropped, 0);
    assert!(total.successes() >= 1);
    assert_parity(&total, &FoldedStats::from_trace(&trace));
}

#[test]
fn hierarchical_rounds_keep_parity_with_level_attribution() {
    let topo = sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).smt(2).build();
    let mut mq: DequeMq = MultiQueue::with_topology(&topo);
    mq.set_trace_sink(TraceSink::recording(mq.nr_cores()));
    for _ in 0..16 {
        mq.spawn_on(CoreId(0));
    }
    let policy = Policy::simple();
    let (rounds, stats) = mq.converge_hierarchical(&policy, 64);
    assert!(rounds.is_some(), "hierarchical balancing must converge");
    let fold = FoldedStats::from_trace(&mq.trace_sink().drain());
    assert_parity(&stats, &fold);
    assert!(
        fold.level_migrations.iter().sum::<u64>() >= 1,
        "level attribution must survive the trace round-trip"
    );
}

#[test]
fn a_converged_injector_run_traces_sanity_clean() {
    // The online checker's baseline: a work-conserving converged machine
    // under the shared-injector discipline must produce zero violations in
    // strict mode, with conservation cross-checked against the final
    // per-core loads.
    let mut mq: DequeMq = MultiQueue::new(4);
    mq.set_trace_sink(TraceSink::recording(4));
    for _ in 0..12 {
        mq.spawn_on(CoreId(1));
    }
    let policy = Policy::simple();
    let mut rounds = 0;
    while !mq.is_work_conserving() && rounds < 64 {
        // Advance the logical clock between rounds: the trace's merge
        // order is causal only up to timestamp ties, so a traced run
        // ticks like a real machine would.
        rounds += 1;
        mq.tick(rounds * 1_000_000);
        let _ = mq.concurrent_round(&policy);
    }
    assert!(mq.is_work_conserving());
    let trace = mq.trace_sink().drain();
    let final_loads: Vec<u64> = (0..4).map(|c| mq.core(CoreId(c)).snapshot().nr_threads).collect();
    let violations = SanityChecker::check_trace(&trace, false, Some(&final_loads));
    assert!(violations.is_empty(), "clean run flagged: {violations:?}");
}

#[test]
fn injector_resident_count_equals_the_trace_derived_count() {
    use sched_trace::TraceEvent;

    // The injector's dropped-element accounting, pinned end to end: an
    // overflow storm on tiny rings pushes tasks through every injector
    // transit — owner overflow pushes (InjectorPush), thief batch claims
    // and owner pops and tick aging (InjectorDrain), batch-trim loop-backs
    // (BatchTrim) — and at quiescence each core's *live* resident count
    // must equal what the decision trace alone says it should be.  A
    // missed narration, a double decrement, or a partial batch failure
    // counted twice would all break the equality.
    let mut mq: MultiQueue<sched_rq::TinyDequeRq> = MultiQueue::new(8);
    mq.set_trace_sink(TraceSink::recording(8));
    let policy = Policy::simple();
    for epoch in 0..4u64 {
        for _ in 0..48 {
            mq.spawn_on(CoreId(0));
        }
        // Batched rounds drive the multi-claim injector path, trims
        // included; the tick drives the aging drain; completes drive the
        // owner's pop-from-injector promotion.
        let _ = mq.concurrent_round_batched(&policy, StealBatch::Fixed(4));
        mq.tick((epoch + 1) * 1_000_000);
        for core in 0..8 {
            let _ = mq.core(CoreId(core)).complete_current();
        }
    }
    let trace = mq.trace_sink().drain();
    assert_eq!(trace.dropped, 0, "the storm must fit the rings for an exact count");
    let mut narrated_pushes = 0u64;
    for core in 0..8 {
        let mut derived: i64 = 0;
        for recorded in trace.for_core(CoreId(core)) {
            match recorded.event {
                TraceEvent::InjectorPush { .. } => {
                    derived += 1;
                    narrated_pushes += 1;
                }
                TraceEvent::BatchTrim { returned } => derived += returned as i64,
                TraceEvent::InjectorDrain { moved } => derived -= moved as i64,
                _ => {}
            }
        }
        assert_eq!(
            mq.core(CoreId(core)).inner().injected_len() as i64,
            derived,
            "core{core}: the trace must account for every injector transit"
        );
    }
    assert!(narrated_pushes > 0, "the storm must actually overflow for the pin to mean anything");
}

#[test]
fn backend_internal_events_reach_the_attached_sink() {
    use sched_core::tracker::NrThreadsTracker;
    use sched_trace::TraceEvent;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    // A tiny ring forces overflow through the injector; the attached sink
    // must see the InjectorPush for each overflowed task and the tick's
    // InjectorDrain.
    let clock = Arc::new(AtomicU64::new(0));
    let mut rq = DequeRq::with_queue_capacity(
        CoreId(0),
        sched_topology::NodeId(0),
        Arc::new(NrThreadsTracker),
        clock,
        4,
    );
    let sink = TraceSink::recording(1);
    rq.attach_trace(sink.clone());
    for i in 0..8 {
        rq.enqueue(sched_rq::RqTask::new(sched_core::TaskId(i)));
    }
    // 1 running + 4 ring + 3 injector.
    let trace = sink.drain();
    let pushes =
        trace.events.iter().filter(|e| matches!(e.event, TraceEvent::InjectorPush { .. })).count();
    assert_eq!(pushes, 3, "every overflowed task is narrated: {:?}", trace.events);
    rq.complete_current();
    rq.refresh();
    let trace = sink.drain();
    assert!(
        trace
            .events
            .iter()
            .any(|e| matches!(e.event, TraceEvent::InjectorDrain { moved } if moved >= 1)),
        "the tick's aging drain is narrated: {:?}",
        trace.events
    );
}
