//! The zero-overhead contract of a disabled trace sink, pinned by the
//! write-probe: driving the `DequeRq` owner path — and a whole balancing
//! round — with no sink attached must not move
//! [`sched_trace::write_ops`], i.e. tracing-disabled builds add **zero**
//! atomic operations of trace traffic to the hot paths.  (The probe only
//! counts enabled-sink ring writes, so any accidental record on the
//! disabled path would move it.)
//!
//! This is deliberately the *only* test in this binary: the probe is
//! process-global, and a concurrently running traced test would make the
//! "no movement" half of the assertion flaky.

use sched_core::{CoreId, Policy};
use sched_rq::{DequeRq, MultiQueue, RqBackend};
use sched_trace::{write_ops, TraceSink};

type DequeMq = MultiQueue<DequeRq>;

#[test]
fn a_disabled_sink_adds_zero_trace_writes_to_the_owner_path() {
    // Tiny rings so the owner path includes the overflow branch — the one
    // place the untraced hot path comes closest to a record site.
    let mq: DequeMq = MultiQueue::new(4);
    let before = write_ops();
    for _ in 0..256 {
        mq.spawn_on(CoreId(0));
    }
    let policy = Policy::simple();
    let (rounds, stats) = mq.converge(&policy, 64);
    assert!(rounds.is_some());
    assert!(stats.successes() >= 1, "the untraced run did real work");
    for c in 0..4 {
        while mq.core(CoreId(c)).complete_current().is_some() {}
    }
    assert_eq!(
        write_ops(),
        before,
        "an unattached sink must add zero trace writes to owner or steal paths"
    );

    // Control: the identical drive with a sink attached moves the probe,
    // so the zero above is the disabled branch, not a dead probe.
    let mut mq: DequeMq = MultiQueue::new(4);
    mq.set_trace_sink(TraceSink::recording(4));
    let before = write_ops();
    for _ in 0..8 {
        mq.spawn_on(CoreId(0));
    }
    let _ = mq.converge(&policy, 16);
    assert!(write_ops() > before, "the probe must see the enabled sink's writes");
}
