//! The runqueue-backend abstraction: one API, two concurrency disciplines.
//!
//! [`crate::MultiQueue`] is generic over how a single core's runqueue is
//! implemented.  Everything above this trait — tracker republish, flat and
//! topology-aware balancing, hierarchical rounds, [`crate::BalanceStats`]
//! recording — is written once against it and behaves identically on every
//! backend; only the synchronization of the stealing phase differs:
//!
//! * [`crate::PerCoreRq`] — the **mutex backend**: every mutation takes the
//!   per-core lock, the stealing phase double-locks thief and victim in
//!   global order and re-checks the filter under the locks.
//! * [`crate::DequeRq`] — the **lock-free backend**: waiting tasks live in
//!   a Chase–Lev deque ([`sched_deque`]); the owner pushes/pops at the
//!   bottom without contending with thieves, thieves claim with a CAS at
//!   the top, and the double-check steal guard runs *inside* the CAS loop.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use sched_core::tracker::LoadTracker;
use sched_core::{CoreId, CoreSnapshot, FilterPolicy, StealOutcome, TaskId};
use sched_topology::NodeId;

use crate::entity::RqTask;
use crate::steal::StealRecorder;

/// One core's runqueue, as the generic [`crate::MultiQueue`] machinery sees
/// it.
///
/// Implementations must uphold the steal-atomicity contract regardless of
/// their synchronization discipline: a task removed by
/// [`RqBackend::try_steal_recorded`] is claimed by **exactly one** thief
/// (no duplication), every claimed task is delivered to the thief's queue
/// (no loss), and outcome counters move with the claim.
pub trait RqBackend: Send + Sync + 'static {
    /// Creates an empty runqueue for core `id` on `node`, maintaining its
    /// load under `tracker`, reading elapsed time from the shared `clock`.
    fn with_tracker(
        id: CoreId,
        node: NodeId,
        tracker: Arc<dyn LoadTracker>,
        clock: Arc<AtomicU64>,
    ) -> Self
    where
        Self: Sized;

    /// Short name of the backend discipline (`"mutex"`, `"deque"`), used by
    /// experiment records.
    fn backend_name() -> &'static str
    where
        Self: Sized;

    /// The core this runqueue belongs to.
    fn id(&self) -> CoreId;

    /// The NUMA node of the core.
    fn node(&self) -> NodeId;

    /// The load criterion this runqueue is maintained under.
    fn tracker(&self) -> &Arc<dyn LoadTracker>;

    /// Lock-less, possibly stale observation of this runqueue: the only
    /// thing the selection phase is allowed to read.
    fn snapshot(&self) -> CoreSnapshot;

    /// Makes `task` runnable on this core: it starts running immediately if
    /// the core was idle, otherwise it queues.
    fn enqueue(&self, task: RqTask);

    /// Elects the next task to run if the core has none, returning its id.
    fn pick_next(&self) -> Option<TaskId>;

    /// Removes the running task (e.g. it exited or blocked), electing a
    /// successor from the queue if one is waiting.  Returns the removed
    /// task.
    fn complete_current(&self) -> Option<RqTask>;

    /// Number of threads currently on the core.  Exact when the queue is
    /// quiescent; concurrent in-flight migrations may be momentarily
    /// attributed to neither core.
    fn nr_threads_exact(&self) -> u64;

    /// Folds the current instantaneous load into the tracked average at the
    /// clock's current time and refreshes whatever the lock-less observers
    /// read — the runqueue substrate's per-core scheduler tick.
    fn refresh(&self);

    /// Attaches a trace sink for backend-internal decisions (overflow
    /// spills, injector drains, batch trims).  The default keeps the
    /// backend silent: the generic balancing machinery still traces steal
    /// attempts through the [`StealRecorder`], so backends only override
    /// this when they have private structure worth narrating.
    fn attach_trace(&mut self, sink: sched_trace::TraceSink) {
        let _ = sink;
    }

    /// Attempts to steal up to `max_tasks` waiting tasks from `victim` into
    /// `thief`, re-checking `filter` against live state before committing,
    /// and recording the outcome into `recorder` (if any) atomically with
    /// the claim.
    ///
    /// Returns the same [`StealOutcome`] vocabulary as the pure model, so
    /// the P1/P2 reasoning applies verbatim to every backend.
    fn try_steal_recorded(
        thief: &Self,
        victim: &Self,
        filter: &dyn FilterPolicy,
        max_tasks: usize,
        recorder: Option<StealRecorder<'_>>,
    ) -> StealOutcome
    where
        Self: Sized;
}
