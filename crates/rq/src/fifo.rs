//! FIFO queue discipline.

use std::collections::VecDeque;

use crate::entity::RqTask;
use crate::TaskQueue;

/// First-in-first-out runqueue: threads run in arrival order and the
/// balancer steals the most recently queued thread (the one that has waited
/// least, so the victim's oldest waiters keep their position).
#[derive(Debug, Clone, Default)]
pub struct FifoQueue {
    queue: VecDeque<RqTask>,
}

impl TaskQueue for FifoQueue {
    fn push(&mut self, task: RqTask) {
        self.queue.push_back(task);
    }

    fn pop_next(&mut self) -> Option<RqTask> {
        self.queue.pop_front()
    }

    fn pop_steal_candidate(&mut self) -> Option<RqTask> {
        self.queue.pop_back()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn total_weight(&self) -> u64 {
        self.queue.iter().map(|t| t.weight().raw()).sum()
    }

    fn lightest_weight(&self) -> Option<u64> {
        self.queue.iter().map(|t| t.weight().raw()).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::{Nice, TaskId};

    #[test]
    fn runs_in_arrival_order_and_steals_from_the_back() {
        let mut q = FifoQueue::default();
        for i in 0..3 {
            q.push(RqTask::new(TaskId(i)));
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_steal_candidate().unwrap().id, TaskId(2));
        assert_eq!(q.pop_next().unwrap().id, TaskId(0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn weight_accounting() {
        let mut q = FifoQueue::default();
        q.push(RqTask::new(TaskId(0)));
        q.push(RqTask::with_nice(TaskId(1), Nice::new(19)));
        assert_eq!(q.total_weight(), 1024 + 15);
        assert_eq!(q.lightest_weight(), Some(15));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = FifoQueue::default();
        assert!(q.is_empty());
        assert!(q.pop_next().is_none());
        assert!(q.pop_steal_candidate().is_none());
        assert_eq!(q.lightest_weight(), None);
        assert_eq!(q.total_weight(), 0);
    }
}
