//! The lock-free runqueue backend: a Chase–Lev owner/stealer deque per
//! core, with the steal guard folded into the CAS loop.
//!
//! ## Shape
//!
//! * **Waiting tasks** live in a [`sched_deque`] ring.  The core's owner
//!   operations (wakeup enqueue, `pick_next`, `complete_current`) push and
//!   pop at the *bottom*; thieves claim at the *top* with a CAS and never
//!   take any lock.
//! * **The running task** is a single atomic word ([`DequeRq`] encodes the
//!   task id and niceness into a `u64`): wakeups claim an idle core with a
//!   CAS, completion swaps it out.  Thieves never touch it — the running
//!   task is unstealable *by construction*, where the mutex backend
//!   enforces the same rule by convention inside the lock.
//! * **Published load** is not a separate copy: where [`crate::PerCoreRq`]
//!   re-publishes a consistent snapshot after every locked mutation, the
//!   deque backend's counters (queue length, queued weight, tracked
//!   average) *are* the live atomics, so the owner's hot path has no
//!   publication step at all.
//!
//! ## Where the double-check went
//!
//! The mutex backend re-checks the filter under both runqueue locks
//! (Listing 1, line 12).  Here the same guard runs **inside the CAS
//! loop**: before every claim attempt the thief re-evaluates the filter
//! against the victim's live counters, and a failed CAS (another claim got
//! there first) loops back through the filter before retrying.  The
//! exclusivity argument narrows from "holds both locks" to "wins the CAS":
//! no task can be claimed twice and none is lost (see `sched-verify`'s CAS
//! lemmas and `sched-deque`'s probed race tests).  What is *weaker* than
//! the mutex backend is the freshness of the guard: the filter may become
//! false in the instruction window between its evaluation and the CAS.
//! That window is exactly the staleness the paper's optimism already
//! embraces — shrunk from a lock hold to a single CAS — and it affects
//! only steal *quality* (a marginally late steal), never conservation.
//!
//! ## Owner serialisation
//!
//! A Chase–Lev bottom end has a single owner.  `MultiQueue` exposes
//! `&self` APIs callable from any thread (a wakeup may enqueue onto a
//! remote core), so the owner end sits behind a small mutex that
//! serialises *co-located producers only*: thieves never acquire it, which
//! is the whole point — the owner's enqueue/dequeue path no longer
//! contends with concurrent stealers (E19/E20 measure exactly this).
//!
//! ## Overflow & the shared injector
//!
//! The ring is fixed-capacity, so overflow needs a second home — and where
//! that home is decides whether the backend stays **work-conserving**.
//! The backend originally spilled overflow to an owner-private list that
//! only [`DequeRq::refresh`] drained: those tasks were *counted* by every
//! load observer ([`DequeRq::snapshot`], [`DequeRq::nr_threads_exact`],
//! the balancer's imbalance arithmetic) yet *unstealable* until the next
//! tick — idle cores starved against visibly waiting work, which is
//! exactly the bug class the paper targets.  Worse, the half-visibility
//! self-oscillates: balancing keeps selecting the victim whose load it can
//! see, thieves keep coming back empty-handed, and the failure backoff
//! punishes a victim that genuinely had work to give.
//!
//! Overflow now goes to a **shared MPMC injector**
//! ([`sched_deque::Injector`], one per core): the owner overflows into it,
//! and it is claimable by *anyone* from the instant the push returns.  The
//! owner's [`DequeRq::pick_next`] checks ring first, injector second;
//! thieves check the victim's injector whenever the ring CAS finds it
//! empty — an injector loss ([`Steal::Retry`]) loops back through the
//! filter exactly like a lost ring CAS.  Every counter (`queued`,
//! `queued_weight`, the lightest-weight watermark, the tracked average)
//! includes injector residents, so what balancing *sees* and what thieves
//! *can take* are the same set again.  [`DequeRq::refresh`] performs **no
//! correctness-critical drain**: conservation and convergence hold with
//! no tick at all, because the injector is as stealable as the ring.
//! What the tick still does is *age* overflow — it folds injector
//! residents into the ring's free slots, bounding how long a task that
//! overflowed can wait behind newer ring arrivals on a core whose ring
//! never empties (owner and thieves otherwise consult the injector only
//! on ring-empty).  The old spill needed its drain for reachability; the
//! new one needs it only for fairness.
//!
//! The pre-injector discipline survives behind
//! [`crate::OverflowPolicy::PrivateSpill`] purely as the measurable
//! baseline: experiment E22 reproduces the idle-while-spilled gap against
//! it, and the conservation tests document the hole instead of specifying
//! it.  The running-task claim is untouched by all of this: `current` is
//! still a single CAS-claimed word thieves never read, so "never steal the
//! running thread" holds by construction under either overflow policy.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sched_core::tracker::{LoadTracker, TrackedLoad};
use sched_core::{CoreId, CoreSnapshot, FilterPolicy, Nice, StealOutcome, TaskId};
use sched_deque::{deque, Injector, Steal, StealMany, Stealer, Worker};
use sched_topology::NodeId;
use sched_trace::{TraceEvent, TraceSink};

use crate::backend::RqBackend;
use crate::entity::RqTask;
use crate::overflow::OverflowPolicy;
use crate::steal::StealRecorder;

/// Default ring capacity per core; large enough for every catalogued
/// scenario, small enough to keep a 64-core machine's rings in cache.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Sentinel for "no running task" in the `current` word.
const EMPTY: u64 = 0;

/// Sentinel for "no lightest-weight watermark recorded".
const NO_MARK: u64 = u64::MAX;

/// Packs a task into one atomic word: `(id + 1) << 8 | nice as u8`.
/// Zero is reserved for [`EMPTY`].
fn encode(task: &RqTask) -> u64 {
    let id = task.id.0;
    assert!(id < (1 << 55), "task ids beyond 2^55 - 1 do not fit the packed word");
    ((id + 1) << 8) | u64::from(task.nice.value() as u8)
}

/// Unpacks [`encode`]'s word.  The virtual runtime is not carried — the
/// lock-free backend fixes the queue discipline to the work-stealing
/// LIFO-owner/FIFO-thief order, which never consults vruntime.
fn decode(word: u64) -> RqTask {
    RqTask::with_nice(TaskId((word >> 8) - 1), Nice::new(word as u8 as i8))
}

/// Weight (in [`sched_core::Weight`] raw units) of an encoded word.
fn weight_of(word: u64) -> u64 {
    Nice::new(word as u8 as i8).weight().raw()
}

/// The owner end of the deque, behind the producer-serialising mutex
/// (never taken by thieves).
#[derive(Debug)]
struct OwnerSide {
    worker: Worker,
    /// Legacy owner-private overflow, used **only** under
    /// [`OverflowPolicy::PrivateSpill`] (E22's measurable baseline for the
    /// work-conservation hole); the injector discipline never touches it.
    spill: VecDeque<u64>,
}

/// One core's lock-free runqueue (see the module docs).
#[derive(Debug)]
pub struct DequeRq {
    id: CoreId,
    node: NodeId,
    tracker: Arc<dyn LoadTracker>,
    /// The machine's logical clock (shared with every sibling runqueue).
    clock: Arc<AtomicU64>,
    owner: Mutex<OwnerSide>,
    stealer: Stealer,
    /// Where ring overflow goes (see the module docs); fixed at
    /// construction.
    overflow: OverflowPolicy,
    /// Shared MPMC home for ring overflow under
    /// [`OverflowPolicy::SharedInjector`]: pushed by the owner when the
    /// ring is full, claimed by the owner (ring first, injector second)
    /// and by thieves (whenever the ring CAS finds the ring empty).
    injector: Injector,
    /// Encoded running task, or [`EMPTY`].
    current: AtomicU64,
    /// Number of waiting tasks (ring + spill).
    queued: AtomicU64,
    /// Total weight of the waiting tasks.
    queued_weight: AtomicU64,
    /// Low watermark of waiting-task weights ([`NO_MARK`] = unknown).
    /// Lowered by enqueues, retired (back to unknown) when a departing
    /// task's weight matches it or the queue drains.  This is an advisory
    /// bound, not an exact order statistic: after one of several
    /// equal-weight waiters departs, later enqueues can re-bound the mark
    /// *above* the true minimum.  Over-statement is the safe direction —
    /// a too-large `lightest_ready` makes weighted filters demand a
    /// larger margin (more conservative steals, P2 preserved) — whereas
    /// the dangerous stale-low direction is what retirement eliminates.
    /// The mutex backend remains the exact-values discipline; a lock-free
    /// exact statistic is a ROADMAP item.
    lightest_mark: AtomicU64,
    /// Tracked (decayed) load, scaled — the lock-free twin of
    /// [`TrackedLoad::scaled`].
    tracked_scaled: AtomicU64,
    /// Timestamp of the last tracked fold.
    tracked_ns: AtomicU64,
    /// Single-folder flag: a contended fold is skipped, not waited for
    /// (decayed loads are advisory; the next mutation folds again).
    tracked_busy: AtomicBool,
    /// Trace sink for backend-internal decisions (overflow placement,
    /// injector drains, batch trims).  Disabled by default: every record
    /// site is gated on [`TraceSink::is_enabled`], so the owner's hot path
    /// pays one branch and **zero** atomic operations when not tracing
    /// (pinned by the `write_ops` tier-1 test).
    trace: TraceSink,
}

impl DequeRq {
    /// Creates an empty lock-free runqueue with a custom ring capacity
    /// (rounded up to a power of two) and the work-conserving
    /// shared-injector overflow discipline.
    pub fn with_queue_capacity(
        id: CoreId,
        node: NodeId,
        tracker: Arc<dyn LoadTracker>,
        clock: Arc<AtomicU64>,
        capacity: usize,
    ) -> Self {
        Self::with_overflow_policy(id, node, tracker, clock, capacity, OverflowPolicy::default())
    }

    /// Creates an empty lock-free runqueue with an explicit ring capacity
    /// **and** overflow discipline.  [`OverflowPolicy::PrivateSpill`]
    /// exists only as E22's baseline; use the default elsewhere.
    pub fn with_overflow_policy(
        id: CoreId,
        node: NodeId,
        tracker: Arc<dyn LoadTracker>,
        clock: Arc<AtomicU64>,
        capacity: usize,
        overflow: OverflowPolicy,
    ) -> Self {
        let (worker, stealer) = deque(capacity);
        DequeRq {
            id,
            node,
            tracker,
            clock,
            owner: Mutex::new(OwnerSide { worker, spill: VecDeque::new() }),
            stealer,
            overflow,
            injector: Injector::new(),
            current: AtomicU64::new(EMPTY),
            queued: AtomicU64::new(0),
            queued_weight: AtomicU64::new(0),
            lightest_mark: AtomicU64::new(NO_MARK),
            tracked_scaled: AtomicU64::new(0),
            tracked_ns: AtomicU64::new(0),
            tracked_busy: AtomicBool::new(false),
            trace: TraceSink::disabled(),
        }
    }

    /// Records `event` on this core's ring at the machine clock's current
    /// time.  One branch (and no clock load) when tracing is disabled.
    fn trace_event(&self, event: &TraceEvent) {
        if self.trace.is_enabled() {
            self.trace.record(self.id, self.clock.load(Ordering::Acquire), event);
        }
    }

    /// The overflow discipline this runqueue was built with.
    pub fn overflow_policy(&self) -> OverflowPolicy {
        self.overflow
    }

    /// Number of tasks currently parked in the shared injector (zero under
    /// the legacy spill discipline).  Exact between operations; callers
    /// that need "is any overflow pending" get a race-free answer the same
    /// way thieves do — by trying to claim.
    pub fn injected_len(&self) -> usize {
        self.injector.len()
    }

    /// The task currently occupying the core, if any.
    ///
    /// This is the owner-side read the executor's worker loop needs: a
    /// wakeup can seat a task on an idle core directly (the enqueue CAS on
    /// `current`), in which case the owner never saw it go by —
    /// `pick_next` returns `None` precisely *because* the core is busy, and
    /// `complete_current` would reveal the id only by removing the task.
    /// Reading `current` is safe from any thread (it is one atomic load of
    /// a possibly-stale word), but only the owner's read is stable: once
    /// `current` is non-`EMPTY`, the sole transition back to `EMPTY` is
    /// `complete_current`, which the owner alone calls.
    pub fn current_task(&self) -> Option<TaskId> {
        let word = self.current.load(Ordering::Acquire);
        (word != EMPTY).then(|| decode(word).id)
    }

    /// Pops one waiting task at the owner end (ring first, then overflow),
    /// keeping the counters in step.  Caller holds the owner mutex.
    fn pop_queued(&self, owner: &mut OwnerSide) -> Option<u64> {
        let word = owner.worker.pop().or_else(|| self.pop_overflow(owner))?;
        self.retire_queued(word);
        Some(word)
    }

    /// Claims one task from wherever this queue parks overflow.  Under the
    /// injector discipline the owner simply joins the thieves' claim race
    /// (a lost race means someone else got that task — loop for the next);
    /// under the legacy spill it pops the private list.  Caller holds the
    /// owner mutex (which the injector does not require, but every caller
    /// already does).
    fn pop_overflow(&self, owner: &mut OwnerSide) -> Option<u64> {
        match self.overflow {
            OverflowPolicy::SharedInjector => loop {
                match self.injector.steal() {
                    Steal::Stolen(word) => {
                        // Every injector exit is narrated: the trace-derived
                        // injector population (pushes + trim loop-backs −
                        // drains) must match the live resident count.
                        self.trace_event(&TraceEvent::InjectorDrain { moved: 1 });
                        return Some(word);
                    }
                    Steal::Empty => return None,
                    Steal::Retry => {}
                }
            },
            OverflowPolicy::PrivateSpill => owner.spill.pop_front(),
        }
    }

    /// Counter bookkeeping shared by every path that removes a waiting
    /// task (owner pop and thief claim): decrement length and weight, and
    /// retire the lightest-weight watermark when it can no longer be
    /// trusted — the departing task's weight *was* the recorded minimum,
    /// or the queue drained entirely.  `NO_MARK` reads as "unknown"
    /// (snapshot reports `None`) until the next enqueue re-establishes a
    /// bound.  Retirement eliminates the dangerous stale-*low* case (a
    /// departed light task haunting later generations); the residual
    /// imprecision is stale-*high* with equal-weight duplicates, which
    /// only makes weighted filters more conservative (see the field doc).
    fn retire_queued(&self, word: u64) {
        self.queued.fetch_sub(1, Ordering::AcqRel);
        let weight = weight_of(word);
        self.queued_weight.fetch_sub(weight, Ordering::AcqRel);
        if self.queued.load(Ordering::Acquire) == 0 {
            self.lightest_mark.store(NO_MARK, Ordering::Release);
        } else {
            // Ignore the result: if the mark moved concurrently it no
            // longer equals this task's weight and keeps its own story.
            let _ = self.lightest_mark.compare_exchange(
                weight,
                NO_MARK,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
        }
    }

    /// Pushes one task at the owner end (overflowing to the injector when
    /// the ring is full), keeping the counters in step.  Caller holds the
    /// owner mutex.
    ///
    /// The counters — including the lightest-weight watermark — move
    /// *before* the ring/injector placement is decided, so an overflowed
    /// task is counted and watermarked identically to a ring resident.
    /// Under the injector discipline the counted set and the claimable
    /// set therefore agree up to the instruction-scale window of a push
    /// in flight: a thief probing between the counter bump and the
    /// ring/injector placement can see the task counted but not yet
    /// claimable, which costs that thief one failed round — the same
    /// transient as a mid-migration task — and heals on its next attempt.
    /// What the injector eliminates is the *persistent* divergence of the
    /// legacy spill, where counted work stayed unclaimable until the next
    /// tick (which is why that discipline is quarantined to E22).
    fn push_queued(&self, owner: &mut OwnerSide, word: u64) {
        self.queued.fetch_add(1, Ordering::AcqRel);
        self.queued_weight.fetch_add(weight_of(word), Ordering::AcqRel);
        self.lightest_mark.fetch_min(weight_of(word), Ordering::AcqRel);
        if let Err(sched_deque::Full(rejected)) = owner.worker.push(word) {
            match self.overflow {
                OverflowPolicy::SharedInjector => {
                    self.injector.push(rejected);
                    self.trace_event(&TraceEvent::InjectorPush { task: decode(rejected).id });
                }
                OverflowPolicy::PrivateSpill => {
                    owner.spill.push_back(rejected);
                    self.trace_event(&TraceEvent::OverflowSpill { task: decode(rejected).id });
                }
            }
        }
    }

    /// Installs a waiting task as the running one if the core is idle.
    /// Caller holds the owner mutex (so promotions cannot race each
    /// other); the CAS protects against a concurrent wakeup claiming the
    /// core directly.
    fn promote(&self, owner: &mut OwnerSide) -> Option<TaskId> {
        let word = self.pop_queued(owner)?;
        match self.current.compare_exchange(EMPTY, word, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => Some(decode(word).id),
            Err(_) => {
                // A wakeup beat us to the core; the task goes back to wait.
                self.push_queued(owner, word);
                None
            }
        }
    }

    /// Folds the instantaneous load into the tracked average at the
    /// clock's current time.  Lock-free: a concurrent fold makes this one
    /// a no-op rather than a wait.
    fn fold_tracked(&self) {
        if self.tracked_busy.swap(true, Ordering::Acquire) {
            return;
        }
        let now = self.clock.load(Ordering::Acquire);
        let inst = match self.tracker.base() {
            sched_core::LoadMetric::Weighted => self.weighted_load(),
            _ => self.nr_threads(),
        };
        let mut state = TrackedLoad {
            scaled: self.tracked_scaled.load(Ordering::Relaxed),
            last_update_ns: self.tracked_ns.load(Ordering::Relaxed),
        };
        self.tracker.update(&mut state, now, inst);
        self.tracked_scaled.store(state.scaled, Ordering::Release);
        self.tracked_ns.store(state.last_update_ns, Ordering::Relaxed);
        self.tracked_busy.store(false, Ordering::Release);
    }

    fn nr_threads(&self) -> u64 {
        self.queued.load(Ordering::Acquire)
            + u64::from(self.current.load(Ordering::Acquire) != EMPTY)
    }

    fn weighted_load(&self) -> u64 {
        let current = self.current.load(Ordering::Acquire);
        let current_weight = if current == EMPTY { 0 } else { weight_of(current) };
        self.queued_weight.load(Ordering::Acquire) + current_weight
    }

    /// One *batch* claim at the victim — ring first (a multi-claim CAS that
    /// moves `top` by up to `want` in one acquisition), injector second (a
    /// [`Injector::steal_batch`] that serves the whole decision under **one
    /// lock round-trip** instead of one per element) — with the filter
    /// re-checked against live state **inside the loop**: every retry (a
    /// lost batch CAS that fell back to the single path and lost again)
    /// re-evaluates the guard before the next attempt, so a claim never
    /// commits on a condition older than its own race.
    ///
    /// The injector check runs exactly when the ring claim finds the ring
    /// empty: a victim whose waiting work has overflowed is *still* a
    /// victim, and the work-conservation argument needs thieves to reach
    /// that work without waiting for any owner-side drain.  `steal_batch`
    /// absorbs lost injector races internally (its `0` is a genuine empty,
    /// pinned claim-free by the injector's own tests), so the failure this
    /// returns only reaches the balancer when nothing was claimable at all.
    fn claim_checked_many(
        &self,
        thief: &DequeRq,
        filter: &dyn FilterPolicy,
        want: usize,
    ) -> Result<Vec<u64>, StealOutcome> {
        let want = want.max(1);
        loop {
            let thief_snap = thief.snapshot();
            let victim_snap = self.snapshot();
            if !filter.can_steal(&thief_snap, &victim_snap) {
                return Err(StealOutcome::RecheckFailed { victim: self.id });
            }
            match self.stealer.steal_many(want) {
                StealMany::Stolen(words) => {
                    for &word in &words {
                        self.retire_queued(word);
                    }
                    self.fold_tracked();
                    return Ok(words);
                }
                StealMany::Empty => match self.overflow {
                    // Ring empty is not queue empty: overflow lives in the
                    // shared injector, claimable right now — and claimed as
                    // a batch, one lock acquisition per steal decision.
                    OverflowPolicy::SharedInjector => {
                        let mut words = Vec::new();
                        let claimed = self.injector.steal_batch(want, |word| words.push(word));
                        if claimed == 0 {
                            return Err(StealOutcome::NothingToSteal { victim: self.id });
                        }
                        // Narrated on the victim's ring like every other
                        // injector exit, so a trace-derived resident count
                        // stays exact under thief batch claims.
                        self.trace_event(&TraceEvent::InjectorDrain { moved: claimed as u64 });
                        for &word in &words {
                            self.retire_queued(word);
                        }
                        self.fold_tracked();
                        return Ok(words);
                    }
                    OverflowPolicy::PrivateSpill => {
                        return Err(StealOutcome::NothingToSteal { victim: self.id });
                    }
                },
                // Lost the claim race: loop back through the filter — the
                // double-check guard, now in the loop.
                StealMany::Retry => {}
            }
        }
    }

    /// Returns a claimed-but-undelivered word to this (victim) queue's
    /// stealable set — the batch path's "loser" loop-back.  The word is
    /// re-counted exactly like an enqueue and parked in the shared
    /// injector, where the owner and any claimant reach it without the
    /// owner mutex (which thieves never take, by design).
    fn requeue_overflow(&self, word: u64) {
        self.queued.fetch_add(1, Ordering::AcqRel);
        self.queued_weight.fetch_add(weight_of(word), Ordering::AcqRel);
        self.lightest_mark.fetch_min(weight_of(word), Ordering::AcqRel);
        self.injector.push(word);
        self.fold_tracked();
    }
}

impl RqBackend for DequeRq {
    fn with_tracker(
        id: CoreId,
        node: NodeId,
        tracker: Arc<dyn LoadTracker>,
        clock: Arc<AtomicU64>,
    ) -> Self {
        Self::with_queue_capacity(id, node, tracker, clock, DEFAULT_QUEUE_CAPACITY)
    }

    fn backend_name() -> &'static str {
        "deque"
    }

    fn id(&self) -> CoreId {
        self.id
    }

    fn node(&self) -> NodeId {
        self.node
    }

    fn tracker(&self) -> &Arc<dyn LoadTracker> {
        &self.tracker
    }

    fn snapshot(&self) -> CoreSnapshot {
        let queued = self.queued.load(Ordering::Acquire);
        let lightest = if queued == 0 {
            None
        } else {
            match self.lightest_mark.load(Ordering::Acquire) {
                NO_MARK => None,
                mark => Some(mark),
            }
        };
        CoreSnapshot {
            id: self.id,
            node: self.node,
            nr_threads: self.nr_threads(),
            weighted_load: self.weighted_load(),
            lightest_ready_weight: lightest,
            tracked_scaled: self.tracked_scaled.load(Ordering::Acquire),
            injected: self.injected_len() as u64,
        }
    }

    fn enqueue(&self, task: RqTask) {
        let word = encode(&task);
        // An idle core is claimed directly — the common wakeup fast path
        // is one CAS, no lock, no publication step.
        if self.current.compare_exchange(EMPTY, word, Ordering::AcqRel, Ordering::Acquire).is_ok() {
            self.fold_tracked();
            return;
        }
        let mut owner = self.owner.lock();
        // Re-try under the owner mutex: the running task may have completed
        // between the failed CAS and the lock acquisition.
        if self.current.compare_exchange(EMPTY, word, Ordering::AcqRel, Ordering::Acquire).is_err()
        {
            self.push_queued(&mut owner, word);
        }
        drop(owner);
        self.fold_tracked();
    }

    fn pick_next(&self) -> Option<TaskId> {
        if self.current.load(Ordering::Acquire) != EMPTY {
            return None;
        }
        let mut owner = self.owner.lock();
        let picked = self.promote(&mut owner);
        drop(owner);
        if picked.is_some() {
            self.fold_tracked();
        }
        picked
    }

    fn complete_current(&self) -> Option<RqTask> {
        let mut owner = self.owner.lock();
        let prev = self.current.swap(EMPTY, Ordering::AcqRel);
        let _ = self.promote(&mut owner);
        drop(owner);
        self.fold_tracked();
        (prev != EMPTY).then(|| decode(prev))
    }

    fn nr_threads_exact(&self) -> u64 {
        // Exact when quiescent; under concurrency a task mid-migration
        // (claimed from this victim, not yet delivered to its thief) is
        // momentarily attributed to neither side.  Injector residents are
        // included — and, under the injector discipline, everything
        // included is also stealable, so the count balancing acts on and
        // the set thieves can claim from are the same.
        self.nr_threads()
    }

    fn refresh(&self) {
        match self.overflow {
            OverflowPolicy::PrivateSpill => {
                // The legacy discipline's correctness-critical drain:
                // spilled tasks are unstealable until they re-enter the
                // ring, so the tick is the only thing standing between an
                // overflow and a starved idle core.  This — the bug E22
                // measures — is the whole reason the spill path is
                // quarantined.
                let mut owner = self.owner.lock();
                let mut moved = 0u64;
                while let Some(&front) = owner.spill.front() {
                    match owner.worker.push(front) {
                        Ok(()) => {
                            owner.spill.pop_front();
                            moved += 1;
                        }
                        Err(_) => break,
                    }
                }
                drop(owner);
                if moved > 0 {
                    self.trace_event(&TraceEvent::InjectorDrain { moved });
                }
            }
            OverflowPolicy::SharedInjector => {
                // The *fairness* drain — deliberately not correctness-
                // critical: injector residents are stealable the whole
                // time, and every conservation property holds with no
                // tick at all (the storm tests converge without one).
                // What the drain restores is the tick-scale *aging* bound
                // the old spill had: owner and thieves otherwise reach
                // the injector only when the ring is empty, so on a core
                // whose ring never drains (steady arrivals, no admitted
                // steals) an overflowed task's wait would be unbounded.
                // Folding residents into the ring's free slots once per
                // tick bounds that wait; the instruction-scale window in
                // which a moving word is reachable by neither structure
                // is the same transient as a push in flight.
                let mut owner = self.owner.lock();
                let mut moved = 0u64;
                while owner.worker.len() < owner.worker.capacity() {
                    match self.injector.steal() {
                        Steal::Stolen(word) => {
                            if let Err(sched_deque::Full(rejected)) = owner.worker.push(word) {
                                // Unreachable while the owner mutex is
                                // held (thieves only shrink the ring),
                                // but if it ever fired the word must go
                                // back where it is stealable.
                                self.injector.push(rejected);
                                break;
                            }
                            moved += 1;
                        }
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                }
                drop(owner);
                if moved > 0 {
                    self.trace_event(&TraceEvent::InjectorDrain { moved });
                }
            }
        }
        self.fold_tracked();
    }

    fn try_steal_recorded(
        thief: &Self,
        victim: &Self,
        filter: &dyn FilterPolicy,
        max_tasks: usize,
        recorder: Option<StealRecorder<'_>>,
    ) -> StealOutcome {
        assert_ne!(thief.id(), victim.id(), "a core cannot steal from itself");
        let want = max_tasks.max(1);
        let mut moved = Vec::new();
        let mut failure = None;
        let mut trimmed = false;
        while moved.len() < want && !trimmed {
            match victim.claim_checked_many(thief, filter, want - moved.len()) {
                Ok(words) => {
                    let total = words.len();
                    let mut words = words.into_iter();
                    let mut delivered = 0u64;
                    // Whether losers have a stealable home to loop back to
                    // is fixed at construction — hoisted out of the
                    // per-word loop.
                    let loop_back = victim.overflow == OverflowPolicy::SharedInjector;
                    while let Some(word) = words.next() {
                        // The first claim is always delivered — the filter
                        // approved it at claim time.  After that, each task
                        // gets a re-check against *live* counters before it
                        // moves: stop once delivering one more would leave
                        // the thief more loaded than the victim would be
                        // with the rest returned — the batch must never
                        // *invert* the imbalance it was sized against (the
                        // P2 direction), however stale the sizing snapshot
                        // was.  Only the two thread counters are consulted
                        // (the inversion test needs nothing else); building
                        // full snapshots here would pay several atomic
                        // loads plus an injector-length walk per delivered
                        // word.  Undelivered claims are losers, looped back
                        // to the victim's injector where they are stealable
                        // by anyone again.  The legacy spill discipline has
                        // no stealable home a thief may reach, so it
                        // delivers the whole batch (it is E22's quarantined
                        // baseline either way).
                        let undelivered = total as u64 - delivered;
                        if delivered > 0
                            && loop_back
                            && thief.nr_threads() + 1 > victim.nr_threads() + undelivered - 1
                        {
                            let mut returned = 1u64;
                            victim.requeue_overflow(word);
                            for loser in words.by_ref() {
                                victim.requeue_overflow(loser);
                                returned += 1;
                            }
                            // The trim is the victim's story: its tasks
                            // came back, on its ring.
                            victim.trace_event(&TraceEvent::BatchTrim { returned });
                            trimmed = true;
                            break;
                        }
                        let task = decode(word);
                        moved.push(task.id);
                        // Deliver to the thief's own queue: an owner-side
                        // push (the thief owns its bottom end), never a
                        // lock shared with other thieves.
                        thief.enqueue(task);
                        delivered += 1;
                    }
                }
                Err(outcome) => {
                    failure = Some(outcome);
                    break;
                }
            }
        }
        let outcome = if moved.is_empty() {
            failure.unwrap_or(StealOutcome::NothingToSteal { victim: victim.id() })
        } else {
            StealOutcome::Stole { victim: victim.id(), tasks: moved }
        };
        // The CAS claim is the linearization point; the counters move
        // right after it, before the outcome is returned to the balancer.
        if let Some(rec) = recorder {
            rec.record_attempt(&outcome, want);
        }
        outcome
    }

    fn attach_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::policy::DeltaFilter;
    use sched_core::tracker::NrThreadsTracker;

    fn rq(id: usize) -> DequeRq {
        DequeRq::with_tracker(
            CoreId(id),
            NodeId(0),
            Arc::new(NrThreadsTracker),
            Arc::new(AtomicU64::new(0)),
        )
    }

    #[test]
    fn encode_decode_round_trips_id_and_nice() {
        for (id, nice) in [(0u64, 0i8), (1, -20), (42, 19), ((1 << 55) - 2, 5)] {
            let task = RqTask::with_nice(TaskId(id), Nice::new(nice));
            let decoded = decode(encode(&task));
            assert_eq!(decoded.id, task.id);
            assert_eq!(decoded.nice, task.nice);
            assert_eq!(decoded.weight(), task.weight());
        }
        assert_ne!(encode(&RqTask::new(TaskId(0))), EMPTY, "id 0 must not collide with EMPTY");
    }

    #[test]
    fn enqueue_runs_immediately_on_an_idle_core() {
        let q = rq(0);
        assert!(q.snapshot().is_idle());
        q.enqueue(RqTask::new(TaskId(1)));
        let snap = q.snapshot();
        assert_eq!(snap.nr_threads, 1);
        assert!(!snap.is_overloaded());
        assert_eq!(q.complete_current().unwrap().id, TaskId(1));
        assert!(q.snapshot().is_idle());
    }

    #[test]
    fn snapshot_counts_weights_like_the_mutex_backend() {
        let q = rq(0);
        q.enqueue(RqTask::new(TaskId(1)));
        q.enqueue(RqTask::with_nice(TaskId(2), Nice::new(19)));
        let snap = q.snapshot();
        assert_eq!(snap.nr_threads, 2);
        assert_eq!(snap.weighted_load, 1024 + 15);
        assert_eq!(snap.lightest_ready_weight, Some(15));
        assert!(snap.is_overloaded());
    }

    #[test]
    fn the_lightest_watermark_retires_when_its_task_departs() {
        // The recorded minimum leaving — by steal or by owner pop — must
        // not haunt later queue generations: the mark drops back to
        // "unknown" (snapshot None) until the next enqueue re-bounds it.
        let victim = rq(1);
        victim.enqueue(RqTask::new(TaskId(0))); // becomes current
        victim.enqueue(RqTask::new(TaskId(1))); // weight 1024, queued first
        victim.enqueue(RqTask::with_nice(TaskId(2), Nice::new(19))); // weight 15
        assert_eq!(victim.snapshot().lightest_ready_weight, Some(15));
        // The thief claims from the top of the deque: the *oldest* waiter
        // (1024) first, which is not the minimum — the mark survives.
        let thief = rq(0);
        let filter = sched_core::policy::DeltaFilter::new(sched_core::LoadMetric::NrThreads, 1);
        assert!(DequeRq::try_steal_recorded(&thief, &victim, &filter, 1, None).is_success());
        assert_eq!(victim.snapshot().lightest_ready_weight, Some(15));
        // The second claim takes the recorded minimum itself: unknown now.
        assert!(DequeRq::try_steal_recorded(&thief, &victim, &filter, 1, None).is_success());
        assert_eq!(victim.snapshot().lightest_ready_weight, None, "queue empty");
        // A fresh generation of heavy tasks must not inherit the old 15.
        victim.enqueue(RqTask::new(TaskId(3)));
        assert_eq!(victim.snapshot().lightest_ready_weight, Some(1024));
    }

    #[test]
    fn complete_current_elects_a_successor() {
        let q = rq(0);
        q.enqueue(RqTask::new(TaskId(1)));
        q.enqueue(RqTask::new(TaskId(2)));
        let done = q.complete_current().unwrap();
        assert_eq!(done.id, TaskId(1));
        assert_eq!(q.snapshot().nr_threads, 1);
        assert!(q.complete_current().is_some());
        assert!(q.complete_current().is_none());
        assert!(q.snapshot().is_idle());
    }

    #[test]
    fn steal_claims_exclusively_and_delivers_to_the_thief() {
        let thief = rq(0);
        let victim = rq(1);
        for i in 0..3 {
            victim.enqueue(RqTask::new(TaskId(i)));
        }
        let outcome =
            DequeRq::try_steal_recorded(&thief, &victim, &DeltaFilter::listing1(), 1, None);
        assert!(outcome.is_success());
        assert_eq!(thief.snapshot().nr_threads, 1);
        assert_eq!(victim.snapshot().nr_threads, 2);
    }

    #[test]
    fn recheck_fails_when_the_victim_is_not_worth_stealing_from() {
        let thief = rq(0);
        let victim = rq(1);
        victim.enqueue(RqTask::new(TaskId(0)));
        let outcome =
            DequeRq::try_steal_recorded(&thief, &victim, &DeltaFilter::listing1(), 1, None);
        assert_eq!(outcome, StealOutcome::RecheckFailed { victim: CoreId(1) });
        assert_eq!(victim.snapshot().nr_threads, 1);
    }

    #[test]
    fn the_running_task_is_unstealable_by_construction() {
        let thief = rq(0);
        let victim = rq(1);
        victim.enqueue(RqTask::new(TaskId(0)));
        victim.enqueue(RqTask::new(TaskId(1)));
        let outcome =
            DequeRq::try_steal_recorded(&thief, &victim, &DeltaFilter::listing1(), 8, None);
        match outcome {
            StealOutcome::Stole { tasks, .. } => assert_eq!(tasks, vec![TaskId(1)]),
            other => panic!("expected a steal, got {other:?}"),
        }
        assert_eq!(victim.complete_current().unwrap().id, TaskId(0));
    }

    #[test]
    fn batch_steal_trims_to_the_balanced_split_and_loops_losers_back() {
        // A greedy batch (ask for everything) against a victim with 1
        // running + 5 waiting: the multi-claim CAS takes the whole ring,
        // but the per-task non-inversion re-check delivers only up to the
        // balanced split and loops the losers back to the victim's
        // injector — where they are immediately stealable again.
        let thief = rq(0);
        let victim = rq(1);
        for i in 0..6 {
            victim.enqueue(RqTask::new(TaskId(i)));
        }
        let filter = DeltaFilter::listing1();
        let outcome = DequeRq::try_steal_recorded(&thief, &victim, &filter, 8, None);
        match outcome {
            StealOutcome::Stole { ref tasks, .. } => {
                assert_eq!(tasks.len(), 3, "delivery stops at the balanced split")
            }
            ref other => panic!("expected a batch steal, got {other:?}"),
        }
        assert_eq!(thief.nr_threads_exact(), 3);
        assert_eq!(victim.nr_threads_exact(), 3, "losers are the victim's again");
        assert_eq!(victim.injected_len(), 2, "looped back through the injector");
        assert_eq!(victim.snapshot().injected, 2, "…and visible to injector-aware choices");
        // Nothing lost, nothing duplicated, and the loop-backed tasks are
        // claimable without any refresh.
        let mut drained = Vec::new();
        while let Some(task) = victim.complete_current() {
            drained.push(task.id);
        }
        assert_eq!(drained.len(), 3);
        assert_eq!(victim.injected_len(), 0);
    }

    #[test]
    fn overflow_goes_to_the_injector_and_is_stealable_immediately() {
        // The work-conservation contract for overflow: a task the ring had
        // no room for is claimable by thieves from the instant the enqueue
        // returns — no refresh, no owner assistance.  (The old contract,
        // "the spill is invisible to thieves until a refresh", is the bug
        // this backend used to have; `OverflowPolicy::PrivateSpill` keeps
        // it reproducible as E22's baseline.)
        let clock = Arc::new(AtomicU64::new(0));
        let q = DequeRq::with_queue_capacity(
            CoreId(0),
            NodeId(0),
            Arc::new(NrThreadsTracker),
            clock,
            4,
        );
        // 1 running + 4 in the ring + 3 in the injector.
        for i in 0..8 {
            q.enqueue(RqTask::new(TaskId(i)));
        }
        assert_eq!(q.nr_threads_exact(), 8, "overflowed tasks are still counted");
        assert_eq!(q.injected_len(), 3, "the ring held 4; the rest overflowed");
        // Every waiting task — ring or injector — is stealable right now.
        let filter = sched_core::policy::DeltaFilter::new(sched_core::LoadMetric::NrThreads, 1);
        let thieves: Vec<DequeRq> = (1..=7).map(rq).collect();
        for thief in thieves.iter().take(7) {
            assert!(
                DequeRq::try_steal_recorded(thief, &q, &filter, 1, None).is_success(),
                "no waiting task may hide from thieves, wherever it is parked"
            );
        }
        assert_eq!(q.injected_len(), 0);
        assert_eq!(q.nr_threads_exact(), 1, "only the (unstealable) running task remains");
        let resident: u64 = thieves.iter().map(DequeRq::nr_threads_exact).sum();
        assert_eq!(q.nr_threads_exact() + resident, 8, "nothing lost");
    }

    #[test]
    fn the_owner_picks_injected_tasks_when_the_ring_drains() {
        // Owner-side visibility of overflow: with no thief in sight, the
        // owner alone must run every task — ring first (LIFO), then the
        // injector — without any refresh.
        let clock = Arc::new(AtomicU64::new(0));
        let q = DequeRq::with_queue_capacity(
            CoreId(0),
            NodeId(0),
            Arc::new(NrThreadsTracker),
            clock,
            4,
        );
        for i in 0..9 {
            q.enqueue(RqTask::new(TaskId(i)));
        }
        let mut completed = Vec::new();
        while let Some(task) = q.complete_current() {
            completed.push(task.id.0);
        }
        completed.sort_unstable();
        assert_eq!(completed, (0..9).collect::<Vec<_>>(), "every task ran exactly once");
        assert!(q.snapshot().is_idle());
        assert_eq!(q.injected_len(), 0);
    }

    #[test]
    fn the_watermark_covers_injector_residents() {
        // Satellite of the injector change: the lightest-weight watermark
        // must describe the *stealable* set.  A light task that overflows
        // into the injector is stealable, so it must bound the mark — and
        // the bound must retire when the light task departs.
        let clock = Arc::new(AtomicU64::new(0));
        let victim = DequeRq::with_queue_capacity(
            CoreId(0),
            NodeId(0),
            Arc::new(NrThreadsTracker),
            clock,
            4,
        );
        // 1 running + 4 heavy in the ring, then a light task that can only
        // land in the injector.
        for i in 0..5 {
            victim.enqueue(RqTask::new(TaskId(i)));
        }
        victim.enqueue(RqTask::with_nice(TaskId(5), Nice::new(19)));
        assert_eq!(victim.injected_len(), 1);
        assert_eq!(
            victim.snapshot().lightest_ready_weight,
            Some(15),
            "the injected light task bounds the watermark"
        );
        // Drain the ring (4 heavy steals, a fresh idle thief each): the
        // light task is still there, so the mark must survive…
        let filter = sched_core::policy::DeltaFilter::new(sched_core::LoadMetric::NrThreads, 1);
        let thieves: Vec<DequeRq> = (1..=5).map(rq).collect();
        for thief in thieves.iter().take(4) {
            assert!(DequeRq::try_steal_recorded(thief, &victim, &filter, 1, None).is_success());
        }
        assert_eq!(victim.snapshot().lightest_ready_weight, Some(15));
        // …and the fifth steal claims it from the injector, retiring the
        // mark (queue empty -> unknown).
        assert!(DequeRq::try_steal_recorded(&thieves[4], &victim, &filter, 1, None).is_success());
        assert_eq!(victim.snapshot().lightest_ready_weight, None);
        assert_eq!(victim.injected_len(), 0);
    }

    #[test]
    fn the_tick_ages_injector_residents_into_the_ring() {
        // The fairness half of the overflow contract: on a core whose
        // ring never empties (steady arrivals, no admitted steals), an
        // overflowed task must not wait unboundedly behind newer ring
        // arrivals — each tick folds injector residents into the ring's
        // free slots, so the wait is tick-bounded even though reachability
        // never depended on it.
        let clock = Arc::new(AtomicU64::new(0));
        let q = DequeRq::with_queue_capacity(
            CoreId(0),
            NodeId(0),
            Arc::new(NrThreadsTracker),
            clock,
            4,
        );
        for i in 0..8 {
            q.enqueue(RqTask::new(TaskId(i)));
        }
        assert_eq!(q.injected_len(), 3);
        // One completion per period: the ring never empties (the promote
        // refills `current` from the ring, which stays at three or more),
        // so without the tick's drain the injected three would sit
        // forever behind newer ring arrivals.  Each tick must move one
        // into the slot the completion freed.
        for tick in 0u64..3 {
            assert!(q.complete_current().is_some());
            q.refresh();
            assert_eq!(
                q.injected_len() as u64,
                2 - tick,
                "each tick must age one resident into the ring"
            );
        }
        assert_eq!(q.injected_len(), 0, "the overflow wait is tick-bounded");
        assert_eq!(q.nr_threads_exact(), 5, "8 started, 3 completed; aging loses nothing");
    }

    #[test]
    fn legacy_private_spill_reproduces_the_conservation_hole() {
        // The old discipline, preserved as E22's measurable baseline: the
        // spill is counted but unstealable until a refresh.  This test
        // *documents the bug* — it is what the shared injector fixes.
        let clock = Arc::new(AtomicU64::new(0));
        let q = DequeRq::with_overflow_policy(
            CoreId(0),
            NodeId(0),
            Arc::new(NrThreadsTracker),
            clock,
            4,
            crate::OverflowPolicy::PrivateSpill,
        );
        for i in 0..8 {
            q.enqueue(RqTask::new(TaskId(i)));
        }
        assert_eq!(q.nr_threads_exact(), 8, "the spill is visible to load observers…");
        assert_eq!(q.injected_len(), 0, "nothing reaches the injector in spill mode");
        let filter = sched_core::policy::DeltaFilter::new(sched_core::LoadMetric::NrThreads, 1);
        let thieves: Vec<DequeRq> = (1..=6).map(rq).collect();
        for thief in thieves.iter().take(4) {
            assert!(DequeRq::try_steal_recorded(thief, &q, &filter, 1, None).is_success());
        }
        assert_eq!(
            DequeRq::try_steal_recorded(&thieves[4], &q, &filter, 1, None),
            StealOutcome::NothingToSteal { victim: CoreId(0) },
            "…but unstealable: an idle core starves against visibly waiting work"
        );
        q.refresh();
        assert!(
            DequeRq::try_steal_recorded(&thieves[5], &q, &filter, 1, None).is_success(),
            "only the tick's drain re-exposes the stranded work"
        );
        let resident: u64 = thieves.iter().map(DequeRq::nr_threads_exact).sum();
        assert_eq!(q.nr_threads_exact() + resident, 8, "the hole delays work; it never loses it");
    }

    #[test]
    #[ignore = "nightly-strength stress; run via `cargo test -- --ignored`"]
    fn stress_injector_overflow_races_high_iteration() {
        // Overflow storms under real contention: a tiny ring forces every
        // burst through the injector while thieves and the owner race.
        // Conservation must hold exactly, storm after storm.
        let filter = DeltaFilter::listing1();
        for round in 0..200 {
            let clock = Arc::new(AtomicU64::new(0));
            let victim = Arc::new(DequeRq::with_queue_capacity(
                CoreId(0),
                NodeId(0),
                Arc::new(NrThreadsTracker),
                clock,
                4,
            ));
            let thieves: Vec<Arc<DequeRq>> = (1..=4).map(|i| Arc::new(rq(i))).collect();
            for i in 0..64 {
                victim.enqueue(RqTask::new(TaskId(i)));
            }
            let completed = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|scope| {
                {
                    let victim = Arc::clone(&victim);
                    let completed = &completed;
                    scope.spawn(move || {
                        for _ in 0..24 {
                            if victim.complete_current().is_some() {
                                completed.fetch_add(1, Ordering::AcqRel);
                            }
                            std::hint::spin_loop();
                        }
                    });
                }
                for thief in &thieves {
                    let victim = Arc::clone(&victim);
                    let thief = Arc::clone(thief);
                    let filter = &filter;
                    scope.spawn(move || {
                        for _ in 0..8 {
                            let _ = DequeRq::try_steal_recorded(&thief, &victim, filter, 1, None);
                        }
                    });
                }
            });
            let resident: u64 = thieves.iter().map(|t| t.nr_threads_exact()).sum();
            assert_eq!(
                completed.load(Ordering::Acquire) + victim.nr_threads_exact() + resident,
                64,
                "round {round}: completions, residents and migrants must cover every task"
            );
        }
    }

    #[test]
    fn owner_and_thief_race_on_the_queue_conserves_tasks() {
        let victim = Arc::new(rq(1));
        let thief = Arc::new(rq(0));
        for i in 0..64 {
            victim.enqueue(RqTask::new(TaskId(i)));
        }
        let filter = DeltaFilter::listing1();
        std::thread::scope(|scope| {
            let consumer = {
                let victim = Arc::clone(&victim);
                scope.spawn(move || {
                    let mut completed = 0u64;
                    for _ in 0..32 {
                        if victim.complete_current().is_some() {
                            completed += 1;
                        }
                        std::thread::yield_now();
                    }
                    completed
                })
            };
            for _ in 0..16 {
                let _ = DequeRq::try_steal_recorded(&thief, &victim, &filter, 1, None);
            }
            let completed = consumer.join().unwrap();
            assert_eq!(
                completed + victim.nr_threads_exact() + thief.nr_threads_exact(),
                64,
                "completions, residents and migrants must account for every task"
            );
        });
    }
}
