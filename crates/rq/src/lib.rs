//! Concurrent runqueue substrate.
//!
//! `sched-core` models the scheduler as a pure state machine; this crate
//! mounts the same three-step abstraction on *real* shared-memory runqueues
//! so the concurrency claims of §3.1 can be exercised with actual threads:
//!
//! * [`MultiQueue`] assembles a machine's worth of runqueues, runs optimistic
//!   balancing rounds from many OS threads concurrently (via std's scoped
//!   threads) and counts successes/failures.  It is generic over the
//!   [`RqBackend`] discipline of its per-core queues:
//! * the **mutex backend** ([`PerCoreRq`]) protects each core with a mutex
//!   (the paper's runqueue lock) and publishes its load through atomics so
//!   that the **selection phase reads no lock at all**
//!   ([`published::PublishedLoad`]); its **stealing phase** takes the two
//!   runqueue locks in a global order (lowest core id first) and re-checks
//!   the filter on the live state under the locks before migrating, exactly
//!   like Figure 1's step 3 ([`steal`]),
//! * the **lock-free backend** ([`DequeRq`]) keeps each core's waiting
//!   tasks in a Chase–Lev owner/stealer deque (`sched-deque`): the owner
//!   pushes and pops at the bottom without contending with thieves, thieves
//!   claim at the top with a CAS, and the double-check steal guard runs
//!   inside the CAS loop ([`deque_rq`]); ring overflow goes to a shared
//!   MPMC injector that thieves check when the ring is empty, so spilled
//!   work is never invisible to idle cores ([`overflow`]),
//! * a deliberately pessimistic variant that holds *every* runqueue lock
//!   during selection is provided (mutex backend only) as the baseline for
//!   the E11 overhead experiment — it is what the paper refuses to do
//!   ("locking the runqueue of the third core prevents that core from
//!   scheduling work").
//!
//! Two queue disciplines are provided for the mutex backend: FIFO
//! ([`fifo::FifoQueue`]) and a CFS-like virtual-runtime order
//! ([`vruntime::VruntimeQueue`]).  The lock-free backend fixes the
//! work-stealing order (owner LIFO, thieves FIFO).

pub mod backend;
pub mod deque_rq;
pub mod entity;
pub mod fifo;
pub mod multiqueue;
pub mod overflow;
pub mod percore;
pub mod published;
pub mod stats;
pub mod steal;
pub mod vruntime;

pub use backend::RqBackend;
pub use deque_rq::DequeRq;
pub use entity::RqTask;
pub use fifo::FifoQueue;
pub use multiqueue::{MultiQueue, StealBatch};
pub use overflow::{OverflowPolicy, TinyDequeRq, TinySpillDequeRq, TINY_RING_CAPACITY};
pub use percore::PerCoreRq;
pub use published::PublishedLoad;
pub use stats::BalanceStats;
pub use vruntime::VruntimeQueue;

/// A machine of lock-free (Chase–Lev) runqueues.
pub type DequeMultiQueue = MultiQueue<DequeRq>;

/// A machine of lock-free runqueues with deliberately tiny rings — every
/// burst overflows into the shared injector (overflow-storm experiments
/// and proptests).
pub type TinyDequeMultiQueue = MultiQueue<TinyDequeRq>;

/// Queue discipline used by a per-core runqueue.
pub trait TaskQueue: Default + Send {
    /// Adds a task to the queue.
    fn push(&mut self, task: RqTask);
    /// Removes and returns the next task to run, if any.
    fn pop_next(&mut self) -> Option<RqTask>;
    /// Removes and returns the task the balancer should migrate, if any.
    ///
    /// Migration candidates and execution candidates may differ (CFS steals
    /// from the opposite end of the timeline it runs from).
    fn pop_steal_candidate(&mut self) -> Option<RqTask>;
    /// Number of queued tasks.
    fn len(&self) -> usize;
    /// Returns `true` if no task is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Sum of the weights of the queued tasks.
    fn total_weight(&self) -> u64;
    /// Weight of the lightest queued task, if any.
    fn lightest_weight(&self) -> Option<u64>;
}
