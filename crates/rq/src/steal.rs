//! The locked stealing phase: ordered double-locking plus filter re-check.
//!
//! "The stealing phase must be done atomically for correctness (i.e., no two
//! cores should be able to steal the same thread)." (§3.1)  Atomicity is
//! obtained by holding both runqueue locks; deadlock between concurrent
//! stealers is avoided by always acquiring the lower-numbered core's lock
//! first — the same discipline Linux's `double_rq_lock` uses.

use sched_core::{CoreId, CoreSnapshot, FilterPolicy, StealOutcome};
use sched_topology::StealLevel;
use sched_trace::{TraceEvent, TraceSink};

use crate::percore::{PerCoreRq, RqInner};
use crate::stats::BalanceStats;
use crate::TaskQueue;

/// Where the outcome of a locked stealing phase is recorded, and which
/// steal level the migrated threads are attributed to.
///
/// The recorder optionally carries a [`TraceSink`] context: when present,
/// every counted outcome is also recorded as a
/// [`TraceEvent::StealAttempt`] (plus one [`TraceEvent::Migration`] per
/// moved task) on the thief's ring, at the same program point where the
/// counters move — which is what lets the `stats == fold(trace)` parity
/// tests treat the trace as a complete record of the round.
#[derive(Debug, Clone, Copy)]
pub struct StealRecorder<'a> {
    /// The shared counters of the round.
    pub stats: &'a BalanceStats,
    /// Distance class of the victim relative to the thief, if known.
    pub level: Option<StealLevel>,
    /// Trace context: the sink, the thief (recording) core, and the
    /// logical timestamp to stamp events with.
    trace: Option<(&'a TraceSink, CoreId, u64)>,
}

impl<'a> StealRecorder<'a> {
    /// A recorder that counts into `stats` (attributing migrations to
    /// `level`) without tracing.
    pub fn new(stats: &'a BalanceStats, level: Option<StealLevel>) -> Self {
        StealRecorder { stats, level, trace: None }
    }

    /// Adds a trace context: recorded outcomes also land on `thief`'s ring
    /// of `sink`, stamped `now`.  A disabled sink costs one branch.
    pub fn with_trace(self, sink: &'a TraceSink, thief: CoreId, now: u64) -> Self {
        StealRecorder { trace: Some((sink, thief, now)), ..self }
    }

    /// Counts `outcome` into the stats **and** traces it, in one call —
    /// the single program point every backend's stealing phase funnels
    /// through, so counters and trace can never disagree.  `k` is the
    /// claim size the decision asked for.
    pub fn record_attempt(&self, outcome: &StealOutcome, k: usize) {
        self.stats.record_with_level(outcome, self.level);
        let Some((sink, thief, now)) = self.trace else {
            return;
        };
        sink.record(thief, now, &TraceEvent::steal_attempt(outcome, self.level, k));
        if let StealOutcome::Stole { victim, tasks } = outcome {
            for &task in tasks {
                sink.record(thief, now, &TraceEvent::Migration { task, from: *victim });
            }
        }
    }
}

/// Builds a live snapshot of a locked runqueue.
fn snapshot_locked<Q: TaskQueue>(rq: &PerCoreRq<Q>, inner: &RqInner<Q>) -> CoreSnapshot {
    CoreSnapshot {
        id: rq.id(),
        node: rq.node(),
        nr_threads: inner.nr_threads(),
        weighted_load: inner.weighted_load(),
        lightest_ready_weight: inner.queue.lightest_weight(),
        tracked_scaled: inner.tracked.scaled,
        injected: 0,
    }
}

/// Attempts to steal up to `max_tasks` waiting tasks from `victim` into
/// `thief`, re-checking `filter` under the locks first.
///
/// Returns the same [`StealOutcome`] vocabulary as the pure model, so the
/// P1/P2 reasoning applies verbatim to this implementation.
///
/// # Panics
///
/// Panics if `thief` and `victim` are the same core, which would be a
/// balancer bug (the filter never selects the thief itself).
pub fn try_steal<Q: TaskQueue>(
    thief: &PerCoreRq<Q>,
    victim: &PerCoreRq<Q>,
    filter: &dyn FilterPolicy,
    max_tasks: usize,
) -> StealOutcome {
    try_steal_recorded(thief, victim, filter, max_tasks, None)
}

/// Like [`try_steal`], but records the outcome into `recorder`'s counters
/// **while both runqueue locks are still held**.
///
/// Recording under the locks makes the counter transition atomic with the
/// dequeue: without it, a steal that migrates an entity and a local wakeup
/// that re-enqueues work on the victim can interleave between the unlock
/// and the caller's stats update, so an observer comparing the counters
/// with the published queue states sees the migrated entity counted twice
/// (once in flight, once settled).  With the recorder, counters and queue
/// contents always change under the same critical section.
pub fn try_steal_recorded<Q: TaskQueue>(
    thief: &PerCoreRq<Q>,
    victim: &PerCoreRq<Q>,
    filter: &dyn FilterPolicy,
    max_tasks: usize,
    recorder: Option<StealRecorder<'_>>,
) -> StealOutcome {
    assert_ne!(thief.id(), victim.id(), "a core cannot steal from itself");

    // Ordered double-lock: lowest core id first, so two concurrent stealers
    // targeting each other cannot deadlock.
    let (mut thief_guard, mut victim_guard) = if thief.id() < victim.id() {
        let t = thief.lock();
        let v = victim.lock();
        (t, v)
    } else {
        let v = victim.lock();
        let t = thief.lock();
        (t, v)
    };

    // Listing 1, line 12: "Check that the filter of step 1 still holds".
    let thief_snap = snapshot_locked(thief, &thief_guard);
    let victim_snap = snapshot_locked(victim, &victim_guard);
    if !filter.can_steal(&thief_snap, &victim_snap) {
        let outcome = StealOutcome::RecheckFailed { victim: victim.id() };
        if let Some(rec) = recorder {
            rec.record_attempt(&outcome, max_tasks.max(1));
        }
        return outcome;
    }

    let mut moved = Vec::new();
    for _ in 0..max_tasks.max(1) {
        match victim_guard.queue.pop_steal_candidate() {
            Some(task) => {
                moved.push(task.id);
                if thief_guard.current.is_none() {
                    thief_guard.current = Some(task);
                } else {
                    thief_guard.queue.push(task);
                }
            }
            None => break,
        }
    }

    let outcome = if moved.is_empty() {
        StealOutcome::NothingToSteal { victim: victim.id() }
    } else {
        StealOutcome::Stole { victim: victim.id(), tasks: moved }
    };
    // Count the migration before the locks are released (and before the new
    // loads are published): stats and queue state move as one step.
    if let Some(rec) = recorder {
        rec.record_attempt(&outcome, max_tasks.max(1));
    }

    thief.republish(&mut thief_guard);
    victim.republish(&mut victim_guard);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::RqTask;
    use crate::fifo::FifoQueue;
    use sched_core::policy::DeltaFilter;
    use sched_core::{CoreId, TaskId};
    use sched_topology::NodeId;

    fn rq(id: usize) -> PerCoreRq<FifoQueue> {
        PerCoreRq::new(CoreId(id), NodeId(0))
    }

    #[test]
    fn steals_one_task_when_the_filter_holds() {
        let thief = rq(0);
        let victim = rq(1);
        for i in 0..3 {
            victim.enqueue(RqTask::new(TaskId(i)));
        }
        let outcome = try_steal(&thief, &victim, &DeltaFilter::listing1(), 1);
        assert!(outcome.is_success());
        assert_eq!(thief.snapshot().nr_threads, 1);
        assert_eq!(victim.snapshot().nr_threads, 2);
    }

    #[test]
    fn recheck_fails_when_the_victim_was_drained_concurrently() {
        let thief = rq(0);
        let victim = rq(1);
        victim.enqueue(RqTask::new(TaskId(0)));
        // The victim only has one thread: the filter cannot hold.
        let outcome = try_steal(&thief, &victim, &DeltaFilter::listing1(), 1);
        assert_eq!(outcome, StealOutcome::RecheckFailed { victim: CoreId(1) });
        assert_eq!(victim.snapshot().nr_threads, 1);
    }

    #[test]
    fn never_steals_the_victims_running_task() {
        let thief = rq(0);
        let victim = rq(1);
        victim.enqueue(RqTask::new(TaskId(0)));
        victim.enqueue(RqTask::new(TaskId(1)));
        let outcome = try_steal(&thief, &victim, &DeltaFilter::listing1(), 8);
        match outcome {
            StealOutcome::Stole { tasks, .. } => assert_eq!(tasks, vec![TaskId(1)]),
            other => panic!("expected a steal, got {other:?}"),
        }
        assert_eq!(victim.lock().current.as_ref().unwrap().id, TaskId(0));
        assert!(!victim.snapshot().is_idle());
    }

    #[test]
    fn lock_order_is_symmetric() {
        // Stealing in both directions works regardless of id ordering.
        let a = rq(0);
        let b = rq(1);
        for i in 0..4 {
            a.enqueue(RqTask::new(TaskId(i)));
        }
        let outcome = try_steal(&b, &a, &DeltaFilter::listing1(), 1);
        assert!(outcome.is_success());
        assert_eq!(a.snapshot().nr_threads, 3);
        assert_eq!(b.snapshot().nr_threads, 1);
    }

    #[test]
    #[should_panic(expected = "cannot steal from itself")]
    fn self_steal_is_a_bug() {
        let a = rq(0);
        let _ = try_steal(&a, &a, &DeltaFilter::listing1(), 1);
    }

    #[test]
    fn recorded_steals_count_outcomes_and_levels() {
        use sched_topology::StealLevel;

        let stats = BalanceStats::new();
        let thief = rq(0);
        let victim = rq(1);
        for i in 0..3 {
            victim.enqueue(RqTask::new(TaskId(i)));
        }
        let outcome = try_steal_recorded(
            &thief,
            &victim,
            &DeltaFilter::listing1(),
            1,
            Some(StealRecorder::new(&stats, Some(StealLevel::SameNode))),
        );
        assert!(outcome.is_success());
        assert_eq!(stats.successes(), 1);
        assert_eq!(stats.migrations(), 1);
        assert_eq!(stats.level_migrations(StealLevel::SameNode), 1);

        // Draining the victim makes the next recorded attempt a re-check
        // failure, also counted through the recorder.
        victim.complete_current();
        victim.complete_current();
        let outcome = try_steal_recorded(
            &thief,
            &victim,
            &DeltaFilter::listing1(),
            1,
            Some(StealRecorder::new(&stats, Some(StealLevel::SameNode))),
        );
        assert!(outcome.is_failure());
        assert_eq!(stats.recheck_failures(), 1);
        assert_eq!(stats.migrations(), 1, "failures must not count migrations");
    }
}
