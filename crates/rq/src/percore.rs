//! A per-core runqueue with a lock for mutation and atomics for observation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};
use sched_core::tracker::{LoadTracker, NrThreadsTracker, TrackedLoad};
use sched_core::{CoreId, CoreSnapshot, TaskId};
use sched_topology::NodeId;

use crate::entity::RqTask;
use crate::fifo::FifoQueue;
use crate::published::PublishedLoad;
use crate::TaskQueue;

/// The lock-protected part of a runqueue: the running task and the queue of
/// waiting tasks.
#[derive(Debug, Default)]
pub struct RqInner<Q: TaskQueue> {
    /// The task currently running on the core, if any.
    pub current: Option<RqTask>,
    /// Tasks waiting to run.
    pub queue: Q,
    /// The tracker-maintained load average of the core, folded on every
    /// enqueue/dequeue/tick while the runqueue lock is held.
    pub tracked: TrackedLoad,
}

impl<Q: TaskQueue> RqInner<Q> {
    /// Number of threads on the core, counting the running one.
    pub fn nr_threads(&self) -> u64 {
        self.queue.len() as u64 + u64::from(self.current.is_some())
    }

    /// Weighted load of the core, counting the running task.
    pub fn weighted_load(&self) -> u64 {
        self.current.as_ref().map_or(0, |t| t.weight().raw()) + self.queue.total_weight()
    }

    /// Returns `true` if the core has no work at all.
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.queue.is_empty()
    }
}

/// One core's runqueue: a mutex-protected [`RqInner`] plus the lock-free
/// [`PublishedLoad`] the selection phase reads.
#[derive(Debug)]
pub struct PerCoreRq<Q: TaskQueue = FifoQueue> {
    id: CoreId,
    node: NodeId,
    inner: Mutex<RqInner<Q>>,
    published: PublishedLoad,
    tracker: Arc<dyn LoadTracker>,
    /// The machine's logical clock (shared with every sibling runqueue);
    /// decayed sums fold the elapsed time read from it.
    clock: Arc<AtomicU64>,
}

impl<Q: TaskQueue> PerCoreRq<Q> {
    /// Creates an empty runqueue for core `id` on `node`, tracking
    /// instantaneous thread counts.
    pub fn new(id: CoreId, node: NodeId) -> Self {
        Self::with_tracker(id, node, Arc::new(NrThreadsTracker), Arc::new(AtomicU64::new(0)))
    }

    /// Creates an empty runqueue maintaining its load under `tracker`,
    /// reading elapsed time from the shared `clock`.
    pub fn with_tracker(
        id: CoreId,
        node: NodeId,
        tracker: Arc<dyn LoadTracker>,
        clock: Arc<AtomicU64>,
    ) -> Self {
        PerCoreRq {
            id,
            node,
            inner: Mutex::new(RqInner::default()),
            published: PublishedLoad::new(),
            tracker,
            clock,
        }
    }

    /// The core this runqueue belongs to.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The NUMA node of the core.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The load criterion this runqueue is maintained under.
    pub fn tracker(&self) -> &Arc<dyn LoadTracker> {
        &self.tracker
    }

    /// Takes the runqueue lock.  Callers that mutate the state through the
    /// guard must call [`PerCoreRq::republish`] with the guard before
    /// releasing it so the lock-less observers see the change.
    pub fn lock(&self) -> MutexGuard<'_, RqInner<Q>> {
        self.inner.lock()
    }

    /// Folds the current instantaneous load into the tracked average (at
    /// the clock's current time) and refreshes the published loads from the
    /// locked state.
    ///
    /// This is the single choke-point through which every mutation —
    /// enqueue, dequeue, steal, tick — becomes visible to the lock-less
    /// selection phase, so the decayed sum can never drift from the queue
    /// contents it summarises.
    pub fn republish(&self, inner: &mut RqInner<Q>) {
        let inst = match self.tracker.base() {
            sched_core::LoadMetric::Weighted => inner.weighted_load(),
            _ => inner.nr_threads(),
        };
        self.tracker.update(&mut inner.tracked, self.clock.load(Ordering::Acquire), inst);
        self.published.publish(
            inner.nr_threads(),
            inner.weighted_load(),
            inner.queue.lightest_weight(),
            inner.tracked.scaled,
        );
    }

    /// Lock-less, possibly stale observation of this runqueue: the only
    /// thing the selection phase is allowed to read.
    pub fn snapshot(&self) -> CoreSnapshot {
        self.published.snapshot(self.id, self.node)
    }

    /// Makes `task` runnable on this core: it starts running immediately if
    /// the core was idle, otherwise it queues.
    pub fn enqueue(&self, task: RqTask) {
        let mut inner = self.lock();
        if inner.current.is_none() {
            inner.current = Some(task);
        } else {
            inner.queue.push(task);
        }
        self.republish(&mut inner);
    }

    /// Elects the next task to run if the core has none, returning its id.
    pub fn pick_next(&self) -> Option<TaskId> {
        let mut inner = self.lock();
        if inner.current.is_none() {
            if let Some(next) = inner.queue.pop_next() {
                let id = next.id;
                inner.current = Some(next);
                self.republish(&mut inner);
                return Some(id);
            }
        }
        None
    }

    /// Removes the running task (e.g. it exited or blocked), electing a
    /// successor from the queue if one is waiting.  Returns the removed task.
    pub fn complete_current(&self) -> Option<RqTask> {
        let mut inner = self.lock();
        let done = inner.current.take();
        if let Some(next) = inner.queue.pop_next() {
            inner.current = Some(next);
        }
        self.republish(&mut inner);
        done
    }

    /// Number of threads currently on the core (taken under the lock, exact).
    pub fn nr_threads_exact(&self) -> u64 {
        self.lock().nr_threads()
    }
}

/// The mutex discipline, as a [`crate::RqBackend`]: every mutation under
/// the per-core lock, stealing via the ordered double-lock of
/// [`crate::steal::try_steal_recorded`].
impl<Q: TaskQueue + 'static> crate::backend::RqBackend for PerCoreRq<Q> {
    fn with_tracker(
        id: CoreId,
        node: NodeId,
        tracker: Arc<dyn LoadTracker>,
        clock: Arc<AtomicU64>,
    ) -> Self {
        PerCoreRq::with_tracker(id, node, tracker, clock)
    }

    fn backend_name() -> &'static str {
        "mutex"
    }

    fn id(&self) -> CoreId {
        PerCoreRq::id(self)
    }

    fn node(&self) -> NodeId {
        PerCoreRq::node(self)
    }

    fn tracker(&self) -> &Arc<dyn LoadTracker> {
        PerCoreRq::tracker(self)
    }

    fn snapshot(&self) -> CoreSnapshot {
        PerCoreRq::snapshot(self)
    }

    fn enqueue(&self, task: RqTask) {
        PerCoreRq::enqueue(self, task);
    }

    fn pick_next(&self) -> Option<TaskId> {
        PerCoreRq::pick_next(self)
    }

    fn complete_current(&self) -> Option<RqTask> {
        PerCoreRq::complete_current(self)
    }

    fn nr_threads_exact(&self) -> u64 {
        PerCoreRq::nr_threads_exact(self)
    }

    fn refresh(&self) {
        let mut inner = self.lock();
        self.republish(&mut inner);
    }

    fn try_steal_recorded(
        thief: &Self,
        victim: &Self,
        filter: &dyn sched_core::FilterPolicy,
        max_tasks: usize,
        recorder: Option<crate::steal::StealRecorder<'_>>,
    ) -> sched_core::StealOutcome {
        crate::steal::try_steal_recorded(thief, victim, filter, max_tasks, recorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::Nice;

    fn rq() -> PerCoreRq<FifoQueue> {
        PerCoreRq::new(CoreId(0), NodeId(0))
    }

    #[test]
    fn enqueue_runs_immediately_on_an_idle_core() {
        let q = rq();
        assert!(q.snapshot().is_idle());
        q.enqueue(RqTask::new(TaskId(1)));
        let snap = q.snapshot();
        assert_eq!(snap.nr_threads, 1);
        assert!(!snap.is_overloaded());
        assert_eq!(q.lock().current.as_ref().unwrap().id, TaskId(1));
    }

    #[test]
    fn published_load_tracks_the_locked_state() {
        let q = rq();
        q.enqueue(RqTask::new(TaskId(1)));
        q.enqueue(RqTask::with_nice(TaskId(2), Nice::new(19)));
        let snap = q.snapshot();
        assert_eq!(snap.nr_threads, 2);
        assert_eq!(snap.weighted_load, 1024 + 15);
        assert_eq!(snap.lightest_ready_weight, Some(15));
        assert!(snap.is_overloaded());
    }

    #[test]
    fn complete_current_elects_a_successor() {
        let q = rq();
        q.enqueue(RqTask::new(TaskId(1)));
        q.enqueue(RqTask::new(TaskId(2)));
        let done = q.complete_current().unwrap();
        assert_eq!(done.id, TaskId(1));
        assert_eq!(q.lock().current.as_ref().unwrap().id, TaskId(2));
        assert_eq!(q.snapshot().nr_threads, 1);
        assert!(q.complete_current().is_some());
        assert!(q.complete_current().is_none());
        assert!(q.snapshot().is_idle());
    }

    #[test]
    fn pick_next_is_a_no_op_while_something_runs() {
        let q = rq();
        q.enqueue(RqTask::new(TaskId(1)));
        q.enqueue(RqTask::new(TaskId(2)));
        assert_eq!(q.pick_next(), None);
        q.complete_current();
        // The successor was already elected by complete_current.
        assert_eq!(q.pick_next(), None);
        assert_eq!(q.nr_threads_exact(), 1);
    }
}
