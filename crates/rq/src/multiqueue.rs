//! A machine's worth of concurrent runqueues and optimistic balancing over
//! them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sched_core::tracker::{LoadTracker, NrThreadsTracker};
use sched_core::{CoreId, CoreSnapshot, Nice, Policy, StealOutcome, TaskId};
use sched_topology::{MachineTopology, NodeId, StealLevel};

use crate::backend::RqBackend;
use crate::entity::RqTask;
use crate::fifo::FifoQueue;
use crate::percore::PerCoreRq;
use crate::stats::BalanceStats;
use crate::steal::{try_steal, StealRecorder};
use crate::TaskQueue;

/// All the per-core runqueues of one machine.
///
/// This is the threaded counterpart of [`sched_core::SystemState`]: the same
/// [`Policy`] objects drive balancing here, but the selection phase reads
/// lock-free atomics and the stealing phase really does contend from
/// multiple OS threads.
///
/// `MultiQueue` is generic over the [`RqBackend`] discipline of its
/// runqueues: the mutex backend ([`PerCoreRq`], the default) double-locks
/// the stealing phase, the lock-free backend ([`crate::DequeRq`]) claims
/// with a CAS at the top of a Chase–Lev deque.  All the balancing
/// machinery — flat and hierarchical rounds, stats recording, tracker
/// ticks — is this one generic implementation.
///
/// When built over a [`MachineTopology`] the queue knows the distance class
/// of every (thief, victim) pair: successful steals are attributed to their
/// [`StealLevel`] in the round's [`BalanceStats`], and
/// [`MultiQueue::hierarchical_round`] runs the domain-ordered balancing
/// passes (SMT → LLC → node → machine) on real OS threads.
#[derive(Debug)]
pub struct MultiQueue<B: RqBackend = PerCoreRq<FifoQueue>> {
    cores: Vec<B>,
    topo: Option<Arc<MachineTopology>>,
    tracker: Arc<dyn LoadTracker>,
    /// Logical machine clock, in nanoseconds: advanced by [`MultiQueue::tick`],
    /// read by every runqueue when folding its decayed load.
    clock: Arc<AtomicU64>,
    next_task_id: AtomicU64,
}

impl<B: RqBackend> MultiQueue<B> {
    /// Creates `nr_cores` empty runqueues, all on NUMA node 0, tracking
    /// instantaneous thread counts.
    pub fn new(nr_cores: usize) -> Self {
        Self::with_tracker(nr_cores, Arc::new(NrThreadsTracker))
    }

    /// Creates `nr_cores` empty runqueues maintaining their load under
    /// `tracker`.
    pub fn with_tracker(nr_cores: usize, tracker: Arc<dyn LoadTracker>) -> Self {
        let clock = Arc::new(AtomicU64::new(0));
        let cores = (0..nr_cores)
            .map(|i| {
                B::with_tracker(CoreId(i), NodeId(0), Arc::clone(&tracker), Arc::clone(&clock))
            })
            .collect();
        MultiQueue { cores, topo: None, tracker, clock, next_task_id: AtomicU64::new(0) }
    }

    /// Creates one runqueue per CPU of `topo`, with matching node ids; the
    /// topology is retained for distance-ordered stealing and per-level
    /// steal attribution.
    pub fn with_topology(topo: &MachineTopology) -> Self {
        Self::with_topology_and_tracker(topo, Arc::new(NrThreadsTracker))
    }

    /// Creates one runqueue per CPU of `topo`, maintaining loads under
    /// `tracker`.
    pub fn with_topology_and_tracker(
        topo: &MachineTopology,
        tracker: Arc<dyn LoadTracker>,
    ) -> Self {
        let clock = Arc::new(AtomicU64::new(0));
        let cores = topo
            .cpus()
            .iter()
            .map(|c| B::with_tracker(c.id, c.node, Arc::clone(&tracker), Arc::clone(&clock)))
            .collect();
        MultiQueue {
            cores,
            topo: Some(Arc::new(topo.clone())),
            tracker,
            clock,
            next_task_id: AtomicU64::new(0),
        }
    }

    /// The machine topology, if this queue was built over one.
    pub fn topology(&self) -> Option<&Arc<MachineTopology>> {
        self.topo.as_ref()
    }

    /// The load criterion the runqueues are maintained under.
    pub fn tracker(&self) -> &Arc<dyn LoadTracker> {
        &self.tracker
    }

    /// The machine's logical clock, in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    /// Advances the logical clock to `now_ns` and folds the elapsed time
    /// into every core's tracked load — the runqueue substrate's scheduler
    /// tick.  Each core is refreshed under its own lock, so ticks interleave
    /// safely with concurrent balancing.
    ///
    /// A clock that went backwards would make decayed sums non-monotone, so
    /// earlier timestamps are ignored.
    pub fn tick(&self, now_ns: u64) {
        self.clock.fetch_max(now_ns, Ordering::AcqRel);
        for core in &self.cores {
            core.refresh();
        }
    }

    /// Distance class between two distinct cores: exact when a topology is
    /// attached, node-based (same node vs remote) otherwise.
    pub fn steal_level_of(&self, thief: CoreId, victim: CoreId) -> StealLevel {
        match &self.topo {
            Some(topo) => topo.steal_level(thief, victim),
            None => {
                if self.cores[thief.0].node() == self.cores[victim.0].node() {
                    StealLevel::SameNode
                } else {
                    StealLevel::Remote
                }
            }
        }
    }

    /// Creates runqueues pre-populated so core `i` holds `loads[i]` `nice 0`
    /// tasks.
    pub fn with_loads(loads: &[usize]) -> Self {
        let mq = Self::new(loads.len());
        for (core, &n) in loads.iter().enumerate() {
            for _ in 0..n {
                mq.spawn_on(CoreId(core));
            }
        }
        mq
    }

    /// Number of cores.
    pub fn nr_cores(&self) -> usize {
        self.cores.len()
    }

    /// One core's runqueue.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core(&self, id: CoreId) -> &B {
        &self.cores[id.0]
    }

    /// All runqueues, in id order.
    pub fn cores(&self) -> &[B] {
        &self.cores
    }

    /// Creates a fresh `nice 0` task and makes it runnable on `core`.
    pub fn spawn_on(&self, core: CoreId) -> TaskId {
        let id = TaskId(self.next_task_id.fetch_add(1, Ordering::Relaxed));
        self.cores[core.0].enqueue(RqTask::new(id));
        id
    }

    /// Creates a fresh task with the given niceness and makes it runnable on
    /// `core`.
    pub fn spawn_on_with_nice(&self, core: CoreId, nice: Nice) -> TaskId {
        let id = TaskId(self.next_task_id.fetch_add(1, Ordering::Relaxed));
        self.cores[core.0].enqueue(RqTask::with_nice(id, nice));
        id
    }

    /// Lock-less snapshots of every core, in id order (the selection phase's
    /// entire view of the world).
    pub fn snapshots(&self) -> Vec<CoreSnapshot> {
        self.cores.iter().map(B::snapshot).collect()
    }

    /// Total number of threads across all runqueues (exact, takes each lock
    /// in turn; used by invariant checks, not by balancing).
    pub fn total_threads(&self) -> u64 {
        self.cores.iter().map(B::nr_threads_exact).sum()
    }

    /// Returns `true` if no core is idle while another is overloaded,
    /// judged on exact (locked) loads.
    pub fn is_work_conserving(&self) -> bool {
        let loads: Vec<u64> = self.cores.iter().map(B::nr_threads_exact).collect();
        let any_idle = loads.contains(&0);
        let any_overloaded = loads.iter().any(|&l| l >= 2);
        !(any_idle && any_overloaded)
    }

    /// Runs the three-step optimistic balancing operation for one core.
    ///
    /// Steps 1 and 2 (filter + choice) read only the lock-less snapshots;
    /// step 3 locks exactly the two runqueues involved.
    pub fn balance_once(&self, thief: CoreId, policy: &Policy) -> StealOutcome {
        self.balance_once_inner(thief, policy, None)
    }

    /// Like [`MultiQueue::balance_once`], but records the outcome (with its
    /// steal-level attribution) into `stats` while the runqueue locks are
    /// still held, so the counters move atomically with the dequeue.
    pub fn balance_once_recorded(
        &self,
        thief: CoreId,
        policy: &Policy,
        stats: &BalanceStats,
    ) -> StealOutcome {
        self.balance_once_inner(thief, policy, Some(stats))
    }

    fn balance_once_inner(
        &self,
        thief: CoreId,
        policy: &Policy,
        stats: Option<&BalanceStats>,
    ) -> StealOutcome {
        // Selection phase: lock-less.
        let snapshots = self.snapshots();
        let thief_snap = snapshots[thief.0];
        let candidates: Vec<CoreSnapshot> = snapshots
            .into_iter()
            .filter(|s| s.id != thief && policy.filter.can_steal(&thief_snap, s))
            .collect();
        let Some(victim) = policy.choice.choose(&thief_snap, &candidates) else {
            if let Some(stats) = stats {
                stats.record(&StealOutcome::NoCandidates);
            }
            return StealOutcome::NoCandidates;
        };
        // Stealing phase: atomic per backend discipline (double-lock or
        // CAS claim), re-checked; the outcome is counted with the claim
        // and attributed to the victim's distance class.
        let outcome = B::try_steal_recorded(
            &self.cores[thief.0],
            &self.cores[victim.0],
            policy.filter.as_ref(),
            1,
            stats.map(|stats| StealRecorder {
                stats,
                level: Some(self.steal_level_of(thief, victim)),
            }),
        );
        // Adaptive choices (topology-aware backoff) learn from the outcome.
        policy.choice.observe(thief, victim, outcome.is_success());
        outcome
    }

    /// Runs the distance-ordered balancing operation for one core: victims
    /// are searched innermost level first (SMT sibling → same LLC → same
    /// node → remote), and a steal that fails its re-check at one level
    /// falls back to the next level **within the same operation** — the
    /// retry a pure step-2 choice policy cannot express, because by the
    /// time the failure is known the selection phase is over.
    ///
    /// Requires a topology ([`MultiQueue::with_topology`]); without one this
    /// is [`MultiQueue::balance_once_recorded`].
    pub fn balance_once_hierarchical(
        &self,
        thief: CoreId,
        policy: &Policy,
        stats: &BalanceStats,
    ) -> StealOutcome {
        let Some(topo) = self.topo.clone() else {
            return self.balance_once_recorded(thief, policy, stats);
        };
        // Selection phase: lock-less, bucketing candidates by distance.
        let snapshots = self.snapshots();
        let thief_snap = snapshots[thief.0];
        let mut by_level: [Vec<CoreSnapshot>; 4] = [vec![], vec![], vec![], vec![]];
        for s in snapshots {
            if s.id != thief && policy.filter.can_steal(&thief_snap, &s) {
                by_level[topo.steal_level(thief, s.id).index()].push(s);
            }
        }
        if by_level.iter().all(Vec::is_empty) {
            stats.record(&StealOutcome::NoCandidates);
            return StealOutcome::NoCandidates;
        }
        // Stealing phase: walk the levels outwards, letting the policy's
        // choice pick within each level; only the final (farthest populated)
        // level's failure is the operation's outcome.
        let mut last = StealOutcome::NoCandidates;
        for level in StealLevel::ALL {
            let group = &by_level[level.index()];
            if group.is_empty() {
                continue;
            }
            let Some(victim) = policy.choice.choose(&thief_snap, group) else {
                continue;
            };
            let outcome = B::try_steal_recorded(
                &self.cores[thief.0],
                &self.cores[victim.0],
                policy.filter.as_ref(),
                1,
                Some(StealRecorder { stats, level: Some(level) }),
            );
            policy.choice.observe(thief, victim, outcome.is_success());
            if outcome.is_success() {
                return outcome;
            }
            last = outcome;
        }
        last
    }

    /// Runs one *concurrent* balancing round: every core executes
    /// [`MultiQueue::balance_once`] from its own OS thread simultaneously,
    /// which is how CFS runs its 4 ms balancing pass on every core at once.
    ///
    /// Returns the aggregated outcome counters.
    pub fn concurrent_round(&self, policy: &Policy) -> BalanceStats {
        let stats = BalanceStats::new();
        std::thread::scope(|scope| {
            for core in &self.cores {
                let stats = &stats;
                let mq = &*self;
                scope.spawn(move || {
                    // The outcome is recorded inside the stealing phase's
                    // critical section, atomically with the dequeue.
                    let _ = mq.balance_once_recorded(core.id(), policy, stats);
                });
            }
        });
        stats
    }

    /// Runs one *hierarchical* concurrent round: every core executes the
    /// distance-ordered [`MultiQueue::balance_once_hierarchical`] operation
    /// from its own OS thread simultaneously — the threaded mirror of
    /// [`sched_core::HierarchicalRound`], so the same domain-ordered policy
    /// runs at all three altitudes.
    pub fn hierarchical_round(&self, policy: &Policy) -> BalanceStats {
        let stats = BalanceStats::new();
        std::thread::scope(|scope| {
            for core in &self.cores {
                let stats = &stats;
                let mq = &*self;
                scope.spawn(move || {
                    let _ = mq.balance_once_hierarchical(core.id(), policy, stats);
                });
            }
        });
        stats
    }

    /// Runs hierarchical rounds until the machine is work-conserving or the
    /// round budget is exhausted; returns the number of rounds used, if it
    /// converged, plus the folded outcome counters.
    pub fn converge_hierarchical(
        &self,
        policy: &Policy,
        max_rounds: usize,
    ) -> (Option<usize>, BalanceStats) {
        let total = BalanceStats::new();
        for round in 0..=max_rounds {
            if self.is_work_conserving() {
                return (Some(round), total);
            }
            if round == max_rounds {
                break;
            }
            total.merge_from(&self.hierarchical_round(policy));
        }
        (None, total)
    }

    /// Like [`MultiQueue::concurrent_round`], but every thread performs its
    /// selection phase against the *initial* state of the round: all threads
    /// rendezvous on a barrier between selecting and stealing.
    ///
    /// This is the threaded equivalent of the model's
    /// `RoundSchedule::AllSelectThenSteal` — the maximally stale
    /// interleaving, in which conflicting optimistic selections (and hence
    /// failed steals) are guaranteed rather than merely possible.  E11 uses
    /// it to measure the failure rate the paper's P1/P2 lemmas are about.
    pub fn concurrent_round_synchronized(&self, policy: &Policy) -> BalanceStats {
        let stats = BalanceStats::new();
        let barrier = std::sync::Barrier::new(self.cores.len());
        std::thread::scope(|scope| {
            for core in &self.cores {
                let stats = &stats;
                let barrier = &barrier;
                let mq = &*self;
                scope.spawn(move || {
                    // Selection phase: lock-less, on the pre-round state.
                    let snapshots = mq.snapshots();
                    let thief_snap = snapshots[core.id().0];
                    let candidates: Vec<CoreSnapshot> = snapshots
                        .into_iter()
                        .filter(|s| s.id != core.id() && policy.filter.can_steal(&thief_snap, s))
                        .collect();
                    let chosen = policy.choice.choose(&thief_snap, &candidates);
                    // Every core finishes selecting before anyone steals.
                    barrier.wait();
                    match chosen {
                        Some(victim) => {
                            let outcome = B::try_steal_recorded(
                                &mq.cores[core.id().0],
                                &mq.cores[victim.0],
                                policy.filter.as_ref(),
                                1,
                                Some(StealRecorder {
                                    stats,
                                    level: Some(mq.steal_level_of(core.id(), victim)),
                                }),
                            );
                            policy.choice.observe(core.id(), victim, outcome.is_success());
                        }
                        None => stats.record(&StealOutcome::NoCandidates),
                    };
                });
            }
        });
        stats
    }

    /// Runs concurrent rounds until the machine is work-conserving or the
    /// round budget is exhausted; returns the number of rounds used, if it
    /// converged.
    pub fn converge(&self, policy: &Policy, max_rounds: usize) -> (Option<usize>, BalanceStats) {
        let total = BalanceStats::new();
        for round in 0..=max_rounds {
            if self.is_work_conserving() {
                return (Some(round), total);
            }
            if round == max_rounds {
                break;
            }
            // Fold the per-round counters (including the per-level
            // attribution) into the total.
            total.merge_from(&self.concurrent_round(policy));
        }
        (None, total)
    }
}

/// Operations that only make sense on the mutex discipline: the lock-free
/// backend has no per-core lock to hold, so "lock everything" is not a
/// point in its design space.
impl<Q: TaskQueue + 'static> MultiQueue<PerCoreRq<Q>> {
    /// The pessimistic baseline: holds **every** runqueue lock while
    /// selecting, so selections can never be stale and steals never fail —
    /// at the cost of stalling every core of the machine for the duration.
    ///
    /// This is the design the paper rejects in §1; E11 measures how much it
    /// costs relative to [`MultiQueue::balance_once`].
    pub fn balance_once_pessimistic(&self, thief: CoreId, policy: &Policy) -> StealOutcome {
        // Lock all runqueues in id order (a global order, so concurrent
        // pessimistic balancers cannot deadlock).
        let guards: Vec<_> = self.cores.iter().map(|c| c.lock()).collect();
        let snapshots: Vec<CoreSnapshot> = self
            .cores
            .iter()
            .zip(&guards)
            .map(|(rq, inner)| CoreSnapshot {
                id: rq.id(),
                node: rq.node(),
                nr_threads: inner.nr_threads(),
                weighted_load: inner.weighted_load(),
                lightest_ready_weight: inner.queue.lightest_weight(),
                tracked_scaled: inner.tracked.scaled,
            })
            .collect();
        let thief_snap = snapshots[thief.0];
        let candidates: Vec<CoreSnapshot> = snapshots
            .into_iter()
            .filter(|s| s.id != thief && policy.filter.can_steal(&thief_snap, s))
            .collect();
        let Some(victim) = policy.choice.choose(&thief_snap, &candidates) else {
            return StealOutcome::NoCandidates;
        };
        drop(guards);
        // Re-acquire just the two locks to perform the migration; because the
        // selection was made under the global lock there is no staleness in a
        // single-threaded use, and under concurrency the re-check still
        // protects correctness.
        try_steal(&self.cores[thief.0], &self.cores[victim.0], policy.filter.as_ref(), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::Policy;

    /// The deque-backed machine, for the shared-behaviour tests below.
    type DequeMq = MultiQueue<crate::DequeRq>;

    #[test]
    fn balance_once_fixes_a_two_core_imbalance() {
        let mq: MultiQueue = MultiQueue::with_loads(&[0, 3]);
        let policy = Policy::simple();
        let outcome = mq.balance_once(CoreId(0), &policy);
        assert!(outcome.is_success());
        assert_eq!(mq.core(CoreId(0)).snapshot().nr_threads, 1);
        assert_eq!(mq.core(CoreId(1)).snapshot().nr_threads, 2);
        assert_eq!(mq.total_threads(), 3);
    }

    #[test]
    fn concurrent_round_preserves_every_task() {
        let mq: MultiQueue = MultiQueue::with_loads(&[0, 8, 0, 4, 0, 0, 2, 1]);
        let before = mq.total_threads();
        let policy = Policy::simple();
        let stats = mq.concurrent_round(&policy);
        assert_eq!(mq.total_threads(), before, "steals must neither lose nor duplicate tasks");
        assert!(stats.successes() >= 1);
    }

    #[test]
    fn converge_reaches_work_conservation() {
        let mq: MultiQueue = MultiQueue::with_loads(&[0, 0, 0, 0, 0, 0, 0, 16]);
        let policy = Policy::simple();
        let (rounds, stats) = mq.converge(&policy, 64);
        assert!(rounds.is_some(), "optimistic balancing must converge");
        assert!(mq.is_work_conserving());
        assert!(stats.successes() >= 7, "at least seven cores had to obtain work");
    }

    #[test]
    fn synchronized_round_produces_real_optimistic_failures() {
        // Seven idle cores all select the single overloaded core against the
        // same pre-round snapshot; only a few steals can succeed, the rest
        // must fail their re-check — on real OS threads, not in the model.
        let mq: MultiQueue = MultiQueue::with_loads(&[4, 0, 0, 0, 0, 0, 0, 0]);
        let policy = Policy::simple();
        let stats = mq.concurrent_round_synchronized(&policy);
        assert_eq!(mq.total_threads(), 4);
        assert!(stats.successes() >= 1);
        assert!(
            stats.successes() + stats.recheck_failures() >= 7,
            "every idle core chose the hot core as its victim"
        );
        assert!(stats.recheck_failures() >= 1, "conflicting selections must produce failures");
    }

    #[test]
    fn deque_backend_balances_and_conserves_through_the_same_api() {
        // The identical generic machinery, on the lock-free backend.
        let mq: DequeMq = MultiQueue::with_loads(&[0, 3]);
        let policy = Policy::simple();
        assert!(mq.balance_once(CoreId(0), &policy).is_success());
        assert_eq!(mq.core(CoreId(0)).snapshot().nr_threads, 1);
        assert_eq!(mq.total_threads(), 3);

        let mq: DequeMq = MultiQueue::with_loads(&[0, 0, 0, 0, 0, 0, 0, 16]);
        let (rounds, stats) = mq.converge(&policy, 64);
        assert!(rounds.is_some(), "lock-free optimistic balancing must converge");
        assert!(mq.is_work_conserving());
        assert_eq!(mq.total_threads(), 16);
        assert!(stats.successes() >= 7);
    }

    #[test]
    fn deque_backend_synchronized_round_produces_optimistic_failures() {
        // The maximally stale interleaving on the lock-free backend: the
        // conflicting selections resolve through CAS claims instead of
        // lock rechecks, but the P1 accounting is the same.
        let mq: DequeMq = MultiQueue::with_loads(&[4, 0, 0, 0, 0, 0, 0, 0]);
        let policy = Policy::simple();
        let stats = mq.concurrent_round_synchronized(&policy);
        assert_eq!(mq.total_threads(), 4);
        assert!(stats.successes() >= 1);
        assert!(
            stats.successes() + stats.recheck_failures() + stats.nothing_to_steal() >= 7,
            "every idle core chose the hot core as its victim"
        );
        assert!(stats.failures() >= 1, "conflicting selections must produce failures");
    }

    #[test]
    fn deque_backend_hierarchical_round_attributes_levels() {
        let topo =
            sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).smt(2).build();
        let mq: DequeMq = MultiQueue::with_topology(&topo);
        for _ in 0..3 {
            mq.spawn_on(CoreId(1));
            mq.spawn_on(CoreId(4));
        }
        let policy = Policy::simple();
        let stats = BalanceStats::new();
        let outcome = mq.balance_once_hierarchical(CoreId(0), &policy, &stats);
        assert!(outcome.is_success());
        assert_eq!(stats.level_migrations(sched_topology::StealLevel::SmtSibling), 1);
        assert_eq!(stats.level_migrations(sched_topology::StealLevel::Remote), 0);
    }

    #[test]
    fn deque_backend_pelt_loads_decay_and_gate_the_filter() {
        use sched_core::{LoadMetric, PeltTracker};

        let half_life = 8_000_000u64;
        let mq: DequeMq = MultiQueue::with_tracker(
            2,
            std::sync::Arc::new(PeltTracker::new(LoadMetric::NrThreads, half_life)),
        );
        for _ in 0..4 {
            mq.spawn_on(CoreId(1));
        }
        assert_eq!(mq.snapshots()[1].load(LoadMetric::Tracked), 0, "cold tracked loads");
        let policy = Policy::pelt(half_life);
        assert!(!mq.balance_once(CoreId(0), &policy).is_success());
        mq.tick(32 * half_life);
        assert_eq!(mq.snapshots()[1].load(LoadMetric::Tracked), 4);
        assert!(mq.balance_once(CoreId(0), &policy).is_success());
        assert_eq!(mq.total_threads(), 4);
    }

    #[test]
    fn pessimistic_balancing_also_works() {
        let mq: MultiQueue = MultiQueue::with_loads(&[0, 4]);
        let policy = Policy::simple();
        let outcome = mq.balance_once_pessimistic(CoreId(0), &policy);
        assert!(outcome.is_success());
        assert!(mq.is_work_conserving());
    }

    #[test]
    fn topology_construction_assigns_nodes() {
        let topo = sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).build();
        let mq: MultiQueue = MultiQueue::with_topology(&topo);
        assert_eq!(mq.nr_cores(), 4);
        assert_ne!(mq.core(CoreId(0)).node(), mq.core(CoreId(3)).node());
    }

    #[test]
    fn spawn_on_allocates_unique_ids() {
        let mq: MultiQueue = MultiQueue::new(2);
        let a = mq.spawn_on(CoreId(0));
        let b = mq.spawn_on(CoreId(1));
        assert_ne!(a, b);
        assert_eq!(mq.total_threads(), 2);
    }

    #[test]
    fn pelt_tracked_loads_decay_on_ticks_and_gate_the_filter() {
        use sched_core::{LoadMetric, PeltTracker};

        let half_life = 8_000_000u64;
        let mq: MultiQueue = MultiQueue::with_tracker(
            2,
            std::sync::Arc::new(PeltTracker::new(LoadMetric::NrThreads, half_life)),
        );
        for _ in 0..4 {
            mq.spawn_on(CoreId(1));
        }
        // Fresh queues publish a cold (zero) tracked load: the decayed
        // criterion has not seen any history yet.
        assert_eq!(mq.snapshots()[1].load(LoadMetric::Tracked), 0);
        let policy = Policy::pelt(half_life);
        assert!(!mq.balance_once(CoreId(0), &policy).is_success(), "cold tracked loads");
        // Many half-lives later the tracked load has converged to the
        // instantaneous one, and balancing proceeds as Listing 1 would.
        mq.tick(32 * half_life);
        assert_eq!(mq.snapshots()[1].load(LoadMetric::Tracked), 4);
        assert!(mq.balance_once(CoreId(0), &policy).is_success());
        // The dequeue is folded at the frozen clock, so the tracked value
        // survives the migration and only decays on the next tick.
        assert_eq!(mq.snapshots()[1].load(LoadMetric::Tracked), 4);
        mq.tick(33 * half_life);
        assert!(mq.snapshots()[1].tracked_scaled < 4 * sched_core::TRACK_SCALE);
        assert_eq!(mq.total_threads(), 4);
    }

    #[test]
    fn instantaneous_trackers_mirror_loads_through_the_tracked_view() {
        use sched_core::LoadMetric;

        let mq: MultiQueue = MultiQueue::with_loads(&[3, 0]);
        let snap = mq.snapshots();
        assert_eq!(snap[0].load(LoadMetric::Tracked), 3);
        assert_eq!(snap[1].load(LoadMetric::Tracked), 0);
        assert_eq!(mq.tracker().name(), "nr_threads");
        assert_eq!(mq.now_ns(), 0);
    }

    fn numa_mq() -> MultiQueue {
        // 2 sockets × 2 cores × SMT-2 = 8 CPUs; cpu0's sibling is cpu1.
        let topo =
            sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).smt(2).build();
        MultiQueue::with_topology(&topo)
    }

    #[test]
    fn recorded_rounds_attribute_steal_levels() {
        let mq = numa_mq();
        for _ in 0..4 {
            mq.spawn_on(CoreId(0));
        }
        let policy = Policy::simple();
        let stats = BalanceStats::new();
        // The SMT sibling of the hot core steals: a level-0 migration.
        let outcome = mq.balance_once_recorded(CoreId(1), &policy, &stats);
        assert!(outcome.is_success());
        assert_eq!(stats.level_migrations(sched_topology::StealLevel::SmtSibling), 1);
        // A remote core steals: attributed to the remote level.
        let outcome = mq.balance_once_recorded(CoreId(4), &policy, &stats);
        assert!(outcome.is_success());
        assert_eq!(stats.level_migrations(sched_topology::StealLevel::Remote), 1);
        assert_eq!(stats.level_migration_counts(), [1, 0, 0, 1]);
    }

    #[test]
    fn hierarchical_operation_prefers_the_nearest_victim() {
        let mq = numa_mq();
        // Both the SMT sibling (cpu1) and a remote core (cpu4) are
        // overloaded; the hierarchical search must take the sibling.
        for _ in 0..3 {
            mq.spawn_on(CoreId(1));
            mq.spawn_on(CoreId(4));
        }
        let policy = Policy::simple();
        let stats = BalanceStats::new();
        let outcome = mq.balance_once_hierarchical(CoreId(0), &policy, &stats);
        assert!(outcome.is_success());
        assert_eq!(stats.level_migrations(sched_topology::StealLevel::SmtSibling), 1);
        assert_eq!(stats.level_migrations(sched_topology::StealLevel::Remote), 0);
    }

    #[test]
    fn hierarchical_operation_falls_back_outwards_after_a_failed_level() {
        let mq = numa_mq();
        // The sibling has exactly 2 threads; a first steal drains it below
        // the filter threshold, so a second hierarchical thief must fall
        // back to the loaded remote core within one operation.
        mq.spawn_on(CoreId(1));
        mq.spawn_on(CoreId(1));
        for _ in 0..4 {
            mq.spawn_on(CoreId(4));
        }
        let policy = Policy::simple();
        let stats = BalanceStats::new();
        assert!(mq.balance_once_hierarchical(CoreId(0), &policy, &stats).is_success());
        // cpu0 now has 1 thread, sibling has 1: the SMT level is exhausted.
        let outcome = mq.balance_once_hierarchical(CoreId(2), &policy, &stats);
        assert!(outcome.is_success());
        assert!(
            stats.level_migrations(sched_topology::StealLevel::Remote) >= 1,
            "the second thief had to escalate to the remote level"
        );
    }

    #[test]
    fn hierarchical_convergence_reaches_work_conservation() {
        let mq = numa_mq();
        for _ in 0..16 {
            mq.spawn_on(CoreId(0));
        }
        let policy = Policy::simple();
        let (rounds, stats) = mq.converge_hierarchical(&policy, 64);
        assert!(rounds.is_some(), "hierarchical balancing must converge");
        assert!(mq.is_work_conserving());
        assert_eq!(mq.total_threads(), 16);
        assert!(stats.migrations() >= 7, "seven idle cores had to obtain work");
        assert!(
            stats.level_migrations(sched_topology::StealLevel::Remote) >= 1,
            "work had to cross the node boundary"
        );
    }

    #[test]
    fn stats_stay_consistent_when_steals_race_local_wakeups() {
        // Steals race local wakeups (enqueues) on the victim; because the
        // counters move inside the stealing phase's critical section, the
        // final thread count must equal spawns, and the migration counter
        // must equal the threads that actually changed cores.
        let mq = std::sync::Arc::new({
            let mq: MultiQueue = MultiQueue::new(4);
            for _ in 0..8 {
                mq.spawn_on(CoreId(0));
            }
            mq
        });
        let policy = Policy::simple();
        let stats = BalanceStats::new();
        std::thread::scope(|scope| {
            let waker = {
                let mq = std::sync::Arc::clone(&mq);
                scope.spawn(move || {
                    for _ in 0..32 {
                        mq.spawn_on(CoreId(0));
                        std::thread::yield_now();
                    }
                })
            };
            for _ in 0..16 {
                let stats = &stats;
                let policy = &policy;
                let mq = std::sync::Arc::clone(&mq);
                scope.spawn(move || {
                    for thief in 1..4 {
                        let _ = mq.balance_once_recorded(CoreId(thief), policy, stats);
                    }
                });
            }
            waker.join().unwrap();
        });
        assert_eq!(mq.total_threads(), 40, "8 initial + 32 woken, none lost or duplicated");
        // Every thread residing away from its spawn core got there through
        // a recorded migration (threads may migrate more than once, so the
        // counter bounds the residents from above), and with `StealOne`
        // each success accounts for exactly one migration — an entity can
        // never be double-counted by a steal racing a wakeup.
        let moved: u64 = (1..4).map(|c| mq.core(CoreId(c)).nr_threads_exact()).sum();
        assert!(moved <= stats.migrations(), "{moved} residents > {} counted", stats.migrations());
        assert_eq!(stats.migrations(), stats.successes());
    }
}
