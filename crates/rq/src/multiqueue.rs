//! A machine's worth of concurrent runqueues and optimistic balancing over
//! them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sched_core::tracker::{LoadTracker, NrThreadsTracker};
use sched_core::{CoreId, CoreSnapshot, LoadMetric, Nice, Policy, StealOutcome, TaskId, Weight};
use sched_topology::{MachineTopology, NodeId, StealLevel};
use sched_trace::{TraceEvent, TraceSink};

use crate::backend::RqBackend;
use crate::entity::RqTask;
use crate::fifo::FifoQueue;
use crate::percore::PerCoreRq;
use crate::stats::BalanceStats;
use crate::steal::{try_steal, StealRecorder};
use crate::TaskQueue;

/// How many tasks one steal decision asks the stealing phase for.
///
/// Sizing happens in the *selection* phase, from the same lock-less
/// snapshots the filter and choice read: by the time the claim runs the
/// observation may be stale, which is fine — the backend claims at most
/// what the victim still has, the per-task re-check trims a batch that
/// would overshoot, and a partial batch is still a success (see
/// [`sched_core::ChoicePolicy::observe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealBatch {
    /// One task per steal decision — Listing 1's `stealOneThread`, and the
    /// default everywhere batching is not explicitly requested.
    #[default]
    One,
    /// A fixed number of tasks per decision (clamped to at least one).
    Fixed(usize),
    /// Half the observed imbalance, in whole tasks of the policy's load
    /// unit — the [`sched_core::policy::steal::StealHalfImbalance`] rule, applied to the
    /// claim size instead of a locked task-by-task selection.  Moving half
    /// the surplus converges like binary search while never inverting the
    /// imbalance the filter approved (the P2 potential argument).
    HalfImbalance,
}

impl StealBatch {
    /// Sizes the claim for one (thief, victim) pair from their
    /// selection-phase snapshots; always at least one.
    pub fn size(self, policy: &Policy, thief: &CoreSnapshot, victim: &CoreSnapshot) -> usize {
        match self {
            StealBatch::One => 1,
            StealBatch::Fixed(k) => k.max(1),
            StealBatch::HalfImbalance => {
                // One "task" of surplus is one load unit of the tracked
                // base: a raw thread for thread counts, a `nice 0` weight
                // for weighted loads (matching `StealHalfImbalance`).
                let unit = match policy.tracker.base() {
                    LoadMetric::Weighted => Weight::NICE_0.raw(),
                    _ => 1,
                };
                let surplus = victim.load(policy.metric).saturating_sub(thief.load(policy.metric));
                usize::try_from(surplus / unit / 2).unwrap_or(usize::MAX).max(1)
            }
        }
    }
}

/// All the per-core runqueues of one machine.
///
/// This is the threaded counterpart of [`sched_core::SystemState`]: the same
/// [`Policy`] objects drive balancing here, but the selection phase reads
/// lock-free atomics and the stealing phase really does contend from
/// multiple OS threads.
///
/// `MultiQueue` is generic over the [`RqBackend`] discipline of its
/// runqueues: the mutex backend ([`PerCoreRq`], the default) double-locks
/// the stealing phase, the lock-free backend ([`crate::DequeRq`]) claims
/// with a CAS at the top of a Chase–Lev deque.  All the balancing
/// machinery — flat and hierarchical rounds, stats recording, tracker
/// ticks — is this one generic implementation.
///
/// When built over a [`MachineTopology`] the queue knows the distance class
/// of every (thief, victim) pair: successful steals are attributed to their
/// [`StealLevel`] in the round's [`BalanceStats`], and
/// [`MultiQueue::hierarchical_round`] runs the domain-ordered balancing
/// passes (SMT → LLC → node → machine) on real OS threads.
#[derive(Debug)]
pub struct MultiQueue<B: RqBackend = PerCoreRq<FifoQueue>> {
    cores: Vec<B>,
    topo: Option<Arc<MachineTopology>>,
    tracker: Arc<dyn LoadTracker>,
    /// Logical machine clock, in nanoseconds: advanced by [`MultiQueue::tick`],
    /// read by every runqueue when folding its decayed load.
    clock: Arc<AtomicU64>,
    next_task_id: AtomicU64,
    /// Decision trace sink; disabled (one branch per would-be record, zero
    /// atomics) unless [`MultiQueue::set_trace_sink`] attached one.
    trace: TraceSink,
}

impl<B: RqBackend> MultiQueue<B> {
    /// Creates `nr_cores` empty runqueues, all on NUMA node 0, tracking
    /// instantaneous thread counts.
    pub fn new(nr_cores: usize) -> Self {
        Self::with_tracker(nr_cores, Arc::new(NrThreadsTracker))
    }

    /// Creates `nr_cores` empty runqueues maintaining their load under
    /// `tracker`.
    pub fn with_tracker(nr_cores: usize, tracker: Arc<dyn LoadTracker>) -> Self {
        let clock = Arc::new(AtomicU64::new(0));
        let cores = (0..nr_cores)
            .map(|i| {
                B::with_tracker(CoreId(i), NodeId(0), Arc::clone(&tracker), Arc::clone(&clock))
            })
            .collect();
        MultiQueue {
            cores,
            topo: None,
            tracker,
            clock,
            next_task_id: AtomicU64::new(0),
            trace: TraceSink::disabled(),
        }
    }

    /// Creates one runqueue per CPU of `topo`, with matching node ids; the
    /// topology is retained for distance-ordered stealing and per-level
    /// steal attribution.
    pub fn with_topology(topo: &MachineTopology) -> Self {
        Self::with_topology_and_tracker(topo, Arc::new(NrThreadsTracker))
    }

    /// Creates one runqueue per CPU of `topo`, maintaining loads under
    /// `tracker`.
    pub fn with_topology_and_tracker(
        topo: &MachineTopology,
        tracker: Arc<dyn LoadTracker>,
    ) -> Self {
        let clock = Arc::new(AtomicU64::new(0));
        let cores = topo
            .cpus()
            .iter()
            .map(|c| B::with_tracker(c.id, c.node, Arc::clone(&tracker), Arc::clone(&clock)))
            .collect();
        MultiQueue {
            cores,
            topo: Some(Arc::new(topo.clone())),
            tracker,
            clock,
            next_task_id: AtomicU64::new(0),
            trace: TraceSink::disabled(),
        }
    }

    /// Attaches a trace sink: balancing decisions (steal attempts with
    /// their level attribution, migrations, no-candidate rounds) and task
    /// placements are recorded from here on, and each backend gets a clone
    /// for its internal events (overflow spills, injector drains, batch
    /// trims).  Recording happens at exactly the program points where
    /// [`BalanceStats`] counters move, so a drained trace folds back to
    /// the stats (`sched_trace::FoldedStats`) bit for bit.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        for core in &mut self.cores {
            core.attach_trace(sink.clone());
        }
        self.trace = sink;
    }

    /// The attached trace sink (disabled unless
    /// [`MultiQueue::set_trace_sink`] was called).
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// Counts — and, when tracing, records — a selection phase that chose
    /// no victim at all, on `thief`'s ring.
    fn record_no_candidates(&self, thief: CoreId, stats: &BalanceStats) {
        stats.record(&StealOutcome::NoCandidates);
        if self.trace.is_enabled() {
            self.trace.record(
                thief,
                self.now_ns(),
                &TraceEvent::steal_attempt(&StealOutcome::NoCandidates, None, 1),
            );
        }
    }

    /// The machine topology, if this queue was built over one.
    pub fn topology(&self) -> Option<&Arc<MachineTopology>> {
        self.topo.as_ref()
    }

    /// The load criterion the runqueues are maintained under.
    pub fn tracker(&self) -> &Arc<dyn LoadTracker> {
        &self.tracker
    }

    /// The machine's logical clock, in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    /// Advances the logical clock to `now_ns` and folds the elapsed time
    /// into every core's tracked load — the runqueue substrate's scheduler
    /// tick.  Each core is refreshed under its own lock, so ticks interleave
    /// safely with concurrent balancing.
    ///
    /// A clock that went backwards would make decayed sums non-monotone, so
    /// earlier timestamps are ignored.
    pub fn tick(&self, now_ns: u64) {
        self.clock.fetch_max(now_ns, Ordering::AcqRel);
        for core in &self.cores {
            core.refresh();
        }
    }

    /// Distance class between two distinct cores: exact when a topology is
    /// attached, node-based (same node vs remote) otherwise.
    pub fn steal_level_of(&self, thief: CoreId, victim: CoreId) -> StealLevel {
        match &self.topo {
            Some(topo) => topo.steal_level(thief, victim),
            None => {
                if self.cores[thief.0].node() == self.cores[victim.0].node() {
                    StealLevel::SameNode
                } else {
                    StealLevel::Remote
                }
            }
        }
    }

    /// Creates runqueues pre-populated so core `i` holds `loads[i]` `nice 0`
    /// tasks.
    pub fn with_loads(loads: &[usize]) -> Self {
        let mq = Self::new(loads.len());
        for (core, &n) in loads.iter().enumerate() {
            for _ in 0..n {
                mq.spawn_on(CoreId(core));
            }
        }
        mq
    }

    /// Number of cores.
    pub fn nr_cores(&self) -> usize {
        self.cores.len()
    }

    /// One core's runqueue.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core(&self, id: CoreId) -> &B {
        &self.cores[id.0]
    }

    /// All runqueues, in id order.
    pub fn cores(&self) -> &[B] {
        &self.cores
    }

    /// Creates a fresh `nice 0` task and makes it runnable on `core`.
    pub fn spawn_on(&self, core: CoreId) -> TaskId {
        let id = TaskId(self.next_task_id.fetch_add(1, Ordering::Relaxed));
        self.trace_placement(id, core);
        self.cores[core.0].enqueue(RqTask::new(id));
        id
    }

    /// Creates a fresh task with the given niceness and makes it runnable on
    /// `core`.
    pub fn spawn_on_with_nice(&self, core: CoreId, nice: Nice) -> TaskId {
        let id = TaskId(self.next_task_id.fetch_add(1, Ordering::Relaxed));
        self.trace_placement(id, core);
        self.cores[core.0].enqueue(RqTask::with_nice(id, nice));
        id
    }

    /// Records a wakeup and its placement on the placed core's ring.
    fn trace_placement(&self, task: TaskId, core: CoreId) {
        if self.trace.is_enabled() {
            let now = self.now_ns();
            self.trace.record(core, now, &TraceEvent::TaskWake { task });
            self.trace.record(core, now, &TraceEvent::PlaceDecision { task, core });
        }
    }

    /// Lock-less snapshots of every core, in id order (the selection phase's
    /// entire view of the world).
    pub fn snapshots(&self) -> Vec<CoreSnapshot> {
        self.cores.iter().map(B::snapshot).collect()
    }

    /// Total number of threads across all runqueues (exact, takes each lock
    /// in turn; used by invariant checks, not by balancing).
    pub fn total_threads(&self) -> u64 {
        self.cores.iter().map(B::nr_threads_exact).sum()
    }

    /// Returns `true` if no core is idle while another is overloaded,
    /// judged on exact (locked) loads.
    pub fn is_work_conserving(&self) -> bool {
        let loads: Vec<u64> = self.cores.iter().map(B::nr_threads_exact).collect();
        let any_idle = loads.contains(&0);
        let any_overloaded = loads.iter().any(|&l| l >= 2);
        !(any_idle && any_overloaded)
    }

    /// Runs the three-step optimistic balancing operation for one core.
    ///
    /// Steps 1 and 2 (filter + choice) read only the lock-less snapshots;
    /// step 3 locks exactly the two runqueues involved.
    pub fn balance_once(&self, thief: CoreId, policy: &Policy) -> StealOutcome {
        self.balance_once_inner(thief, policy, None, StealBatch::One)
    }

    /// Like [`MultiQueue::balance_once`], but records the outcome (with its
    /// steal-level attribution) into `stats` while the runqueue locks are
    /// still held, so the counters move atomically with the dequeue.
    pub fn balance_once_recorded(
        &self,
        thief: CoreId,
        policy: &Policy,
        stats: &BalanceStats,
    ) -> StealOutcome {
        self.balance_once_inner(thief, policy, Some(stats), StealBatch::One)
    }

    /// Like [`MultiQueue::balance_once_recorded`], with the stealing phase
    /// sized by `batch` instead of fixed at one task: the thief claims up
    /// to `batch.size(...)` threads in one decision (one multi-claim CAS on
    /// the deque backend, one lock hold on the mutex backend).
    pub fn balance_once_batched(
        &self,
        thief: CoreId,
        policy: &Policy,
        batch: StealBatch,
        stats: &BalanceStats,
    ) -> StealOutcome {
        self.balance_once_inner(thief, policy, Some(stats), batch)
    }

    fn balance_once_inner(
        &self,
        thief: CoreId,
        policy: &Policy,
        stats: Option<&BalanceStats>,
        batch: StealBatch,
    ) -> StealOutcome {
        // Selection phase: lock-less.
        let snapshots = self.snapshots();
        let thief_snap = snapshots[thief.0];
        let candidates: Vec<CoreSnapshot> = snapshots
            .into_iter()
            .filter(|s| s.id != thief && policy.filter.can_steal(&thief_snap, s))
            .collect();
        let Some(victim) = policy.choice.choose(&thief_snap, &candidates) else {
            if let Some(stats) = stats {
                self.record_no_candidates(thief, stats);
            }
            return StealOutcome::NoCandidates;
        };
        // The claim is sized from the same optimistic observations the
        // choice just used (the victim is a member of `candidates` by the
        // choice post-condition).
        let victim_snap = candidates.iter().find(|s| s.id == victim).expect("choice membership");
        let max_tasks = batch.size(policy, &thief_snap, victim_snap);
        // Stealing phase: atomic per backend discipline (double-lock or
        // CAS claim), re-checked; the outcome is counted with the claim
        // and attributed to the victim's distance class.
        let outcome = B::try_steal_recorded(
            &self.cores[thief.0],
            &self.cores[victim.0],
            policy.filter.as_ref(),
            max_tasks,
            stats.map(|stats| {
                StealRecorder::new(stats, Some(self.steal_level_of(thief, victim))).with_trace(
                    &self.trace,
                    thief,
                    self.now_ns(),
                )
            }),
        );
        // Adaptive choices (topology-aware backoff) learn from the outcome.
        // `is_success()` is true for *any* nonzero claim: a partial batch
        // migrated real work and must not feed the failure backoff.
        policy.choice.observe(thief, victim, outcome.is_success());
        outcome
    }

    /// Runs the distance-ordered balancing operation for one core: victims
    /// are searched innermost level first (SMT sibling → same LLC → same
    /// node → remote), and a steal that fails its re-check at one level
    /// falls back to the next level **within the same operation** — the
    /// retry a pure step-2 choice policy cannot express, because by the
    /// time the failure is known the selection phase is over.
    ///
    /// Requires a topology ([`MultiQueue::with_topology`]); without one this
    /// is [`MultiQueue::balance_once_recorded`].
    pub fn balance_once_hierarchical(
        &self,
        thief: CoreId,
        policy: &Policy,
        stats: &BalanceStats,
    ) -> StealOutcome {
        let Some(topo) = self.topo.clone() else {
            return self.balance_once_recorded(thief, policy, stats);
        };
        // Selection phase: lock-less, bucketing candidates by distance.
        let snapshots = self.snapshots();
        let thief_snap = snapshots[thief.0];
        let mut by_level: [Vec<CoreSnapshot>; 4] = [vec![], vec![], vec![], vec![]];
        for s in snapshots {
            if s.id != thief && policy.filter.can_steal(&thief_snap, &s) {
                by_level[topo.steal_level(thief, s.id).index()].push(s);
            }
        }
        if by_level.iter().all(Vec::is_empty) {
            self.record_no_candidates(thief, stats);
            return StealOutcome::NoCandidates;
        }
        // Stealing phase: walk the levels outwards, letting the policy's
        // choice pick within each level; only the final (farthest populated)
        // level's failure is the operation's outcome.
        let mut last = StealOutcome::NoCandidates;
        for level in StealLevel::ALL {
            let group = &by_level[level.index()];
            if group.is_empty() {
                continue;
            }
            let Some(victim) = policy.choice.choose(&thief_snap, group) else {
                continue;
            };
            let outcome = B::try_steal_recorded(
                &self.cores[thief.0],
                &self.cores[victim.0],
                policy.filter.as_ref(),
                1,
                Some(StealRecorder::new(stats, Some(level)).with_trace(
                    &self.trace,
                    thief,
                    self.now_ns(),
                )),
            );
            policy.choice.observe(thief, victim, outcome.is_success());
            if outcome.is_success() {
                return outcome;
            }
            last = outcome;
        }
        last
    }

    /// Runs one *concurrent* balancing round: every core executes
    /// [`MultiQueue::balance_once`] from its own OS thread simultaneously,
    /// which is how CFS runs its 4 ms balancing pass on every core at once.
    ///
    /// Returns the aggregated outcome counters.
    pub fn concurrent_round(&self, policy: &Policy) -> BalanceStats {
        self.concurrent_round_batched(policy, StealBatch::One)
    }

    /// Like [`MultiQueue::concurrent_round`], with every core's steal
    /// decision sized by `batch`: one acquisition (multi-claim CAS, batched
    /// injector lock, or one mutex hold) moves up to `batch.size(...)`
    /// threads.  [`StealBatch::One`] makes this exactly
    /// [`MultiQueue::concurrent_round`].
    pub fn concurrent_round_batched(&self, policy: &Policy, batch: StealBatch) -> BalanceStats {
        let stats = BalanceStats::new();
        std::thread::scope(|scope| {
            for core in &self.cores {
                let stats = &stats;
                let mq = &*self;
                scope.spawn(move || {
                    // The outcome is recorded inside the stealing phase's
                    // critical section, atomically with the dequeue.
                    let _ = mq.balance_once_inner(core.id(), policy, Some(stats), batch);
                });
            }
        });
        stats
    }

    /// Runs one *hierarchical* concurrent round: every core executes the
    /// distance-ordered [`MultiQueue::balance_once_hierarchical`] operation
    /// from its own OS thread simultaneously — the threaded mirror of
    /// [`sched_core::HierarchicalRound`], so the same domain-ordered policy
    /// runs at all three altitudes.
    pub fn hierarchical_round(&self, policy: &Policy) -> BalanceStats {
        let stats = BalanceStats::new();
        std::thread::scope(|scope| {
            for core in &self.cores {
                let stats = &stats;
                let mq = &*self;
                scope.spawn(move || {
                    let _ = mq.balance_once_hierarchical(core.id(), policy, stats);
                });
            }
        });
        stats
    }

    /// Runs hierarchical rounds until the machine is work-conserving or the
    /// round budget is exhausted; returns the number of rounds used, if it
    /// converged, plus the folded outcome counters.
    pub fn converge_hierarchical(
        &self,
        policy: &Policy,
        max_rounds: usize,
    ) -> (Option<usize>, BalanceStats) {
        let total = BalanceStats::new();
        for round in 0..=max_rounds {
            if self.is_work_conserving() {
                return (Some(round), total);
            }
            if round == max_rounds {
                break;
            }
            total.merge_from(&self.hierarchical_round(policy));
        }
        (None, total)
    }

    /// Like [`MultiQueue::concurrent_round`], but every thread performs its
    /// selection phase against the *initial* state of the round: all threads
    /// rendezvous on a barrier between selecting and stealing.
    ///
    /// This is the threaded equivalent of the model's
    /// `RoundSchedule::AllSelectThenSteal` — the maximally stale
    /// interleaving, in which conflicting optimistic selections (and hence
    /// failed steals) are guaranteed rather than merely possible.  E11 uses
    /// it to measure the failure rate the paper's P1/P2 lemmas are about.
    pub fn concurrent_round_synchronized(&self, policy: &Policy) -> BalanceStats {
        let stats = BalanceStats::new();
        let barrier = std::sync::Barrier::new(self.cores.len());
        std::thread::scope(|scope| {
            for core in &self.cores {
                let stats = &stats;
                let barrier = &barrier;
                let mq = &*self;
                scope.spawn(move || {
                    // Selection phase: lock-less, on the pre-round state.
                    let snapshots = mq.snapshots();
                    let thief_snap = snapshots[core.id().0];
                    let candidates: Vec<CoreSnapshot> = snapshots
                        .into_iter()
                        .filter(|s| s.id != core.id() && policy.filter.can_steal(&thief_snap, s))
                        .collect();
                    let chosen = policy.choice.choose(&thief_snap, &candidates);
                    // Every core finishes selecting before anyone steals.
                    barrier.wait();
                    match chosen {
                        Some(victim) => {
                            let outcome = B::try_steal_recorded(
                                &mq.cores[core.id().0],
                                &mq.cores[victim.0],
                                policy.filter.as_ref(),
                                1,
                                Some(
                                    StealRecorder::new(
                                        stats,
                                        Some(mq.steal_level_of(core.id(), victim)),
                                    )
                                    .with_trace(
                                        &mq.trace,
                                        core.id(),
                                        mq.now_ns(),
                                    ),
                                ),
                            );
                            policy.choice.observe(core.id(), victim, outcome.is_success());
                        }
                        None => mq.record_no_candidates(core.id(), stats),
                    };
                });
            }
        });
        stats
    }

    /// Runs concurrent rounds until the machine is work-conserving or the
    /// round budget is exhausted; returns the number of rounds used, if it
    /// converged.
    pub fn converge(&self, policy: &Policy, max_rounds: usize) -> (Option<usize>, BalanceStats) {
        let total = BalanceStats::new();
        for round in 0..=max_rounds {
            if self.is_work_conserving() {
                return (Some(round), total);
            }
            if round == max_rounds {
                break;
            }
            // Fold the per-round counters (including the per-level
            // attribution) into the total.
            total.merge_from(&self.concurrent_round(policy));
        }
        (None, total)
    }
}

/// Operations that only make sense on the mutex discipline: the lock-free
/// backend has no per-core lock to hold, so "lock everything" is not a
/// point in its design space.
impl<Q: TaskQueue + 'static> MultiQueue<PerCoreRq<Q>> {
    /// The pessimistic baseline: holds **every** runqueue lock while
    /// selecting, so selections can never be stale and steals never fail —
    /// at the cost of stalling every core of the machine for the duration.
    ///
    /// This is the design the paper rejects in §1; E11 measures how much it
    /// costs relative to [`MultiQueue::balance_once`].
    pub fn balance_once_pessimistic(&self, thief: CoreId, policy: &Policy) -> StealOutcome {
        // Lock all runqueues in id order (a global order, so concurrent
        // pessimistic balancers cannot deadlock).
        let guards: Vec<_> = self.cores.iter().map(|c| c.lock()).collect();
        let snapshots: Vec<CoreSnapshot> = self
            .cores
            .iter()
            .zip(&guards)
            .map(|(rq, inner)| CoreSnapshot {
                id: rq.id(),
                node: rq.node(),
                nr_threads: inner.nr_threads(),
                weighted_load: inner.weighted_load(),
                lightest_ready_weight: inner.queue.lightest_weight(),
                tracked_scaled: inner.tracked.scaled,
                injected: 0,
            })
            .collect();
        let thief_snap = snapshots[thief.0];
        let candidates: Vec<CoreSnapshot> = snapshots
            .into_iter()
            .filter(|s| s.id != thief && policy.filter.can_steal(&thief_snap, s))
            .collect();
        let Some(victim) = policy.choice.choose(&thief_snap, &candidates) else {
            return StealOutcome::NoCandidates;
        };
        drop(guards);
        // Re-acquire just the two locks to perform the migration; because the
        // selection was made under the global lock there is no staleness in a
        // single-threaded use, and under concurrency the re-check still
        // protects correctness.
        try_steal(&self.cores[thief.0], &self.cores[victim.0], policy.filter.as_ref(), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::Policy;

    /// The deque-backed machine, for the shared-behaviour tests below.
    type DequeMq = MultiQueue<crate::DequeRq>;

    #[test]
    fn balance_once_fixes_a_two_core_imbalance() {
        let mq: MultiQueue = MultiQueue::with_loads(&[0, 3]);
        let policy = Policy::simple();
        let outcome = mq.balance_once(CoreId(0), &policy);
        assert!(outcome.is_success());
        assert_eq!(mq.core(CoreId(0)).snapshot().nr_threads, 1);
        assert_eq!(mq.core(CoreId(1)).snapshot().nr_threads, 2);
        assert_eq!(mq.total_threads(), 3);
    }

    #[test]
    fn concurrent_round_preserves_every_task() {
        let mq: MultiQueue = MultiQueue::with_loads(&[0, 8, 0, 4, 0, 0, 2, 1]);
        let before = mq.total_threads();
        let policy = Policy::simple();
        let stats = mq.concurrent_round(&policy);
        assert_eq!(mq.total_threads(), before, "steals must neither lose nor duplicate tasks");
        assert!(stats.successes() >= 1);
    }

    #[test]
    fn converge_reaches_work_conservation() {
        let mq: MultiQueue = MultiQueue::with_loads(&[0, 0, 0, 0, 0, 0, 0, 16]);
        let policy = Policy::simple();
        let (rounds, stats) = mq.converge(&policy, 64);
        assert!(rounds.is_some(), "optimistic balancing must converge");
        assert!(mq.is_work_conserving());
        assert!(stats.successes() >= 7, "at least seven cores had to obtain work");
    }

    #[test]
    fn synchronized_round_produces_real_optimistic_failures() {
        // Seven idle cores all select the single overloaded core against the
        // same pre-round snapshot; only a few steals can succeed, the rest
        // must fail their re-check — on real OS threads, not in the model.
        let mq: MultiQueue = MultiQueue::with_loads(&[4, 0, 0, 0, 0, 0, 0, 0]);
        let policy = Policy::simple();
        let stats = mq.concurrent_round_synchronized(&policy);
        assert_eq!(mq.total_threads(), 4);
        assert!(stats.successes() >= 1);
        assert!(
            stats.successes() + stats.recheck_failures() >= 7,
            "every idle core chose the hot core as its victim"
        );
        assert!(stats.recheck_failures() >= 1, "conflicting selections must produce failures");
    }

    #[test]
    fn deque_backend_balances_and_conserves_through_the_same_api() {
        // The identical generic machinery, on the lock-free backend.
        let mq: DequeMq = MultiQueue::with_loads(&[0, 3]);
        let policy = Policy::simple();
        assert!(mq.balance_once(CoreId(0), &policy).is_success());
        assert_eq!(mq.core(CoreId(0)).snapshot().nr_threads, 1);
        assert_eq!(mq.total_threads(), 3);

        let mq: DequeMq = MultiQueue::with_loads(&[0, 0, 0, 0, 0, 0, 0, 16]);
        let (rounds, stats) = mq.converge(&policy, 64);
        assert!(rounds.is_some(), "lock-free optimistic balancing must converge");
        assert!(mq.is_work_conserving());
        assert_eq!(mq.total_threads(), 16);
        assert!(stats.successes() >= 7);
    }

    #[test]
    fn deque_backend_synchronized_round_produces_optimistic_failures() {
        // The maximally stale interleaving on the lock-free backend: the
        // conflicting selections resolve through CAS claims instead of
        // lock rechecks, but the P1 accounting is the same.
        let mq: DequeMq = MultiQueue::with_loads(&[4, 0, 0, 0, 0, 0, 0, 0]);
        let policy = Policy::simple();
        let stats = mq.concurrent_round_synchronized(&policy);
        assert_eq!(mq.total_threads(), 4);
        assert!(stats.successes() >= 1);
        assert!(
            stats.successes() + stats.recheck_failures() + stats.nothing_to_steal() >= 7,
            "every idle core chose the hot core as its victim"
        );
        assert!(stats.failures() >= 1, "conflicting selections must produce failures");
    }

    #[test]
    fn deque_backend_hierarchical_round_attributes_levels() {
        let topo =
            sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).smt(2).build();
        let mq: DequeMq = MultiQueue::with_topology(&topo);
        for _ in 0..3 {
            mq.spawn_on(CoreId(1));
            mq.spawn_on(CoreId(4));
        }
        let policy = Policy::simple();
        let stats = BalanceStats::new();
        let outcome = mq.balance_once_hierarchical(CoreId(0), &policy, &stats);
        assert!(outcome.is_success());
        assert_eq!(stats.level_migrations(sched_topology::StealLevel::SmtSibling), 1);
        assert_eq!(stats.level_migrations(sched_topology::StealLevel::Remote), 0);
    }

    #[test]
    fn deque_backend_pelt_loads_decay_and_gate_the_filter() {
        use sched_core::{LoadMetric, PeltTracker};

        let half_life = 8_000_000u64;
        let mq: DequeMq = MultiQueue::with_tracker(
            2,
            std::sync::Arc::new(PeltTracker::new(LoadMetric::NrThreads, half_life)),
        );
        for _ in 0..4 {
            mq.spawn_on(CoreId(1));
        }
        assert_eq!(mq.snapshots()[1].load(LoadMetric::Tracked), 0, "cold tracked loads");
        let policy = Policy::pelt(half_life);
        assert!(!mq.balance_once(CoreId(0), &policy).is_success());
        mq.tick(32 * half_life);
        assert_eq!(mq.snapshots()[1].load(LoadMetric::Tracked), 4);
        assert!(mq.balance_once(CoreId(0), &policy).is_success());
        assert_eq!(mq.total_threads(), 4);
    }

    #[test]
    fn pessimistic_balancing_also_works() {
        let mq: MultiQueue = MultiQueue::with_loads(&[0, 4]);
        let policy = Policy::simple();
        let outcome = mq.balance_once_pessimistic(CoreId(0), &policy);
        assert!(outcome.is_success());
        assert!(mq.is_work_conserving());
    }

    #[test]
    fn topology_construction_assigns_nodes() {
        let topo = sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).build();
        let mq: MultiQueue = MultiQueue::with_topology(&topo);
        assert_eq!(mq.nr_cores(), 4);
        assert_ne!(mq.core(CoreId(0)).node(), mq.core(CoreId(3)).node());
    }

    #[test]
    fn spawn_on_allocates_unique_ids() {
        let mq: MultiQueue = MultiQueue::new(2);
        let a = mq.spawn_on(CoreId(0));
        let b = mq.spawn_on(CoreId(1));
        assert_ne!(a, b);
        assert_eq!(mq.total_threads(), 2);
    }

    #[test]
    fn pelt_tracked_loads_decay_on_ticks_and_gate_the_filter() {
        use sched_core::{LoadMetric, PeltTracker};

        let half_life = 8_000_000u64;
        let mq: MultiQueue = MultiQueue::with_tracker(
            2,
            std::sync::Arc::new(PeltTracker::new(LoadMetric::NrThreads, half_life)),
        );
        for _ in 0..4 {
            mq.spawn_on(CoreId(1));
        }
        // Fresh queues publish a cold (zero) tracked load: the decayed
        // criterion has not seen any history yet.
        assert_eq!(mq.snapshots()[1].load(LoadMetric::Tracked), 0);
        let policy = Policy::pelt(half_life);
        assert!(!mq.balance_once(CoreId(0), &policy).is_success(), "cold tracked loads");
        // Many half-lives later the tracked load has converged to the
        // instantaneous one, and balancing proceeds as Listing 1 would.
        mq.tick(32 * half_life);
        assert_eq!(mq.snapshots()[1].load(LoadMetric::Tracked), 4);
        assert!(mq.balance_once(CoreId(0), &policy).is_success());
        // The dequeue is folded at the frozen clock, so the tracked value
        // survives the migration and only decays on the next tick.
        assert_eq!(mq.snapshots()[1].load(LoadMetric::Tracked), 4);
        mq.tick(33 * half_life);
        assert!(mq.snapshots()[1].tracked_scaled < 4 * sched_core::TRACK_SCALE);
        assert_eq!(mq.total_threads(), 4);
    }

    #[test]
    fn instantaneous_trackers_mirror_loads_through_the_tracked_view() {
        use sched_core::LoadMetric;

        let mq: MultiQueue = MultiQueue::with_loads(&[3, 0]);
        let snap = mq.snapshots();
        assert_eq!(snap[0].load(LoadMetric::Tracked), 3);
        assert_eq!(snap[1].load(LoadMetric::Tracked), 0);
        assert_eq!(mq.tracker().name(), "nr_threads");
        assert_eq!(mq.now_ns(), 0);
    }

    fn numa_mq() -> MultiQueue {
        // 2 sockets × 2 cores × SMT-2 = 8 CPUs; cpu0's sibling is cpu1.
        let topo =
            sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).smt(2).build();
        MultiQueue::with_topology(&topo)
    }

    #[test]
    fn recorded_rounds_attribute_steal_levels() {
        let mq = numa_mq();
        for _ in 0..4 {
            mq.spawn_on(CoreId(0));
        }
        let policy = Policy::simple();
        let stats = BalanceStats::new();
        // The SMT sibling of the hot core steals: a level-0 migration.
        let outcome = mq.balance_once_recorded(CoreId(1), &policy, &stats);
        assert!(outcome.is_success());
        assert_eq!(stats.level_migrations(sched_topology::StealLevel::SmtSibling), 1);
        // A remote core steals: attributed to the remote level.
        let outcome = mq.balance_once_recorded(CoreId(4), &policy, &stats);
        assert!(outcome.is_success());
        assert_eq!(stats.level_migrations(sched_topology::StealLevel::Remote), 1);
        assert_eq!(stats.level_migration_counts(), [1, 0, 0, 1]);
    }

    #[test]
    fn hierarchical_operation_prefers_the_nearest_victim() {
        let mq = numa_mq();
        // Both the SMT sibling (cpu1) and a remote core (cpu4) are
        // overloaded; the hierarchical search must take the sibling.
        for _ in 0..3 {
            mq.spawn_on(CoreId(1));
            mq.spawn_on(CoreId(4));
        }
        let policy = Policy::simple();
        let stats = BalanceStats::new();
        let outcome = mq.balance_once_hierarchical(CoreId(0), &policy, &stats);
        assert!(outcome.is_success());
        assert_eq!(stats.level_migrations(sched_topology::StealLevel::SmtSibling), 1);
        assert_eq!(stats.level_migrations(sched_topology::StealLevel::Remote), 0);
    }

    #[test]
    fn hierarchical_operation_falls_back_outwards_after_a_failed_level() {
        let mq = numa_mq();
        // The sibling has exactly 2 threads; a first steal drains it below
        // the filter threshold, so a second hierarchical thief must fall
        // back to the loaded remote core within one operation.
        mq.spawn_on(CoreId(1));
        mq.spawn_on(CoreId(1));
        for _ in 0..4 {
            mq.spawn_on(CoreId(4));
        }
        let policy = Policy::simple();
        let stats = BalanceStats::new();
        assert!(mq.balance_once_hierarchical(CoreId(0), &policy, &stats).is_success());
        // cpu0 now has 1 thread, sibling has 1: the SMT level is exhausted.
        let outcome = mq.balance_once_hierarchical(CoreId(2), &policy, &stats);
        assert!(outcome.is_success());
        assert!(
            stats.level_migrations(sched_topology::StealLevel::Remote) >= 1,
            "the second thief had to escalate to the remote level"
        );
    }

    #[test]
    fn hierarchical_convergence_reaches_work_conservation() {
        let mq = numa_mq();
        for _ in 0..16 {
            mq.spawn_on(CoreId(0));
        }
        let policy = Policy::simple();
        let (rounds, stats) = mq.converge_hierarchical(&policy, 64);
        assert!(rounds.is_some(), "hierarchical balancing must converge");
        assert!(mq.is_work_conserving());
        assert_eq!(mq.total_threads(), 16);
        assert!(stats.migrations() >= 7, "seven idle cores had to obtain work");
        assert!(
            stats.level_migrations(sched_topology::StealLevel::Remote) >= 1,
            "work had to cross the node boundary"
        );
    }

    #[test]
    fn half_imbalance_batches_size_from_the_observed_surplus() {
        let policy = Policy::simple();
        let snap = |id: usize, nr: u64| CoreSnapshot {
            id: CoreId(id),
            node: NodeId(0),
            nr_threads: nr,
            weighted_load: nr * 1024,
            lightest_ready_weight: (nr > 1).then_some(1024),
            tracked_scaled: 0,
            injected: 0,
        };
        let idle = snap(0, 0);
        assert_eq!(StealBatch::One.size(&policy, &idle, &snap(1, 9)), 1);
        assert_eq!(StealBatch::Fixed(4).size(&policy, &idle, &snap(1, 9)), 4);
        assert_eq!(StealBatch::Fixed(0).size(&policy, &idle, &snap(1, 9)), 1, "clamped");
        assert_eq!(StealBatch::HalfImbalance.size(&policy, &idle, &snap(1, 9)), 4);
        assert_eq!(StealBatch::HalfImbalance.size(&policy, &snap(0, 3), &snap(1, 9)), 3);
        assert_eq!(StealBatch::HalfImbalance.size(&policy, &snap(0, 2), &snap(1, 3)), 1, "≥ 1");
        // Weighted policies size in nice-0 units, like StealHalfImbalance.
        let weighted = Policy::weighted();
        assert_eq!(StealBatch::HalfImbalance.size(&weighted, &idle, &snap(1, 8)), 4);
    }

    #[test]
    fn batched_round_moves_the_fan_out_in_fewer_acquisitions() {
        // One hot core, seven idle thieves, k sized from the imbalance:
        // each successful decision must migrate *more* than one task, so
        // the round reaches work conservation with fewer successes than
        // migrations — the tasks-per-acquisition win E23 measures.
        let mq: DequeMq = MultiQueue::with_loads(&[32, 0, 0, 0, 0, 0, 0, 0]);
        let policy = Policy::simple();
        let mut successes = 0u64;
        let mut rounds = 0;
        while !mq.is_work_conserving() && rounds < 64 {
            let stats = mq.concurrent_round_batched(&policy, StealBatch::HalfImbalance);
            successes += stats.successes();
            assert!(
                stats.migrations() >= stats.successes(),
                "a batched success moves at least one task"
            );
            rounds += 1;
        }
        assert!(mq.is_work_conserving());
        assert_eq!(mq.total_threads(), 32, "batched claims neither lose nor duplicate");
        let moved: u64 = (1..8).map(|c| mq.core(CoreId(c)).nr_threads_exact()).sum();
        assert!(moved >= 7, "every idle core obtained work");
        assert!(
            successes < moved,
            "{successes} acquisitions moved {moved} tasks: batching must beat one-per-claim"
        );
    }

    #[test]
    fn a_partial_batch_is_observed_as_a_success() {
        use std::sync::atomic::AtomicBool;

        // The backoff-feeding satellite: a thief that asked for eight and
        // got three still migrated real work — `observe` must see success,
        // or the choice machinery would deprioritise its best victims.
        #[derive(Debug)]
        struct Recording {
            observed_success: Arc<AtomicBool>,
            observed_failure: Arc<AtomicBool>,
        }
        impl sched_core::ChoicePolicy for Recording {
            fn choose(&self, _thief: &CoreSnapshot, candidates: &[CoreSnapshot]) -> Option<CoreId> {
                candidates.first().map(|c| c.id)
            }
            fn observe(&self, _thief: CoreId, _victim: CoreId, success: bool) {
                if success {
                    self.observed_success.store(true, Ordering::Release);
                } else {
                    self.observed_failure.store(true, Ordering::Release);
                }
            }
            fn name(&self) -> &'static str {
                "recording"
            }
        }

        let observed_success = Arc::new(AtomicBool::new(false));
        let observed_failure = Arc::new(AtomicBool::new(false));
        let mq: DequeMq = MultiQueue::with_loads(&[0, 4]);
        let policy = Policy::simple().with_choice(Box::new(Recording {
            observed_success: Arc::clone(&observed_success),
            observed_failure: Arc::clone(&observed_failure),
        }));
        let stats = BalanceStats::new();
        // The victim has 3 waiting tasks; ask for 8.
        let outcome = mq.balance_once_batched(CoreId(0), &policy, StealBatch::Fixed(8), &stats);
        match outcome {
            StealOutcome::Stole { ref tasks, .. } => assert!(tasks.len() >= 2, "a real batch"),
            ref other => panic!("expected a (partial) batch steal, got {other:?}"),
        }
        assert!(outcome.is_success(), "partial batch ≠ failure");
        assert!(observed_success.load(Ordering::Acquire), "the choice saw the partial success");
        assert!(!observed_failure.load(Ordering::Acquire), "…and no spurious failure");
        assert_eq!(mq.total_threads(), 4);
    }

    #[test]
    fn stats_stay_consistent_when_steals_race_local_wakeups() {
        // Steals race local wakeups (enqueues) on the victim; because the
        // counters move inside the stealing phase's critical section, the
        // final thread count must equal spawns, and the migration counter
        // must equal the threads that actually changed cores.
        let mq = std::sync::Arc::new({
            let mq: MultiQueue = MultiQueue::new(4);
            for _ in 0..8 {
                mq.spawn_on(CoreId(0));
            }
            mq
        });
        let policy = Policy::simple();
        let stats = BalanceStats::new();
        std::thread::scope(|scope| {
            let waker = {
                let mq = std::sync::Arc::clone(&mq);
                scope.spawn(move || {
                    for _ in 0..32 {
                        mq.spawn_on(CoreId(0));
                        std::thread::yield_now();
                    }
                })
            };
            for _ in 0..16 {
                let stats = &stats;
                let policy = &policy;
                let mq = std::sync::Arc::clone(&mq);
                scope.spawn(move || {
                    for thief in 1..4 {
                        let _ = mq.balance_once_recorded(CoreId(thief), policy, stats);
                    }
                });
            }
            waker.join().unwrap();
        });
        assert_eq!(mq.total_threads(), 40, "8 initial + 32 woken, none lost or duplicated");
        // Every thread residing away from its spawn core got there through
        // a recorded migration (threads may migrate more than once, so the
        // counter bounds the residents from above), and with `StealOne`
        // each success accounts for exactly one migration — an entity can
        // never be double-counted by a steal racing a wakeup.
        let moved: u64 = (1..4).map(|c| mq.core(CoreId(c)).nr_threads_exact()).sum();
        assert!(moved <= stats.migrations(), "{moved} residents > {} counted", stats.migrations());
        assert_eq!(stats.migrations(), stats.successes());
    }
}
