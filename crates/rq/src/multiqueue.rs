//! A machine's worth of concurrent runqueues and optimistic balancing over
//! them.

use std::sync::atomic::{AtomicU64, Ordering};

use sched_core::{CoreId, CoreSnapshot, Policy, StealOutcome, TaskId};
use sched_topology::{MachineTopology, NodeId};

use crate::entity::RqTask;
use crate::fifo::FifoQueue;
use crate::percore::PerCoreRq;
use crate::stats::BalanceStats;
use crate::steal::try_steal;
use crate::TaskQueue;

/// All the per-core runqueues of one machine.
///
/// This is the threaded counterpart of [`sched_core::SystemState`]: the same
/// [`Policy`] objects drive balancing here, but the selection phase reads
/// lock-free atomics and the stealing phase really does contend on mutexes
/// from multiple OS threads.
#[derive(Debug)]
pub struct MultiQueue<Q: TaskQueue = FifoQueue> {
    cores: Vec<PerCoreRq<Q>>,
    next_task_id: AtomicU64,
}

impl<Q: TaskQueue> MultiQueue<Q> {
    /// Creates `nr_cores` empty runqueues, all on NUMA node 0.
    pub fn new(nr_cores: usize) -> Self {
        let cores = (0..nr_cores).map(|i| PerCoreRq::new(CoreId(i), NodeId(0))).collect();
        MultiQueue { cores, next_task_id: AtomicU64::new(0) }
    }

    /// Creates one runqueue per CPU of `topo`, with matching node ids.
    pub fn with_topology(topo: &MachineTopology) -> Self {
        let cores = topo.cpus().iter().map(|c| PerCoreRq::new(c.id, c.node)).collect();
        MultiQueue { cores, next_task_id: AtomicU64::new(0) }
    }

    /// Creates runqueues pre-populated so core `i` holds `loads[i]` `nice 0`
    /// tasks.
    pub fn with_loads(loads: &[usize]) -> Self {
        let mq = Self::new(loads.len());
        for (core, &n) in loads.iter().enumerate() {
            for _ in 0..n {
                mq.spawn_on(CoreId(core));
            }
        }
        mq
    }

    /// Number of cores.
    pub fn nr_cores(&self) -> usize {
        self.cores.len()
    }

    /// One core's runqueue.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core(&self, id: CoreId) -> &PerCoreRq<Q> {
        &self.cores[id.0]
    }

    /// All runqueues, in id order.
    pub fn cores(&self) -> &[PerCoreRq<Q>] {
        &self.cores
    }

    /// Creates a fresh `nice 0` task and makes it runnable on `core`.
    pub fn spawn_on(&self, core: CoreId) -> TaskId {
        let id = TaskId(self.next_task_id.fetch_add(1, Ordering::Relaxed));
        self.cores[core.0].enqueue(RqTask::new(id));
        id
    }

    /// Lock-less snapshots of every core, in id order (the selection phase's
    /// entire view of the world).
    pub fn snapshots(&self) -> Vec<CoreSnapshot> {
        self.cores.iter().map(PerCoreRq::snapshot).collect()
    }

    /// Total number of threads across all runqueues (exact, takes each lock
    /// in turn; used by invariant checks, not by balancing).
    pub fn total_threads(&self) -> u64 {
        self.cores.iter().map(PerCoreRq::nr_threads_exact).sum()
    }

    /// Returns `true` if no core is idle while another is overloaded,
    /// judged on exact (locked) loads.
    pub fn is_work_conserving(&self) -> bool {
        let loads: Vec<u64> = self.cores.iter().map(PerCoreRq::nr_threads_exact).collect();
        let any_idle = loads.contains(&0);
        let any_overloaded = loads.iter().any(|&l| l >= 2);
        !(any_idle && any_overloaded)
    }

    /// Runs the three-step optimistic balancing operation for one core.
    ///
    /// Steps 1 and 2 (filter + choice) read only the lock-less snapshots;
    /// step 3 locks exactly the two runqueues involved.
    pub fn balance_once(&self, thief: CoreId, policy: &Policy) -> StealOutcome {
        // Selection phase: lock-less.
        let snapshots = self.snapshots();
        let thief_snap = snapshots[thief.0];
        let candidates: Vec<CoreSnapshot> = snapshots
            .into_iter()
            .filter(|s| s.id != thief && policy.filter.can_steal(&thief_snap, s))
            .collect();
        let Some(victim) = policy.choice.choose(&thief_snap, &candidates) else {
            return StealOutcome::NoCandidates;
        };
        // Stealing phase: locked, re-checked.
        try_steal(&self.cores[thief.0], &self.cores[victim.0], policy.filter.as_ref(), 1)
    }

    /// The pessimistic baseline: holds **every** runqueue lock while
    /// selecting, so selections can never be stale and steals never fail —
    /// at the cost of stalling every core of the machine for the duration.
    ///
    /// This is the design the paper rejects in §1; E11 measures how much it
    /// costs relative to [`MultiQueue::balance_once`].
    pub fn balance_once_pessimistic(&self, thief: CoreId, policy: &Policy) -> StealOutcome {
        // Lock all runqueues in id order (a global order, so concurrent
        // pessimistic balancers cannot deadlock).
        let guards: Vec<_> = self.cores.iter().map(|c| c.lock()).collect();
        let snapshots: Vec<CoreSnapshot> = self
            .cores
            .iter()
            .zip(&guards)
            .map(|(rq, inner)| CoreSnapshot {
                id: rq.id(),
                node: rq.node(),
                nr_threads: inner.nr_threads(),
                weighted_load: inner.weighted_load(),
                lightest_ready_weight: inner.queue.lightest_weight(),
            })
            .collect();
        let thief_snap = snapshots[thief.0];
        let candidates: Vec<CoreSnapshot> = snapshots
            .into_iter()
            .filter(|s| s.id != thief && policy.filter.can_steal(&thief_snap, s))
            .collect();
        let Some(victim) = policy.choice.choose(&thief_snap, &candidates) else {
            return StealOutcome::NoCandidates;
        };
        drop(guards);
        // Re-acquire just the two locks to perform the migration; because the
        // selection was made under the global lock there is no staleness in a
        // single-threaded use, and under concurrency the re-check still
        // protects correctness.
        try_steal(&self.cores[thief.0], &self.cores[victim.0], policy.filter.as_ref(), 1)
    }

    /// Runs one *concurrent* balancing round: every core executes
    /// [`MultiQueue::balance_once`] from its own OS thread simultaneously,
    /// which is how CFS runs its 4 ms balancing pass on every core at once.
    ///
    /// Returns the aggregated outcome counters.
    pub fn concurrent_round(&self, policy: &Policy) -> BalanceStats
    where
        Q: 'static,
    {
        let stats = BalanceStats::new();
        std::thread::scope(|scope| {
            for core in &self.cores {
                let stats = &stats;
                let mq = &*self;
                scope.spawn(move || {
                    let outcome = mq.balance_once(core.id(), policy);
                    stats.record(&outcome);
                });
            }
        });
        stats
    }

    /// Like [`MultiQueue::concurrent_round`], but every thread performs its
    /// selection phase against the *initial* state of the round: all threads
    /// rendezvous on a barrier between selecting and stealing.
    ///
    /// This is the threaded equivalent of the model's
    /// `RoundSchedule::AllSelectThenSteal` — the maximally stale
    /// interleaving, in which conflicting optimistic selections (and hence
    /// failed steals) are guaranteed rather than merely possible.  E11 uses
    /// it to measure the failure rate the paper's P1/P2 lemmas are about.
    pub fn concurrent_round_synchronized(&self, policy: &Policy) -> BalanceStats
    where
        Q: 'static,
    {
        let stats = BalanceStats::new();
        let barrier = std::sync::Barrier::new(self.cores.len());
        std::thread::scope(|scope| {
            for core in &self.cores {
                let stats = &stats;
                let barrier = &barrier;
                let mq = &*self;
                scope.spawn(move || {
                    // Selection phase: lock-less, on the pre-round state.
                    let snapshots = mq.snapshots();
                    let thief_snap = snapshots[core.id().0];
                    let candidates: Vec<CoreSnapshot> = snapshots
                        .into_iter()
                        .filter(|s| s.id != core.id() && policy.filter.can_steal(&thief_snap, s))
                        .collect();
                    let chosen = policy.choice.choose(&thief_snap, &candidates);
                    // Every core finishes selecting before anyone steals.
                    barrier.wait();
                    let outcome = match chosen {
                        Some(victim) => try_steal(
                            &mq.cores[core.id().0],
                            &mq.cores[victim.0],
                            policy.filter.as_ref(),
                            1,
                        ),
                        None => StealOutcome::NoCandidates,
                    };
                    stats.record(&outcome);
                });
            }
        });
        stats
    }

    /// Runs concurrent rounds until the machine is work-conserving or the
    /// round budget is exhausted; returns the number of rounds used, if it
    /// converged.
    pub fn converge(&self, policy: &Policy, max_rounds: usize) -> (Option<usize>, BalanceStats)
    where
        Q: 'static,
    {
        let total = BalanceStats::new();
        for round in 0..=max_rounds {
            if self.is_work_conserving() {
                return (Some(round), total);
            }
            if round == max_rounds {
                break;
            }
            let stats = self.concurrent_round(policy);
            // Fold the per-round counters into the total.
            for _ in 0..stats.successes() {
                total.record(&StealOutcome::Stole { victim: CoreId(0), tasks: vec![TaskId(0)] });
            }
            for _ in 0..stats.recheck_failures() {
                total.record(&StealOutcome::RecheckFailed { victim: CoreId(0) });
            }
            for _ in 0..stats.nothing_to_steal() {
                total.record(&StealOutcome::NothingToSteal { victim: CoreId(0) });
            }
            for _ in 0..stats.no_candidates() {
                total.record(&StealOutcome::NoCandidates);
            }
        }
        (None, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::Policy;

    #[test]
    fn balance_once_fixes_a_two_core_imbalance() {
        let mq: MultiQueue = MultiQueue::with_loads(&[0, 3]);
        let policy = Policy::simple();
        let outcome = mq.balance_once(CoreId(0), &policy);
        assert!(outcome.is_success());
        assert_eq!(mq.core(CoreId(0)).snapshot().nr_threads, 1);
        assert_eq!(mq.core(CoreId(1)).snapshot().nr_threads, 2);
        assert_eq!(mq.total_threads(), 3);
    }

    #[test]
    fn concurrent_round_preserves_every_task() {
        let mq: MultiQueue = MultiQueue::with_loads(&[0, 8, 0, 4, 0, 0, 2, 1]);
        let before = mq.total_threads();
        let policy = Policy::simple();
        let stats = mq.concurrent_round(&policy);
        assert_eq!(mq.total_threads(), before, "steals must neither lose nor duplicate tasks");
        assert!(stats.successes() >= 1);
    }

    #[test]
    fn converge_reaches_work_conservation() {
        let mq: MultiQueue = MultiQueue::with_loads(&[0, 0, 0, 0, 0, 0, 0, 16]);
        let policy = Policy::simple();
        let (rounds, stats) = mq.converge(&policy, 64);
        assert!(rounds.is_some(), "optimistic balancing must converge");
        assert!(mq.is_work_conserving());
        assert!(stats.successes() >= 7, "at least seven cores had to obtain work");
    }

    #[test]
    fn synchronized_round_produces_real_optimistic_failures() {
        // Seven idle cores all select the single overloaded core against the
        // same pre-round snapshot; only a few steals can succeed, the rest
        // must fail their re-check — on real OS threads, not in the model.
        let mq: MultiQueue = MultiQueue::with_loads(&[4, 0, 0, 0, 0, 0, 0, 0]);
        let policy = Policy::simple();
        let stats = mq.concurrent_round_synchronized(&policy);
        assert_eq!(mq.total_threads(), 4);
        assert!(stats.successes() >= 1);
        assert!(
            stats.successes() + stats.recheck_failures() >= 7,
            "every idle core chose the hot core as its victim"
        );
        assert!(stats.recheck_failures() >= 1, "conflicting selections must produce failures");
    }

    #[test]
    fn pessimistic_balancing_also_works() {
        let mq: MultiQueue = MultiQueue::with_loads(&[0, 4]);
        let policy = Policy::simple();
        let outcome = mq.balance_once_pessimistic(CoreId(0), &policy);
        assert!(outcome.is_success());
        assert!(mq.is_work_conserving());
    }

    #[test]
    fn topology_construction_assigns_nodes() {
        let topo = sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).build();
        let mq: MultiQueue = MultiQueue::with_topology(&topo);
        assert_eq!(mq.nr_cores(), 4);
        assert_ne!(mq.core(CoreId(0)).node(), mq.core(CoreId(3)).node());
    }

    #[test]
    fn spawn_on_allocates_unique_ids() {
        let mq: MultiQueue = MultiQueue::new(2);
        let a = mq.spawn_on(CoreId(0));
        let b = mq.spawn_on(CoreId(1));
        assert_ne!(a, b);
        assert_eq!(mq.total_threads(), 2);
    }
}
