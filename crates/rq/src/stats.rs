//! Outcome counters for concurrent balancing rounds.

use std::sync::atomic::{AtomicU64, Ordering};

use sched_core::StealOutcome;

/// Atomic counters of the outcomes of balancing attempts, shared by all the
/// threads participating in a concurrent round.
#[derive(Debug, Default)]
pub struct BalanceStats {
    successes: AtomicU64,
    recheck_failures: AtomicU64,
    nothing_to_steal: AtomicU64,
    no_candidates: AtomicU64,
    migrations: AtomicU64,
}

impl BalanceStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one balancing attempt outcome.
    pub fn record(&self, outcome: &StealOutcome) {
        match outcome {
            StealOutcome::Stole { tasks, .. } => {
                self.successes.fetch_add(1, Ordering::Relaxed);
                self.migrations.fetch_add(tasks.len() as u64, Ordering::Relaxed);
            }
            StealOutcome::RecheckFailed { .. } => {
                self.recheck_failures.fetch_add(1, Ordering::Relaxed);
            }
            StealOutcome::NothingToSteal { .. } => {
                self.nothing_to_steal.fetch_add(1, Ordering::Relaxed);
            }
            StealOutcome::NoCandidates => {
                self.no_candidates.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of successful steals.
    pub fn successes(&self) -> u64 {
        self.successes.load(Ordering::Relaxed)
    }

    /// Number of attempts whose filter re-check failed (stale selection).
    pub fn recheck_failures(&self) -> u64 {
        self.recheck_failures.load(Ordering::Relaxed)
    }

    /// Number of attempts that found nothing migratable under the locks.
    pub fn nothing_to_steal(&self) -> u64 {
        self.nothing_to_steal.load(Ordering::Relaxed)
    }

    /// Number of attempts that filtered out every core.
    pub fn no_candidates(&self) -> u64 {
        self.no_candidates.load(Ordering::Relaxed)
    }

    /// Number of threads migrated.
    pub fn migrations(&self) -> u64 {
        self.migrations.load(Ordering::Relaxed)
    }

    /// Failed attempts, in the paper's sense (a victim was chosen, nothing
    /// was stolen).
    pub fn failures(&self) -> u64 {
        self.recheck_failures() + self.nothing_to_steal()
    }

    /// Attempts that chose a victim (successes plus failures).
    pub fn attempts(&self) -> u64 {
        self.successes() + self.failures()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::{CoreId, TaskId};

    #[test]
    fn records_each_outcome_kind() {
        let stats = BalanceStats::new();
        stats.record(&StealOutcome::Stole { victim: CoreId(1), tasks: vec![TaskId(0), TaskId(1)] });
        stats.record(&StealOutcome::RecheckFailed { victim: CoreId(1) });
        stats.record(&StealOutcome::NothingToSteal { victim: CoreId(1) });
        stats.record(&StealOutcome::NoCandidates);
        assert_eq!(stats.successes(), 1);
        assert_eq!(stats.migrations(), 2);
        assert_eq!(stats.recheck_failures(), 1);
        assert_eq!(stats.nothing_to_steal(), 1);
        assert_eq!(stats.no_candidates(), 1);
        assert_eq!(stats.failures(), 2);
        assert_eq!(stats.attempts(), 3);
    }
}
