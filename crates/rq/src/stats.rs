//! Outcome counters for concurrent balancing rounds.

use std::sync::atomic::{AtomicU64, Ordering};

use sched_core::StealOutcome;
use sched_topology::StealLevel;

/// Atomic counters of the outcomes of balancing attempts, shared by all the
/// threads participating in a concurrent round.
///
/// Counter transitions for locked outcomes happen **inside** the stealing
/// phase, while both runqueue locks are still held (see
/// [`crate::steal::try_steal_recorded`]): the dequeue of a migrated entity
/// and its appearance in these counters are one atomic step, so a steal
/// racing with a local wakeup can never be double-counted by an observer
/// that reads the counters against the published queue state.
#[derive(Debug, Default)]
pub struct BalanceStats {
    successes: AtomicU64,
    recheck_failures: AtomicU64,
    nothing_to_steal: AtomicU64,
    no_candidates: AtomicU64,
    migrations: AtomicU64,
    /// Threads migrated per steal level, indexed by [`StealLevel::index`].
    level_migrations: [AtomicU64; 4],
}

impl BalanceStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one balancing attempt outcome with no level attribution.
    pub fn record(&self, outcome: &StealOutcome) {
        self.record_with_level(outcome, None);
    }

    /// Records one balancing attempt outcome, attributing migrated threads
    /// to the steal level the victim was found at (if known).
    pub fn record_with_level(&self, outcome: &StealOutcome, level: Option<StealLevel>) {
        match outcome {
            StealOutcome::Stole { tasks, .. } => {
                self.successes.fetch_add(1, Ordering::Relaxed);
                self.migrations.fetch_add(tasks.len() as u64, Ordering::Relaxed);
                if let Some(level) = level {
                    self.level_migrations[level.index()]
                        .fetch_add(tasks.len() as u64, Ordering::Relaxed);
                }
            }
            StealOutcome::RecheckFailed { .. } => {
                self.recheck_failures.fetch_add(1, Ordering::Relaxed);
            }
            StealOutcome::NothingToSteal { .. } => {
                self.nothing_to_steal.fetch_add(1, Ordering::Relaxed);
            }
            StealOutcome::NoCandidates => {
                self.no_candidates.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Folds another set of counters into this one.
    pub fn merge_from(&self, other: &BalanceStats) {
        self.successes.fetch_add(other.successes(), Ordering::Relaxed);
        self.recheck_failures.fetch_add(other.recheck_failures(), Ordering::Relaxed);
        self.nothing_to_steal.fetch_add(other.nothing_to_steal(), Ordering::Relaxed);
        self.no_candidates.fetch_add(other.no_candidates(), Ordering::Relaxed);
        self.migrations.fetch_add(other.migrations(), Ordering::Relaxed);
        for level in StealLevel::ALL {
            self.level_migrations[level.index()]
                .fetch_add(other.level_migrations(level), Ordering::Relaxed);
        }
    }

    /// Number of successful steals.
    pub fn successes(&self) -> u64 {
        self.successes.load(Ordering::Relaxed)
    }

    /// Number of attempts whose filter re-check failed (stale selection).
    pub fn recheck_failures(&self) -> u64 {
        self.recheck_failures.load(Ordering::Relaxed)
    }

    /// Number of attempts that found nothing migratable under the locks.
    pub fn nothing_to_steal(&self) -> u64 {
        self.nothing_to_steal.load(Ordering::Relaxed)
    }

    /// Number of attempts that filtered out every core.
    pub fn no_candidates(&self) -> u64 {
        self.no_candidates.load(Ordering::Relaxed)
    }

    /// Number of threads migrated.
    pub fn migrations(&self) -> u64 {
        self.migrations.load(Ordering::Relaxed)
    }

    /// Number of threads migrated across the given steal level.
    pub fn level_migrations(&self, level: StealLevel) -> u64 {
        self.level_migrations[level.index()].load(Ordering::Relaxed)
    }

    /// Per-level migration counts, innermost level first.
    ///
    /// Rate arithmetic (remote/cache-local fractions) deliberately lives in
    /// one place — `sched_metrics::StealLocality::from_counts(counts)` —
    /// rather than being re-derived per backend.
    pub fn level_migration_counts(&self) -> [u64; 4] {
        StealLevel::ALL.map(|l| self.level_migrations(l))
    }

    /// Failed attempts, in the paper's sense (a victim was chosen, nothing
    /// was stolen).
    pub fn failures(&self) -> u64 {
        self.recheck_failures() + self.nothing_to_steal()
    }

    /// Attempts that chose a victim (successes plus failures).
    pub fn attempts(&self) -> u64 {
        self.successes() + self.failures()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::{CoreId, TaskId};

    #[test]
    fn records_each_outcome_kind() {
        let stats = BalanceStats::new();
        stats.record(&StealOutcome::Stole { victim: CoreId(1), tasks: vec![TaskId(0), TaskId(1)] });
        stats.record(&StealOutcome::RecheckFailed { victim: CoreId(1) });
        stats.record(&StealOutcome::NothingToSteal { victim: CoreId(1) });
        stats.record(&StealOutcome::NoCandidates);
        assert_eq!(stats.successes(), 1);
        assert_eq!(stats.migrations(), 2);
        assert_eq!(stats.recheck_failures(), 1);
        assert_eq!(stats.nothing_to_steal(), 1);
        assert_eq!(stats.no_candidates(), 1);
        assert_eq!(stats.failures(), 2);
        assert_eq!(stats.attempts(), 3);
    }

    #[test]
    fn level_attribution_buckets_migrations() {
        let stats = BalanceStats::new();
        let steal = |victim: usize, n: u64| StealOutcome::Stole {
            victim: CoreId(victim),
            tasks: (0..n).map(TaskId).collect(),
        };
        stats.record_with_level(&steal(1, 3), Some(StealLevel::SameLlc));
        stats.record_with_level(&steal(2, 1), Some(StealLevel::Remote));
        assert_eq!(stats.level_migrations(StealLevel::SameLlc), 3);
        assert_eq!(stats.level_migrations(StealLevel::Remote), 1);
        assert_eq!(stats.level_migration_counts(), [0, 3, 0, 1]);
        assert_eq!(stats.level_migration_counts().iter().sum::<u64>(), 4);
    }

    #[test]
    fn unattributed_steals_have_no_level_counts() {
        let stats = BalanceStats::new();
        stats.record(&StealOutcome::Stole { victim: CoreId(1), tasks: vec![TaskId(0)] });
        assert_eq!(stats.level_migration_counts(), [0, 0, 0, 0]);
    }

    #[test]
    fn merge_from_folds_every_counter() {
        let a = BalanceStats::new();
        let b = BalanceStats::new();
        a.record_with_level(
            &StealOutcome::Stole { victim: CoreId(1), tasks: vec![TaskId(0)] },
            Some(StealLevel::SmtSibling),
        );
        b.record_with_level(
            &StealOutcome::Stole { victim: CoreId(2), tasks: vec![TaskId(1)] },
            Some(StealLevel::Remote),
        );
        b.record(&StealOutcome::RecheckFailed { victim: CoreId(2) });
        a.merge_from(&b);
        assert_eq!(a.successes(), 2);
        assert_eq!(a.migrations(), 2);
        assert_eq!(a.recheck_failures(), 1);
        assert_eq!(a.level_migration_counts(), [1, 0, 0, 1]);
    }
}
