//! Runnable entities carried by the concurrent runqueues.

use sched_core::{Nice, Task, TaskId, Weight};

/// A runnable task as stored in a concurrent runqueue.
///
/// Compared to the pure-model [`Task`], it additionally carries the virtual
/// runtime used by the CFS-like queue discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RqTask {
    /// Identity of the task.
    pub id: TaskId,
    /// Niceness (importance) of the task.
    pub nice: Nice,
    /// Virtual runtime in nanoseconds, weighted by the task's share.
    pub vruntime: u64,
}

impl RqTask {
    /// Creates a `nice 0` task with zero virtual runtime.
    pub fn new(id: TaskId) -> Self {
        RqTask { id, nice: Nice::NORMAL, vruntime: 0 }
    }

    /// Creates a task with the given niceness.
    pub fn with_nice(id: TaskId, nice: Nice) -> Self {
        RqTask { id, nice, vruntime: 0 }
    }

    /// Load weight of the task.
    pub fn weight(&self) -> Weight {
        self.nice.weight()
    }

    /// Advances the virtual runtime by `delta_ns` of real execution,
    /// scaled inversely to the task's weight (heavier tasks age slower),
    /// exactly as CFS does.
    pub fn charge(&mut self, delta_ns: u64) {
        let scaled = delta_ns.saturating_mul(Weight::NICE_0.raw()) / self.weight().raw().max(1);
        self.vruntime = self.vruntime.saturating_add(scaled);
    }

    /// Converts to the pure-model task (dropping the vruntime).
    pub fn to_model(&self) -> Task {
        Task::with_nice(self.id, self.nice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_scales_with_weight() {
        let mut normal = RqTask::new(TaskId(1));
        let mut heavy = RqTask::with_nice(TaskId(2), Nice::new(-20));
        let mut light = RqTask::with_nice(TaskId(3), Nice::new(19));
        normal.charge(1_000_000);
        heavy.charge(1_000_000);
        light.charge(1_000_000);
        assert_eq!(normal.vruntime, 1_000_000);
        assert!(heavy.vruntime < normal.vruntime, "important tasks age slower");
        assert!(light.vruntime > normal.vruntime, "nice tasks age faster");
    }

    #[test]
    fn conversion_to_model_preserves_identity_and_nice() {
        let t = RqTask::with_nice(TaskId(9), Nice::new(5));
        let m = t.to_model();
        assert_eq!(m.id, TaskId(9));
        assert_eq!(m.nice, Nice::new(5));
        assert_eq!(t.weight(), m.weight());
    }
}
