//! Ring-overflow disciplines for the lock-free backend, and tiny-ring
//! [`DequeRq`] flavours that make overflow easy to provoke.
//!
//! A Chase–Lev ring is fixed-capacity; what happens to the element a full
//! ring rejects decides whether the backend stays **work-conserving**:
//!
//! * [`OverflowPolicy::SharedInjector`] (the default) routes overflow to a
//!   shared MPMC [`sched_deque::Injector`] that thieves check whenever the
//!   victim's ring CAS finds it empty — spilled work is stealable from the
//!   instant the push returns, and `refresh()` has no correctness role.
//! * [`OverflowPolicy::PrivateSpill`] reproduces the backend's original
//!   (buggy) discipline: overflow goes to an owner-side list that only the
//!   owner and `refresh()` can reach.  Load observers count the spilled
//!   tasks, thieves cannot claim them — the exact "runnable work invisible
//!   to idle cores" hole the paper's work-conservation criterion forbids.
//!   It is kept *only* as the measurable baseline: experiment E22 pins the
//!   idle-while-spilled gap between the two disciplines, and the
//!   regression tests demonstrate the hole instead of specifying it.
//!
//! The [`TinyDequeRq`]/[`TinySpillDequeRq`] wrappers bind a deliberately
//! tiny ring ([`TINY_RING_CAPACITY`]) to each discipline behind the plain
//! [`RqBackend`] constructor, so the generic `MultiQueue` machinery, the
//! experiment runner and the proptests can drive overflow storms without
//! growing a capacity parameter through every layer.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use sched_core::tracker::LoadTracker;
use sched_core::{CoreId, CoreSnapshot, FilterPolicy, StealOutcome, TaskId};
use sched_topology::NodeId;

use crate::backend::RqBackend;
use crate::deque_rq::DequeRq;
use crate::entity::RqTask;
use crate::steal::StealRecorder;

/// Where a [`DequeRq`] parks tasks its ring has no room for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Overflow goes to the core's shared MPMC injector, claimable by any
    /// thief the moment the push returns (work-conserving; the default).
    #[default]
    SharedInjector,
    /// Overflow goes to an owner-private list only `refresh()` drains —
    /// the pre-injector discipline, preserved as E22's measurable baseline
    /// for the work-conservation hole it opens.  Do not use in new code.
    PrivateSpill,
}

/// Ring capacity of the tiny flavours: small enough that a single fan-out
/// burst overflows it, large enough that the ring path still participates.
pub const TINY_RING_CAPACITY: usize = 8;

macro_rules! delegate_backend {
    ($name:ident, $backend_name:literal, $policy:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug)]
        pub struct $name(DequeRq);

        impl $name {
            /// The wrapped runqueue.
            pub fn inner(&self) -> &DequeRq {
                &self.0
            }
        }

        impl RqBackend for $name {
            fn with_tracker(
                id: CoreId,
                node: NodeId,
                tracker: Arc<dyn LoadTracker>,
                clock: Arc<AtomicU64>,
            ) -> Self {
                $name(DequeRq::with_overflow_policy(
                    id,
                    node,
                    tracker,
                    clock,
                    TINY_RING_CAPACITY,
                    $policy,
                ))
            }

            fn backend_name() -> &'static str {
                $backend_name
            }

            fn id(&self) -> CoreId {
                self.0.id()
            }

            fn node(&self) -> NodeId {
                self.0.node()
            }

            fn tracker(&self) -> &Arc<dyn LoadTracker> {
                self.0.tracker()
            }

            fn snapshot(&self) -> CoreSnapshot {
                self.0.snapshot()
            }

            fn enqueue(&self, task: RqTask) {
                self.0.enqueue(task);
            }

            fn pick_next(&self) -> Option<TaskId> {
                self.0.pick_next()
            }

            fn complete_current(&self) -> Option<RqTask> {
                self.0.complete_current()
            }

            fn nr_threads_exact(&self) -> u64 {
                self.0.nr_threads_exact()
            }

            fn refresh(&self) {
                self.0.refresh();
            }

            fn attach_trace(&mut self, sink: sched_trace::TraceSink) {
                self.0.attach_trace(sink);
            }

            fn try_steal_recorded(
                thief: &Self,
                victim: &Self,
                filter: &dyn FilterPolicy,
                max_tasks: usize,
                recorder: Option<StealRecorder<'_>>,
            ) -> StealOutcome {
                DequeRq::try_steal_recorded(&thief.0, &victim.0, filter, max_tasks, recorder)
            }
        }
    };
}

delegate_backend!(
    TinyDequeRq,
    "deque-tiny",
    OverflowPolicy::SharedInjector,
    "A [`DequeRq`] with a tiny ring and the shared-injector overflow \
     discipline: every fan-out burst overflows, and every overflowed task \
     stays stealable.  The overflow-storm experiment (E22) and the \
     work-conservation proptests run on this flavour."
);

delegate_backend!(
    TinySpillDequeRq,
    "deque-spill",
    OverflowPolicy::PrivateSpill,
    "A [`DequeRq`] with a tiny ring and the legacy owner-private spill: \
     overflowed tasks are counted but unstealable until a `refresh()`.  \
     This is E22's baseline — the work-conservation hole, kept measurable."
);

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::policy::DeltaFilter;
    use sched_core::tracker::NrThreadsTracker;
    use sched_core::{LoadMetric, Nice};

    fn tiny<B: RqBackend>(id: usize) -> B {
        B::with_tracker(
            CoreId(id),
            NodeId(0),
            Arc::new(NrThreadsTracker),
            Arc::new(AtomicU64::new(0)),
        )
    }

    #[test]
    fn tiny_flavours_report_their_disciplines() {
        assert_eq!(TinyDequeRq::backend_name(), "deque-tiny");
        assert_eq!(TinySpillDequeRq::backend_name(), "deque-spill");
        let q: TinyDequeRq = tiny(3);
        assert_eq!(q.id(), CoreId(3));
        assert_eq!(q.node(), NodeId(0));
        assert_eq!(q.tracker().name(), "nr_threads");
    }

    #[test]
    fn the_two_disciplines_differ_exactly_on_overflow_visibility() {
        // Same storm on both flavours: 1 running + TINY_RING_CAPACITY in
        // the ring + 4 overflowed.  A wall of fresh thieves must drain
        // *everything* from the injector flavour without any refresh; the
        // spill flavour strands the overflow — the hole E22 measures.
        let filter = DeltaFilter::new(LoadMetric::NrThreads, 1);
        let storm = 1 + TINY_RING_CAPACITY + 4;

        let victim: TinyDequeRq = tiny(0);
        for i in 0..storm {
            victim.enqueue(RqTask::new(TaskId(i as u64)));
        }
        let mut stolen = 0;
        loop {
            let thief: TinyDequeRq = tiny(1 + stolen);
            if !TinyDequeRq::try_steal_recorded(&thief, &victim, &filter, 1, None).is_success() {
                break;
            }
            stolen += 1;
        }
        assert_eq!(stolen, storm - 1, "all waiting tasks stealable, only the running one is not");

        let victim: TinySpillDequeRq = tiny(0);
        for i in 0..storm {
            victim.enqueue(RqTask::new(TaskId(i as u64)));
        }
        let mut stolen = 0;
        loop {
            let thief: TinySpillDequeRq = tiny(1 + stolen);
            if !TinySpillDequeRq::try_steal_recorded(&thief, &victim, &filter, 1, None).is_success()
            {
                break;
            }
            stolen += 1;
        }
        assert_eq!(stolen, TINY_RING_CAPACITY, "the legacy spill strands overflow until refresh");
        assert_eq!(
            victim.nr_threads_exact(),
            1 + 4,
            "the stranded tasks are still counted — the imbalance observers see them"
        );
    }

    #[test]
    fn tiny_flavour_round_trips_the_owner_api() {
        let q: TinyDequeRq = tiny(0);
        q.enqueue(RqTask::with_nice(TaskId(1), Nice::new(5)));
        assert_eq!(q.pick_next(), None, "already running");
        assert_eq!(q.snapshot().nr_threads, 1);
        q.refresh();
        let done = q.complete_current().expect("the task was running");
        assert_eq!(done.id, TaskId(1));
        assert!(q.snapshot().is_idle());
    }
}
