//! CFS-like virtual-runtime queue discipline.

use std::collections::BTreeMap;

use sched_core::TaskId;

use crate::entity::RqTask;
use crate::TaskQueue;

/// A queue ordered by virtual runtime, mimicking CFS's red-black timeline.
///
/// The next task to run is the one with the smallest vruntime (the one that
/// has received the least weighted CPU time); the steal candidate is the one
/// with the *largest* vruntime, i.e. the task that will not run soon anyway,
/// which is the cheapest to migrate.
#[derive(Debug, Clone, Default)]
pub struct VruntimeQueue {
    // Keyed by (vruntime, id) so identical vruntimes stay distinct.
    timeline: BTreeMap<(u64, TaskId), RqTask>,
}

impl TaskQueue for VruntimeQueue {
    fn push(&mut self, task: RqTask) {
        self.timeline.insert((task.vruntime, task.id), task);
    }

    fn pop_next(&mut self) -> Option<RqTask> {
        let key = *self.timeline.keys().next()?;
        self.timeline.remove(&key)
    }

    fn pop_steal_candidate(&mut self) -> Option<RqTask> {
        let key = *self.timeline.keys().next_back()?;
        self.timeline.remove(&key)
    }

    fn len(&self) -> usize {
        self.timeline.len()
    }

    fn total_weight(&self) -> u64 {
        self.timeline.values().map(|t| t.weight().raw()).sum()
    }

    fn lightest_weight(&self) -> Option<u64> {
        self.timeline.values().map(|t| t.weight().raw()).min()
    }
}

impl VruntimeQueue {
    /// Smallest vruntime currently queued, if any (the "leftmost" of CFS).
    pub fn min_vruntime(&self) -> Option<u64> {
        self.timeline.keys().next().map(|(v, _)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64, vruntime: u64) -> RqTask {
        let mut t = RqTask::new(TaskId(id));
        t.vruntime = vruntime;
        t
    }

    #[test]
    fn runs_smallest_vruntime_first() {
        let mut q = VruntimeQueue::default();
        q.push(task(1, 300));
        q.push(task(2, 100));
        q.push(task(3, 200));
        assert_eq!(q.min_vruntime(), Some(100));
        assert_eq!(q.pop_next().unwrap().id, TaskId(2));
        assert_eq!(q.pop_next().unwrap().id, TaskId(3));
        assert_eq!(q.pop_next().unwrap().id, TaskId(1));
        assert!(q.pop_next().is_none());
    }

    #[test]
    fn steals_largest_vruntime() {
        let mut q = VruntimeQueue::default();
        q.push(task(1, 300));
        q.push(task(2, 100));
        assert_eq!(q.pop_steal_candidate().unwrap().id, TaskId(1));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn identical_vruntimes_are_kept_distinct() {
        let mut q = VruntimeQueue::default();
        q.push(task(1, 50));
        q.push(task(2, 50));
        assert_eq!(q.len(), 2);
        let a = q.pop_next().unwrap();
        let b = q.pop_next().unwrap();
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn weight_accounting_matches_fifo_semantics() {
        let mut q = VruntimeQueue::default();
        q.push(task(1, 10));
        assert_eq!(q.total_weight(), 1024);
        assert_eq!(q.lightest_weight(), Some(1024));
        assert_eq!(VruntimeQueue::default().min_vruntime(), None);
    }
}
