//! Lock-less load publication.
//!
//! "We think that it is desirable to allow cores to look at the other cores'
//! states and take optimistic decisions based on these observations, without
//! locks." (§1)  Each runqueue publishes the quantities the selection phase
//! needs — thread count, weighted load, lightest waiting weight — through
//! plain atomics.  Readers never take the runqueue lock; what they read may
//! be stale by the time they act on it, which is exactly the optimism the
//! stealing phase re-checks for.

use std::sync::atomic::{AtomicU64, Ordering};

use sched_core::{CoreId, CoreSnapshot};
use sched_topology::NodeId;

/// Atomically published load of one runqueue.
#[derive(Debug, Default)]
pub struct PublishedLoad {
    nr_threads: AtomicU64,
    weighted_load: AtomicU64,
    /// Lightest waiting weight plus one; zero encodes "nothing waiting".
    lightest_plus_one: AtomicU64,
    /// Tracker-maintained load average, scaled by
    /// [`sched_core::tracker::TRACK_SCALE`] — readable lock-free so the
    /// optimistic selection phase can balance on decayed loads without ever
    /// taking the runqueue lock.
    tracked_scaled: AtomicU64,
}

impl PublishedLoad {
    /// Creates an all-zero publication (an idle core).
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a new observation.  Called with the runqueue lock held, so
    /// the stores describe one consistent state; readers may observe a
    /// mix of old and new values, which the model tolerates (the stealing
    /// phase re-checks under the lock).
    pub fn publish(
        &self,
        nr_threads: u64,
        weighted_load: u64,
        lightest_ready: Option<u64>,
        tracked_scaled: u64,
    ) {
        self.nr_threads.store(nr_threads, Ordering::Release);
        self.weighted_load.store(weighted_load, Ordering::Release);
        self.lightest_plus_one.store(lightest_ready.map_or(0, |w| w + 1), Ordering::Release);
        self.tracked_scaled.store(tracked_scaled, Ordering::Release);
    }

    /// Number of threads last published.
    pub fn nr_threads(&self) -> u64 {
        self.nr_threads.load(Ordering::Acquire)
    }

    /// Weighted load last published.
    pub fn weighted_load(&self) -> u64 {
        self.weighted_load.load(Ordering::Acquire)
    }

    /// Lightest waiting weight last published, if anything was waiting.
    pub fn lightest_ready(&self) -> Option<u64> {
        match self.lightest_plus_one.load(Ordering::Acquire) {
            0 => None,
            w => Some(w - 1),
        }
    }

    /// Tracked (scaled) load average last published.
    pub fn tracked_scaled(&self) -> u64 {
        self.tracked_scaled.load(Ordering::Acquire)
    }

    /// Builds a read-only [`CoreSnapshot`] for the selection phase, without
    /// taking any lock.
    pub fn snapshot(&self, id: CoreId, node: NodeId) -> CoreSnapshot {
        CoreSnapshot {
            id,
            node,
            nr_threads: self.nr_threads(),
            weighted_load: self.weighted_load(),
            lightest_ready_weight: self.lightest_ready(),
            tracked_scaled: self.tracked_scaled(),
            injected: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_and_reads_back() {
        let p = PublishedLoad::new();
        assert_eq!(p.nr_threads(), 0);
        assert_eq!(p.lightest_ready(), None);
        p.publish(3, 3 * 1024, Some(1024), 3 * 1024);
        assert_eq!(p.nr_threads(), 3);
        assert_eq!(p.weighted_load(), 3072);
        assert_eq!(p.lightest_ready(), Some(1024));
        assert_eq!(p.tracked_scaled(), 3072);
    }

    #[test]
    fn snapshot_carries_identity_and_loads() {
        use sched_core::LoadMetric;

        let p = PublishedLoad::new();
        p.publish(2, 2048, Some(1024), 2 * 1024);
        let snap = p.snapshot(CoreId(5), NodeId(1));
        assert_eq!(snap.id, CoreId(5));
        assert_eq!(snap.node, NodeId(1));
        assert_eq!(snap.nr_threads, 2);
        assert!(snap.is_overloaded());
        assert_eq!(snap.lightest_ready_weight, Some(1024));
        assert_eq!(snap.load(LoadMetric::Tracked), 2);
    }

    #[test]
    fn zero_weight_waiting_task_is_distinguishable_from_empty() {
        let p = PublishedLoad::new();
        p.publish(1, 0, Some(0), 0);
        assert_eq!(p.lightest_ready(), Some(0));
        p.publish(1, 0, None, 0);
        assert_eq!(p.lightest_ready(), None);
    }
}
