//! Whole-machine topology description.

use crate::cpu::{CpuId, CpuInfo};
use crate::distance::DistanceMatrix;
use crate::domain::DomainTree;
use crate::node::{NodeId, NodeInfo};

/// Immutable description of the machine the scheduler runs on.
///
/// Built by [`crate::TopologyBuilder`]; consumed by NUMA-aware choice
/// policies (step 2 of the balancing round) and by hierarchical balancing
/// over the [`DomainTree`].
#[derive(Debug, Clone)]
pub struct MachineTopology {
    cpus: Vec<CpuInfo>,
    nodes: Vec<NodeInfo>,
    distances: DistanceMatrix,
    domains: DomainTree,
}

impl MachineTopology {
    /// Assembles a topology from its parts.
    ///
    /// Callers normally go through [`crate::TopologyBuilder`]; this
    /// constructor is public so tests and simulators can craft irregular
    /// topologies.
    pub fn new(
        cpus: Vec<CpuInfo>,
        nodes: Vec<NodeInfo>,
        distances: DistanceMatrix,
        domains: DomainTree,
    ) -> Self {
        Self { cpus, nodes, distances, domains }
    }

    /// Number of logical CPUs.
    pub fn nr_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Number of NUMA nodes.
    pub fn nr_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Per-CPU facts for `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn cpu(&self, cpu: CpuId) -> &CpuInfo {
        &self.cpus[cpu.0]
    }

    /// Per-node facts for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node(&self, node: NodeId) -> &NodeInfo {
        &self.nodes[node.0]
    }

    /// All CPUs, in id order.
    pub fn cpus(&self) -> &[CpuInfo] {
        &self.cpus
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// NUMA node `cpu` belongs to.
    pub fn node_of(&self, cpu: CpuId) -> NodeId {
        self.cpus[cpu.0].node
    }

    /// NUMA distance matrix.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }

    /// The scheduling-domain hierarchy.
    pub fn domains(&self) -> &DomainTree {
        &self.domains
    }

    /// Relative cost of migrating a thread from `from` to `to`.
    ///
    /// The cost is 0 for the same CPU, 1 within an LLC, 2 within a node and
    /// the NUMA distance (≥ 10) across nodes.  Choice policies use it as a
    /// tie-breaker; it never affects the work-conservation proof because it
    /// only influences step 2.
    pub fn migration_cost(&self, from: CpuId, to: CpuId) -> u32 {
        if from == to {
            return 0;
        }
        let a = &self.cpus[from.0];
        let b = &self.cpus[to.0];
        if a.shares_llc_with(b) {
            1
        } else if a.node == b.node {
            2
        } else {
            self.distances.distance(a.node, b.node)
        }
    }

    /// CPUs on node `node`, in id order.
    pub fn cpus_of_node(&self, node: NodeId) -> &[CpuId] {
        &self.nodes[node.0].cpus
    }

    /// Returns `true` if the two CPUs are on the same NUMA node.
    pub fn same_node(&self, a: CpuId, b: CpuId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Returns `true` if the two CPUs share a last-level cache.
    pub fn same_llc(&self, a: CpuId, b: CpuId) -> bool {
        self.cpus[a.0].shares_llc_with(&self.cpus[b.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    #[test]
    fn migration_cost_ordering() {
        let topo = TopologyBuilder::new().sockets(2).cores_per_socket(4).llcs_per_socket(2).build();
        let same_llc = topo.migration_cost(CpuId(0), CpuId(1));
        let same_node = topo.migration_cost(CpuId(0), CpuId(2));
        let cross_node = topo.migration_cost(CpuId(0), CpuId(4));
        assert!(same_llc < same_node, "{same_llc} < {same_node}");
        assert!(same_node < cross_node, "{same_node} < {cross_node}");
        assert_eq!(topo.migration_cost(CpuId(3), CpuId(3)), 0);
    }

    #[test]
    fn node_of_maps_cpus_to_sockets() {
        let topo = TopologyBuilder::new().sockets(2).cores_per_socket(2).build();
        assert_eq!(topo.node_of(CpuId(0)), NodeId(0));
        assert_eq!(topo.node_of(CpuId(3)), NodeId(1));
        assert!(topo.same_node(CpuId(0), CpuId(1)));
        assert!(!topo.same_node(CpuId(1), CpuId(2)));
    }

    #[test]
    fn cpus_of_node_partition_the_machine() {
        let topo = TopologyBuilder::new().sockets(4).cores_per_socket(4).build();
        let mut seen = vec![false; topo.nr_cpus()];
        for n in 0..topo.nr_nodes() {
            for cpu in topo.cpus_of_node(NodeId(n)) {
                assert!(!seen[cpu.0], "cpu listed twice");
                seen[cpu.0] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }
}
