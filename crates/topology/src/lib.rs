//! Machine topology substrate.
//!
//! The paper targets "schedulers that could be used in practice, which implies
//! that the scheduler should scale to a large number of cores, and implement
//! the complex scheduling heuristics used on modern hardware such as
//! NUMA-aware thread placement" (§1).  This crate models the hardware facts
//! those heuristics consume:
//!
//! * a [`MachineTopology`] describing sockets, NUMA nodes, last-level-cache
//!   (LLC) groups and SMT siblings,
//! * a NUMA [`DistanceMatrix`] in the style of the ACPI SLIT table,
//! * a hierarchy of [`SchedDomain`]s (SMT → LLC → NUMA node → machine),
//!   mirroring the Linux scheduling-domain tree that hierarchical balancing
//!   (the paper's §5 future work) iterates over.
//!
//! The topology is *pure data*: it never changes at run time, so the
//! lock-less selection phase of the balancer may consult it freely.

pub mod builder;
pub mod cpu;
pub mod distance;
pub mod domain;
pub mod level;
pub mod machine;
pub mod node;

pub use builder::TopologyBuilder;
pub use cpu::{CpuId, CpuInfo};
pub use distance::DistanceMatrix;
pub use domain::{DomainKind, DomainTree, SchedDomain};
pub use level::StealLevel;
pub use machine::MachineTopology;
pub use node::{NodeId, NodeInfo};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_socket_machine_has_one_node() {
        let topo = TopologyBuilder::new().sockets(1).cores_per_socket(4).build();
        assert_eq!(topo.nr_nodes(), 1);
        assert_eq!(topo.nr_cpus(), 4);
    }

    #[test]
    fn dual_socket_machine_has_two_nodes() {
        let topo = TopologyBuilder::new().sockets(2).cores_per_socket(8).build();
        assert_eq!(topo.nr_nodes(), 2);
        assert_eq!(topo.nr_cpus(), 16);
        assert_ne!(topo.node_of(CpuId(0)), topo.node_of(CpuId(8)));
    }
}
