//! CPU (logical core) identifiers and per-CPU topology facts.

use crate::node::NodeId;

/// Identifier of a logical CPU (a hardware thread).
///
/// The scheduler model of the paper has one runqueue per CPU; `CpuId` is the
/// index shared by the topology, the runqueue array and the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(pub usize);

impl CpuId {
    /// Returns the raw index of this CPU.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for CpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Static topology facts about one logical CPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuInfo {
    /// The CPU this record describes.
    pub id: CpuId,
    /// Socket (physical package) the CPU belongs to.
    pub socket: usize,
    /// NUMA node the CPU belongs to.
    pub node: NodeId,
    /// Last-level-cache group within the socket (e.g. a CCX on AMD parts).
    pub llc: usize,
    /// Physical core index within the machine (SMT siblings share it).
    pub physical_core: usize,
    /// SMT sibling CPUs (includes `id` itself).
    pub smt_siblings: Vec<CpuId>,
}

impl CpuInfo {
    /// Returns `true` if `other` shares the physical core with this CPU.
    pub fn is_smt_sibling_of(&self, other: &CpuInfo) -> bool {
        self.physical_core == other.physical_core && self.id != other.id
    }

    /// Returns `true` if `other` shares the last-level cache with this CPU.
    pub fn shares_llc_with(&self, other: &CpuInfo) -> bool {
        self.socket == other.socket && self.llc == other.llc
    }

    /// Returns `true` if `other` is on the same NUMA node as this CPU.
    pub fn shares_node_with(&self, other: &CpuInfo) -> bool {
        self.node == other.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu(id: usize, socket: usize, node: usize, llc: usize, phys: usize) -> CpuInfo {
        CpuInfo {
            id: CpuId(id),
            socket,
            node: NodeId(node),
            llc,
            physical_core: phys,
            smt_siblings: vec![CpuId(id)],
        }
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(CpuId(3).to_string(), "cpu3");
    }

    #[test]
    fn llc_sharing_requires_same_socket() {
        let a = cpu(0, 0, 0, 0, 0);
        let b = cpu(1, 1, 1, 0, 1);
        assert!(!a.shares_llc_with(&b));
        let c = cpu(2, 0, 0, 0, 2);
        assert!(a.shares_llc_with(&c));
    }

    #[test]
    fn smt_sibling_is_not_self() {
        let a = cpu(0, 0, 0, 0, 0);
        assert!(!a.is_smt_sibling_of(&a));
        let mut b = cpu(1, 0, 0, 0, 0);
        b.physical_core = 0;
        assert!(a.is_smt_sibling_of(&b));
    }

    #[test]
    fn node_sharing() {
        let a = cpu(0, 0, 0, 0, 0);
        let b = cpu(1, 0, 0, 1, 1);
        assert!(a.shares_node_with(&b));
    }
}
