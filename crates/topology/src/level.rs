//! Steal levels: the distance classes a victim search walks outwards.
//!
//! Topology-aware stealing orders victims by the cost of migrating a thread
//! from them: an SMT sibling shares everything, an LLC neighbour shares the
//! cache, a node-local core shares the memory controller, and a remote core
//! shares nothing but the interconnect.  The classic "wasted cores" bugs are
//! precisely violations of this ordering — balancing logic that either never
//! looks past its own node (starving idle cores) or that treats every core
//! as equidistant (shredding locality).  [`StealLevel`] is the shared
//! vocabulary the model, the simulator and the real-thread runqueues use so
//! that all three altitudes run the *identical* distance-ordered policy.

use crate::cpu::CpuId;
use crate::machine::MachineTopology;

/// The distance class between a thief and a victim, innermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StealLevel {
    /// Victim is an SMT sibling: same physical core.
    SmtSibling,
    /// Victim shares the last-level cache (but not the physical core).
    SameLlc,
    /// Victim is on the same NUMA node (but not the same LLC).
    SameNode,
    /// Victim is on a remote NUMA node.
    Remote,
}

impl StealLevel {
    /// All levels, ordered innermost (cheapest migration) first.
    pub const ALL: [StealLevel; 4] =
        [StealLevel::SmtSibling, StealLevel::SameLlc, StealLevel::SameNode, StealLevel::Remote];

    /// Index of this level in [`StealLevel::ALL`] (0 = innermost).
    pub fn index(self) -> usize {
        match self {
            StealLevel::SmtSibling => 0,
            StealLevel::SameLlc => 1,
            StealLevel::SameNode => 2,
            StealLevel::Remote => 3,
        }
    }

    /// The level with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not in `0..4`.
    pub fn from_index(index: usize) -> StealLevel {
        StealLevel::ALL[index]
    }

    /// Short lowercase name used in stats columns (`"smt"`, `"llc"`,
    /// `"node"`, `"remote"`).
    pub fn short_name(self) -> &'static str {
        match self {
            StealLevel::SmtSibling => "smt",
            StealLevel::SameLlc => "llc",
            StealLevel::SameNode => "node",
            StealLevel::Remote => "remote",
        }
    }
}

impl std::fmt::Display for StealLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

impl MachineTopology {
    /// Classifies the distance between two distinct CPUs into the steal
    /// level a victim search would find the second one at.
    ///
    /// # Panics
    ///
    /// Panics if the two CPUs are the same (a core never steals from
    /// itself, so the classification is meaningless).
    pub fn steal_level(&self, thief: CpuId, victim: CpuId) -> StealLevel {
        assert_ne!(thief, victim, "a core has no steal level relative to itself");
        let a = self.cpu(thief);
        let b = self.cpu(victim);
        if a.is_smt_sibling_of(b) {
            StealLevel::SmtSibling
        } else if a.shares_llc_with(b) {
            StealLevel::SameLlc
        } else if a.node == b.node {
            StealLevel::SameNode
        } else {
            StealLevel::Remote
        }
    }

    /// Partitions the machine's CPUs into the regions that steals **at or
    /// below** `level` stay inside: physical cores for
    /// [`StealLevel::SmtSibling`], LLCs for [`StealLevel::SameLlc`], NUMA
    /// nodes for [`StealLevel::SameNode`] and the whole machine for
    /// [`StealLevel::Remote`].
    ///
    /// This is the partition the per-level potential (hierarchical
    /// convergence) is computed over: a steal classified at `level` moves
    /// load *within* one region of every partition at `level` or coarser,
    /// so it cannot disturb the balance already achieved at those levels.
    pub fn level_regions(&self, level: StealLevel) -> Vec<Vec<CpuId>> {
        let mut regions: Vec<(usize, Vec<CpuId>)> = Vec::new();
        for cpu in self.cpus() {
            // A dense sort key identifying the cpu's region at this level.
            let key = match level {
                StealLevel::SmtSibling => cpu.physical_core,
                StealLevel::SameLlc => cpu.socket * (self.nr_cpus() + 1) + cpu.llc,
                StealLevel::SameNode => cpu.node.0,
                StealLevel::Remote => 0,
            };
            match regions.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(cpu.id),
                None => regions.push((key, vec![cpu.id])),
            }
        }
        regions.into_iter().map(|(_, members)| members).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    #[test]
    fn levels_are_ordered_innermost_first() {
        let levels = StealLevel::ALL;
        for (i, level) in levels.iter().enumerate() {
            assert_eq!(level.index(), i);
            assert_eq!(StealLevel::from_index(i), *level);
        }
        assert!(StealLevel::SmtSibling < StealLevel::Remote);
    }

    #[test]
    fn classification_walks_outwards_on_a_full_machine() {
        // 2 sockets × 4 cores × 2 LLCs × SMT-2: cpu0's sibling is cpu1, its
        // LLC spans cpus 0..4, its node spans cpus 0..8.
        let topo =
            TopologyBuilder::new().sockets(2).cores_per_socket(4).llcs_per_socket(2).smt(2).build();
        assert_eq!(topo.steal_level(CpuId(0), CpuId(1)), StealLevel::SmtSibling);
        assert_eq!(topo.steal_level(CpuId(0), CpuId(2)), StealLevel::SameLlc);
        assert_eq!(topo.steal_level(CpuId(0), CpuId(4)), StealLevel::SameNode);
        assert_eq!(topo.steal_level(CpuId(0), CpuId(8)), StealLevel::Remote);
    }

    #[test]
    fn classification_is_symmetric() {
        let topo =
            TopologyBuilder::new().sockets(2).cores_per_socket(4).llcs_per_socket(2).smt(2).build();
        for a in 0..topo.nr_cpus() {
            for b in 0..topo.nr_cpus() {
                if a == b {
                    continue;
                }
                assert_eq!(
                    topo.steal_level(CpuId(a), CpuId(b)),
                    topo.steal_level(CpuId(b), CpuId(a)),
                );
            }
        }
    }

    #[test]
    fn level_agrees_with_migration_cost_ordering() {
        // The steal-level order must refine the migration-cost order: a
        // strictly closer level never costs more than a farther one.
        let topo =
            TopologyBuilder::new().sockets(2).cores_per_socket(4).llcs_per_socket(2).smt(2).build();
        let thief = CpuId(0);
        for a in 1..topo.nr_cpus() {
            for b in 1..topo.nr_cpus() {
                let (a, b) = (CpuId(a), CpuId(b));
                if a == b {
                    continue;
                }
                if topo.steal_level(thief, a) < topo.steal_level(thief, b) {
                    assert!(topo.migration_cost(thief, a) <= topo.migration_cost(thief, b));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "no steal level")]
    fn self_classification_is_rejected() {
        let topo = TopologyBuilder::new().build();
        let _ = topo.steal_level(CpuId(0), CpuId(0));
    }

    #[test]
    fn level_regions_partition_the_machine() {
        let topo =
            TopologyBuilder::new().sockets(2).cores_per_socket(4).llcs_per_socket(2).smt(2).build();
        for level in StealLevel::ALL {
            let regions = topo.level_regions(level);
            let mut seen = vec![false; topo.nr_cpus()];
            for region in &regions {
                for cpu in region {
                    assert!(!seen[cpu.0], "cpu in two regions at {level}");
                    seen[cpu.0] = true;
                }
            }
            assert!(seen.into_iter().all(|s| s), "regions must cover the machine at {level}");
        }
        assert_eq!(topo.level_regions(StealLevel::SmtSibling).len(), 8);
        assert_eq!(topo.level_regions(StealLevel::SameLlc).len(), 4);
        assert_eq!(topo.level_regions(StealLevel::SameNode).len(), 2);
        assert_eq!(topo.level_regions(StealLevel::Remote).len(), 1);
    }

    #[test]
    fn same_level_cpus_share_a_region() {
        let topo =
            TopologyBuilder::new().sockets(2).cores_per_socket(4).llcs_per_socket(2).smt(2).build();
        for level in StealLevel::ALL {
            let regions = topo.level_regions(level);
            let region_of = |cpu: CpuId| regions.iter().position(|r| r.contains(&cpu)).unwrap();
            for a in 0..topo.nr_cpus() {
                for b in 0..topo.nr_cpus() {
                    if a == b {
                        continue;
                    }
                    let (a, b) = (CpuId(a), CpuId(b));
                    // Steals at or below `level` stay inside one region.
                    if topo.steal_level(a, b) <= level {
                        assert_eq!(region_of(a), region_of(b));
                    } else {
                        assert_ne!(region_of(a), region_of(b));
                    }
                }
            }
        }
    }
}
