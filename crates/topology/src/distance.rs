//! NUMA distance matrix, in the style of the ACPI SLIT table.

use crate::node::NodeId;

/// Local-access distance used as the matrix diagonal, matching the ACPI
/// convention where local accesses have distance 10.
pub const LOCAL_DISTANCE: u32 = 10;

/// Default remote distance for directly connected nodes.
pub const REMOTE_DISTANCE: u32 = 20;

/// Symmetric matrix of relative memory-access distances between NUMA nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    nr_nodes: usize,
    /// Row-major `nr_nodes * nr_nodes` distances.
    distances: Vec<u32>,
}

impl DistanceMatrix {
    /// Creates a matrix where every pair of distinct nodes is at
    /// [`REMOTE_DISTANCE`] and the diagonal is [`LOCAL_DISTANCE`].
    pub fn flat(nr_nodes: usize) -> Self {
        let mut m = Self { nr_nodes, distances: vec![REMOTE_DISTANCE; nr_nodes * nr_nodes] };
        for n in 0..nr_nodes {
            m.distances[n * nr_nodes + n] = LOCAL_DISTANCE;
        }
        m
    }

    /// Creates a matrix where distance grows with hop count on a ring of
    /// nodes, approximating a glueless multi-socket interconnect.
    pub fn ring(nr_nodes: usize) -> Self {
        let mut m = Self::flat(nr_nodes);
        for a in 0..nr_nodes {
            for b in 0..nr_nodes {
                if a == b {
                    continue;
                }
                let fwd = (b + nr_nodes - a) % nr_nodes;
                let back = (a + nr_nodes - b) % nr_nodes;
                let hops = fwd.min(back) as u32;
                m.distances[a * nr_nodes + b] = LOCAL_DISTANCE + 10 * hops;
            }
        }
        m
    }

    /// Number of nodes covered by this matrix.
    pub fn nr_nodes(&self) -> usize {
        self.nr_nodes
    }

    /// Distance from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if either node index is out of range.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        assert!(a.0 < self.nr_nodes && b.0 < self.nr_nodes, "node out of range");
        self.distances[a.0 * self.nr_nodes + b.0]
    }

    /// Overrides the distance between `a` and `b` (symmetrically).
    pub fn set_distance(&mut self, a: NodeId, b: NodeId, distance: u32) {
        assert!(a.0 < self.nr_nodes && b.0 < self.nr_nodes, "node out of range");
        self.distances[a.0 * self.nr_nodes + b.0] = distance;
        self.distances[b.0 * self.nr_nodes + a.0] = distance;
    }

    /// Returns `true` if `a` and `b` are the same node.
    pub fn is_local(&self, a: NodeId, b: NodeId) -> bool {
        a == b
    }

    /// Nodes sorted by distance from `from`, nearest first (excluding `from`).
    pub fn nodes_by_distance(&self, from: NodeId) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> =
            (0..self.nr_nodes).filter(|&n| n != from.0).map(NodeId).collect();
        nodes.sort_by_key(|&n| self.distance(from, n));
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_matrix_is_symmetric_with_local_diagonal() {
        let m = DistanceMatrix::flat(4);
        for a in 0..4 {
            for b in 0..4 {
                let d = m.distance(NodeId(a), NodeId(b));
                assert_eq!(d, m.distance(NodeId(b), NodeId(a)));
                if a == b {
                    assert_eq!(d, LOCAL_DISTANCE);
                } else {
                    assert_eq!(d, REMOTE_DISTANCE);
                }
            }
        }
    }

    #[test]
    fn ring_distance_grows_with_hops() {
        let m = DistanceMatrix::ring(4);
        assert_eq!(m.distance(NodeId(0), NodeId(1)), 20);
        assert_eq!(m.distance(NodeId(0), NodeId(2)), 30);
        assert_eq!(m.distance(NodeId(0), NodeId(3)), 20);
    }

    #[test]
    fn nodes_by_distance_orders_nearest_first() {
        let m = DistanceMatrix::ring(4);
        let order = m.nodes_by_distance(NodeId(0));
        assert_eq!(order.len(), 3);
        assert_eq!(*order.last().unwrap(), NodeId(2));
    }

    #[test]
    fn set_distance_is_symmetric() {
        let mut m = DistanceMatrix::flat(2);
        m.set_distance(NodeId(0), NodeId(1), 42);
        assert_eq!(m.distance(NodeId(1), NodeId(0)), 42);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn distance_panics_out_of_range() {
        let m = DistanceMatrix::flat(2);
        let _ = m.distance(NodeId(0), NodeId(5));
    }
}
