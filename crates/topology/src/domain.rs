//! Scheduling-domain hierarchy.
//!
//! Linux balances load hierarchically over a tree of *scheduling domains*
//! (SMT siblings, then the LLC, then the NUMA node, then the whole machine).
//! The paper's §5 proposes expressing exactly this "balance between groups of
//! cores, then inside groups" structure on top of the verified three-step
//! abstraction.  This module provides the static tree those policies walk.

use crate::cpu::CpuId;

/// The level of a scheduling domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DomainKind {
    /// Hardware threads sharing one physical core.
    Smt,
    /// Cores sharing a last-level cache.
    Llc,
    /// Cores on one NUMA node.
    Node,
    /// The whole machine.
    Machine,
}

impl std::fmt::Display for DomainKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DomainKind::Smt => "SMT",
            DomainKind::Llc => "LLC",
            DomainKind::Node => "NODE",
            DomainKind::Machine => "MACHINE",
        };
        f.write_str(s)
    }
}

/// One scheduling domain: a span of CPUs partitioned into child groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedDomain {
    /// The level of this domain.
    pub kind: DomainKind,
    /// All CPUs covered by this domain, in ascending order.
    pub span: Vec<CpuId>,
    /// Disjoint groups of CPUs; balancing at this level moves load between
    /// groups, balancing below this level moves load inside a group.
    pub groups: Vec<Vec<CpuId>>,
}

impl SchedDomain {
    /// Returns `true` if `cpu` is covered by this domain.
    pub fn contains(&self, cpu: CpuId) -> bool {
        self.span.binary_search(&cpu).is_ok()
    }

    /// Returns the group `cpu` belongs to, if any.
    pub fn group_of(&self, cpu: CpuId) -> Option<&[CpuId]> {
        self.groups.iter().find(|g| g.binary_search(&cpu).is_ok()).map(|g| g.as_slice())
    }

    /// Number of CPUs in the domain.
    pub fn weight(&self) -> usize {
        self.span.len()
    }
}

/// The per-machine stack of domains, from the innermost (SMT) outwards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DomainTree {
    levels: Vec<SchedDomain>,
}

impl DomainTree {
    /// Builds a tree from domains ordered innermost-first.
    ///
    /// # Panics
    ///
    /// Panics if a later (outer) domain does not cover an earlier (inner)
    /// one, i.e. if the hierarchy is not nested.
    pub fn new(levels: Vec<SchedDomain>) -> Self {
        for w in levels.windows(2) {
            let (inner, outer) = (&w[0], &w[1]);
            for cpu in &inner.span {
                assert!(outer.contains(*cpu), "domain hierarchy is not nested");
            }
        }
        Self { levels }
    }

    /// Domains ordered innermost-first.
    pub fn levels(&self) -> &[SchedDomain] {
        &self.levels
    }

    /// Number of levels.
    pub fn nr_levels(&self) -> usize {
        self.levels.len()
    }

    /// The outermost (machine-wide) domain, if the tree is non-empty.
    pub fn top(&self) -> Option<&SchedDomain> {
        self.levels.last()
    }

    /// Domains that contain `cpu`, ordered innermost-first.
    pub fn domains_of(&self, cpu: CpuId) -> impl Iterator<Item = &SchedDomain> {
        self.levels.iter().filter(move |d| d.contains(cpu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(ids: &[usize]) -> Vec<CpuId> {
        ids.iter().copied().map(CpuId).collect()
    }

    fn two_level_tree() -> DomainTree {
        DomainTree::new(vec![
            SchedDomain {
                kind: DomainKind::Node,
                span: span(&[0, 1]),
                groups: vec![span(&[0]), span(&[1])],
            },
            SchedDomain {
                kind: DomainKind::Machine,
                span: span(&[0, 1, 2, 3]),
                groups: vec![span(&[0, 1]), span(&[2, 3])],
            },
        ])
    }

    #[test]
    fn group_of_finds_the_right_group() {
        let tree = two_level_tree();
        let top = tree.top().unwrap();
        assert_eq!(top.group_of(CpuId(3)).unwrap(), &span(&[2, 3])[..]);
        assert_eq!(top.group_of(CpuId(7)), None);
    }

    #[test]
    fn domains_of_only_returns_covering_domains() {
        let tree = two_level_tree();
        assert_eq!(tree.domains_of(CpuId(0)).count(), 2);
        assert_eq!(tree.domains_of(CpuId(2)).count(), 1);
    }

    #[test]
    #[should_panic(expected = "not nested")]
    fn non_nested_hierarchy_is_rejected() {
        let _ = DomainTree::new(vec![
            SchedDomain {
                kind: DomainKind::Node,
                span: span(&[0, 1]),
                groups: vec![span(&[0, 1])],
            },
            SchedDomain {
                kind: DomainKind::Machine,
                span: span(&[1, 2]),
                groups: vec![span(&[1, 2])],
            },
        ]);
    }

    #[test]
    fn weight_is_span_size() {
        let tree = two_level_tree();
        assert_eq!(tree.top().unwrap().weight(), 4);
        assert_eq!(tree.nr_levels(), 2);
    }
}
