//! Builder for regular machine topologies.

use crate::cpu::{CpuId, CpuInfo};
use crate::distance::DistanceMatrix;
use crate::domain::{DomainKind, DomainTree, SchedDomain};
use crate::machine::MachineTopology;
use crate::node::{NodeId, NodeInfo};

/// Builds regular (socket × LLC × core × SMT) machine topologies.
///
/// # Examples
///
/// ```
/// use sched_topology::TopologyBuilder;
///
/// let topo = TopologyBuilder::new()
///     .sockets(2)
///     .cores_per_socket(8)
///     .smt(2)
///     .build();
/// assert_eq!(topo.nr_cpus(), 32);
/// assert_eq!(topo.nr_nodes(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    sockets: usize,
    cores_per_socket: usize,
    llcs_per_socket: usize,
    smt: usize,
    memory_per_node_mib: u64,
    ring_interconnect: bool,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// Starts from a single-socket, 4-core, no-SMT machine.
    pub fn new() -> Self {
        Self {
            sockets: 1,
            cores_per_socket: 4,
            llcs_per_socket: 1,
            smt: 1,
            memory_per_node_mib: 32 * 1024,
            ring_interconnect: false,
        }
    }

    /// Number of sockets; each socket is one NUMA node.
    pub fn sockets(mut self, sockets: usize) -> Self {
        assert!(sockets >= 1, "at least one socket");
        self.sockets = sockets;
        self
    }

    /// Physical cores per socket.
    pub fn cores_per_socket(mut self, cores: usize) -> Self {
        assert!(cores >= 1, "at least one core per socket");
        self.cores_per_socket = cores;
        self
    }

    /// Number of last-level caches per socket (e.g. CCX-style splits).
    pub fn llcs_per_socket(mut self, llcs: usize) -> Self {
        assert!(llcs >= 1, "at least one LLC per socket");
        self.llcs_per_socket = llcs;
        self
    }

    /// Hardware threads per physical core (1 = SMT off).
    pub fn smt(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one thread per core");
        self.smt = threads;
        self
    }

    /// Memory per NUMA node in MiB.
    pub fn memory_per_node_mib(mut self, mib: u64) -> Self {
        self.memory_per_node_mib = mib;
        self
    }

    /// Uses a ring interconnect (distance grows with hop count) instead of a
    /// flat all-to-all distance matrix.
    pub fn ring_interconnect(mut self, ring: bool) -> Self {
        self.ring_interconnect = ring;
        self
    }

    /// A 2-socket, 8-core-per-socket server preset, similar to the machines
    /// used by the "wasted cores" study the paper builds its motivation on.
    pub fn dual_socket_server() -> MachineTopology {
        Self::new().sockets(2).cores_per_socket(8).llcs_per_socket(1).smt(2).build()
    }

    /// An 8-node NUMA machine preset (the scale at which CFS bugs appeared).
    pub fn eight_node_numa() -> MachineTopology {
        Self::new()
            .sockets(8)
            .cores_per_socket(8)
            .llcs_per_socket(2)
            .ring_interconnect(true)
            .build()
    }

    /// Builds the immutable topology.
    pub fn build(self) -> MachineTopology {
        let cpus_per_socket = self.cores_per_socket * self.smt;
        let nr_cpus = self.sockets * cpus_per_socket;
        let cores_per_llc = self.cores_per_socket.div_ceil(self.llcs_per_socket);

        let mut cpus = Vec::with_capacity(nr_cpus);
        let mut nodes = Vec::with_capacity(self.sockets);

        for socket in 0..self.sockets {
            let mut node_cpus = Vec::with_capacity(cpus_per_socket);
            for core in 0..self.cores_per_socket {
                let physical_core = socket * self.cores_per_socket + core;
                let llc = core / cores_per_llc;
                let mut siblings = Vec::with_capacity(self.smt);
                for t in 0..self.smt {
                    let id = CpuId(socket * cpus_per_socket + core * self.smt + t);
                    siblings.push(id);
                }
                for t in 0..self.smt {
                    let id = siblings[t];
                    node_cpus.push(id);
                    cpus.push(CpuInfo {
                        id,
                        socket,
                        node: NodeId(socket),
                        llc,
                        physical_core,
                        smt_siblings: siblings.clone(),
                    });
                }
            }
            node_cpus.sort();
            nodes.push(NodeInfo {
                id: NodeId(socket),
                cpus: node_cpus,
                memory_mib: self.memory_per_node_mib,
            });
        }
        cpus.sort_by_key(|c| c.id);

        let distances = if self.ring_interconnect {
            DistanceMatrix::ring(self.sockets)
        } else {
            DistanceMatrix::flat(self.sockets)
        };

        let domains = build_domains(&self, &cpus, &nodes);
        MachineTopology::new(cpus, nodes, distances, domains)
    }
}

fn build_domains(builder: &TopologyBuilder, cpus: &[CpuInfo], nodes: &[NodeInfo]) -> DomainTree {
    let all: Vec<CpuId> = cpus.iter().map(|c| c.id).collect();
    let mut levels = Vec::new();

    // SMT level: groups are individual hardware threads within a core.
    if builder.smt > 1 {
        levels.push(SchedDomain {
            kind: DomainKind::Smt,
            span: all.clone(),
            groups: group_by(cpus, |c| c.physical_core),
        });
    }

    // LLC level: groups are physical cores (or SMT sibling sets).
    levels.push(SchedDomain {
        kind: DomainKind::Llc,
        span: all.clone(),
        groups: group_by(cpus, |c| (c.socket, c.llc)),
    });

    // Node level: groups are LLCs within a node (only meaningful with >1 LLC).
    if builder.llcs_per_socket > 1 {
        levels.push(SchedDomain {
            kind: DomainKind::Node,
            span: all.clone(),
            groups: group_by(cpus, |c| c.node),
        });
    }

    // Machine level: groups are NUMA nodes.
    if nodes.len() > 1 {
        levels.push(SchedDomain {
            kind: DomainKind::Machine,
            span: all,
            groups: nodes.iter().map(|n| n.cpus.clone()).collect(),
        });
    }

    DomainTree::new(levels)
}

fn group_by<K: PartialEq + Copy>(cpus: &[CpuInfo], key: impl Fn(&CpuInfo) -> K) -> Vec<Vec<CpuId>> {
    let mut groups: Vec<(K, Vec<CpuId>)> = Vec::new();
    for cpu in cpus {
        let k = key(cpu);
        if let Some((_, g)) = groups.iter_mut().find(|(gk, _)| *gk == k) {
            g.push(cpu.id);
        } else {
            groups.push((k, vec![cpu.id]));
        }
    }
    groups
        .into_iter()
        .map(|(_, mut g)| {
            g.sort();
            g
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smt_siblings_share_physical_core() {
        let topo = TopologyBuilder::new().sockets(1).cores_per_socket(2).smt(2).build();
        assert_eq!(topo.nr_cpus(), 4);
        let c0 = topo.cpu(CpuId(0));
        let c1 = topo.cpu(CpuId(1));
        assert!(c0.is_smt_sibling_of(c1));
        assert_eq!(c0.smt_siblings, vec![CpuId(0), CpuId(1)]);
    }

    #[test]
    fn llc_split_partitions_a_socket() {
        let topo = TopologyBuilder::new().sockets(1).cores_per_socket(8).llcs_per_socket(2).build();
        assert!(topo.same_llc(CpuId(0), CpuId(3)));
        assert!(!topo.same_llc(CpuId(0), CpuId(4)));
    }

    #[test]
    fn domain_tree_has_machine_level_for_multi_socket() {
        let topo = TopologyBuilder::dual_socket_server();
        let top = topo.domains().top().unwrap();
        assert_eq!(top.kind, DomainKind::Machine);
        assert_eq!(top.groups.len(), 2);
        assert_eq!(top.weight(), topo.nr_cpus());
    }

    #[test]
    fn single_socket_no_smt_has_only_llc_level() {
        let topo = TopologyBuilder::new().sockets(1).cores_per_socket(4).build();
        assert_eq!(topo.domains().nr_levels(), 1);
        assert_eq!(topo.domains().levels()[0].kind, DomainKind::Llc);
    }

    #[test]
    fn eight_node_preset_uses_ring_distances() {
        let topo = TopologyBuilder::eight_node_numa();
        assert_eq!(topo.nr_nodes(), 8);
        let d1 = topo.distances().distance(NodeId(0), NodeId(1));
        let d4 = topo.distances().distance(NodeId(0), NodeId(4));
        assert!(d4 > d1);
    }

    #[test]
    fn groups_cover_span_exactly() {
        let topo =
            TopologyBuilder::new().sockets(2).cores_per_socket(4).llcs_per_socket(2).smt(2).build();
        for dom in topo.domains().levels() {
            let mut covered: Vec<CpuId> = dom.groups.iter().flatten().copied().collect();
            covered.sort();
            assert_eq!(covered, dom.span, "groups must partition the span at {}", dom.kind);
        }
    }
}
