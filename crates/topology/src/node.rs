//! NUMA node identifiers and per-node topology facts.

use crate::cpu::CpuId;

/// Identifier of a NUMA node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the raw index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Static facts about one NUMA node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// The node this record describes.
    pub id: NodeId,
    /// CPUs local to this node, in ascending order.
    pub cpus: Vec<CpuId>,
    /// Amount of local memory, in MiB (informational; the scheduler model
    /// does not track memory placement, only thread placement).
    pub memory_mib: u64,
}

impl NodeInfo {
    /// Returns the number of CPUs on this node.
    pub fn nr_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Returns `true` if `cpu` belongs to this node.
    pub fn contains(&self, cpu: CpuId) -> bool {
        self.cpus.binary_search(&cpu).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_uses_sorted_cpu_list() {
        let node = NodeInfo {
            id: NodeId(0),
            cpus: vec![CpuId(0), CpuId(1), CpuId(2), CpuId(3)],
            memory_mib: 1024,
        };
        assert!(node.contains(CpuId(2)));
        assert!(!node.contains(CpuId(4)));
        assert_eq!(node.nr_cpus(), 4);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(NodeId(1).to_string(), "node1");
    }
}
