//! Measurement substrate shared by the simulator and the benchmark harness.
//!
//! The paper's motivation is quantitative — "we have observed many-fold
//! performance degradation in the case of scientific applications, and up to
//! 25% decrease in throughput for realistic database workloads" (§1) — and
//! its correctness criterion is temporal ("over time every idle core will
//! manage to steal work").  This crate provides the instruments those
//! statements are measured with:
//!
//! * [`idle::IdleAccounting`] — per-core idle time, split into *benign* idle
//!   time (no work anywhere) and *violating* idle time (idle while some core
//!   is overloaded), which is the quantity a work-conserving scheduler drives
//!   to zero,
//! * [`convergence::ConvergenceTracker`] — rounds-until-work-conservation,
//! * [`throughput::ThroughputMeter`] and [`latency`]/[`histogram`] — the
//!   workload-level metrics of experiments E9/E10,
//! * [`churn::MigrationChurn`] — migrations per epoch and churn ratios,
//!   comparing how much balancing *work* two criteria spend to resolve the
//!   same imbalance (experiment E17),
//! * [`overflow::OverflowExposure`] — idle-while-spilled accounting: the
//!   fraction of the machine stranded idle while a runqueue's overflow
//!   handling hid runnable work (experiment E22),
//! * [`summary::Summary`] — mean/percentile aggregation,
//! * [`table::Table`] — fixed-width/markdown table rendering used by the
//!   experiment harness to print the rows recorded in `EXPERIMENTS.md`.

pub mod churn;
pub mod convergence;
pub mod histogram;
pub mod idle;
pub mod latency;
pub mod locality;
pub mod overflow;
pub mod summary;
pub mod table;
pub mod throughput;

pub use churn::MigrationChurn;
pub use convergence::ConvergenceTracker;
pub use histogram::Histogram;
pub use idle::IdleAccounting;
pub use latency::LatencyRecorder;
pub use locality::StealLocality;
pub use overflow::OverflowExposure;
pub use summary::Summary;
pub use table::Table;
pub use throughput::ThroughputMeter;
