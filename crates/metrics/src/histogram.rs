//! Power-of-two bucketed histograms.

/// A histogram with power-of-two buckets, suitable for latency-like values
/// spanning many orders of magnitude.
///
/// Bucket `i` counts samples `v` with `2^(i-1) < v <= 2^i` (bucket 0 counts
/// zeros and ones).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: Option<u64>,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = Self::bucket_of(value);
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = self.max.max(value);
    }

    /// Index of the bucket `value` falls into.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()).saturating_sub(1) as usize
    }

    /// Lower bound (exclusive, except for bucket 0) of bucket `i`.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples, or 0 if none.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate value at quantile `q` in `[0, 1]`, using bucket upper
    /// bounds; returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper bound of the bucket, clamped to the observed max.
                return (1u64 << (i + 1)).min(self.max.max(1));
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(3), 8);
    }

    #[test]
    fn basic_statistics() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), 16);
        assert!((h.mean() - 6.2).abs() < 1e-9);
        assert!(h.quantile(1.0) >= 16);
        assert!(h.quantile(0.0) >= 1);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new();
        a.record(5);
        a.record(100);
        let mut b = Histogram::new();
        b.record(1);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let mut prev = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }
}
