//! Scheduling-latency recording.
//!
//! The paper lists reactivity — "a bound on the delay to schedule ready
//! threads" (§1) — among the performance properties operating systems are
//! never proven to have.  The recorder measures exactly that delay in the
//! simulator: the time between a thread becoming runnable and it first
//! running.

use crate::histogram::Histogram;

/// Records per-event scheduling latencies into a histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyRecorder {
    histogram: Histogram,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample: `ready_at` is when the thread became
    /// runnable, `scheduled_at` when it started running.
    ///
    /// # Panics
    ///
    /// Panics if `scheduled_at < ready_at`, which would be a simulator bug.
    pub fn record(&mut self, ready_at: u64, scheduled_at: u64) {
        assert!(scheduled_at >= ready_at, "a thread cannot run before it is ready");
        self.histogram.record(scheduled_at - ready_at);
    }

    /// Records an already computed latency value.
    pub fn record_value(&mut self, latency: u64) {
        self.histogram.record(latency);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.histogram.count()
    }

    /// Mean latency.
    pub fn mean(&self) -> f64 {
        self.histogram.mean()
    }

    /// Maximum latency observed.
    pub fn max(&self) -> u64 {
        self.histogram.max()
    }

    /// Approximate latency at quantile `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        self.histogram.quantile(q)
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Merges another recorder into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.histogram.merge(&other.histogram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_differences() {
        let mut r = LatencyRecorder::new();
        r.record(100, 150);
        r.record(200, 200);
        assert_eq!(r.count(), 2);
        assert_eq!(r.max(), 50);
        assert_eq!(r.mean(), 25.0);
    }

    #[test]
    #[should_panic(expected = "cannot run before it is ready")]
    fn negative_latency_is_a_bug() {
        let mut r = LatencyRecorder::new();
        r.record(100, 50);
    }

    #[test]
    fn merge_combines_recorders() {
        let mut a = LatencyRecorder::new();
        a.record_value(10);
        let mut b = LatencyRecorder::new();
        b.record_value(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert!(a.quantile(0.99) >= 1000);
    }
}
