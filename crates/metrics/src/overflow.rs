//! Idle-while-spilled accounting: how much core time a runqueue's overflow
//! handling strands.
//!
//! A work-conserving scheduler never leaves a core idle while runnable
//! work waits — but "waits" must mean *reachable*: a backend that parks
//! ring overflow where thieves cannot claim it satisfies every load
//! observer and still violates the criterion in practice.  This module
//! measures that violation directly, the way experiment E22 samples it:
//! after each balancing round of an overflow storm, how many cores are
//! still idle while an overloaded core holds waiting work?  On a backend
//! whose overflow stays stealable the answer is ~0 (every idle core found
//! *something* within its round); on one that hides overflow the stranded
//! fraction persists round after round until the next tick-driven drain.

/// Per-round exposure accumulator for one overflow-storm run.
///
/// Feed it one [`OverflowExposure::record_round`] per balancing round,
/// sampled *after* the round's steals have settled; read the
/// [`OverflowExposure::violating_fraction`] at the end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverflowExposure {
    nr_cores: usize,
    sampled_rounds: u64,
    violating_core_rounds: f64,
}

impl OverflowExposure {
    /// A fresh accumulator for a `nr_cores`-core machine.
    ///
    /// # Panics
    ///
    /// Panics if `nr_cores` is zero.
    pub fn new(nr_cores: usize) -> Self {
        assert!(nr_cores > 0, "a machine needs at least one core");
        OverflowExposure { nr_cores, sampled_rounds: 0, violating_core_rounds: 0.0 }
    }

    /// Records one settled round: `idle_cores` cores had nothing to run
    /// while `work_waiting` says whether any core still held waiting
    /// (queued) work.  Idle cores with no work waiting anywhere are benign
    /// idle, not a violation, and contribute nothing.
    pub fn record_round(&mut self, idle_cores: usize, work_waiting: bool) {
        assert!(idle_cores <= self.nr_cores, "more idle cores than cores");
        self.sampled_rounds += 1;
        if work_waiting {
            self.violating_core_rounds += idle_cores as f64 / self.nr_cores as f64;
        }
    }

    /// Rounds recorded so far.
    pub fn sampled_rounds(&self) -> u64 {
        self.sampled_rounds
    }

    /// Mean fraction of the machine left idle-while-work-waited per round
    /// — the quantity a work-conserving overflow discipline drives to ~0.
    pub fn violating_fraction(&self) -> f64 {
        if self.sampled_rounds == 0 {
            0.0
        } else {
            self.violating_core_rounds / self.sampled_rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_idle_contributes_nothing() {
        let mut exp = OverflowExposure::new(8);
        exp.record_round(8, false); // drained machine: all idle, no work
        exp.record_round(0, true); // busy machine
        assert_eq!(exp.sampled_rounds(), 2);
        assert_eq!(exp.violating_fraction(), 0.0);
    }

    #[test]
    fn stranded_work_accumulates_per_round() {
        let mut exp = OverflowExposure::new(16);
        // The E22 spill shape: 7 of 16 cores idle against hidden work,
        // two rounds per epoch.
        exp.record_round(7, true);
        exp.record_round(7, true);
        assert!((exp.violating_fraction() - 7.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_reports_zero() {
        let exp = OverflowExposure::new(4);
        assert_eq!(exp.violating_fraction(), 0.0);
        assert_eq!(exp.sampled_rounds(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_is_rejected() {
        let _ = OverflowExposure::new(0);
    }
}
