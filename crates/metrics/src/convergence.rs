//! Tracking how many rounds a system needs to become work-conserving.

/// Observes a sequence of load-balancing rounds and records when the system
/// first reached (and whether it later left) a work-conserving state.
///
/// This is the measurement counterpart of the §3.2 definition: the tracker
/// reports the `N` after which no core was idle while another was
/// overloaded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConvergenceTracker {
    rounds_observed: usize,
    first_conserving_round: Option<usize>,
    violations_after_convergence: usize,
    total_failures: u64,
    total_successes: u64,
}

impl ConvergenceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the state observed *after* one load-balancing round.
    pub fn observe_round(&mut self, work_conserving: bool, successes: u64, failures: u64) {
        self.rounds_observed += 1;
        self.total_successes += successes;
        self.total_failures += failures;
        if work_conserving {
            if self.first_conserving_round.is_none() {
                self.first_conserving_round = Some(self.rounds_observed);
            }
        } else if self.first_conserving_round.is_some() {
            // The system fell back out of work conservation (e.g. new threads
            // arrived); count it, the next conserving observation will not
            // overwrite the original N.
            self.violations_after_convergence += 1;
        }
    }

    /// Number of rounds observed so far.
    pub fn rounds_observed(&self) -> usize {
        self.rounds_observed
    }

    /// The `N` of the work-conservation definition, if reached.
    pub fn rounds_to_converge(&self) -> Option<usize> {
        self.first_conserving_round
    }

    /// Rounds that were non-conserving *after* convergence was first reached.
    pub fn violations_after_convergence(&self) -> usize {
        self.violations_after_convergence
    }

    /// Total successful steals observed.
    pub fn total_successes(&self) -> u64 {
        self.total_successes
    }

    /// Total failed steal attempts observed.
    pub fn total_failures(&self) -> u64 {
        self.total_failures
    }

    /// Failure rate among attempts that chose a victim, in `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        let attempts = self.total_successes + self.total_failures;
        if attempts == 0 {
            0.0
        } else {
            self.total_failures as f64 / attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_the_first_conserving_round() {
        let mut t = ConvergenceTracker::new();
        t.observe_round(false, 1, 0);
        t.observe_round(false, 1, 1);
        t.observe_round(true, 1, 0);
        t.observe_round(true, 0, 0);
        assert_eq!(t.rounds_to_converge(), Some(3));
        assert_eq!(t.rounds_observed(), 4);
        assert_eq!(t.total_successes(), 3);
        assert_eq!(t.total_failures(), 1);
        assert!((t.failure_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn convergence_is_not_overwritten_by_later_violations() {
        let mut t = ConvergenceTracker::new();
        t.observe_round(true, 0, 0);
        t.observe_round(false, 0, 0);
        t.observe_round(true, 0, 0);
        assert_eq!(t.rounds_to_converge(), Some(1));
        assert_eq!(t.violations_after_convergence(), 1);
    }

    #[test]
    fn never_converging_reports_none() {
        let mut t = ConvergenceTracker::new();
        for _ in 0..5 {
            t.observe_round(false, 0, 1);
        }
        assert_eq!(t.rounds_to_converge(), None);
        assert_eq!(t.failure_rate(), 1.0);
    }

    #[test]
    fn empty_tracker() {
        let t = ConvergenceTracker::new();
        assert_eq!(t.rounds_observed(), 0);
        assert_eq!(t.rounds_to_converge(), None);
        assert_eq!(t.failure_rate(), 0.0);
    }
}
