//! Throughput measurement over a time window.

/// Counts completed units of work (transactions, jobs) over simulated time.
///
/// Used by the OLTP experiment (E10) to measure the "up to 25% decrease in
/// throughput" claim: throughput is completions divided by the measurement
/// window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThroughputMeter {
    completions: u64,
    window_start: u64,
    window_end: u64,
}

impl ThroughputMeter {
    /// Creates a meter with an empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts the measurement window at `now`.
    pub fn start(&mut self, now: u64) {
        self.window_start = now;
        self.window_end = now;
        self.completions = 0;
    }

    /// Records one completion at time `now`.
    pub fn record_completion(&mut self, now: u64) {
        self.completions += 1;
        self.window_end = self.window_end.max(now);
    }

    /// Closes the window at `now` without recording a completion.
    pub fn finish(&mut self, now: u64) {
        self.window_end = self.window_end.max(now);
    }

    /// Number of completions recorded.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Length of the observation window.
    pub fn window(&self) -> u64 {
        self.window_end.saturating_sub(self.window_start)
    }

    /// Completions per unit of time (0 for an empty window).
    pub fn throughput(&self) -> f64 {
        let w = self.window();
        if w == 0 {
            0.0
        } else {
            self.completions as f64 / w as f64
        }
    }

    /// Completions per second assuming the time unit is nanoseconds.
    pub fn throughput_per_sec(&self) -> f64 {
        self.throughput() * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_completions_over_window() {
        let mut m = ThroughputMeter::new();
        m.start(1_000);
        for t in [2_000u64, 3_000, 4_000, 5_000] {
            m.record_completion(t);
        }
        m.finish(5_000);
        assert_eq!(m.completions(), 4);
        assert_eq!(m.window(), 4_000);
        assert!((m.throughput() - 0.001).abs() < 1e-9);
        assert!((m.throughput_per_sec() - 1_000_000.0).abs() < 1e-3);
    }

    #[test]
    fn empty_window_has_zero_throughput() {
        let mut m = ThroughputMeter::new();
        m.start(10);
        assert_eq!(m.throughput(), 0.0);
        assert_eq!(m.window(), 0);
    }

    #[test]
    fn restarting_resets_counts() {
        let mut m = ThroughputMeter::new();
        m.start(0);
        m.record_completion(5);
        m.start(100);
        assert_eq!(m.completions(), 0);
        assert_eq!(m.window(), 0);
    }
}
