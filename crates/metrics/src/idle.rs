//! Idle-time accounting: separating benign from violating idleness.
//!
//! "It is perfectly acceptable for a core to become temporarily idle (e.g.,
//! after an application exits).  Temporary idleness must therefore not be
//! treated as a violation of the work-conserving property." (§1)
//!
//! The accounting therefore splits idle time into two buckets: idle time
//! while *no* core is overloaded (benign — there is simply not enough work)
//! and idle time while *some* core is overloaded (a work-conservation
//! violation in the ideal sense; a correct optimistic scheduler keeps it
//! bounded instead of zero).

/// Per-core accumulation of busy, benign-idle and violating-idle time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdleAccounting {
    busy: Vec<u64>,
    idle_benign: Vec<u64>,
    idle_violating: Vec<u64>,
}

impl IdleAccounting {
    /// Creates accounting for `nr_cores` cores.
    pub fn new(nr_cores: usize) -> Self {
        IdleAccounting {
            busy: vec![0; nr_cores],
            idle_benign: vec![0; nr_cores],
            idle_violating: vec![0; nr_cores],
        }
    }

    /// Number of cores tracked.
    pub fn nr_cores(&self) -> usize {
        self.busy.len()
    }

    /// Accounts `duration` time units for `core`.
    ///
    /// `idle` says whether the core was idle over that span; `any_overloaded`
    /// says whether any core of the machine was overloaded over that span.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn account(&mut self, core: usize, duration: u64, idle: bool, any_overloaded: bool) {
        if !idle {
            self.busy[core] += duration;
        } else if any_overloaded {
            self.idle_violating[core] += duration;
        } else {
            self.idle_benign[core] += duration;
        }
    }

    /// Total busy time across all cores.
    pub fn total_busy(&self) -> u64 {
        self.busy.iter().sum()
    }

    /// Total benign idle time across all cores.
    pub fn total_idle_benign(&self) -> u64 {
        self.idle_benign.iter().sum()
    }

    /// Total violating idle time (idle while some core was overloaded).
    pub fn total_idle_violating(&self) -> u64 {
        self.idle_violating.iter().sum()
    }

    /// Violating idle time of one core.
    pub fn idle_violating(&self, core: usize) -> u64 {
        self.idle_violating[core]
    }

    /// Busy time of one core.
    pub fn busy(&self, core: usize) -> u64 {
        self.busy[core]
    }

    /// Fraction of total core-time that was violating idle time, in `[0, 1]`.
    pub fn violation_fraction(&self) -> f64 {
        let total = self.total_busy() + self.total_idle_benign() + self.total_idle_violating();
        if total == 0 {
            0.0
        } else {
            self.total_idle_violating() as f64 / total as f64
        }
    }

    /// Violating-idle fraction of a subset of cores (e.g. one NUMA node),
    /// in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if any index in `cores` is out of range.
    pub fn violation_fraction_of(&self, cores: &[usize]) -> f64 {
        let mut violating = 0u64;
        let mut total = 0u64;
        for &core in cores {
            violating += self.idle_violating[core];
            total += self.busy[core] + self.idle_benign[core] + self.idle_violating[core];
        }
        if total == 0 {
            0.0
        } else {
            violating as f64 / total as f64
        }
    }

    /// Average CPU utilisation in `[0, 1]` (busy over total).
    pub fn utilization(&self) -> f64 {
        let total = self.total_busy() + self.total_idle_benign() + self.total_idle_violating();
        if total == 0 {
            0.0
        } else {
            self.total_busy() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounts_into_three_buckets() {
        let mut acc = IdleAccounting::new(2);
        acc.account(0, 10, false, false);
        acc.account(1, 10, true, false);
        acc.account(1, 5, true, true);
        assert_eq!(acc.total_busy(), 10);
        assert_eq!(acc.total_idle_benign(), 10);
        assert_eq!(acc.total_idle_violating(), 5);
        assert_eq!(acc.busy(0), 10);
        assert_eq!(acc.idle_violating(1), 5);
    }

    #[test]
    fn violation_fraction_and_utilization() {
        let mut acc = IdleAccounting::new(1);
        acc.account(0, 75, false, true);
        acc.account(0, 25, true, true);
        assert!((acc.violation_fraction() - 0.25).abs() < 1e-9);
        assert!((acc.utilization() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn per_node_violation_breakdown() {
        let mut acc = IdleAccounting::new(4);
        // "Node 0" = cores 0,1 busy; "node 1" = cores 2,3 violating-idle.
        acc.account(0, 10, false, true);
        acc.account(1, 10, false, true);
        acc.account(2, 10, true, true);
        acc.account(3, 10, true, true);
        assert_eq!(acc.violation_fraction_of(&[0, 1]), 0.0);
        assert_eq!(acc.violation_fraction_of(&[2, 3]), 1.0);
        assert!((acc.violation_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(acc.violation_fraction_of(&[]), 0.0);
    }

    #[test]
    fn empty_accounting_is_zero() {
        let acc = IdleAccounting::new(4);
        assert_eq!(acc.nr_cores(), 4);
        assert_eq!(acc.violation_fraction(), 0.0);
        assert_eq!(acc.utilization(), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_core_panics() {
        let mut acc = IdleAccounting::new(1);
        acc.account(3, 1, true, true);
    }
}
