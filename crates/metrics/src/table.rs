//! Plain-text and Markdown table rendering for the experiment harness.

/// A simple column-aligned table.
///
/// The experiment harness (`sched-bench`, binary `experiments`) prints one
/// table per experiment; `EXPERIMENTS.md` records the same rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of displayable cells.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn nr_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("E0: sample", &["cores", "rounds", "failures"]);
        t.row(&["4".into(), "2".into(), "1".into()]);
        t.row(&["64".into(), "7".into(), "12".into()]);
        t
    }

    #[test]
    fn text_rendering_aligns_columns() {
        let text = sample().to_text();
        assert!(text.contains("== E0: sample =="));
        assert!(text.contains("cores"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn markdown_rendering_has_separator_row() {
        let md = sample().to_markdown();
        assert!(md.contains("| cores | rounds | failures |"));
        assert!(md.contains("|---|---|---|"));
        assert!(md.contains("| 64 | 7 | 12 |"));
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().next().unwrap(), "cores,rounds,failures");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn row_display_converts_values() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row_display(&[&1u64, &2.5f64]);
        assert_eq!(t.nr_rows(), 1);
        assert!(t.to_csv().contains("1,2.5"));
        assert_eq!(t.title(), "t");
    }
}
