//! Steal-locality accounting: where migrated threads came from.
//!
//! Topology-aware balancing is only worth its complexity if it changes
//! *where* steals happen, not just how many: the same migration count can
//! mean cache-warm sibling handoffs or a cross-socket ping-pong.
//! [`StealLocality`] buckets migrations by [`StealLevel`] so experiments can
//! regress locality (the remote-steal rate) and not just throughput.

use sched_topology::StealLevel;

/// Per-level counts of migrated threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealLocality {
    counts: [u64; 4],
}

impl StealLocality {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the accounting from per-level counts, innermost level first.
    pub fn from_counts(counts: [u64; 4]) -> Self {
        StealLocality { counts }
    }

    /// Records `n` threads migrated across `level`.
    pub fn record(&mut self, level: StealLevel, n: u64) {
        self.counts[level.index()] += n;
    }

    /// Threads migrated across `level`.
    pub fn count(&self, level: StealLevel) -> u64 {
        self.counts[level.index()]
    }

    /// Per-level counts, innermost level first.
    pub fn counts(&self) -> [u64; 4] {
        self.counts
    }

    /// Total migrated threads.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of migrations that crossed a NUMA node boundary, in
    /// `[0, 1]` (0 when nothing was recorded).
    pub fn remote_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(StealLevel::Remote) as f64 / total as f64
        }
    }

    /// Fraction of migrations that stayed within the thief's LLC (SMT
    /// sibling or cache neighbour), in `[0, 1]`.
    pub fn cache_local_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.count(StealLevel::SmtSibling) + self.count(StealLevel::SameLlc)) as f64
                / total as f64
        }
    }

    /// Folds another accounting into this one.
    pub fn merge(&mut self, other: &StealLocality) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts) {
            *mine += theirs;
        }
    }
}

impl std::fmt::Display for StealLocality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "smt={} llc={} node={} remote={}",
            self.counts[0], self.counts[1], self.counts[2], self.counts[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_follow_the_counts() {
        let mut loc = StealLocality::new();
        loc.record(StealLevel::SmtSibling, 2);
        loc.record(StealLevel::SameLlc, 1);
        loc.record(StealLevel::Remote, 1);
        assert_eq!(loc.total(), 4);
        assert!((loc.remote_rate() - 0.25).abs() < 1e-9);
        assert!((loc.cache_local_rate() - 0.75).abs() < 1e-9);
        assert_eq!(loc.counts(), [2, 1, 0, 1]);
    }

    #[test]
    fn empty_accounting_has_zero_rates() {
        let loc = StealLocality::new();
        assert_eq!(loc.remote_rate(), 0.0);
        assert_eq!(loc.cache_local_rate(), 0.0);
        assert_eq!(loc.total(), 0);
    }

    #[test]
    fn merge_and_display() {
        let mut a = StealLocality::from_counts([1, 0, 0, 0]);
        let b = StealLocality::from_counts([0, 0, 2, 3]);
        a.merge(&b);
        assert_eq!(a.counts(), [1, 0, 2, 3]);
        assert_eq!(a.to_string(), "smt=1 llc=0 node=2 remote=3");
    }
}
