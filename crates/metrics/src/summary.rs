//! Mean / percentile summaries of sample sets.

/// Summary statistics of a set of `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
}

impl Summary {
    /// Builds a summary of `samples` (NaN values are dropped).
    pub fn of(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
        Summary { sorted }
    }

    /// Builds a summary from integer samples.
    pub fn of_u64(samples: &[u64]) -> Self {
        Self::of(&samples.iter().map(|&v| v as f64).collect::<Vec<_>>())
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Sample standard deviation (0 if fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.sorted.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
            / (self.sorted.len() - 1) as f64;
        var.sqrt()
    }

    /// Value at quantile `q` in `[0, 1]` using nearest-rank interpolation
    /// (0 if empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = pos - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// The median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.median(), 3.0);
        assert!((s.stddev() - 1.5811388).abs() < 1e-6);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::of_u64(&[10, 20]);
        assert_eq!(s.quantile(0.0), 10.0);
        assert_eq!(s.quantile(1.0), 20.0);
        assert_eq!(s.quantile(0.5), 15.0);
    }

    #[test]
    fn nan_samples_are_dropped() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn percentile_helpers() {
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = Summary::of(&samples);
        assert!(s.p95() >= 94.0 && s.p95() <= 96.0);
        assert!(s.p99() >= 98.0 && s.p99() <= 100.0);
    }
}
