//! Migration-churn accounting: how much balancing work a policy performs
//! per unit of imbalance it actually resolves.
//!
//! Two balancers can reach the same violating-idle figure with wildly
//! different migration counts — an instantaneous criterion chases every
//! transient blip, a decayed one only sustained imbalance.  The E17
//! experiment compares criteria on exactly this axis, so the arithmetic
//! (migrations per epoch, and the churn ratio between two runs) lives here
//! rather than being re-derived per backend.

/// Migration counters of one bounded run (a fixed number of balancing
/// epochs), plus the violating-idle it ended with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationChurn {
    /// Threads migrated over the run.
    pub migrations: u64,
    /// Failed steal attempts over the run.
    pub failures: u64,
    /// Balancing epochs (rounds, periods) the run spanned.
    pub epochs: u64,
    /// Violating-idle fraction of the run.
    pub violating_idle: f64,
}

impl MigrationChurn {
    /// Creates the record.
    pub fn new(migrations: u64, failures: u64, epochs: u64, violating_idle: f64) -> Self {
        MigrationChurn { migrations, failures, epochs, violating_idle }
    }

    /// Migrations per balancing epoch.
    pub fn per_epoch(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.migrations as f64 / self.epochs as f64
        }
    }

    /// How many times more migrations this run performed than `other`, at
    /// whatever violating-idle each achieved; `f64::INFINITY` when `other`
    /// migrated nothing and this run did.
    pub fn churn_ratio_vs(&self, other: &MigrationChurn) -> f64 {
        if other.migrations == 0 {
            if self.migrations == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.migrations as f64 / other.migrations as f64
        }
    }

    /// `true` if this run resolved imbalance at least as well as `other`
    /// (violating idle within `tolerance`) while migrating strictly less.
    pub fn dominates(&self, other: &MigrationChurn, tolerance: f64) -> bool {
        self.migrations < other.migrations
            && self.violating_idle <= other.violating_idle + tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_epoch_divides_and_handles_zero() {
        assert_eq!(MigrationChurn::new(32, 0, 16, 0.1).per_epoch(), 2.0);
        assert_eq!(MigrationChurn::new(5, 0, 0, 0.0).per_epoch(), 0.0);
    }

    #[test]
    fn churn_ratio_compares_two_runs() {
        let inst = MigrationChurn::new(40, 4, 32, 0.125);
        let pelt = MigrationChurn::new(4, 0, 32, 0.125);
        assert_eq!(inst.churn_ratio_vs(&pelt), 10.0);
        assert_eq!(pelt.churn_ratio_vs(&pelt), 1.0);
        let silent = MigrationChurn::new(0, 0, 32, 0.125);
        assert_eq!(inst.churn_ratio_vs(&silent), f64::INFINITY);
        assert_eq!(silent.churn_ratio_vs(&silent), 1.0);
    }

    #[test]
    fn dominance_requires_fewer_migrations_at_no_worse_idle() {
        let inst = MigrationChurn::new(40, 4, 32, 0.125);
        let pelt = MigrationChurn::new(4, 0, 32, 0.125);
        assert!(pelt.dominates(&inst, 0.01));
        assert!(!inst.dominates(&pelt, 0.01));
        // Worse idle beyond tolerance is not dominance, however cheap.
        let lazy = MigrationChurn::new(0, 0, 32, 0.5);
        assert!(!lazy.dominates(&inst, 0.01));
    }
}
