//! The lemma framework: named checkable obligations with reports.

use crate::counterexample::Counterexample;

/// Outcome of checking one lemma over a scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LemmaStatus {
    /// The lemma held on every enumerated instance.
    Proved,
    /// The lemma was refuted; the counterexample explains how.
    Refuted(Counterexample),
}

impl LemmaStatus {
    /// Returns `true` if the lemma held.
    pub fn is_proved(&self) -> bool {
        matches!(self, LemmaStatus::Proved)
    }

    /// The counterexample, if the lemma was refuted.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            LemmaStatus::Proved => None,
            LemmaStatus::Refuted(ce) => Some(ce),
        }
    }
}

/// The result of checking one lemma: its name, the number of instances
/// (state × interleaving pairs, state × pairs of cores, …) that were
/// checked, and the outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LemmaReport {
    /// Name of the lemma, matching the paper's terminology.
    pub name: &'static str,
    /// Number of instances checked exhaustively.
    pub instances: u64,
    /// Whether the lemma held.
    pub status: LemmaStatus,
}

impl LemmaReport {
    /// Creates a proved report.
    pub fn proved(name: &'static str, instances: u64) -> Self {
        LemmaReport { name, instances, status: LemmaStatus::Proved }
    }

    /// Creates a refuted report.
    pub fn refuted(name: &'static str, instances: u64, ce: Counterexample) -> Self {
        LemmaReport { name, instances, status: LemmaStatus::Refuted(ce) }
    }

    /// Returns `true` if the lemma held.
    pub fn is_proved(&self) -> bool {
        self.status.is_proved()
    }
}

impl std::fmt::Display for LemmaReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.status {
            LemmaStatus::Proved => {
                write!(f, "[proved ] {} ({} instances)", self.name, self.instances)
            }
            LemmaStatus::Refuted(ce) => {
                write!(f, "[REFUTED] {} ({} instances)\n{}", self.name, self.instances, ce.render())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proved_report_displays_instance_count() {
        let r = LemmaReport::proved("lemma1", 42);
        assert!(r.is_proved());
        assert!(r.to_string().contains("42 instances"));
        assert!(r.status.counterexample().is_none());
    }

    #[test]
    fn refuted_report_carries_the_counterexample() {
        let ce = Counterexample::new("bad", vec![0, 1, 2]).step("it broke");
        let r = LemmaReport::refuted("pingpong", 7, ce.clone());
        assert!(!r.is_proved());
        assert_eq!(r.status.counterexample(), Some(&ce));
        assert!(r.to_string().contains("REFUTED"));
        assert!(r.to_string().contains("it broke"));
    }
}
