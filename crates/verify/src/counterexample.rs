//! Counterexample reporting.

/// A concrete refutation of a lemma: the configuration it fails on and a
/// step-by-step trace of how the failure unfolds.
///
/// Counterexamples are deterministic and reproducible: re-running the same
/// lemma over the same scope rebuilds the same trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// One-line description of what went wrong.
    pub summary: String,
    /// The initial load vector the failure was found on.
    pub initial_loads: Vec<u64>,
    /// Human-readable steps leading to the violation.
    pub trace: Vec<String>,
}

impl Counterexample {
    /// Creates a counterexample with an empty trace.
    pub fn new(summary: impl Into<String>, initial_loads: Vec<u64>) -> Self {
        Counterexample { summary: summary.into(), initial_loads, trace: Vec::new() }
    }

    /// Appends a trace step.
    pub fn step(mut self, step: impl Into<String>) -> Self {
        self.trace.push(step.into());
        self
    }

    /// Renders the counterexample as an indented multi-line report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "counterexample: {}\n  initial loads: {:?}\n",
            self.summary, self.initial_loads
        );
        for (i, step) in self.trace.iter().enumerate() {
            out.push_str(&format!("  [{i}] {step}\n"));
        }
        out
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_summary_loads_and_steps() {
        let ce = Counterexample::new("idle core starves", vec![0, 1, 2])
            .step("round 1: core1 steals from core2")
            .step("round 2: core2 steals from core1");
        let text = ce.render();
        assert!(text.contains("idle core starves"));
        assert!(text.contains("[0, 1, 2]"));
        assert!(text.contains("[1] round 2"));
        assert_eq!(ce.to_string(), text);
    }

    #[test]
    fn new_counterexample_has_no_steps() {
        let ce = Counterexample::new("x", vec![]);
        assert!(ce.trace.is_empty());
    }
}
