//! Concurrent convergence: the §3.2 `∃N` bound and the §4.3 counterexample
//! search.
//!
//! A policy is work-conserving iff, from every initial configuration, every
//! possible execution (any interleaving of every round, any victim choice)
//! reaches a state where no core is idle while another is overloaded.  Since
//! thread counts are preserved by balancing, the reachable state space is
//! finite, so the check reduces to graph search:
//!
//! * a **violation** is a reachable cycle consisting entirely of
//!   non-work-conserving states — an infinite execution that never
//!   converges.  For the §4.3 greedy filter the search finds the 3-core
//!   ping-pong `[0,1,2] → [0,2,1] → [0,1,2] → …` automatically;
//! * if no such cycle exists, the length of the longest path from any
//!   initial state to a work-conserving state is exactly the paper's `N`.

use std::collections::{BTreeMap, BTreeSet};

use sched_core::{Balancer, ConcurrentRound, LoadMetric, SystemState};

use crate::counterexample::Counterexample;
use crate::enumerate::configurations;
use crate::interleave::all_interleavings;
use crate::scope::Scope;

/// How the step-2 choice is resolved while exploring executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoiceStrategy {
    /// Use the policy's own (deterministic) choice function.
    PolicyChoice,
    /// Treat the choice as adversarial: branch over *every* candidate each
    /// core could pick.  This is the strongest reading of the paper's claim
    /// that the choice step is irrelevant to the proof.
    Adversarial,
}

/// A witness of a work-conservation violation: a reachable cycle of
/// non-work-conserving states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleWitness {
    /// The initial configuration the cycle is reachable from.
    pub initial_loads: Vec<u64>,
    /// The load vectors along the cycle (first element repeats at the end).
    pub cycle: Vec<Vec<u64>>,
}

impl CycleWitness {
    /// Converts the witness into a printable counterexample.
    pub fn to_counterexample(&self) -> Counterexample {
        let mut ce = Counterexample::new(
            "an execution exists in which an idle core never obtains work (work-conservation violation)",
            self.initial_loads.clone(),
        );
        for (i, state) in self.cycle.iter().enumerate() {
            ce = ce.step(format!(
                "cycle state {i}: loads {state:?} (idle core coexists with an overloaded core)"
            ));
        }
        ce
    }
}

/// The outcome of the convergence analysis of one policy over one scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceAnalysis {
    /// The maximum number of rounds any reachable execution needs before the
    /// system is work-conserving — the `N` of §3.2 — when no violation
    /// exists.
    pub max_rounds: usize,
    /// Number of distinct non-work-conserving states explored.
    pub states_explored: usize,
}

fn loads_of(system: &SystemState) -> Vec<u64> {
    system.loads(LoadMetric::NrThreads)
}

fn is_wc(loads: &[u64]) -> bool {
    let any_idle = loads.contains(&0);
    let any_overloaded = loads.iter().any(|&l| l >= 2);
    !(any_idle && any_overloaded)
}

/// Computes every state reachable from `loads` after exactly one concurrent
/// round, under every interleaving (and, if adversarial, every choice).
fn successors(balancer: &Balancer, loads: &[u64], strategy: ChoiceStrategy) -> BTreeSet<Vec<u64>> {
    let nr_cores = loads.len();
    let loads_usize: Vec<usize> = loads.iter().map(|&l| l as usize).collect();
    let mut out = BTreeSet::new();
    let executor = ConcurrentRound::new(balancer);
    for steps in all_interleavings(nr_cores) {
        match strategy {
            ChoiceStrategy::PolicyChoice => {
                let mut system = SystemState::from_loads(&loads_usize);
                executor.execute_steps(&mut system, &steps);
                out.insert(loads_of(&system));
            }
            ChoiceStrategy::Adversarial => {
                explore_adversarial(
                    balancer,
                    SystemState::from_loads(&loads_usize),
                    &steps,
                    0,
                    &mut vec![None; nr_cores],
                    &mut out,
                );
            }
        }
    }
    out
}

/// Depth-first exploration of every victim choice along one interleaving.
fn explore_adversarial(
    balancer: &Balancer,
    system: SystemState,
    steps: &[sched_core::Step],
    idx: usize,
    pending: &mut Vec<Option<Vec<sched_core::CoreId>>>,
    out: &mut BTreeSet<Vec<u64>>,
) {
    if idx == steps.len() {
        out.insert(loads_of(&system));
        return;
    }
    let step = steps[idx];
    match step.phase {
        sched_core::Phase::Select => {
            let snapshot = sched_core::SystemSnapshot::capture(&system);
            let selection = balancer.select(&snapshot, step.core);
            pending[step.core.0] = Some(selection.candidates);
            explore_adversarial(balancer, system, steps, idx + 1, pending, out);
            pending[step.core.0] = None;
        }
        sched_core::Phase::Steal => {
            let candidates = pending[step.core.0].clone().unwrap_or_default();
            if candidates.is_empty() {
                explore_adversarial(balancer, system, steps, idx + 1, pending, out);
                return;
            }
            for victim in candidates {
                let mut branch = system.clone();
                let _ = balancer.steal(&mut branch, step.core, victim);
                explore_adversarial(balancer, branch, steps, idx + 1, pending, out);
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mark {
    /// Currently on the DFS stack.
    InProgress,
    /// Fully explored; value = longest distance (in rounds) to reach a
    /// work-conserving state from here.
    Done(usize),
}

struct Search<'a> {
    balancer: &'a Balancer,
    strategy: ChoiceStrategy,
    marks: BTreeMap<Vec<u64>, Mark>,
    successor_cache: BTreeMap<Vec<u64>, BTreeSet<Vec<u64>>>,
    stack: Vec<Vec<u64>>,
}

enum SearchOutcome {
    /// Longest distance to a work-conserving state.
    Depth(usize),
    /// A cycle of non-work-conserving states was found.
    Cycle(Vec<Vec<u64>>),
}

impl<'a> Search<'a> {
    fn dfs(&mut self, loads: Vec<u64>) -> SearchOutcome {
        if is_wc(&loads) {
            return SearchOutcome::Depth(0);
        }
        match self.marks.get(&loads) {
            Some(Mark::Done(d)) => return SearchOutcome::Depth(*d),
            Some(Mark::InProgress) => {
                // Back-edge: reconstruct the cycle from the DFS stack.
                let start = self.stack.iter().position(|s| s == &loads).unwrap_or(0);
                let mut cycle: Vec<Vec<u64>> = self.stack[start..].to_vec();
                cycle.push(loads);
                return SearchOutcome::Cycle(cycle);
            }
            None => {}
        }
        self.marks.insert(loads.clone(), Mark::InProgress);
        self.stack.push(loads.clone());

        let succs = self
            .successor_cache
            .entry(loads.clone())
            .or_insert_with(|| successors(self.balancer, &loads, self.strategy))
            .clone();

        let mut worst = 0usize;
        for succ in succs {
            match self.dfs(succ) {
                SearchOutcome::Depth(d) => worst = worst.max(d),
                SearchOutcome::Cycle(c) => {
                    self.stack.pop();
                    return SearchOutcome::Cycle(c);
                }
            }
        }
        self.stack.pop();
        self.marks.insert(loads, Mark::Done(worst + 1));
        SearchOutcome::Depth(worst + 1)
    }
}

/// Analyses every execution of `balancer` from every configuration in
/// `scope`.
///
/// Returns the convergence bound if the policy is work-conserving, or a
/// [`CycleWitness`] if some execution never converges.
pub fn analyze_convergence(
    balancer: &Balancer,
    scope: &Scope,
    strategy: ChoiceStrategy,
) -> Result<ConvergenceAnalysis, CycleWitness> {
    let mut search = Search {
        balancer,
        strategy,
        marks: BTreeMap::new(),
        successor_cache: BTreeMap::new(),
        stack: Vec::new(),
    };
    let mut max_rounds = 0usize;
    for loads in configurations(scope) {
        let loads: Vec<u64> = loads.iter().map(|&l| l as u64).collect();
        if is_wc(&loads) {
            continue;
        }
        match search.dfs(loads.clone()) {
            SearchOutcome::Depth(d) => max_rounds = max_rounds.max(d),
            SearchOutcome::Cycle(cycle) => {
                return Err(CycleWitness { initial_loads: loads, cycle });
            }
        }
    }
    Ok(ConvergenceAnalysis { max_rounds, states_explored: search.marks.len() })
}

/// Searches for an execution that never becomes work-conserving.
///
/// Returns `None` if every execution within `scope` converges.
pub fn find_non_conserving_cycle(
    balancer: &Balancer,
    scope: &Scope,
    strategy: ChoiceStrategy,
) -> Option<CycleWitness> {
    analyze_convergence(balancer, scope, strategy).err()
}

/// The maximum number of rounds any execution within `scope` needs before
/// becoming work-conserving (the `N` of §3.2).
///
/// Returns `Err` with the violating cycle if the policy is not
/// work-conserving within the scope.
pub fn max_rounds_to_converge(
    balancer: &Balancer,
    scope: &Scope,
    strategy: ChoiceStrategy,
) -> Result<usize, CycleWitness> {
    analyze_convergence(balancer, scope, strategy).map(|a| a.max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::prelude::*;

    #[test]
    fn simple_policy_converges_under_every_interleaving() {
        let balancer = Balancer::new(Policy::simple());
        let analysis =
            analyze_convergence(&balancer, &Scope::small(), ChoiceStrategy::PolicyChoice).unwrap();
        assert!(analysis.max_rounds >= 1);
        assert!(analysis.states_explored > 0);
    }

    #[test]
    fn simple_policy_converges_even_with_adversarial_choice() {
        // The paper's claim: the choice step cannot break the proof.
        let balancer = Balancer::new(Policy::simple());
        let result =
            max_rounds_to_converge(&balancer, &Scope::small(), ChoiceStrategy::Adversarial);
        assert!(result.is_ok(), "{:?}", result.err().map(|c| c.to_counterexample().render()));
    }

    #[test]
    fn greedy_policy_exhibits_the_pingpong() {
        // §4.3: "consider a three-core system where core 0 is idle, core 1
        // has 1 thread and core 2 has 2 threads […] Core 0 might fail to
        // steal threads forever."
        let balancer = Balancer::new(Policy::greedy());
        let witness =
            find_non_conserving_cycle(&balancer, &Scope::small(), ChoiceStrategy::Adversarial)
                .expect("the greedy filter must admit a non-converging execution");
        // Every state along the cycle keeps an idle core next to an
        // overloaded core.
        for state in &witness.cycle {
            assert!(!is_wc(state), "cycle state {state:?} should violate work conservation");
        }
        assert!(witness.cycle.len() >= 2);
    }

    #[test]
    fn node_restricted_filter_never_converges_across_nodes() {
        // This intentionally does not fire within the single-node
        // enumeration, mirroring the Lemma 1 test; the cross-node violation
        // is exercised in the integration tests with a real topology.
        let policy = Policy::new(
            LoadMetric::NrThreads,
            Box::new(NodeRestrictedFilter::new(DeltaFilter::listing1())),
            Box::new(MaxLoadChoice::new(LoadMetric::NrThreads)),
            Box::new(StealOne),
        );
        let balancer = Balancer::new(policy);
        let result =
            max_rounds_to_converge(&balancer, &Scope::new(3, 4, 16), ChoiceStrategy::PolicyChoice);
        assert!(result.is_ok());
    }

    #[test]
    fn wc_predicate_on_load_vectors() {
        assert!(is_wc(&[1, 1]));
        assert!(is_wc(&[0, 1]));
        assert!(is_wc(&[5, 3]));
        assert!(!is_wc(&[0, 2]));
    }
}
