//! Bounded verification scopes.

/// The bounds of an exhaustive check: every configuration with up to
/// `max_cores` cores and up to `max_threads` threads is enumerated.
///
/// Leon discharges unbounded ∀-quantified obligations; the exhaustive
/// checker replaces them with "for all configurations within the scope",
/// following the small-scope hypothesis that scheduler-model bugs (like the
/// §4.3 ping-pong, which needs only 3 cores and 3 threads) manifest in tiny
/// configurations.  The proptest suites then push the same properties to
/// much larger random configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scope {
    /// Maximum number of cores enumerated (inclusive).
    pub max_cores: usize,
    /// Maximum total number of threads enumerated (inclusive).
    pub max_threads: usize,
    /// Maximum number of load-balancing rounds explored by convergence
    /// searches before giving up.
    pub max_rounds: usize,
}

impl Scope {
    /// A small scope suitable for unit tests (exhaustive in milliseconds).
    pub fn small() -> Self {
        Scope { max_cores: 3, max_threads: 5, max_rounds: 32 }
    }

    /// The default verification scope used by the experiment harness.
    pub fn default_scope() -> Self {
        Scope { max_cores: 4, max_threads: 6, max_rounds: 64 }
    }

    /// A wider scope for the standalone verification runs of E3/E4.
    pub fn wide() -> Self {
        Scope { max_cores: 5, max_threads: 8, max_rounds: 128 }
    }

    /// Creates a custom scope.
    ///
    /// # Panics
    ///
    /// Panics if `max_cores < 2`: the scheduler model is only interesting
    /// with at least two cores.
    pub fn new(max_cores: usize, max_threads: usize, max_rounds: usize) -> Self {
        assert!(max_cores >= 2, "a scope needs at least two cores");
        Scope { max_cores, max_threads, max_rounds }
    }
}

impl Default for Scope {
    fn default() -> Self {
        Self::default_scope()
    }
}

impl std::fmt::Display for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "≤{} cores, ≤{} threads, ≤{} rounds",
            self.max_cores, self.max_threads, self.max_rounds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        assert!(Scope::small().max_cores <= Scope::default_scope().max_cores);
        assert!(Scope::default_scope().max_cores <= Scope::wide().max_cores);
    }

    #[test]
    fn display_mentions_all_bounds() {
        let s = Scope::new(4, 7, 10);
        let text = s.to_string();
        assert!(text.contains('4') && text.contains('7') && text.contains("10"));
    }

    #[test]
    #[should_panic(expected = "at least two cores")]
    fn degenerate_scope_is_rejected() {
        let _ = Scope::new(1, 1, 1);
    }
}
