//! Whole-policy verification reports.

use sched_core::Balancer;

use crate::convergence::{analyze_convergence, ChoiceStrategy, CycleWitness};
use crate::lemma::LemmaReport;
use crate::lemmas;
use crate::scope::Scope;

/// The aggregated result of checking every lemma of the paper against one
/// policy over one scope — the equivalent of a full Leon verification run.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// Human-readable policy description (`filter/choice/steal`).
    pub policy: String,
    /// The scope the checks ran over.
    pub scope: Scope,
    /// Per-lemma reports, in the order they were checked.
    pub lemmas: Vec<LemmaReport>,
    /// The §3.2 convergence bound, or the violating cycle.
    pub convergence: Result<usize, CycleWitness>,
}

impl VerificationReport {
    /// Returns `true` if every lemma held and every execution converged.
    pub fn is_work_conserving(&self) -> bool {
        self.lemmas.iter().all(LemmaReport::is_proved) && self.convergence.is_ok()
    }

    /// Total number of instances checked across all lemmas.
    pub fn total_instances(&self) -> u64 {
        self.lemmas.iter().map(|l| l.instances).sum()
    }

    /// Renders the report as a multi-line summary.
    pub fn render(&self) -> String {
        let mut out = format!("verification of `{}` over scope ({}):\n", self.policy, self.scope);
        for lemma in &self.lemmas {
            out.push_str(&format!("  {lemma}\n"));
        }
        match &self.convergence {
            Ok(n) => out.push_str(&format!(
                "  [proved ] work conservation (§3.2): every execution converges within {n} round(s)\n"
            )),
            Err(cycle) => out.push_str(&format!(
                "  [REFUTED] work conservation (§3.2):\n{}",
                cycle.to_counterexample().render()
            )),
        }
        out
    }
}

impl std::fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Runs the complete lemma suite against `balancer` — the drop-in replacement
/// for the paper's "compile the DSL policy to Scala and run Leon".
///
/// The convergence analysis uses the policy's own choice function; pass
/// `adversarial_choice = true` to additionally quantify over every possible
/// victim choice (slower, strongest claim).
pub fn verify_policy(
    balancer: &Balancer,
    scope: &Scope,
    adversarial_choice: bool,
) -> VerificationReport {
    let lemma_reports = vec![
        lemmas::check_lemma1(balancer, scope),
        lemmas::check_steal_soundness(balancer, scope),
        lemmas::check_sequential_work_conservation(balancer, scope),
        lemmas::check_failure_implies_concurrent_success(balancer, scope),
        lemmas::check_potential_decreases(balancer, scope),
    ];
    let strategy =
        if adversarial_choice { ChoiceStrategy::Adversarial } else { ChoiceStrategy::PolicyChoice };
    let convergence = analyze_convergence(balancer, scope, strategy).map(|a| a.max_rounds);
    VerificationReport {
        policy: balancer.policy().describe(),
        scope: *scope,
        lemmas: lemma_reports,
        convergence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::prelude::*;

    #[test]
    fn the_listing1_policy_verifies_end_to_end() {
        let balancer = Balancer::new(Policy::simple());
        let report = verify_policy(&balancer, &Scope::small(), false);
        assert!(report.is_work_conserving(), "{report}");
        assert_eq!(report.lemmas.len(), 5);
        assert!(report.total_instances() > 0);
        assert!(report.render().contains("work conservation"));
    }

    #[test]
    fn the_greedy_policy_fails_verification() {
        let balancer = Balancer::new(Policy::greedy());
        let report = verify_policy(&balancer, &Scope::small(), false);
        assert!(!report.is_work_conserving(), "{report}");
        // Specifically, the potential lemma and the convergence analysis are
        // what fail; Lemma 1, steal soundness and P1 still hold.
        assert!(report.lemmas[0].is_proved(), "lemma1 holds for greedy");
        assert!(report.lemmas[3].is_proved(), "P1 holds for greedy");
        assert!(!report.lemmas[4].is_proved(), "P2 fails for greedy");
        assert!(report.convergence.is_err(), "the ping-pong must be found");
        assert!(report.render().contains("REFUTED"));
    }

    #[test]
    fn the_weighted_policy_verifies_end_to_end() {
        let balancer = Balancer::new(Policy::weighted());
        let report = verify_policy(&balancer, &Scope::new(3, 4, 16), false);
        assert!(report.is_work_conserving(), "{report}");
    }
}
