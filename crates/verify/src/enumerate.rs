//! Exhaustive enumeration of scheduler configurations within a scope.

use sched_core::SystemState;

use crate::scope::Scope;

/// Enumerates every load vector (threads per core) with exactly `nr_cores`
/// cores and exactly `nr_threads` threads in total.
///
/// The enumeration is the set of *compositions* of `nr_threads` into
/// `nr_cores` non-negative parts, in lexicographic order.
pub fn compositions(nr_cores: usize, nr_threads: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = vec![0usize; nr_cores];
    fn rec(remaining: usize, idx: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if idx == current.len() - 1 {
            current[idx] = remaining;
            out.push(current.clone());
            return;
        }
        for take in 0..=remaining {
            current[idx] = take;
            rec(remaining - take, idx + 1, current, out);
        }
    }
    if nr_cores == 0 {
        return out;
    }
    rec(nr_threads, 0, &mut current, &mut out);
    out
}

/// Enumerates every load vector within `scope`: all core counts from 2 to
/// `max_cores` and all thread totals from 0 to `max_threads`.
pub fn configurations(scope: &Scope) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for cores in 2..=scope.max_cores {
        for threads in 0..=scope.max_threads {
            out.extend(compositions(cores, threads));
        }
    }
    out
}

/// Enumerates every [`SystemState`] within `scope`.
///
/// Threads are `nice 0` and numbered sequentially, so two states with the
/// same load vector are behaviourally identical for thread-count policies —
/// the enumeration is complete for the lemmas phrased over loads.
pub fn states(scope: &Scope) -> impl Iterator<Item = SystemState> {
    configurations(scope).into_iter().map(|loads| SystemState::from_loads(&loads))
}

/// Number of configurations the scope will enumerate (used by progress
/// reporting in the harness).
pub fn nr_configurations(scope: &Scope) -> usize {
    configurations(scope).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compositions_of_small_cases() {
        assert_eq!(compositions(2, 2), vec![vec![0, 2], vec![1, 1], vec![2, 0]]);
        assert_eq!(compositions(3, 0), vec![vec![0, 0, 0]]);
        assert_eq!(compositions(1, 5), vec![vec![5]]);
        assert!(compositions(0, 3).is_empty());
    }

    #[test]
    fn composition_count_is_binomial() {
        // C(n + k - 1, k - 1) compositions of n into k parts.
        assert_eq!(compositions(3, 4).len(), 15);
        assert_eq!(compositions(4, 6).len(), 84);
        for c in compositions(4, 6) {
            assert_eq!(c.iter().sum::<usize>(), 6);
        }
    }

    #[test]
    fn scope_enumeration_covers_the_pingpong_configuration() {
        let scope = Scope::small();
        let configs = configurations(&scope);
        assert!(configs.contains(&vec![0, 1, 2]), "the §4.3 counterexample must be in scope");
        assert_eq!(configs.len(), nr_configurations(&scope));
    }

    #[test]
    fn states_match_their_load_vectors() {
        let scope = Scope::new(2, 3, 8);
        let states: Vec<_> = states(&scope).collect();
        let configs = configurations(&scope);
        assert_eq!(states.len(), configs.len());
        for (state, config) in states.iter().zip(&configs) {
            let loads: Vec<usize> = state
                .loads(sched_core::LoadMetric::NrThreads)
                .iter()
                .map(|&l| l as usize)
                .collect();
            assert_eq!(&loads, config);
            assert!(state.tasks_are_unique());
        }
    }
}
