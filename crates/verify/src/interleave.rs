//! Enumeration of every interleaving of a concurrent load-balancing round.
//!
//! Each core contributes two ordered steps to a round — `Select` then
//! `Steal` — and "the operations of a load balancing round might be
//! performed simultaneously on multiple cores" (§3.1).  The set of possible
//! concurrent executions is therefore the set of interleavings of `n`
//! two-step sequences, of which there are `(2n)! / 2ⁿ`.  Enumerating all of
//! them is what replaces Leon's symbolic reasoning about concurrency.

use sched_core::{CoreId, Phase, Step};

/// Number of interleavings of a round with `nr_cores` cores: `(2n)! / 2ⁿ`.
///
/// Returns `None` on overflow (the checker refuses such scopes anyway).
pub fn interleaving_count(nr_cores: usize) -> Option<u128> {
    let mut numerator: u128 = 1;
    for i in 1..=(2 * nr_cores as u128) {
        numerator = numerator.checked_mul(i)?;
    }
    Some(numerator / (1u128 << nr_cores))
}

/// Enumerates every valid interleaving of a round with `nr_cores` cores.
///
/// Every returned sequence satisfies [`sched_core::RoundSchedule::validate`]:
/// each core appears exactly once per phase, with `Select` before `Steal`.
///
/// # Panics
///
/// Panics if `nr_cores > 6`: beyond that the enumeration (12!/2⁶ ≈ 7.5M
/// interleavings) stops being a reasonable exhaustive scope.
pub fn all_interleavings(nr_cores: usize) -> Vec<Vec<Step>> {
    assert!(nr_cores <= 6, "interleaving enumeration is limited to 6 cores");
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(2 * nr_cores);
    // remaining[i]: how many steps core i still has to emit (2 = select
    // pending, 1 = steal pending, 0 = done).
    let mut remaining = vec![2u8; nr_cores];
    rec(&mut remaining, &mut current, &mut out);
    out
}

fn rec(remaining: &mut Vec<u8>, current: &mut Vec<Step>, out: &mut Vec<Vec<Step>>) {
    if remaining.iter().all(|&r| r == 0) {
        out.push(current.clone());
        return;
    }
    for core in 0..remaining.len() {
        if remaining[core] == 0 {
            continue;
        }
        let phase = if remaining[core] == 2 { Phase::Select } else { Phase::Steal };
        remaining[core] -= 1;
        current.push(Step { core: CoreId(core), phase });
        rec(remaining, current, out);
        current.pop();
        remaining[core] += 1;
    }
}

/// Enumerates a bounded pseudo-random sample of interleavings when the full
/// enumeration would be too large; falls back to the full enumeration when
/// it is small enough.
pub fn sampled_interleavings(nr_cores: usize, max: usize, seed: u64) -> Vec<Vec<Step>> {
    if nr_cores <= 6 {
        let all = all_interleavings(nr_cores);
        if all.len() <= max {
            return all;
        }
        // Deterministic thinning.
        let stride = (all.len() / max).max(1);
        return all.into_iter().step_by(stride).take(max).collect();
    }
    (0..max)
        .map(|i| {
            sched_core::RoundSchedule::Seeded(
                seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            )
            .steps(nr_cores)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::RoundSchedule;

    #[test]
    fn counts_match_the_formula() {
        assert_eq!(interleaving_count(1), Some(1));
        assert_eq!(interleaving_count(2), Some(6));
        assert_eq!(interleaving_count(3), Some(90));
        assert_eq!(interleaving_count(4), Some(2520));
    }

    #[test]
    fn enumeration_size_matches_count() {
        for n in 1..=4 {
            let all = all_interleavings(n);
            assert_eq!(all.len() as u128, interleaving_count(n).unwrap());
        }
    }

    #[test]
    fn every_enumerated_interleaving_is_valid_and_unique() {
        let all = all_interleavings(3);
        for steps in &all {
            RoundSchedule::validate(steps, 3).unwrap();
        }
        let mut dedup = all.clone();
        dedup.sort_by_key(|s| {
            s.iter().map(|st| (st.core.0, st.phase == Phase::Steal)).collect::<Vec<_>>()
        });
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    #[should_panic(expected = "limited to 6 cores")]
    fn oversized_enumeration_is_refused() {
        let _ = all_interleavings(7);
    }

    #[test]
    fn sampling_thins_large_enumerations_and_stays_valid() {
        let sample = sampled_interleavings(4, 100, 42);
        assert!(sample.len() <= 100);
        for steps in &sample {
            RoundSchedule::validate(steps, 4).unwrap();
        }
        let big = sampled_interleavings(8, 10, 7);
        assert_eq!(big.len(), 10);
        for steps in &big {
            RoundSchedule::validate(steps, 8).unwrap();
        }
    }
}
