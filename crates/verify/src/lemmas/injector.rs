//! Work conservation across ring overflow: the shared-injector lemmas.
//!
//! The fixed-capacity Chase–Lev ring rejects pushes when full; the
//! overflow's home decides whether the paper's work-conservation criterion
//! survives an overflow storm.  An owner-private spill list *refutes* it —
//! spilled work is counted by load observers but unreachable by thieves —
//! so `sched-rq`'s lock-free backend overflows into the shared MPMC
//! [`Injector`] instead.  These lemmas pin the injector-side half of that
//! argument at the structure level (the `DequeRq` composition is pinned by
//! the backend's own tests and the E22 experiment):
//!
//! 1. **Visibility** — after any storm of pushes in which ring overflow is
//!    routed to the injector, a lone thief with no owner assistance and no
//!    tick can claim *every* element: nothing is simultaneously counted
//!    (by `ring.len() + injector.len()`) and unstealable.  Run against the
//!    private-spill discipline this check fails immediately, which is the
//!    bug the injector closes.
//! 2. **P1 for the injector** — an injector claim that observed residents
//!    but found the queue drained reports [`Steal::Retry`], and a `Retry`
//!    implies a **concurrent successful claim** (never a false `Empty`,
//!    which would read as "no work" to a backing-off thief).  Checked
//!    deterministically on forced interleavings via the probe hooks.
//! 3. **Conservation under storm** — with producers overflowing into the
//!    injector while thieves drain ring and injector concurrently, every
//!    element is claimed exactly once: the overflow path neither loses nor
//!    duplicates work, so the balancing layer's conservation reasoning
//!    carries over unchanged.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use sched_deque::{deque, Injector, Steal};

use crate::counterexample::Counterexample;
use crate::lemma::LemmaReport;

/// Pushes `value` the way the lock-free runqueue does: ring first,
/// injector on overflow.
fn push_overflowing(worker: &mut sched_deque::Worker, injector: &Injector, value: u64) {
    if let Err(sched_deque::Full(rejected)) = worker.push(value) {
        injector.push(rejected);
    }
}

/// Checks lemma 1 (visibility): over `rounds` rounds, `capacity + overflow`
/// elements are pushed through a `capacity`-slot ring with overflow routed
/// to the injector; the combined resident count must equal every element
/// pushed, and a lone thief — no owner pops, no drain, no tick — must be
/// able to claim all of them.
///
/// Instances are (round × element) claim checks.
pub fn check_injector_visibility(rounds: usize, capacity: usize, overflow: u64) -> LemmaReport {
    let name = "injector visibility (overflowed work is counted AND stealable)";
    let mut instances = 0u64;
    for round in 0..rounds {
        let (mut worker, stealer) = deque(capacity.max(1));
        let injector = Injector::new();
        let total = worker.capacity() as u64 + overflow;
        for v in 0..total {
            push_overflowing(&mut worker, &injector, v);
        }
        let counted = (worker.len() + injector.len()) as u64;
        if counted != total {
            return LemmaReport::refuted(
                name,
                instances,
                Counterexample::new("a pushed element escaped the resident count", vec![total])
                    .step(format!("round {round}: counted {counted} of {total} pushed")),
            );
        }
        // The lone thief: ring CAS first, injector when the ring is empty
        // — the exact claim order of the runqueue's stealing phase.
        let mut claims = Vec::new();
        loop {
            match stealer.steal() {
                Steal::Stolen(v) => claims.push(v),
                Steal::Retry => {}
                Steal::Empty => match injector.steal() {
                    Steal::Stolen(v) => claims.push(v),
                    Steal::Retry => {}
                    Steal::Empty => break,
                },
            }
        }
        instances += total;
        claims.sort_unstable();
        let expected: Vec<u64> = (0..total).collect();
        if claims != expected {
            return LemmaReport::refuted(
                name,
                instances,
                Counterexample::new(
                    "an element was unstealable without owner assistance",
                    vec![total],
                )
                .step(format!(
                    "round {round}: ring capacity {capacity}, {overflow} overflowed; \
                     a lone thief claimed only {} of {total}",
                    claims.len()
                )),
            );
        }
    }
    LemmaReport::proved(name, instances)
}

/// Checks lemma 2 (P1 for the injector) on forced interleavings: a rival
/// claim injected into the check-to-lock window must turn the probed claim
/// into [`Steal::Retry`] (never a false `Empty`), with the element ending
/// up claimed exactly once; and an element mid-push is neither counted nor
/// claimable until its publication point.
///
/// Instances are forced interleavings.
pub fn check_injector_retry_implies_concurrent_claim(rounds: usize) -> LemmaReport {
    let name = "injector retry implies concurrent claim (P1, overflow path)";
    let mut instances = 0u64;
    for round in 0..rounds {
        let fail = |instances: u64, what: &str, detail: String| {
            LemmaReport::refuted(
                name,
                instances,
                Counterexample::new(what, vec![1]).step(format!("round {round}: {detail}")),
            )
        };

        // Forced loss: the rival drains the injector inside the window.
        let injector = Injector::new();
        injector.push(11);
        let mut rival_got = None;
        let outcome = injector.steal_with_probe(|| {
            rival_got = injector.steal().stolen();
        });
        instances += 1;
        if rival_got != Some(11) {
            return fail(
                instances,
                "the rival's claim inside the window failed",
                format!("{rival_got:?}"),
            );
        }
        if outcome != Steal::Retry {
            return fail(
                instances,
                "a claim doomed by a concurrent success did not report Retry",
                format!("outcome {outcome:?} after the rival claimed"),
            );
        }
        if injector.steal() != Steal::Empty {
            return fail(instances, "the claimed element was claimable twice", String::new());
        }

        // Forced pre-publication observation: mid-push, the element is
        // neither counted nor claimable — publication is atomic for every
        // observer, so there is no state in which a thief can claim work
        // the count denies (or vice versa).
        let injector = Injector::new();
        let mut saw_len = usize::MAX;
        let mut saw_steal = None;
        injector.push_with_probe(23, || {
            saw_len = injector.len();
            saw_steal = Some(injector.steal());
        });
        instances += 1;
        if saw_len != 0 || saw_steal != Some(Steal::Empty) {
            return fail(
                instances,
                "a half-pushed element was observable",
                format!("len {saw_len}, steal {saw_steal:?}"),
            );
        }
        if injector.steal() != Steal::Stolen(23) {
            return fail(instances, "the published element was not claimable", String::new());
        }
    }
    LemmaReport::proved(name, instances)
}

/// Checks lemma 3 (conservation under storm) with real scoped threads:
/// a producer pushes `items` elements through a tiny ring (overflow to the
/// injector) while `thieves` stealers concurrently drain ring + injector;
/// every element must be claimed exactly once.
///
/// Instances are (round × element) claim checks.
pub fn check_injector_conservation_under_storm(
    rounds: usize,
    capacity: usize,
    items: u64,
    thieves: usize,
) -> LemmaReport {
    let name = "injector conservation under overflow storm (no task lost or duplicated)";
    let mut instances = 0u64;
    for round in 0..rounds {
        let (mut worker, stealer) = deque(capacity.max(1));
        let injector = Injector::new();
        let start = AtomicBool::new(false);
        let claimed = AtomicU64::new(0);
        let mut claims: Vec<u64> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..thieves)
                .map(|_| {
                    let stealer = stealer.clone();
                    let injector = &injector;
                    let start = &start;
                    let claimed = &claimed;
                    scope.spawn(move || {
                        while !start.load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                        let mut got = Vec::new();
                        // Drain until the global claim count covers every
                        // element: the producer may still be pushing when a
                        // local Empty shows.
                        while claimed.load(Ordering::Acquire) < items {
                            let outcome = match stealer.steal() {
                                Steal::Empty => injector.steal(),
                                other => other,
                            };
                            if let Steal::Stolen(v) = outcome {
                                got.push(v);
                                claimed.fetch_add(1, Ordering::AcqRel);
                            }
                        }
                        got
                    })
                })
                .collect();
            start.store(true, Ordering::Release);
            for v in 0..items {
                push_overflowing(&mut worker, &injector, v);
            }
            for handle in handles {
                claims.extend(handle.join().unwrap());
            }
        });
        instances += items;
        claims.sort_unstable();
        let expected: Vec<u64> = (0..items).collect();
        if claims != expected {
            return LemmaReport::refuted(
                name,
                instances,
                Counterexample::new("an element was claimed twice or never claimed", vec![items])
                    .step(format!(
                        "round {round}: {thieves} thieves vs a {capacity}-slot ring \
                         over {items} elements"
                    ))
                    .step(format!("claims after sorting: {claims:?}")),
            );
        }
    }
    LemmaReport::proved(name, instances)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_holds_for_every_storm_size() {
        for overflow in [0u64, 1, 7, 64] {
            let report = check_injector_visibility(10, 4, overflow);
            assert!(report.is_proved(), "{report}");
            assert_eq!(report.instances, 10 * (4 + overflow));
        }
    }

    #[test]
    fn a_private_spill_would_refute_visibility() {
        // The negative control, inlined: route overflow to a private list
        // instead of the injector and the lone thief comes up short — the
        // exact counterexample the lemma exists to rule out.
        let (mut worker, stealer) = deque(4);
        let mut spill: Vec<u64> = Vec::new();
        for v in 0..8u64 {
            if let Err(sched_deque::Full(rejected)) = worker.push(v) {
                spill.push(rejected);
            }
        }
        let mut claims = 0;
        while let Steal::Stolen(_) = stealer.steal() {
            claims += 1;
        }
        assert_eq!(claims, 4, "the thief reaches only the ring");
        assert_eq!(spill.len(), 4, "the other half is stranded — the conservation hole");
    }

    #[test]
    fn retry_semantics_hold_on_every_forced_interleaving() {
        let report = check_injector_retry_implies_concurrent_claim(50);
        assert!(report.is_proved(), "{report}");
        assert_eq!(report.instances, 100);
    }

    #[test]
    fn storm_conservation_holds_under_scoped_thread_stress() {
        let report = check_injector_conservation_under_storm(10, 4, 256, 3);
        assert!(report.is_proved(), "{report}");
        assert_eq!(report.instances, 10 * 256);
    }

    #[test]
    #[ignore = "nightly-strength stress; run via `cargo test -- --ignored`"]
    fn stress_storm_conservation_high_iteration() {
        let report = check_injector_conservation_under_storm(150, 8, 2048, 6);
        assert!(report.is_proved(), "{report}");
    }
}
