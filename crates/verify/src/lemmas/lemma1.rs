//! Lemma 1 (Listing 2): an idle core wants to steal from an overloaded core.
//!
//! ```text
//! require(thief.ready.size == 0 && !thief.current.isDefined)   // thief idle
//! ( cores.exists(isOverloaded)  ==> cores.exists(thief.canSteal) ) &&
//! ( cores.forall(c => thief.canSteal(c) ==> isOverloaded(c)) )
//! ```
//!
//! The first conjunct is *completeness* (an idle thief never filters out
//! every overloaded core), the second is *soundness* (it only ever targets
//! overloaded cores — which is what guarantees a successful steal cannot
//! empty its victim).

use sched_core::{Balancer, SystemSnapshot};

use crate::counterexample::Counterexample;
use crate::enumerate::states;
use crate::lemma::LemmaReport;
use crate::scope::Scope;

/// Checks Lemma 1 for the balancer's filter over every configuration in
/// `scope` and every idle thief in each configuration.
pub fn check_lemma1(balancer: &Balancer, scope: &Scope) -> LemmaReport {
    let mut instances = 0u64;
    for state in states(scope) {
        let snapshot = SystemSnapshot::capture(&state);
        let any_overloaded = !state.overloaded_cores().is_empty();
        for thief in state.idle_cores() {
            instances += 1;
            let thief_snap = *snapshot.core(thief);
            let candidates: Vec<_> = snapshot
                .others(thief)
                .into_iter()
                .filter(|victim| balancer.policy().filter.can_steal(&thief_snap, victim))
                .collect();

            // Completeness: an overloaded core exists ⇒ the filter keeps at
            // least one candidate.
            if any_overloaded && candidates.is_empty() {
                let ce = Counterexample::new(
                    "idle thief filtered out every core although an overloaded core exists",
                    state.loads(sched_core::LoadMetric::NrThreads),
                )
                .step(format!("thief {thief} is idle"))
                .step(format!(
                    "overloaded cores: {:?}",
                    state.overloaded_cores().iter().map(|c| c.0).collect::<Vec<_>>()
                ))
                .step(format!("filter `{}` kept no candidate", balancer.policy().filter.name()));
                return LemmaReport::refuted("lemma1 (Listing 2)", instances, ce);
            }

            // Soundness: every kept candidate is overloaded.
            for candidate in &candidates {
                if !state.core(candidate.id).is_overloaded() {
                    let ce = Counterexample::new(
                        "idle thief may steal from a core that is not overloaded",
                        state.loads(sched_core::LoadMetric::NrThreads),
                    )
                    .step(format!("thief {thief} is idle"))
                    .step(format!(
                        "filter `{}` accepted victim {} with only {} thread(s)",
                        balancer.policy().filter.name(),
                        candidate.id,
                        state.core(candidate.id).nr_threads()
                    ));
                    return LemmaReport::refuted("lemma1 (Listing 2)", instances, ce);
                }
            }
        }
    }
    LemmaReport::proved("lemma1 (Listing 2)", instances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::prelude::*;

    #[test]
    fn listing1_filter_satisfies_lemma1() {
        let balancer = Balancer::new(Policy::simple());
        let report = check_lemma1(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
        assert!(report.instances > 0);
    }

    #[test]
    fn greedy_filter_also_satisfies_lemma1() {
        // The §4.3 filter is sound sequentially — its flaw only appears with
        // concurrency, which is what makes the counterexample interesting.
        let balancer = Balancer::new(Policy::greedy());
        let report = check_lemma1(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    fn weighted_filter_satisfies_lemma1() {
        let balancer = Balancer::new(Policy::weighted());
        let report = check_lemma1(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    fn a_broken_filter_is_refuted_with_a_counterexample() {
        // A filter with threshold 1 violates soundness: an idle thief may
        // target a core with a single thread, whose steal would empty it.
        let policy = Policy::new(
            LoadMetric::NrThreads,
            Box::new(DeltaFilter::new(LoadMetric::NrThreads, 1)),
            Box::new(MaxLoadChoice::new(LoadMetric::NrThreads)),
            Box::new(StealOne),
        );
        let balancer = Balancer::new(policy);
        let report = check_lemma1(&balancer, &Scope::small());
        assert!(!report.is_proved());
        let ce = report.status.counterexample().unwrap();
        assert!(ce.summary.contains("not overloaded"));
    }

    #[test]
    fn node_restricted_filter_violates_completeness() {
        // Restricting the filter to same-node victims breaks the
        // completeness half of Lemma 1 as soon as nodes differ…  but within
        // a single-node enumeration (all cores on node 0) it still holds, so
        // this test builds a two-node state by hand via the refutation path
        // of the full convergence checker instead.  Here we only assert the
        // single-node enumeration result for documentation purposes.
        let policy = Policy::new(
            LoadMetric::NrThreads,
            Box::new(NodeRestrictedFilter::new(DeltaFilter::listing1())),
            Box::new(MaxLoadChoice::new(LoadMetric::NrThreads)),
            Box::new(StealOne),
        );
        let balancer = Balancer::new(policy);
        let report = check_lemma1(&balancer, &Scope::small());
        assert!(report.is_proved(), "on a single node the restriction is invisible");
    }
}
