//! The paper's lemmas, checked exhaustively over a bounded scope.
//!
//! | Module | Paper reference | Statement |
//! |---|---|---|
//! | [`lemma1`] | Listing 2 | An idle thief's filter selects a core iff some core is overloaded, and selects only overloaded cores. |
//! | [`steal_sound`] | §4.2 | When the filter holds at stealing time, the steal succeeds, moves ≥ 1 thread, never empties the victim, and neither loses nor duplicates threads. |
//! | [`seq_wc`] | §4.2 | Under sequential (non-overlapping) rounds, the system becomes work-conserving within a bounded number of rounds. |
//! | [`failure`] | §4.3, property P1 | A failed stealing attempt implies that a concurrent stealing attempt by another core succeeded in between, touching the failed attempt's victim or thief. |
//! | [`potential`] | §4.3, property P2 | Every successful steal strictly decreases the pairwise absolute load difference `d`. |
//! | [`hierarchy`] | §5 | A steal at one topology level leaves the per-level potential unchanged at that level and coarser, and hierarchical rounds stay work-conserving. |
//! | [`decay`] | §3.1 ("no assumption on the criteria") | A steady tracked load converges geometrically to the instantaneous load, and balancing on any monotone tracker preserves work conservation given settling ticks. |
//! | [`cas`] | §3.1, restated for the lock-free backend | On the Chase–Lev steal path, a successful CAS claims exclusively (no task duplicated or lost) and a failed CAS implies a concurrent claim (P1), checked on *forced* interleavings via probes and under scoped-thread stress — including the **multi-claim** `steal_many` path, where one CAS moves `top` by a whole batch racing owner pops and rival thieves. |
//! | [`injector`] | work conservation across ring overflow | Overflowed work routed to the shared injector is counted **and** stealable (never simultaneously visible to balancing and invisible to thieves), an injector `Retry` implies a concurrent successful claim (P1 on the overflow path, via probes), and overflow storms neither lose nor duplicate work under scoped-thread stress. |
//!
//! The concurrent convergence check (bounded failures + the §3.2 `∃N`) is in
//! [`crate::convergence`], since it explores multi-round executions rather
//! than a single round.

pub mod cas;
pub mod decay;
pub mod failure;
pub mod hierarchy;
pub mod injector;
pub mod lemma1;
pub mod potential;
pub mod seq_wc;
pub mod steal_sound;

pub use cas::{
    check_cas_failure_implies_concurrent_success, check_cas_single_element_winner,
    check_cas_steal_exclusivity, check_multi_claim_exclusivity,
    check_multi_claim_failure_implies_concurrent_success, check_pop_straddling_batch_commit,
};
pub use decay::{check_decay_convergence, check_tracked_work_conservation};
pub use failure::check_failure_implies_concurrent_success;
pub use hierarchy::{check_hierarchical_work_conservation, check_level_potential_invariance};
pub use injector::{
    check_injector_conservation_under_storm, check_injector_retry_implies_concurrent_claim,
    check_injector_visibility,
};
pub use lemma1::check_lemma1;
pub use potential::check_potential_decreases;
pub use seq_wc::check_sequential_work_conservation;
pub use steal_sound::check_steal_soundness;
