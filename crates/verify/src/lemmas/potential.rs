//! Property P2 (§4.3): the potential decreases on every successful steal.
//!
//! "We show that the absolute 'load difference' between cores […] decreases
//! with every successful stealing attempt. […] because d ≥ 0, the number of
//! successful work-stealing operations is bounded."

use sched_core::{potential, Balancer, CoreSnapshot, StealOutcome};

use crate::counterexample::Counterexample;
use crate::enumerate::states;
use crate::lemma::LemmaReport;
use crate::scope::Scope;

/// Checks, over every configuration in `scope` and every (thief, victim)
/// pair whose filter holds on the live state, that executing the stealing
/// phase strictly decreases the potential `d` under the policy's metric.
pub fn check_potential_decreases(balancer: &Balancer, scope: &Scope) -> LemmaReport {
    let metric = balancer.policy().metric;
    let mut instances = 0u64;
    for state in states(scope) {
        let loads = state.loads(sched_core::LoadMetric::NrThreads);
        for thief in state.core_ids() {
            for victim in state.core_ids() {
                if thief == victim {
                    continue;
                }
                let thief_snap = CoreSnapshot::capture(state.core(thief));
                let victim_snap = CoreSnapshot::capture(state.core(victim));
                if !balancer.policy().filter.can_steal(&thief_snap, &victim_snap) {
                    continue;
                }
                instances += 1;

                let mut working = state.clone();
                let before = potential(&working, metric);
                let outcome = balancer.steal(&mut working, thief, victim);
                if !matches!(outcome, StealOutcome::Stole { .. }) {
                    // Soundness violations are reported by the steal
                    // soundness lemma; the potential lemma only constrains
                    // successful steals.
                    continue;
                }
                let after = potential(&working, metric);
                if after >= before {
                    let ce = Counterexample::new(
                        "a successful steal did not strictly decrease the potential d",
                        loads.clone(),
                    )
                    .step(format!("thief {thief}, victim {victim}, metric {metric}"))
                    .step(format!("d before = {before}, d after = {after}"))
                    .step(format!(
                        "loads after: {}",
                        working.load_vector_string(sched_core::LoadMetric::NrThreads)
                    ));
                    return LemmaReport::refuted("potential decrease (§4.3, P2)", instances, ce);
                }
            }
        }
    }
    LemmaReport::proved("potential decrease (§4.3, P2)", instances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::prelude::*;

    #[test]
    fn simple_policy_decreases_the_potential() {
        let balancer = Balancer::new(Policy::simple());
        let report = check_potential_decreases(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
        assert!(report.instances > 0);
    }

    #[test]
    fn weighted_policy_decreases_the_weighted_potential() {
        let balancer = Balancer::new(Policy::weighted());
        let report = check_potential_decreases(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    fn greedy_policy_violates_the_potential_lemma() {
        // The greedy filter lets a core with load L steal from a core with
        // load L+1 (both ≥ 2 threads on the victim): the move only inverts
        // the imbalance and d does not decrease.  This is the formal root of
        // the ping-pong.
        let balancer = Balancer::new(Policy::greedy());
        let report = check_potential_decreases(&balancer, &Scope::small());
        assert!(!report.is_proved(), "{report}");
        let ce = report.status.counterexample().unwrap();
        assert!(ce.summary.contains("did not strictly decrease"));
    }

    #[test]
    fn steal_half_also_decreases_the_potential() {
        let policy =
            Policy::simple().with_steal(Box::new(StealHalfImbalance::new(LoadMetric::NrThreads)));
        let balancer = Balancer::new(policy);
        let report = check_potential_decreases(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
    }
}
