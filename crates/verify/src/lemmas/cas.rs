//! Steal atomicity for the CAS path (§3.1, restated for `sched-deque`).
//!
//! The mutex backend's atomicity argument is "both runqueue locks are
//! held, so the re-check and the dequeue are one critical section".  The
//! lock-free backend replaces the locks with a single compare-and-swap on
//! the deque's `top`; the argument becomes:
//!
//! 1. **Exclusivity** — `top` increases only through successful CASes and
//!    each index is CASed away at most once, so every element is claimed
//!    by exactly one party: *no task is duplicated*.
//! 2. **Conservation** — a claim removes exactly the element at the old
//!    `top` and hands it to exactly one claimant, so pushes = claims +
//!    residue: *no task is lost*.
//! 3. **P1 for CASes** — a failed CAS means `top` moved, and `top` only
//!    moves through someone else's successful claim: *failures imply
//!    concurrent successes*, which is what bounds the convergence argument
//!    (§4.3 P1) on this backend too.
//! 4. **Work conservation** — because claims neither lose nor duplicate
//!    tasks, the balancing layer's work-conservation reasoning (which only
//!    needs steals to move one real task from victim to thief) carries
//!    over unchanged; `MultiQueue<DequeRq>`'s convergence tests pin the
//!    end-to-end statement.
//!
//! Two kinds of checks pin these down.  The **probed** checks force the
//! adversarial interleaving deterministically (`sched-deque` exposes a
//! probe hook between the optimistic reads and the CAS), so the lemmas do
//! not depend on the OS preempting at the right instruction — essential on
//! single-CPU runners.  The **stress** checks hammer the same windows with
//! real scoped threads and exact accounting.

use std::sync::atomic::{AtomicBool, Ordering};

use sched_deque::{deque, Steal, StealMany};

use crate::counterexample::Counterexample;
use crate::lemma::LemmaReport;

/// Checks exclusivity and conservation under an owner-pop vs. multi-thief
/// race: over `rounds` rounds, `items` elements are drained concurrently
/// by the owner (bottom) and `thieves` stealers (top CAS); every element
/// must be claimed exactly once.
///
/// Instances are (round × element) claim checks.
pub fn check_cas_steal_exclusivity(rounds: usize, items: u64, thieves: usize) -> LemmaReport {
    let name = "CAS steal exclusivity (no task duplicated or lost)";
    let mut instances = 0u64;
    for round in 0..rounds {
        let (mut worker, stealer) = deque(items.max(1) as usize);
        for v in 0..items {
            worker.push(v).unwrap();
        }
        let start = AtomicBool::new(false);
        let mut claims: Vec<u64> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..thieves)
                .map(|_| {
                    let stealer = stealer.clone();
                    let start = &start;
                    scope.spawn(move || {
                        while !start.load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                        let mut claimed = Vec::new();
                        loop {
                            match stealer.steal() {
                                Steal::Stolen(v) => claimed.push(v),
                                Steal::Retry => {}
                                Steal::Empty => break,
                            }
                        }
                        claimed
                    })
                })
                .collect();
            start.store(true, Ordering::Release);
            while let Some(v) = worker.pop() {
                claims.push(v);
            }
            for handle in handles {
                claims.extend(handle.join().unwrap());
            }
        });
        claims.sort_unstable();
        instances += items;
        let expected: Vec<u64> = (0..items).collect();
        if claims != expected {
            return LemmaReport::refuted(
                name,
                instances,
                Counterexample::new("an element was claimed twice or never claimed", vec![items])
                    .step(format!(
                        "round {round}: owner vs {thieves} thieves over {items} elements"
                    ))
                    .step(format!("claims after sorting: {claims:?}")),
            );
        }
    }
    LemmaReport::proved(name, instances)
}

/// Checks P1 for the CAS path *deterministically*: a probe injected in
/// every thief's read-to-CAS window performs a rival claim, so the probed
/// CAS must fail — and the element must end up with the rival, exactly
/// once.  Also drives the owner-side window: once the owner publishes its
/// claim on the bottom element, a thief arriving in the window backs off.
///
/// Instances are forced interleavings.
pub fn check_cas_failure_implies_concurrent_success(rounds: usize) -> LemmaReport {
    let name = "CAS failure implies concurrent success (P1, lock-free path)";
    let mut instances = 0u64;
    for round in 0..rounds {
        // Thief-vs-thief: the rival claims inside the window.
        let (mut worker, stealer) = deque(4);
        worker.push(1).unwrap();
        worker.push(2).unwrap();
        let rival = stealer.clone();
        let mut rival_got = None;
        let outcome = stealer.steal_with_probe(|| {
            rival_got = rival.steal().stolen();
        });
        instances += 1;
        let fail = |instances: u64, what: &str, detail: String| {
            LemmaReport::refuted(
                name,
                instances,
                Counterexample::new(what, vec![2]).step(format!("round {round}: {detail}")),
            )
        };
        if rival_got != Some(1) {
            return fail(
                instances,
                "the rival's claim inside the window failed",
                format!("{rival_got:?}"),
            );
        }
        if outcome != Steal::Retry {
            return fail(
                instances,
                "a CAS doomed by a concurrent claim did not fail",
                format!("outcome {outcome:?} after the rival claimed"),
            );
        }
        // The remaining element is claimable exactly once.
        if stealer.steal() != Steal::Stolen(2) || stealer.steal() != Steal::Empty {
            return fail(
                instances,
                "claims after the forced race were not exclusive",
                String::new(),
            );
        }

        // Owner-vs-thief on the last element: the owner takes it inside
        // the thief's window, the thief's CAS must fail.
        let (mut worker, stealer) = deque(4);
        worker.push(7).unwrap();
        let worker_cell = std::cell::RefCell::new(worker);
        let outcome = stealer.steal_with_probe(|| {
            let got = worker_cell.borrow_mut().pop();
            assert_eq!(got, Some(7), "the owner wins the forced last-element race");
        });
        instances += 1;
        if outcome != Steal::Retry {
            return fail(
                instances,
                "the thief's CAS survived the owner's last-element take",
                format!("outcome {outcome:?}"),
            );
        }
        if stealer.steal() != Steal::Empty {
            return fail(instances, "the claimed element was claimable twice", String::new());
        }
    }
    LemmaReport::proved(name, instances)
}

/// Checks exclusivity and conservation for the **multi-claim** CAS path:
/// over `rounds` rounds, `items` elements are drained concurrently by the
/// owner (bottom pops) and `thieves` batch stealers (`steal_many` with
/// mixed batch sizes, so reservation winners race single-path fallback
/// losers); every element must be claimed exactly once — a batch CAS that
/// advanced `top` by `n` must account for exactly `n` elements nobody else
/// (owner included) obtained.
///
/// Instances are (round × element) claim checks.
pub fn check_multi_claim_exclusivity(rounds: usize, items: u64, thieves: usize) -> LemmaReport {
    let name = "multi-claim CAS exclusivity (steal_many duplicates or loses no task)";
    let mut instances = 0u64;
    for round in 0..rounds {
        let (mut worker, stealer) = deque(items.max(1) as usize);
        for v in 0..items {
            worker.push(v).unwrap();
        }
        let start = AtomicBool::new(false);
        let mut claims: Vec<u64> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..thieves)
                .map(|i| {
                    let stealer = stealer.clone();
                    let start = &start;
                    let k = 1 + (round + i) % 8;
                    scope.spawn(move || {
                        while !start.load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                        let mut claimed = Vec::new();
                        loop {
                            match stealer.steal_many(k) {
                                StealMany::Stolen(batch) => claimed.extend(batch),
                                StealMany::Retry => {}
                                StealMany::Empty => break,
                            }
                        }
                        claimed
                    })
                })
                .collect();
            start.store(true, Ordering::Release);
            while let Some(v) = worker.pop() {
                claims.push(v);
            }
            for handle in handles {
                claims.extend(handle.join().unwrap());
            }
        });
        claims.sort_unstable();
        instances += items;
        let expected: Vec<u64> = (0..items).collect();
        if claims != expected {
            return LemmaReport::refuted(
                name,
                instances,
                Counterexample::new("a batch claim duplicated or lost an element", vec![items])
                    .step(format!(
                    "round {round}: owner pops vs {thieves} batch thieves over {items} elements"
                ))
                    .step(format!("claims after sorting: {claims:?}")),
            );
        }
    }
    LemmaReport::proved(name, instances)
}

/// Checks P1 and claim-atomicity for the multi-claim path
/// *deterministically*, via probes forced into the batched
/// read-to-CAS window:
///
/// 1. a rival single claim inside the window dooms the whole batch CAS —
///    the batch returns [`StealMany::Retry`] with **nothing** claimed
///    (all-or-nothing), and the rival's element plus the remainder drain
///    exactly once;
/// 2. an owner pop *above* the batch reservation proceeds concurrently and
///    both parties' claims partition the deque;
/// 3. an owner claiming the last element inside its own CAS window forces
///    an arriving batch to back off empty — one winner, as in the
///    single-claim lemma.
///
/// Instances are forced interleavings.
pub fn check_multi_claim_failure_implies_concurrent_success(rounds: usize) -> LemmaReport {
    let name = "multi-claim CAS failure implies concurrent success (P1, batched path)";
    let mut instances = 0u64;
    for round in 0..rounds {
        let fail = |instances: u64, what: &str, detail: String| {
            LemmaReport::refuted(
                name,
                instances,
                Counterexample::new(what, vec![4]).step(format!("round {round}: {detail}")),
            )
        };

        // 1. Rival-vs-batch: the rival claims inside the batched window.
        let (mut worker, stealer) = deque(8);
        for v in 1..=4 {
            worker.push(v).unwrap();
        }
        let rival = stealer.clone();
        let mut rival_got = None;
        let outcome = stealer.steal_many_with_probe(3, || {
            rival_got = rival.steal().stolen();
        });
        instances += 1;
        if rival_got != Some(1) {
            return fail(
                instances,
                "the rival's claim inside the batched window failed",
                format!("{rival_got:?}"),
            );
        }
        if outcome != StealMany::Retry {
            return fail(
                instances,
                "a batch CAS doomed by a concurrent claim did not fail whole",
                format!("outcome {outcome:?} after the rival claimed"),
            );
        }
        if stealer.steal_many(8) != StealMany::Stolen(vec![2, 3, 4]) {
            return fail(
                instances,
                "claims after the doomed batch were not exclusive",
                String::new(),
            );
        }

        // 2. Owner pop above the reservation: batch and owner partition.
        let (mut worker, stealer) = deque(8);
        for v in 0..4 {
            worker.push(v).unwrap();
        }
        let worker_cell = std::cell::RefCell::new(worker);
        let outcome = stealer.steal_many_with_probe(2, || {
            let got = worker_cell.borrow_mut().pop();
            assert_eq!(got, Some(3), "the owner's pop above the reservation proceeds");
        });
        instances += 1;
        if outcome != StealMany::Stolen(vec![0, 1]) {
            return fail(
                instances,
                "a batch below the owner's pop did not claim its reserved range",
                format!("outcome {outcome:?}"),
            );
        }
        if worker_cell.borrow_mut().pop() != Some(2) || worker_cell.borrow_mut().pop().is_some() {
            return fail(instances, "batch and owner claims did not partition", String::new());
        }

        // 3. Owner takes the last element inside its window: the batch
        // observes the lowered bottom and backs off empty.
        let (mut worker, stealer) = deque(4);
        worker.push(7).unwrap();
        let thief = stealer.clone();
        let mut thief_saw = None;
        let got = worker.pop_with_probe(|| {
            thief_saw = Some(thief.steal_many(4));
        });
        instances += 1;
        if got != Some(7) || thief_saw != Some(StealMany::Empty) {
            return fail(
                instances,
                "the last-element race against a batch had two winners or none",
                format!("owner got {got:?}, batch saw {thief_saw:?}"),
            );
        }
    }
    LemmaReport::proved(name, instances)
}

/// Checks, deterministically, the one interleaving the batch reservation's
/// two-case fence argument used to miss: a **complete** batch claim
/// (reserve → `top` CAS → clear) commits entirely inside a single owner
/// pop's validation window, while the batch's own `bottom` re-read
/// predates that pop — so neither the reservation back-off nor the
/// shrunken claim protects the popped index, and only the pop's load
/// order (`reserved` strictly before `top`, both SeqCst) keeps the claim
/// exclusive.  A pop reading `top` first sees a stale `top` and a cleared
/// reservation here, and hands out an element the batch already took.
///
/// Two probes rendezvous real threads at exactly those points: the thief
/// parks between its batched slot reads and its CAS until the owner is
/// inside its window, and the owner parks inside the window until the
/// whole batch has committed and cleared.  The pop must then observe the
/// batch's advanced `top` and come back empty-handed.
///
/// Instances are forced straddles.
pub fn check_pop_straddling_batch_commit(rounds: usize) -> LemmaReport {
    let name = "a batch committing inside the pop window is observed, not double-claimed";
    let mut instances = 0u64;
    for round in 0..rounds {
        let (mut worker, stealer) = deque(8);
        for v in 0..3 {
            worker.push(v).unwrap();
        }
        let thief_staged = AtomicBool::new(false);
        let owner_in_window = AtomicBool::new(false);
        let batch_done = AtomicBool::new(false);
        let mut popped = None;
        let mut batch = None;
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                // Staged against bottom = 3: the reservation is published
                // and all three slots are read *before* the owner's pop
                // lowers bottom — the probe then parks the thief one step
                // short of its CAS until the owner sits inside its window.
                let out = stealer.steal_many_with_probe(3, || {
                    thief_staged.store(true, Ordering::Release);
                    while !owner_in_window.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                });
                batch_done.store(true, Ordering::Release);
                out
            });
            while !thief_staged.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            popped = Some(worker.pop_with_window_probe(|| {
                owner_in_window.store(true, Ordering::Release);
                while !batch_done.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            }));
            batch = Some(handle.join().unwrap());
        });
        instances += 1;
        if batch != Some(StealMany::Stolen(vec![0, 1, 2])) || popped != Some(None) {
            return LemmaReport::refuted(
                name,
                instances,
                Counterexample::new(
                    "the pop straddled by a committed batch claimed a stolen element",
                    vec![3],
                )
                .step(format!("round {round}: batch got {batch:?}, owner popped {popped:?}")),
            );
        }
    }
    LemmaReport::proved(name, instances)
}

/// Checks that the owner's claim on the bottom element excludes thieves:
/// once `bottom` is lowered over the last element, a thief arriving in the
/// owner's CAS window observes an empty deque and backs off, and the
/// owner's take succeeds — the single-element race has exactly one winner
/// in both forced orders.
pub fn check_cas_single_element_winner(rounds: usize) -> LemmaReport {
    let name = "single-element owner-vs-thief race has one winner";
    let mut instances = 0u64;
    for round in 0..rounds {
        let (mut worker, stealer) = deque(2);
        worker.push(9).unwrap();
        let thief = stealer.clone();
        let mut thief_saw = None;
        let got = worker.pop_with_probe(|| {
            thief_saw = Some(thief.steal());
        });
        instances += 1;
        if got != Some(9) || thief_saw != Some(Steal::Empty) {
            return LemmaReport::refuted(
                name,
                instances,
                Counterexample::new("both parties claimed, or neither did", vec![1])
                    .step(format!("round {round}: owner got {got:?}, thief saw {thief_saw:?}")),
            );
        }
    }
    LemmaReport::proved(name, instances)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusivity_holds_under_scoped_thread_stress() {
        let report = check_cas_steal_exclusivity(20, 128, 4);
        assert!(report.is_proved(), "{report}");
        assert_eq!(report.instances, 20 * 128);
    }

    #[test]
    fn p1_holds_on_every_forced_interleaving() {
        let report = check_cas_failure_implies_concurrent_success(50);
        assert!(report.is_proved(), "{report}");
        assert_eq!(report.instances, 100);
    }

    #[test]
    fn single_element_race_is_exclusive() {
        let report = check_cas_single_element_winner(100);
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    fn multi_claim_exclusivity_holds_under_scoped_thread_stress() {
        let report = check_multi_claim_exclusivity(20, 128, 4);
        assert!(report.is_proved(), "{report}");
        assert_eq!(report.instances, 20 * 128);
    }

    #[test]
    fn multi_claim_p1_holds_on_every_forced_interleaving() {
        let report = check_multi_claim_failure_implies_concurrent_success(50);
        assert!(report.is_proved(), "{report}");
        assert_eq!(report.instances, 150);
    }

    #[test]
    fn a_pop_straddled_by_a_committed_batch_stays_exclusive() {
        let report = check_pop_straddling_batch_commit(50);
        assert!(report.is_proved(), "{report}");
        assert_eq!(report.instances, 50);
    }

    #[test]
    #[ignore = "nightly-strength stress; run via `cargo test -- --ignored`"]
    fn stress_exclusivity_high_iteration() {
        let report = check_cas_steal_exclusivity(300, 1024, 8);
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    #[ignore = "nightly-strength stress; run via `cargo test -- --ignored`"]
    fn stress_multi_claim_exclusivity_high_iteration() {
        let report = check_multi_claim_exclusivity(300, 1024, 8);
        assert!(report.is_proved(), "{report}");
    }
}
