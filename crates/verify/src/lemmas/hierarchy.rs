//! Per-level extensions of the potential and convergence machinery.
//!
//! Hierarchical balancing adds one obligation on top of the flat §4.3
//! argument: every level must converge *without undoing* the balance
//! already achieved at coarser levels.  Two lemmas discharge it:
//!
//! * **Level invariance** — a steal whose (thief, victim) pair is
//!   classified at [`StealLevel`] `L` leaves the per-level potential
//!   [`sched_core::potential::level_potential`] unchanged at `L` and at
//!   every coarser level: the load moves within one region of those
//!   partitions, so region sums — and therefore their pairwise
//!   differences — cannot change.  Together with the flat P2 (the per-core
//!   potential strictly decreases on every filtered steal), this bounds the
//!   number of steals of each pass independently.
//! * **Hierarchical work conservation** — running
//!   [`sched_core::HierarchicalRound`]s from every configuration in scope
//!   reaches a work-conserving state within the scope's round budget.  The
//!   final unrestricted pass makes this a corollary of the flat result, but
//!   the check exercises the level-capped passes and the early-exit logic
//!   on the real executor rather than trusting the argument.

use std::sync::Arc;

use sched_core::potential::level_potential;
use sched_core::{
    Balancer, CoreId, HierarchicalRound, LoadMetric, Policy, RoundSchedule, SystemSnapshot,
    SystemState,
};
use sched_topology::{MachineTopology, StealLevel};

use crate::counterexample::Counterexample;
use crate::enumerate::compositions;
use crate::lemma::LemmaReport;

/// Every load vector on `topo`'s CPUs with up to `max_threads` threads.
fn states_on(topo: &MachineTopology, max_threads: usize) -> impl Iterator<Item = SystemState> {
    let nr_cpus = topo.nr_cpus();
    (0..=max_threads)
        .flat_map(move |t| compositions(nr_cpus, t))
        .map(|loads| SystemState::from_loads(&loads))
}

/// Checks that every filtered single-thread steal leaves the per-level
/// potential unchanged at its own level and at every coarser one.
pub fn check_level_potential_invariance(
    balancer: &Balancer,
    topo: &MachineTopology,
    max_threads: usize,
) -> LemmaReport {
    let mut instances = 0u64;
    for state in states_on(topo, max_threads) {
        let snapshot = SystemSnapshot::capture(&state);
        for thief in state.core_ids() {
            for victim in state.core_ids() {
                if thief == victim
                    || !balancer
                        .policy()
                        .filter
                        .can_steal(snapshot.core(thief), snapshot.core(victim))
                {
                    continue;
                }
                instances += 1;
                let steal_level = topo.steal_level(thief, victim);
                let before = state.loads(LoadMetric::NrThreads);
                let mut working = state.clone();
                let outcome = balancer.steal(&mut working, thief, victim);
                if !outcome.is_success() {
                    continue;
                }
                let after = working.loads(LoadMetric::NrThreads);
                for level in StealLevel::ALL {
                    if level < steal_level {
                        continue;
                    }
                    let d_before = level_potential(&before, topo, level);
                    let d_after = level_potential(&after, topo, level);
                    if d_before != d_after {
                        let ce = Counterexample::new(
                            "an intra-region steal changed a coarser per-level potential",
                            before.clone(),
                        )
                        .step(format!("steal {victim} -> {thief} is classified at {steal_level}"))
                        .step(format!("potential at {level} changed from {d_before} to {d_after}"));
                        return LemmaReport::refuted("level potential invariance", instances, ce);
                    }
                }
            }
        }
    }
    LemmaReport::proved("level potential invariance", instances)
}

/// Checks that hierarchical rounds reach work conservation from every
/// configuration in scope within `max_rounds`.
pub fn check_hierarchical_work_conservation(
    make_policy: impl Fn() -> Policy,
    topo: &Arc<MachineTopology>,
    max_threads: usize,
    max_rounds: usize,
) -> LemmaReport {
    let mut instances = 0u64;
    for state in states_on(topo, max_threads) {
        instances += 1;
        let loads = state.loads(LoadMetric::NrThreads);
        let total = state.total_threads();
        let balancer = Balancer::new(make_policy());
        let hier = HierarchicalRound::new(&balancer, Arc::clone(topo));
        let mut working = state;
        let (rounds, _) =
            hier.converge(&mut working, &RoundSchedule::AllSelectThenSteal, max_rounds);
        if rounds.is_none() {
            let ce = Counterexample::new(
                "hierarchical balancing did not reach work conservation in budget",
                loads,
            )
            .step(format!("after {max_rounds} rounds the loads are {:?}", {
                working.loads(LoadMetric::NrThreads)
            }))
            .step(format!(
                "idle cores: {:?}",
                working.idle_cores().iter().map(|c: &CoreId| c.0).collect::<Vec<_>>()
            ));
            return LemmaReport::refuted("hierarchical work conservation", instances, ce);
        }
        if working.total_threads() != total || !working.tasks_are_unique() {
            let ce =
                Counterexample::new("hierarchical balancing lost or duplicated threads", loads);
            return LemmaReport::refuted("hierarchical work conservation", instances, ce);
        }
    }
    LemmaReport::proved("hierarchical work conservation", instances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::policy::{LevelThresholds, TopologyAwareChoice};
    use sched_topology::TopologyBuilder;

    /// A 2-node, 4-CPU machine: small enough for exhaustive enumeration,
    /// rich enough to have distinct LLC and node boundaries.
    fn small_numa() -> Arc<MachineTopology> {
        Arc::new(TopologyBuilder::new().sockets(2).cores_per_socket(2).build())
    }

    fn topo_policy(topo: &Arc<MachineTopology>) -> Policy {
        Policy::simple().with_choice(Box::new(TopologyAwareChoice::new(
            Arc::clone(topo),
            LoadMetric::NrThreads,
        )))
    }

    #[test]
    fn listing1_steals_preserve_coarser_potentials() {
        let topo = small_numa();
        let balancer = Balancer::new(Policy::simple());
        let report = check_level_potential_invariance(&balancer, &topo, 5);
        assert!(report.is_proved(), "{report}");
        assert!(report.instances > 100);
    }

    #[test]
    fn weighted_steals_also_preserve_coarser_potentials() {
        // The invariance is pure arithmetic over thread counts, so it must
        // hold for any policy whose steals move whole threads.
        let topo = small_numa();
        let balancer = Balancer::new(Policy::weighted());
        let report = check_level_potential_invariance(&balancer, &topo, 4);
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    fn hierarchical_rounds_are_work_conserving_in_scope() {
        let topo = small_numa();
        let report = check_hierarchical_work_conservation(|| topo_policy(&topo), &topo, 5, 64);
        assert!(report.is_proved(), "{report}");
        assert!(report.instances > 100);
    }

    #[test]
    fn hierarchical_rounds_converge_with_smt_levels_too() {
        let topo = Arc::new(TopologyBuilder::new().sockets(2).cores_per_socket(1).smt(2).build());
        let report = check_hierarchical_work_conservation(
            || {
                Policy::simple().with_choice(Box::new(TopologyAwareChoice::with_thresholds(
                    Arc::clone(&topo),
                    LoadMetric::NrThreads,
                    LevelThresholds::new(2, 2, 2, 3),
                )))
            },
            &topo,
            4,
            64,
        );
        assert!(report.is_proved(), "{report}");
    }
}
