//! Steal soundness (§4.2): a steal whose filter holds behaves correctly.
//!
//! "(ii) during the stealing phase (third step), the idle core actually
//! steals threads from an overloaded core, and does not steal too much from
//! that overloaded core (i.e., in our load-balancing algorithm, the
//! overloaded core should not end up idle after the load-balancing
//! operation)."

use sched_core::{Balancer, CoreSnapshot};

use crate::counterexample::Counterexample;
use crate::enumerate::states;
use crate::lemma::LemmaReport;
use crate::scope::Scope;

/// Checks, over every configuration in `scope` and every (thief, victim)
/// pair whose filter holds on the live state, that the stealing phase:
///
/// 1. succeeds (no spurious failure when the selection is not stale),
/// 2. migrates at least one thread onto the thief,
/// 3. never leaves the victim idle,
/// 4. conserves the total number of threads and their uniqueness.
pub fn check_steal_soundness(balancer: &Balancer, scope: &Scope) -> LemmaReport {
    let mut instances = 0u64;
    for state in states(scope) {
        let loads = state.loads(sched_core::LoadMetric::NrThreads);
        for thief in state.core_ids() {
            for victim in state.core_ids() {
                if thief == victim {
                    continue;
                }
                let thief_snap = CoreSnapshot::capture(state.core(thief));
                let victim_snap = CoreSnapshot::capture(state.core(victim));
                if !balancer.policy().filter.can_steal(&thief_snap, &victim_snap) {
                    continue;
                }
                instances += 1;

                let mut working = state.clone();
                let total_before = working.total_threads();
                let thief_before = working.core(thief).nr_threads();
                let outcome = balancer.steal(&mut working, thief, victim);

                let fail = |what: &str| {
                    Counterexample::new(what, loads.clone())
                        .step(format!("thief {thief}, victim {victim}"))
                        .step(format!("outcome: {outcome:?}"))
                        .step(format!(
                            "loads after: {}",
                            working.load_vector_string(sched_core::LoadMetric::NrThreads)
                        ))
                };

                if !outcome.is_success() {
                    return LemmaReport::refuted(
                        "steal soundness (§4.2)",
                        instances,
                        fail("a steal whose filter holds on the live state failed"),
                    );
                }
                if working.core(thief).nr_threads() <= thief_before {
                    return LemmaReport::refuted(
                        "steal soundness (§4.2)",
                        instances,
                        fail("a successful steal did not increase the thief's load"),
                    );
                }
                if working.core(victim).is_idle() {
                    return LemmaReport::refuted(
                        "steal soundness (§4.2)",
                        instances,
                        fail("the steal left the victim idle (stole too much)"),
                    );
                }
                if working.total_threads() != total_before || !working.tasks_are_unique() {
                    return LemmaReport::refuted(
                        "steal soundness (§4.2)",
                        instances,
                        fail("threads were lost or duplicated by the steal"),
                    );
                }
            }
        }
    }
    LemmaReport::proved("steal soundness (§4.2)", instances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::prelude::*;

    #[test]
    fn simple_policy_is_steal_sound() {
        let balancer = Balancer::new(Policy::simple());
        let report = check_steal_soundness(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
        assert!(report.instances > 0);
    }

    #[test]
    fn weighted_policy_is_steal_sound() {
        let balancer = Balancer::new(Policy::weighted());
        let report = check_steal_soundness(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    fn greedy_policy_is_steal_sound_in_isolation() {
        // Greedy only targets overloaded victims, so an isolated steal is
        // still sound — the §4.3 problem is strictly about concurrency.
        let balancer = Balancer::new(Policy::greedy());
        let report = check_steal_soundness(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    fn threshold_one_filter_fails_steal_soundness() {
        // With threshold 1 an idle thief may target a victim running a
        // single thread; the victim has nothing in its runqueue, so the
        // "successful steal" obligation fails.
        let policy = Policy::new(
            LoadMetric::NrThreads,
            Box::new(DeltaFilter::new(LoadMetric::NrThreads, 1)),
            Box::new(MaxLoadChoice::new(LoadMetric::NrThreads)),
            Box::new(StealOne),
        );
        let balancer = Balancer::new(policy);
        let report = check_steal_soundness(&balancer, &Scope::small());
        assert!(!report.is_proved());
    }
}
