//! Property P1 (§4.3): a failure implies a concurrent success.
//!
//! "First, if a work-stealing attempt fails, it is because another
//! work-stealing attempt performed by another core succeeded […] failed
//! work-stealing attempts only happen when a core that was marked as
//! stealable during the selection phase is no longer stealable during the
//! stealing phase; […] the only lines of code that modify the state of the
//! runqueues are in the stealCore function that migrates threads."
//!
//! The check enumerates every configuration in scope and every interleaving
//! of one concurrent round, executes the round, and for every failed attempt
//! verifies that some *other* core's successful steal landed between the
//! failed attempt's selection and stealing phases and touched one of the two
//! runqueues the failed attempt depends on.

use sched_core::{Balancer, ConcurrentRound, RoundSchedule};

use crate::counterexample::Counterexample;
use crate::enumerate::configurations;
use crate::interleave::all_interleavings;
use crate::lemma::LemmaReport;
use crate::scope::Scope;

/// Checks property P1 over every configuration and round interleaving in
/// `scope`.
///
/// # Panics
///
/// Panics if `scope.max_cores > 6` (the interleaving enumeration refuses
/// larger rounds; use the sampled checks in `sched-bench` beyond that).
pub fn check_failure_implies_concurrent_success(balancer: &Balancer, scope: &Scope) -> LemmaReport {
    let executor = ConcurrentRound::new(balancer);
    let mut instances = 0u64;
    for loads in configurations(scope) {
        let nr_cores = loads.len();
        for steps in all_interleavings(nr_cores) {
            instances += 1;
            let mut system = sched_core::SystemState::from_loads(&loads);
            let report = executor.execute_steps(&mut system, &steps);
            for failed in report.failures() {
                let victim =
                    failed.outcome.victim().expect("a failed attempt always has a chosen victim");
                let explained = report.successes().any(|s| {
                    s.thief != failed.thief
                        && s.steal_time > failed.select_time
                        && s.steal_time < failed.steal_time
                        && (s.outcome.victim() == Some(victim)
                            || s.outcome.victim() == Some(failed.thief)
                            || s.thief == victim)
                });
                if !explained {
                    let ce = Counterexample::new(
                        "a stealing attempt failed without any concurrent successful steal explaining it",
                        loads.iter().map(|&l| l as u64).collect(),
                    )
                    .step(format!(
                        "failed thief {} (selected at t={}, stole at t={}), victim {}",
                        failed.thief, failed.select_time, failed.steal_time, victim
                    ))
                    .step(format!("round outcome: {:?}", failed.outcome))
                    .step(format!(
                        "successes this round: {:?}",
                        report
                            .successes()
                            .map(|s| (s.thief.0, s.outcome.victim().map(|v| v.0), s.steal_time))
                            .collect::<Vec<_>>()
                    ));
                    return LemmaReport::refuted(
                        "failure implies concurrent success (§4.3, P1)",
                        instances,
                        ce,
                    );
                }
            }
        }
    }
    let _ = RoundSchedule::Sequential; // (kept for the doc link; sequential rounds never fail)
    LemmaReport::proved("failure implies concurrent success (§4.3, P1)", instances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::prelude::*;

    #[test]
    fn simple_policy_satisfies_p1() {
        let balancer = Balancer::new(Policy::simple());
        let report = check_failure_implies_concurrent_success(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
        assert!(report.instances > 1000, "the interleaving space should be non-trivial");
    }

    #[test]
    fn greedy_policy_also_satisfies_p1() {
        // P1 holds even for the greedy filter: its failures are always
        // caused by concurrent successes.  What greedy lacks is P2
        // (bounded successes), which is checked elsewhere.
        let balancer = Balancer::new(Policy::greedy());
        let report = check_failure_implies_concurrent_success(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    fn weighted_policy_satisfies_p1() {
        let balancer = Balancer::new(Policy::weighted());
        let report = check_failure_implies_concurrent_success(&balancer, &Scope::new(3, 4, 16));
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    fn first_choice_satisfies_p1_too() {
        let balancer = Balancer::new(Policy::simple().with_choice(Box::new(FirstChoice)));
        let report = check_failure_implies_concurrent_success(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
    }
}
