//! Lemmas about decayed (tracked) load criteria.
//!
//! Making the load criterion pluggable adds two obligations on top of the
//! paper's instantaneous-load proofs:
//!
//! * **Decay convergence** — for a *steady* workload (queues unchanged
//!   between ticks), the tracked load converges to the instantaneous load:
//!   the deviation at least halves per half-life and reaches zero (after
//!   rounding) within a bounded number of ticks.  Consequently the
//!   balancing *potential* measured on tracked loads converges to the
//!   potential measured on instantaneous loads — a balancer driven by a
//!   decayed criterion eventually sees exactly the imbalances an
//!   instantaneous balancer sees.
//! * **Tracked work conservation** — a policy balancing any monotone
//!   tracker still reaches work conservation, provided rounds are
//!   interleaved with ticks (so the tracked view keeps converging toward
//!   the instantaneous truth).  This is the "work conservation is preserved
//!   under any monotone tracker" claim: the filter keeps firing for
//!   persistent imbalances because a sustained difference of `k` in
//!   instantaneous load becomes a difference of `k` in tracked load within
//!   finitely many half-lives.

use sched_core::potential::potential_of_loads;
use sched_core::{
    Balancer, ConcurrentRound, LoadMetric, LoadTracker, Policy, RoundSchedule, SystemState,
    TRACK_SCALE,
};

use crate::counterexample::Counterexample;
use crate::enumerate::configurations;
use crate::lemma::LemmaReport;
use crate::scope::Scope;

/// Ticks `system` forward by `half_life_ns` steps under `tracker`, checking
/// at every step that the tracked-vs-instantaneous deviation at least
/// halves (geometric convergence) on every core.
///
/// Returns the number of ticks until the tracked potential equals the
/// instantaneous potential, or an error describing the core that failed to
/// converge.
fn converge_steady(
    system: &mut SystemState,
    tracker: &dyn LoadTracker,
    half_life_ns: u64,
    max_ticks: usize,
) -> Result<usize, String> {
    let inst = system.loads(tracker.base());
    let d_inst = potential_of_loads(&inst);
    for tick in 1..=max_ticks {
        let gaps_before: Vec<u64> = system
            .cores()
            .iter()
            .map(|c| c.tracked.scaled.abs_diff(c.load(tracker.base()) * TRACK_SCALE))
            .collect();
        system.tick(tick as u64 * half_life_ns, tracker);
        for (core, before) in system.cores().iter().zip(&gaps_before) {
            let after = core.tracked.scaled.abs_diff(core.load(tracker.base()) * TRACK_SCALE);
            // +1 absorbs fixed-point floor rounding.
            if after > before / 2 + 1 {
                return Err(format!(
                    "core {}: deviation {after} after a half-life, was {before}",
                    core.id.0
                ));
            }
        }
        if potential_of_loads(&system.loads(LoadMetric::Tracked)) == d_inst {
            return Ok(tick);
        }
    }
    Err(format!("tracked potential never reached the instantaneous potential {d_inst}"))
}

/// Checks that, for every configuration in `scope` held steady, the tracked
/// load converges geometrically to the instantaneous load and the tracked
/// potential reaches the instantaneous potential within `max_ticks`
/// half-lives.
pub fn check_decay_convergence(
    tracker: &dyn LoadTracker,
    half_life_ns: u64,
    scope: &Scope,
    max_ticks: usize,
) -> LemmaReport {
    let mut instances = 0u64;
    for loads in configurations(scope) {
        instances += 1;
        let mut system = SystemState::from_loads(&loads);
        if let Err(why) = converge_steady(&mut system, tracker, half_life_ns, max_ticks) {
            let ce = Counterexample::new(
                "a steady tracked load failed to converge to the instantaneous load",
                loads.iter().map(|&l| l as u64).collect::<Vec<u64>>(),
            )
            .step(why);
            return LemmaReport::refuted("decay convergence", instances, ce);
        }
    }
    LemmaReport::proved("decay convergence", instances)
}

/// Checks that balancing on a (monotone) tracked criterion still reaches
/// work conservation from every configuration in `scope`, when every
/// concurrent round is preceded by a settling tick (the steady-state
/// reading of the §3.2 definition: the workload holds still long enough
/// for the decayed view to catch up).
pub fn check_tracked_work_conservation(
    make_policy: impl Fn() -> Policy,
    scope: &Scope,
    max_rounds: usize,
) -> LemmaReport {
    let mut instances = 0u64;
    for loads in configurations(scope) {
        instances += 1;
        let policy = make_policy();
        let tracker = std::sync::Arc::clone(&policy.tracker);
        let balancer = Balancer::new(policy);
        let executor = ConcurrentRound::new(&balancer);
        let mut system = SystemState::from_loads(&loads);
        let total = system.total_threads();
        // One settling period per round: long enough (32 half-lives would
        // be exact; any large multiple works) that tracked == instantaneous
        // when the selection phase runs.
        let settle_ns = 64_000_000u64;
        let mut converged = None;
        for round in 0..=max_rounds {
            system.tick((round as u64 + 1) * settle_ns, tracker.as_ref());
            if system.is_work_conserving() {
                converged = Some(round);
                break;
            }
            if round == max_rounds {
                break;
            }
            executor.execute(&mut system, &RoundSchedule::AllSelectThenSteal);
        }
        if converged.is_none() || system.total_threads() != total || !system.tasks_are_unique() {
            let ce = Counterexample::new(
                "tracked balancing failed to reach work conservation (or lost threads)",
                loads.iter().map(|&l| l as u64).collect::<Vec<u64>>(),
            )
            .step(format!(
                "after {max_rounds} rounds the loads are {:?} (tracked {:?})",
                system.loads(LoadMetric::NrThreads),
                system.loads(LoadMetric::Tracked),
            ));
            return LemmaReport::refuted("tracked work conservation", instances, ce);
        }
    }
    LemmaReport::proved("tracked work conservation", instances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::{NrThreadsTracker, PeltTracker, WeightedTracker};

    const HALF_LIFE: u64 = 1_000_000;

    #[test]
    fn pelt_converges_on_every_steady_configuration_in_scope() {
        let tracker = PeltTracker::new(LoadMetric::NrThreads, HALF_LIFE);
        let report = check_decay_convergence(&tracker, HALF_LIFE, &Scope::small(), 32);
        assert!(report.is_proved(), "{report}");
        assert!(report.instances > 20);
    }

    #[test]
    fn weighted_pelt_also_converges() {
        let tracker = PeltTracker::new(LoadMetric::Weighted, HALF_LIFE);
        let report = check_decay_convergence(&tracker, HALF_LIFE, &Scope::small(), 48);
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    fn instantaneous_trackers_converge_in_one_tick() {
        for tracker in [
            Box::new(NrThreadsTracker) as Box<dyn LoadTracker>,
            Box::new(WeightedTracker) as Box<dyn LoadTracker>,
        ] {
            let report = check_decay_convergence(tracker.as_ref(), HALF_LIFE, &Scope::small(), 1);
            assert!(report.is_proved(), "{report}");
        }
    }

    #[test]
    fn pelt_policy_is_work_conserving_given_settling_ticks() {
        let report =
            check_tracked_work_conservation(|| Policy::pelt(HALF_LIFE), &Scope::small(), 64);
        assert!(report.is_proved(), "{report}");
        assert!(report.instances > 20);
    }

    #[test]
    fn every_builtin_tracker_preserves_work_conservation() {
        type PolicyCtor = fn() -> Policy;
        let ctors: Vec<PolicyCtor> =
            vec![Policy::simple, Policy::weighted, || Policy::pelt(HALF_LIFE), || {
                Policy::pelt_weighted(HALF_LIFE)
            }];
        for make in ctors {
            let report = check_tracked_work_conservation(make, &Scope::small(), 64);
            assert!(report.is_proved(), "{report}");
        }
    }
}
