//! Sequential work conservation (§4.2).
//!
//! "In a sequential setting, this proof is sufficient to ensure that, after
//! one round of load balancing operations on an idle core, if the system had
//! an overloaded core, then the idle core has successfully stolen a thread.
//! Proving that stealing threads cannot make the affected cores idle is then
//! sufficient to prove that the scheduler is work-conserving."

use sched_core::{Balancer, RoundSchedule};

use crate::counterexample::Counterexample;
use crate::enumerate::states;
use crate::lemma::LemmaReport;
use crate::scope::Scope;

/// Checks that, for every configuration in `scope`, executing sequential
/// (non-overlapping) load-balancing rounds reaches a work-conserving state
/// within `scope.max_rounds` rounds, with no failed attempts along the way.
///
/// Returns, on success, the number of `(configuration)` instances checked;
/// the maximum number of rounds any configuration needed is reported by
/// [`crate::convergence::max_rounds_to_converge`].
pub fn check_sequential_work_conservation(balancer: &Balancer, scope: &Scope) -> LemmaReport {
    let mut instances = 0u64;
    for initial in states(scope) {
        instances += 1;
        let loads = initial.loads(sched_core::LoadMetric::NrThreads);
        let mut system = initial.clone();
        let result = sched_core::converge(
            &mut system,
            balancer,
            RoundSchedule::Sequential,
            scope.max_rounds,
        );
        if !result.converged() {
            let ce = Counterexample::new(
                "sequential rounds did not reach a work-conserving state within the budget",
                loads,
            )
            .step(format!("round budget: {}", scope.max_rounds))
            .step(format!(
                "final loads: {}",
                system.load_vector_string(sched_core::LoadMetric::NrThreads)
            ));
            return LemmaReport::refuted("sequential work conservation (§4.2)", instances, ce);
        }
        let failures = result.total_failures();
        if failures > 0 {
            let ce = Counterexample::new(
                "a stealing attempt failed although rounds were sequential",
                loads,
            )
            .step(format!("{failures} failed attempts"));
            return LemmaReport::refuted("sequential work conservation (§4.2)", instances, ce);
        }
    }
    LemmaReport::proved("sequential work conservation (§4.2)", instances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::prelude::*;

    #[test]
    fn simple_policy_is_sequentially_work_conserving() {
        let balancer = Balancer::new(Policy::simple());
        let report = check_sequential_work_conservation(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    fn greedy_policy_is_sequentially_work_conserving() {
        // §4.2: without concurrency the greedy filter is fine.
        let balancer = Balancer::new(Policy::greedy());
        let report = check_sequential_work_conservation(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    fn weighted_policy_is_sequentially_work_conserving() {
        let balancer = Balancer::new(Policy::weighted());
        let report = check_sequential_work_conservation(&balancer, &Scope::small());
        assert!(report.is_proved(), "{report}");
    }

    #[test]
    fn every_choice_policy_preserves_the_proof() {
        // The paper's headline simplification: step 2 is irrelevant to the
        // proof.  Swap in several choice policies and re-check.
        let choices: Vec<Box<dyn ChoicePolicy>> = vec![
            Box::new(FirstChoice),
            Box::new(MaxLoadChoice::new(LoadMetric::NrThreads)),
            Box::new(RandomChoice::new(99)),
        ];
        for choice in choices {
            let balancer = Balancer::new(Policy::simple().with_choice(choice));
            let report = check_sequential_work_conservation(&balancer, &Scope::small());
            assert!(report.is_proved(), "{report}");
        }
    }

    #[test]
    fn an_absurd_round_budget_refutes() {
        // With a budget of zero rounds, imbalanced configurations cannot
        // converge — the checker must report that honestly.
        let balancer = Balancer::new(Policy::simple());
        let scope = Scope { max_cores: 3, max_threads: 4, max_rounds: 0 };
        let report = check_sequential_work_conservation(&balancer, &scope);
        assert!(!report.is_proved());
    }
}
