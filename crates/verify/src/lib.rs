//! The verification substrate — a bounded, exhaustive substitute for the
//! Leon toolkit.
//!
//! The paper verifies its scheduler abstractions by compiling policies to
//! Scala and discharging `.holds` obligations with the Leon verification
//! system.  That toolchain is not available here, so this crate discharges
//! the *same lemmas* by exhaustive small-scope model checking plus
//! property-based testing (see DESIGN.md §2 for the substitution argument):
//!
//! * every initial core configuration within a [`Scope`] (bounded number of
//!   cores and threads) is enumerated by [`enumerate`],
//! * every interleaving of the per-core selection/stealing phases of a
//!   load-balancing round is enumerated by [`interleave`],
//! * the paper's lemmas are checked over that space by [`lemmas`]:
//!   - Lemma 1 (Listing 2): an idle thief filters in a core iff it is
//!     overloaded,
//!   - steal soundness (§4.2): a steal whose filter holds succeeds, never
//!     empties the victim and never loses or duplicates threads,
//!   - sequential work conservation (§4.2),
//!   - P1 (§4.3): a failed attempt implies a concurrent successful steal,
//!   - P2 (§4.3): the load-difference potential strictly decreases on every
//!     successful steal,
//!   - bounded failures / concurrent convergence (§4.3 + §3.2): no reachable
//!     cycle of non-work-conserving states exists, and the bound `N` is
//!     computed,
//! * failures are reported as step-by-step [`counterexample::Counterexample`]s
//!   — running the checker against the §4.3 greedy filter reproduces the
//!   three-core ping-pong exactly,
//! * the event-driven simulator's own degree of freedom — the order in
//!   which same-timestamp events are processed — is discharged the same
//!   way by [`ordering`]: seeded permutations of every same-time group
//!   must reproduce the priority-ordered baseline's outcome.

pub mod convergence;
pub mod counterexample;
pub mod enumerate;
pub mod interleave;
pub mod lemma;
pub mod lemmas;
pub mod ordering;
pub mod report;
pub mod scope;

pub use convergence::{
    analyze_convergence, find_non_conserving_cycle, max_rounds_to_converge, ChoiceStrategy,
    ConvergenceAnalysis, CycleWitness,
};
pub use counterexample::Counterexample;
pub use enumerate::{configurations, states};
pub use interleave::{all_interleavings, interleaving_count};
pub use lemma::{LemmaReport, LemmaStatus};
pub use ordering::{check_ordering_independence, OrderingReport, OrderingViolation};
pub use report::{verify_policy, VerificationReport};
pub use scope::Scope;
