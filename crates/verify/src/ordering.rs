//! The same-time-ordering lemma, discharged on the event engine itself.
//!
//! The paper's central claim (§4.3, Figure 1) is that the *choice* step of
//! an optimistic balancer is irrelevant to its proofs: any policy passing
//! the filter obligations converges regardless of which candidate is
//! picked.  The event-driven simulator has an analogous freedom the lemmas
//! in [`crate::lemmas`] cannot see: when several events carry the same
//! timestamp, the engine must pick *some* order to process them in, and
//! none of the simulator's conclusions may depend on which.
//!
//! This module discharges that obligation the same way the rest of the
//! crate discharges the paper's: by bounded exhaustive perturbation.  The
//! engine's tie-break is pluggable ([`sched_sim::OrderingPolicy`]), so the
//! ordering policy doubles as a verification mode — [`OrderingPolicy::Seeded`]
//! re-runs the identical scenario under a seeded pseudo-random permutation
//! of every same-time group.  [`check_ordering_independence`] sweeps a set
//! of such permutations and demands the priority-ordered baseline's
//! outcome from each: same completion and the same number of operations
//! retired (the simulator-level restatement of choice-irrelevance plus
//! conservation of work).  A violation names the seed that produced it, so
//! a red sweep is replayable, not anecdotal.

use sched_sim::{EventEngine, OrderingPolicy, SimConfig, SimScheduler};
use sched_topology::MachineTopology;
use sched_workloads::Workload;

/// One ordering under which the engine's outcome diverged.
#[derive(Debug, Clone)]
pub struct OrderingViolation {
    /// Seed of the [`OrderingPolicy::Seeded`] permutation.
    pub order_seed: u64,
    /// What diverged from the priority-ordered baseline.
    pub detail: String,
}

impl std::fmt::Display for OrderingViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "order {}: {}", self.order_seed, self.detail)
    }
}

/// The outcome of one ordering sweep.
#[derive(Debug, Clone, Default)]
pub struct OrderingReport {
    /// Seeded permutations executed (the baseline is not counted).
    pub orders_checked: usize,
    /// Orderings whose outcome diverged from the baseline.
    pub violations: Vec<OrderingViolation>,
}

impl OrderingReport {
    /// `true` when every swept ordering reproduced the baseline outcome.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Sweeps seeded same-time orderings of one scenario on the event engine
/// and checks each against the priority-ordered baseline.
///
/// `make_scheduler` is a factory because each run consumes its scheduler;
/// every run sees a freshly built one, so no balancing state leaks between
/// permutations.  Any `ordering` already set on `config` is overridden —
/// the baseline runs [`OrderingPolicy::Priority`], each sweep iteration
/// [`OrderingPolicy::Seeded`] with one of `order_seeds`.
pub fn check_ordering_independence<F>(
    config: &SimConfig,
    topo: Option<&MachineTopology>,
    workload: &Workload,
    make_scheduler: F,
    order_seeds: &[u64],
) -> OrderingReport
where
    F: Fn() -> Box<dyn SimScheduler>,
{
    let baseline_config = config.clone().with_ordering(OrderingPolicy::Priority);
    let baseline = EventEngine::new(baseline_config, topo, workload, make_scheduler()).run();

    let mut report = OrderingReport::default();
    for &seed in order_seeds {
        let seeded_config = config.clone().with_ordering(OrderingPolicy::Seeded(seed));
        let seeded = EventEngine::new(seeded_config, topo, workload, make_scheduler()).run();
        report.orders_checked += 1;
        if seeded.finished != baseline.finished {
            report.violations.push(OrderingViolation {
                order_seed: seed,
                detail: format!(
                    "finished = {} but the priority-ordered baseline finished = {}",
                    seeded.finished, baseline.finished
                ),
            });
        }
        if seeded.operations != baseline.operations {
            report.violations.push(OrderingViolation {
                order_seed: seed,
                detail: format!(
                    "{} operations completed, baseline completed {}",
                    seeded.operations, baseline.operations
                ),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::Policy;
    use sched_sim::OptimisticScheduler;
    use sched_workloads::{Phase, ThreadSpec};

    /// `loads[i]` independent fixed-length compute tasks pinned to core `i`
    /// — the replay shape every convergence lemma in this crate bounds.
    fn replay_workload(loads: &[usize]) -> Workload {
        let mut workload = Workload::new("ordering lemma replay");
        for (core, &n) in loads.iter().enumerate() {
            for _ in 0..n {
                let mut spec = ThreadSpec::new(vec![Phase::Compute(4_000_000)]);
                spec.origin_core = Some(core);
                workload.push(spec);
            }
        }
        workload
    }

    fn scheduler() -> Box<dyn SimScheduler> {
        Box::new(OptimisticScheduler::new(Policy::simple()))
    }

    #[test]
    fn the_ordering_lemma_holds_on_the_single_hot_core_shape() {
        let workload = replay_workload(&[12, 0, 0, 0]);
        let config = SimConfig::with_cores(4);
        let report = check_ordering_independence(
            &config,
            None,
            &workload,
            scheduler,
            &[1, 2, 3, 0xDEAD_BEEF],
        );
        assert_eq!(report.orders_checked, 4);
        let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
        assert!(report.holds(), "{rendered:#?}");
    }

    #[test]
    fn a_truncating_budget_still_satisfies_the_lemma_vacuously_or_fails_loudly() {
        // Under a budget every ordering stops at exactly the same event
        // count; whether each permutation finishes the same way is exactly
        // what the lemma asks, so the sweep must still be deterministic
        // and clean against its own baseline.
        let workload = replay_workload(&[8, 0]);
        let config = SimConfig::with_cores(2).with_event_budget(10_000);
        let report = check_ordering_independence(&config, None, &workload, scheduler, &[7, 11, 13]);
        assert_eq!(report.orders_checked, 3);
        assert!(report.holds(), "{:#?}", report.violations);
    }
}
