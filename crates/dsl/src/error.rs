//! DSL front-end errors.

/// An error raised while lexing, parsing or checking a policy definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DslError {
    /// The lexer met a character it does not understand.
    UnexpectedCharacter {
        /// The offending character.
        found: char,
        /// Byte offset in the source.
        offset: usize,
    },
    /// The parser expected something else.
    Parse {
        /// What went wrong.
        message: String,
    },
    /// The expression checker rejected the policy.
    Type {
        /// What went wrong.
        message: String,
    },
    /// The phase checker rejected the policy (it would violate the model's
    /// structural constraints, e.g. a zero steal count).
    Phase {
        /// What went wrong.
        message: String,
    },
}

impl DslError {
    /// Convenience constructor for parse errors.
    pub fn parse(message: impl Into<String>) -> Self {
        DslError::Parse { message: message.into() }
    }

    /// Convenience constructor for type errors.
    pub fn type_error(message: impl Into<String>) -> Self {
        DslError::Type { message: message.into() }
    }

    /// Convenience constructor for phase errors.
    pub fn phase(message: impl Into<String>) -> Self {
        DslError::Phase { message: message.into() }
    }
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DslError::UnexpectedCharacter { found, offset } => {
                write!(f, "unexpected character {found:?} at byte {offset}")
            }
            DslError::Parse { message } => write!(f, "parse error: {message}"),
            DslError::Type { message } => write!(f, "type error: {message}"),
            DslError::Phase { message } => write!(f, "phase error: {message}"),
        }
    }
}

impl std::error::Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_variant() {
        assert!(DslError::UnexpectedCharacter { found: '@', offset: 3 }
            .to_string()
            .contains("'@'"));
        assert!(DslError::parse("x").to_string().contains("parse"));
        assert!(DslError::type_error("x").to_string().contains("type"));
        assert!(DslError::phase("x").to_string().contains("phase"));
    }
}
