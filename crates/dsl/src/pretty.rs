//! Pretty-printer: turning a [`PolicyDef`] back into DSL source.
//!
//! The printer and the parser form a round-trip pair
//! (`parse(print(def)) == def`), which keeps generated policies (e.g. ones
//! assembled programmatically by tooling) storable in the same textual
//! format that humans write.

use crate::ast::{ChooseRule, Expr, LoadSpec, MetricSpec, PolicyDef};

/// Renders a policy definition as canonical DSL source.
pub fn print_policy(def: &PolicyDef) -> String {
    let metric = match def.metric {
        MetricSpec::Threads => "threads",
        MetricSpec::Weighted => "weighted",
    };
    let load = match def.load {
        None => String::new(),
        Some(LoadSpec::NrThreads) => "    load   nr_threads;\n".into(),
        Some(LoadSpec::Weighted) => "    load   weighted;\n".into(),
        Some(LoadSpec::Pelt { half_life_ms }) => {
            format!("    load   pelt({half_life_ms});\n")
        }
    };
    let choose = match &def.choose {
        ChooseRule::First => "first".to_string(),
        ChooseRule::MaxBy(key) => format!("max {}", print_expr(key)),
        ChooseRule::MinBy(key) => format!("min {}", print_expr(key)),
    };
    format!(
        "policy {name} {{\n    metric {metric};\n{load}    filter = {filter};\n    choose = {choose};\n    steal  = {steal};\n}}\n",
        name = def.name,
        metric = metric,
        load = load,
        filter = print_expr(&def.filter),
        choose = choose,
        steal = def.steal_count,
    )
}

/// Renders an expression without redundant outer parentheses.
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Binary(op, lhs, rhs) => {
            format!("{} {} {}", print_operand(lhs), op.symbol(), print_operand(rhs))
        }
        other => print_operand(other),
    }
}

fn print_operand(expr: &Expr) -> String {
    match expr {
        Expr::Int(v) => v.to_string(),
        Expr::Field(actor, field) => format!("{actor}.{field}"),
        Expr::Binary(op, lhs, rhs) => {
            format!("({} {} {})", print_operand(lhs), op.symbol(), print_operand(rhs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::stdlib;
    use proptest::prelude::*;

    #[test]
    fn printing_listing1_round_trips() {
        let def = parse(stdlib::LISTING1).unwrap();
        let printed = print_policy(&def);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(def, reparsed, "printed source:\n{printed}");
    }

    #[test]
    fn every_stdlib_policy_round_trips() {
        for (name, source) in stdlib::all() {
            let def = parse(source).unwrap();
            let printed = print_policy(&def);
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("{name} failed to re-parse: {e}\n{printed}"));
            assert_eq!(def, reparsed, "{name} did not round-trip");
        }
    }

    #[test]
    fn pelt_policies_round_trip_through_the_printer() {
        let def = parse(stdlib::PELT).unwrap();
        let printed = print_policy(&def);
        assert!(printed.contains("load   pelt(8);"), "printed:\n{printed}");
        assert_eq!(parse(&printed).unwrap(), def);
    }

    #[test]
    fn printed_source_is_human_shaped() {
        let def = parse(stdlib::WEIGHTED).unwrap();
        let printed = print_policy(&def);
        assert!(printed.starts_with("policy weighted {"));
        assert!(printed.contains("metric weighted;"));
        assert!(printed.contains("steal  = 1;"));
        assert!(printed.ends_with("}\n"));
    }

    fn arb_simple_filter() -> impl Strategy<Value = String> {
        // Generate small filters of the shape the DSL is used for and check
        // the parse → print → parse loop is the identity.
        (1i64..6, prop_oneof![Just(">="), Just(">"), Just("==")])
            .prop_map(|(threshold, op)| format!("victim.load - self.load {op} {threshold}"))
    }

    proptest! {
        #[test]
        fn random_delta_filters_round_trip(filter in arb_simple_filter(), steal in 1u32..4) {
            let source = format!(
                "policy generated {{ metric threads; filter = {filter}; choose = max victim.load; steal = {steal}; }}"
            );
            let def = parse(&source).unwrap();
            let reparsed = parse(&print_policy(&def)).unwrap();
            prop_assert_eq!(def, reparsed);
        }
    }
}
