//! Structural phase checks.
//!
//! The abstractions constrain each step of a balancing round (§3.1):
//!
//! * the selection phase (filter + choose) "may not modify runqueues, and
//!   all accesses to shared variables must be read-only" — in the DSL this
//!   is true by construction (there is no write expression), and the phase
//!   checker asserts it as an invariant over the AST;
//! * the stealing phase must migrate at least one thread when it succeeds,
//!   so a zero steal count is rejected;
//! * a filter that never looks at the victim can never be sound, so it is
//!   rejected outright.
//!
//! The checker additionally produces *warnings* for policies that are
//! accepted but known-dangerous, the prime example being a filter that
//! ignores `self` — exactly the §4.3 greedy counterexample, which is sound
//! sequentially but not work-conserving under concurrency.

use crate::ast::{Actor, ChooseRule, PolicyDef};
use crate::error::DslError;

/// Non-fatal observations about a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseWarning {
    /// Human-readable description of the concern.
    pub message: String,
}

/// Checks the structural constraints, returning warnings on success.
pub fn phase_check(policy: &PolicyDef) -> Result<Vec<PhaseWarning>, DslError> {
    if policy.steal_count == 0 {
        return Err(DslError::phase("the stealing phase must migrate at least one thread"));
    }
    if !policy.filter.references(Actor::Victim) {
        return Err(DslError::phase(
            "the filter never inspects the victim, so it cannot distinguish overloaded cores",
        ));
    }

    let mut warnings = Vec::new();
    if !policy.filter.references(Actor::SelfCore) {
        warnings.push(PhaseWarning {
            message: format!(
                "the filter of `{}` ignores `self`: like the §4.3 greedy filter it may admit \
                 thread ping-pong and fail work conservation under concurrency — run the verifier",
                policy.name
            ),
        });
    }
    match &policy.choose {
        ChooseRule::MaxBy(key) | ChooseRule::MinBy(key) => {
            if !key.references(Actor::Victim) {
                warnings.push(PhaseWarning {
                    message: format!(
                        "the choose key of `{}` does not depend on the victim, so it degenerates to `first`",
                        policy.name
                    ),
                });
            }
        }
        ChooseRule::First => {}
    }
    Ok(warnings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn listing1_passes_with_no_warnings() {
        let p =
            parse("policy p { filter = victim.load - self.load >= 2; choose = max victim.load; }")
                .unwrap();
        assert_eq!(phase_check(&p).unwrap(), vec![]);
    }

    #[test]
    fn greedy_filter_is_accepted_with_a_pingpong_warning() {
        let p = parse("policy greedy { filter = victim.load >= 2; }").unwrap();
        let warnings = phase_check(&p).unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].message.contains("ping-pong"));
    }

    #[test]
    fn victim_free_filter_is_rejected() {
        let p = parse("policy broken { filter = self.load >= 2; }").unwrap();
        assert!(phase_check(&p).is_err());
    }

    #[test]
    fn constant_choose_key_warns() {
        let p =
            parse("policy p { filter = victim.load - self.load >= 2; choose = max self.load; }")
                .unwrap();
        let warnings = phase_check(&p).unwrap();
        assert!(warnings.iter().any(|w| w.message.contains("degenerates")));
    }
}
