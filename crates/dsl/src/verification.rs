//! The verification backend — the analogue of the paper's "compiled […] to
//! Scala code that is verified by the Leon toolkit".
//!
//! A DSL policy is compiled with [`crate::eval::compile`] and handed to the
//! `sched-verify` lemma suite; the result is the same [`VerificationReport`]
//! the hand-written policies get, so "write the policy once, get both an
//! executable scheduler and a verification verdict" holds end to end.

use sched_core::Balancer;
use sched_verify::{verify_policy, Scope, VerificationReport};

use crate::ast::PolicyDef;
use crate::error::DslError;
use crate::eval::compile;
use crate::phase_check::PhaseWarning;

/// The combined result of compiling and verifying a DSL policy.
pub struct VerifiedPolicy {
    /// The phase-checker warnings (e.g. the greedy-filter ping-pong hint).
    pub warnings: Vec<PhaseWarning>,
    /// The full lemma-by-lemma verification report.
    pub report: VerificationReport,
}

impl VerifiedPolicy {
    /// Returns `true` if every lemma held and every execution converged.
    pub fn is_work_conserving(&self) -> bool {
        self.report.is_work_conserving()
    }
}

/// Compiles `def` and runs the complete lemma suite over `scope`.
pub fn verify_definition(def: &PolicyDef, scope: &Scope) -> Result<VerifiedPolicy, DslError> {
    let compiled = compile(def)?;
    let balancer = Balancer::new(compiled.policy);
    let report = verify_policy(&balancer, scope, false);
    Ok(VerifiedPolicy { warnings: compiled.warnings, report })
}

/// Parses, compiles and verifies DSL source in one step.
pub fn verify_source(source: &str, scope: &Scope) -> Result<VerifiedPolicy, DslError> {
    let def = crate::parser::parse(source)?;
    verify_definition(&def, scope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stdlib;

    #[test]
    fn the_dsl_listing1_policy_verifies() {
        let verified = verify_source(stdlib::LISTING1, &Scope::small()).unwrap();
        assert!(verified.is_work_conserving(), "{}", verified.report);
        assert!(verified.warnings.is_empty());
    }

    #[test]
    fn the_dsl_greedy_policy_is_refuted() {
        let verified = verify_source(stdlib::GREEDY, &Scope::small()).unwrap();
        assert!(!verified.is_work_conserving(), "{}", verified.report);
        assert!(!verified.warnings.is_empty(), "the phase checker should have warned");
        assert!(verified.report.convergence.is_err(), "the ping-pong must be found");
    }

    #[test]
    fn syntax_errors_propagate() {
        assert!(verify_source("policy broken {", &Scope::small()).is_err());
    }
}
