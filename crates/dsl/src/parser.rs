//! Recursive-descent parser for the policy DSL.

use crate::ast::{Actor, BinOp, ChooseRule, Expr, Field, LoadSpec, MetricSpec, PolicyDef};
use crate::error::DslError;
use crate::lexer::{lex, Token};

/// Parses one policy definition from DSL source.
///
/// # Examples
///
/// ```
/// let policy = sched_dsl::parser::parse(
///     "policy listing1 {\n\
///          metric threads;\n\
///          filter = victim.load - self.load >= 2;\n\
///          choose = max victim.load;\n\
///          steal  = 1;\n\
///      }",
/// )
/// .unwrap();
/// assert_eq!(policy.name, "listing1");
/// ```
pub fn parse(source: &str) -> Result<PolicyDef, DslError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.policy()
}

/// Shared cursor over the token stream.  `pub(crate)` so the scenario
/// document parser in [`crate::doc`] can reuse the policy grammar (and its
/// expression precedence) for inline `policy <name> { … }` blocks.
pub(crate) struct Parser {
    pub(crate) tokens: Vec<Token>,
    pub(crate) pos: usize,
}

impl Parser {
    pub(crate) fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    pub(crate) fn next(&mut self) -> Result<Token, DslError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| DslError::parse("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    pub(crate) fn expect(&mut self, expected: Token) -> Result<(), DslError> {
        let got = self.next()?;
        if got == expected {
            Ok(())
        } else {
            Err(DslError::parse(format!("expected {expected:?}, found {got:?}")))
        }
    }

    pub(crate) fn expect_ident(&mut self) -> Result<String, DslError> {
        match self.next()? {
            Token::Ident(name) => Ok(name),
            other => Err(DslError::parse(format!("expected an identifier, found {other:?}"))),
        }
    }

    pub(crate) fn expect_keyword(&mut self, keyword: &str) -> Result<(), DslError> {
        let name = self.expect_ident()?;
        if name == keyword {
            Ok(())
        } else {
            Err(DslError::parse(format!("expected keyword `{keyword}`, found `{name}`")))
        }
    }

    fn policy(&mut self) -> Result<PolicyDef, DslError> {
        self.expect_keyword("policy")?;
        let name = self.expect_ident()?;
        self.policy_body(name)
    }

    /// Parses a policy body (`{ metric …; filter = …; }`) once the header
    /// (`policy <name>`) has already been consumed.  The document grammar
    /// enters here for inline policies.
    pub(crate) fn policy_body(&mut self, name: String) -> Result<PolicyDef, DslError> {
        self.expect(Token::LBrace)?;

        let mut metric = None;
        let mut load = None;
        let mut filter = None;
        let mut choose = None;
        let mut steal = None;

        while self.peek() != Some(&Token::RBrace) {
            let keyword = self.expect_ident()?;
            match keyword.as_str() {
                "metric" => {
                    let which = self.expect_ident()?;
                    metric = Some(match which.as_str() {
                        "threads" => MetricSpec::Threads,
                        "weighted" => MetricSpec::Weighted,
                        other => {
                            return Err(DslError::parse(format!(
                                "unknown metric `{other}` (expected `threads` or `weighted`)"
                            )))
                        }
                    });
                }
                "load" => {
                    let which = self.expect_ident()?;
                    load = Some(match which.as_str() {
                        "nr_threads" => LoadSpec::NrThreads,
                        "weighted" => LoadSpec::Weighted,
                        "pelt" => {
                            self.expect(Token::LParen)?;
                            let half_life = match self.next()? {
                                Token::Int(v) if v > 0 && v <= u32::MAX as i64 => v as u32,
                                Token::Int(v) => {
                                    return Err(DslError::parse(format!(
                                        "pelt half-life must be a positive number of \
                                         milliseconds, got {v}"
                                    )))
                                }
                                other => {
                                    return Err(DslError::parse(format!(
                                        "expected a half-life in milliseconds, found {other:?}"
                                    )))
                                }
                            };
                            self.expect(Token::RParen)?;
                            LoadSpec::Pelt { half_life_ms: half_life }
                        }
                        other => {
                            return Err(DslError::parse(format!(
                                "unknown load criterion `{other}` (expected `nr_threads`, \
                                 `weighted` or `pelt(<half-life ms>)`)"
                            )))
                        }
                    });
                }
                "filter" => {
                    self.expect(Token::Assign)?;
                    filter = Some(self.expr()?);
                }
                "choose" => {
                    self.expect(Token::Assign)?;
                    choose = Some(self.choose_rule()?);
                }
                "steal" => {
                    self.expect(Token::Assign)?;
                    match self.next()? {
                        Token::Int(v) if v > 0 => steal = Some(v as u32),
                        Token::Int(v) => {
                            return Err(DslError::parse(format!(
                                "steal count must be positive, got {v}"
                            )))
                        }
                        other => {
                            return Err(DslError::parse(format!(
                                "expected an integer steal count, found {other:?}"
                            )))
                        }
                    }
                }
                other => return Err(DslError::parse(format!("unknown clause `{other}`"))),
            }
            self.expect(Token::Semi)?;
        }
        self.expect(Token::RBrace)?;

        // `load nr_threads` / `load weighted` are aliases for the metric
        // clause; only the decayed criterion stays in the `load` slot.  An
        // alias that contradicts an explicit `metric` clause is rejected —
        // silently letting one win would turn the policy's thresholds into
        // comparisons against the wrong units.
        let alias = match load {
            Some(LoadSpec::NrThreads) => Some(MetricSpec::Threads),
            Some(LoadSpec::Weighted) => Some(MetricSpec::Weighted),
            _ => None,
        };
        let metric = match (metric, alias) {
            (Some(m), Some(a)) if m != a => {
                return Err(DslError::parse(format!(
                    "conflicting criteria: `metric {}` vs `load {}`",
                    match m {
                        MetricSpec::Threads => "threads",
                        MetricSpec::Weighted => "weighted",
                    },
                    match a {
                        MetricSpec::Threads => "nr_threads",
                        MetricSpec::Weighted => "weighted",
                    },
                )))
            }
            (m, a) => m.or(a),
        };
        let load = match load {
            Some(LoadSpec::Pelt { half_life_ms }) => Some(LoadSpec::Pelt { half_life_ms }),
            _ => None,
        };

        Ok(PolicyDef {
            name,
            metric: metric.unwrap_or(MetricSpec::Threads),
            load,
            filter: filter.ok_or_else(|| DslError::parse("a policy needs a `filter` clause"))?,
            choose: choose.unwrap_or(ChooseRule::First),
            steal_count: steal.unwrap_or(1),
        })
    }

    fn choose_rule(&mut self) -> Result<ChooseRule, DslError> {
        let keyword = self.expect_ident()?;
        match keyword.as_str() {
            "first" => Ok(ChooseRule::First),
            "max" => Ok(ChooseRule::MaxBy(self.expr()?)),
            "min" => Ok(ChooseRule::MinBy(self.expr()?)),
            other => Err(DslError::parse(format!(
                "unknown choose rule `{other}` (expected `first`, `max <expr>` or `min <expr>`)"
            ))),
        }
    }

    // Precedence climbing: ||  <  &&  <  comparisons  <  + -  <  *  <  atoms.
    fn expr(&mut self) -> Result<Expr, DslError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Token::OrOr) {
            self.next()?;
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.next()?;
            let rhs = self.cmp_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, DslError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Ge) => BinOp::Ge,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::EqEq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.next()?;
        let rhs = self.add_expr()?;
        Ok(Expr::binary(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next()?;
            let rhs = self.mul_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.atom()?;
        while self.peek() == Some(&Token::Star) {
            self.next()?;
            let rhs = self.atom()?;
            lhs = Expr::binary(BinOp::Mul, lhs, rhs);
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<Expr, DslError> {
        match self.next()? {
            Token::Int(v) => Ok(Expr::Int(v)),
            Token::LParen => {
                let inner = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            Token::Ident(name) => {
                let actor = match name.as_str() {
                    "self" => Actor::SelfCore,
                    "victim" | "stealee" => Actor::Victim,
                    other => {
                        return Err(DslError::parse(format!(
                            "unknown identifier `{other}` (expected `self` or `victim`)"
                        )))
                    }
                };
                self.expect(Token::Dot)?;
                let field = match self.expect_ident()?.as_str() {
                    "load" => Field::Load,
                    "nr_threads" => Field::NrThreads,
                    "weighted_load" => Field::WeightedLoad,
                    "lightest_ready" => Field::LightestReady,
                    "tracked_load" => Field::TrackedLoad,
                    other => return Err(DslError::parse(format!("unknown field `.{other}`"))),
                };
                Ok(Expr::Field(actor, field))
            }
            other => Err(DslError::parse(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_listing1_policy() {
        let p = parse(
            "policy listing1 { metric threads; filter = victim.load - self.load >= 2; choose = max victim.load; steal = 1; }",
        )
        .unwrap();
        assert_eq!(p.name, "listing1");
        assert_eq!(p.metric, MetricSpec::Threads);
        assert_eq!(p.steal_count, 1);
        assert!(matches!(p.choose, ChooseRule::MaxBy(_)));
        assert_eq!(p.filter.to_source(), "((victim.load - self.load) >= 2)");
    }

    #[test]
    fn parses_the_greedy_counterexample_with_stealee_alias() {
        let p = parse("policy greedy { filter = stealee.load >= 2; }").unwrap();
        assert!(p.filter.references(Actor::Victim));
        assert!(!p.filter.references(Actor::SelfCore));
        assert_eq!(p.choose, ChooseRule::First);
    }

    #[test]
    fn parses_boolean_connectives_and_parentheses() {
        let p = parse(
            "policy weighted { metric weighted; filter = victim.nr_threads >= 2 && victim.load > self.load + victim.lightest_ready; choose = min (self.load + victim.load); steal = 2; }",
        )
        .unwrap();
        assert_eq!(p.metric, MetricSpec::Weighted);
        assert_eq!(p.steal_count, 2);
        match &p.filter {
            Expr::Binary(BinOp::And, _, _) => {}
            other => panic!("expected a conjunction, got {other:?}"),
        }
    }

    #[test]
    fn parses_the_load_clause() {
        let p = parse("policy p { load pelt(8); filter = victim.load - self.load >= 2; }").unwrap();
        assert_eq!(p.load, Some(LoadSpec::Pelt { half_life_ms: 8 }));
        assert_eq!(p.metric, MetricSpec::Threads);

        // `load nr_threads` / `load weighted` are metric aliases: they land
        // in the metric slot and leave the load slot empty.
        let p = parse("policy p { load weighted; filter = victim.load >= 2; }").unwrap();
        assert_eq!(p.metric, MetricSpec::Weighted);
        assert_eq!(p.load, None);
        let p = parse("policy p { load nr_threads; filter = victim.load >= 2; }").unwrap();
        assert_eq!(p.metric, MetricSpec::Threads);

        // A pelt criterion composes with an explicit metric: it decays that
        // metric.
        let p = parse(
            "policy p { metric weighted; load pelt(32); filter = victim.load - self.load >= 2048; }",
        )
        .unwrap();
        assert_eq!(p.metric, MetricSpec::Weighted);
        assert_eq!(p.load, Some(LoadSpec::Pelt { half_life_ms: 32 }));
    }

    #[test]
    fn bad_load_clauses_are_rejected() {
        assert!(parse("policy p { load bogus; filter = victim.load >= 2; }").is_err());
        assert!(parse("policy p { load pelt(0); filter = victim.load >= 2; }").is_err());
        assert!(parse("policy p { load pelt; filter = victim.load >= 2; }").is_err());
        assert!(parse("policy p { load pelt(x); filter = victim.load >= 2; }").is_err());
    }

    #[test]
    fn conflicting_metric_and_load_alias_are_rejected() {
        let err =
            parse("policy p { metric weighted; load nr_threads; filter = victim.load >= 2; }")
                .unwrap_err();
        assert!(err.to_string().contains("conflicting"), "{err}");
        let err = parse("policy p { load weighted; metric threads; filter = victim.load >= 2; }")
            .unwrap_err();
        assert!(err.to_string().contains("conflicting"), "{err}");
        // Agreeing spellings are fine in either order.
        assert!(parse("policy p { metric weighted; load weighted; filter = victim.load >= 2; }")
            .is_ok());
    }

    #[test]
    fn missing_filter_is_rejected() {
        let err = parse("policy empty { metric threads; }").unwrap_err();
        assert!(err.to_string().contains("filter"));
    }

    #[test]
    fn bad_clauses_are_rejected() {
        assert!(parse("policy p { filter = nobody.load >= 2; }").is_err());
        assert!(parse("policy p { filter = victim.bogus >= 2; }").is_err());
        assert!(parse("policy p { filter = victim.load >= 2; steal = 0; }").is_err());
        assert!(parse("policy p { frobnicate = 3; filter = victim.load >= 2; }").is_err());
        assert!(parse("policy p { metric bogus; filter = victim.load >= 2; }").is_err());
        assert!(parse("policy p { filter = victim.load >= ; }").is_err());
    }

    #[test]
    fn precedence_binds_arithmetic_tighter_than_comparison() {
        let p = parse("policy p { filter = victim.load >= self.load + 2 * 3; }").unwrap();
        assert_eq!(p.filter.to_source(), "(victim.load >= (self.load + (2 * 3)))");
    }
}
