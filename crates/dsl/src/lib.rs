//! The scheduling-policy DSL.
//!
//! "These abstractions are exposed to kernel developers via a
//! domain-specific language (DSL), which is then compiled to C code that can
//! be integrated as a scheduling class into the Linux kernel, and to Scala
//! code that is verified by the Leon toolkit." (§1)
//!
//! This crate reproduces that architecture with two backends over one
//! front-end:
//!
//! * **front-end** — [`lexer`], [`parser`], [`mod@typecheck`] and
//!   [`mod@phase_check`]: a policy is a `filter` expression, a `choose`
//!   rule, a `steal` count and an optional `load` tracking criterion
//!   (`load pelt(8)` balances a decayed average instead of instantaneous
//!   queue lengths).  The phase checker enforces the §3.1 structural
//!   constraints (the selection phase is read-only by construction, the
//!   steal phase migrates at least one thread) and warns about greedy-style
//!   filters;
//! * **executable backend** — [`eval`] compiles a definition into
//!   `sched-core` policy objects runnable by the balancer, the simulator and
//!   the concurrent runqueues (the "C backend" analogue), and [`codegen`]
//!   emits the equivalent stand-alone Rust source text;
//! * **verification backend** — [`verification`] feeds the compiled policy
//!   to the `sched-verify` lemma suite (the "Leon backend" analogue).
//!
//! [`stdlib`] ships the paper's policies written in the DSL: Listing 1, the
//! §4.3 greedy counterexample, the weighted variant and a batched variant.
//!
//! # Example
//!
//! ```
//! use sched_dsl::{compile_source, stdlib};
//!
//! let compiled = compile_source(stdlib::LISTING1).unwrap();
//! assert_eq!(compiled.def.name, "listing1");
//! assert!(compiled.warnings.is_empty());
//! ```

pub mod ast;
pub mod codegen;
pub mod doc;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod phase_check;
pub mod pretty;
pub mod stdlib;
pub mod typecheck;
pub mod verification;

pub use ast::{Actor, BinOp, ChooseRule, Expr, Field, LoadSpec, MetricSpec, PolicyDef};
pub use codegen::generate_rust;
pub use doc::{
    parse_doc, print_doc, print_scenario, DocBatch, DocDriver, DocInvariant, DocPolicy, DocService,
    DocTopology, ScenarioDoc,
};
pub use error::DslError;
pub use eval::{compile, compile_source, CompiledPolicy};
pub use parser::parse;
pub use phase_check::{phase_check, PhaseWarning};
pub use pretty::{print_expr, print_policy};
pub use typecheck::typecheck;
pub use verification::{verify_definition, verify_source, VerifiedPolicy};
