//! Scenario documents: the declarative experiment file format (`*.scn`).
//!
//! A scenario document turns an experiment into *data*: one file holds one
//! or more `scenario` blocks, each naming a topology, an initial load
//! vector, a balancing policy (either a named recipe or an inline policy
//! program in the same DSL the rest of this crate parses), a **driver**
//! describing how work arrives (replay / workload / burst / storm — the
//! grammar admits exactly one, so the mutually-exclusive combinations the
//! old builder API allowed are unrepresentable), an optional backend
//! matrix, and an `expect` block stating which paper invariants the
//! scenario must uphold.
//!
//! The parser ([`parse_doc`]) and printer ([`print_doc`]) form a
//! round-trip pair (`parse(print(docs)) == docs`), which is what lets
//! tooling — the catalog generator and the scenario fuzzer in
//! `sched-bench` — emit files in the same textual format humans author.
//!
//! ```text
//! scenario "single hot core: Listing 1" {
//!     experiment e2;
//!     topology flat(8);
//!     loads [16, 0, 0, 0, 0, 0, 0, 0];
//!     policy listing1;
//!     driver replay;
//!     budget 128;
//!     expect {
//!         work_conservation;
//!         conservation_of_tasks;
//!         non_inversion;
//!     }
//! }
//! ```

use crate::ast::PolicyDef;
use crate::ast::{ChooseRule, LoadSpec, MetricSpec};
use crate::error::DslError;
use crate::lexer::{lex, Token};
use crate::parser::Parser;
use crate::pretty::print_expr;

/// The machine shape a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocTopology {
    /// A flat machine with `n` identical cores.
    Flat(u64),
    /// The canonical 2-socket × 8-core NUMA box.
    DualSocket,
    /// The 8-node × 8-core box.
    EightNode,
}

/// The balancing policy a scenario uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocPolicy {
    /// A named recipe resolved by the harness (`listing1`, `greedy`,
    /// `pelt_half_life(4)`, …).
    Named {
        /// Recipe name.
        name: String,
        /// Optional integer argument (`pelt_half_life(<ms>)`).
        arg: Option<i64>,
    },
    /// An inline policy program embedded in the document.
    Inline(PolicyDef),
}

/// How work arrives while the balancer runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocDriver {
    /// Replay the initial load vector: spawn `loads`, balance for `budget`
    /// rounds.
    Replay,
    /// Drive the simulator with a named workload generator.
    Workload {
        /// Generator name (`scientific`, `oltp`).
        kind: String,
        /// RNG seed; the harness default for the kind applies when absent.
        seed: Option<u64>,
        /// Service-time jitter in percent; harness default when absent.
        jitter_pct: Option<u32>,
    },
    /// On/off blinker epochs (the PELT probes).
    Burst {
        /// Number of on/off epochs.
        epochs: u64,
        /// Epoch length in nanoseconds.
        epoch_ns: u64,
        /// Tracker warm-up before measurement starts, in nanoseconds.
        warmup_ns: u64,
        /// Blinker RNG seed; harness default when absent.
        seed: Option<u64>,
        /// On/off jitter in percent; harness default when absent.
        jitter_pct: Option<u32>,
    },
    /// Overflow storms: fan-out bursts against tiny rings.
    Storm {
        /// Number of storm epochs.
        epochs: u64,
        /// Tasks spawned per epoch.
        fanout: u64,
        /// Balancing rounds per epoch.
        rounds: u64,
    },
    /// Open-loop request generation against the real executor: Poisson
    /// arrivals at a configured rate, seeded service-time mix, measured
    /// end-to-end latency.
    OpenLoop {
        /// Mean arrival rate, requests per second.
        rate_hz: u64,
        /// Length of the arrival schedule, milliseconds.
        duration_ms: u64,
        /// Per-request service-time distribution.
        service: DocService,
        /// Arrival/service RNG seed; harness default when absent.
        seed: Option<u64>,
    },
}

/// The service-time distribution of an open-loop driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocService {
    /// Every request costs exactly this many nanoseconds.
    Fixed(u64),
    /// Exponentially distributed with the given mean, in nanoseconds.
    Exp(u64),
    /// `pct` percent of requests cost `long_ns`, the rest `short_ns`.
    Bimodal(u64, u64, u64),
}

/// Steal batch size for the runqueue backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocBatch {
    /// Claim up to `k` tasks per acquisition.
    Fixed(i64),
    /// Claim half the observed imbalance.
    Half,
}

/// An invariant the scenario is expected to uphold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocInvariant {
    /// No core ends (or stays) idle while another has waiting work.
    WorkConservation,
    /// No task is lost or duplicated by balancing.
    ConservationOfTasks,
    /// Balancing never makes any core more loaded than the initial maximum.
    NonInversion,
}

impl DocInvariant {
    /// The clause keyword for this invariant.
    pub fn keyword(self) -> &'static str {
        match self {
            DocInvariant::WorkConservation => "work_conservation",
            DocInvariant::ConservationOfTasks => "conservation_of_tasks",
            DocInvariant::NonInversion => "non_inversion",
        }
    }
}

/// One parsed `scenario` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioDoc {
    /// Human-readable scenario name (the `scenario` record column).
    pub name: String,
    /// Experiment this scenario belongs to (`e1` … `e23`).
    pub experiment: String,
    /// Machine shape.
    pub topology: DocTopology,
    /// Initial per-core thread counts; length must match the topology.
    pub loads: Vec<u64>,
    /// Balancing policy.
    pub policy: DocPolicy,
    /// Backend matrix; `None` means "every applicable backend".
    pub backends: Option<Vec<String>>,
    /// Arrival driver.
    pub driver: DocDriver,
    /// Balancing-round budget for replay-shaped drivers.
    pub budget: u64,
    /// Event budget for the simulator backends: both sim engines stop after
    /// this many processed events.  `None` means unbounded.
    pub events: Option<u64>,
    /// Same-time tie-break seed for the event-driven simulator backend
    /// (repro documents emitted by the ordering sweep carry it).
    pub order: Option<u64>,
    /// Steal batch size, if the scenario sweeps batching.
    pub batch: Option<DocBatch>,
    /// Cycle nice values −10/0/10 across spawned threads.
    pub mixed_nice: bool,
    /// Invariants the scenario must uphold.
    pub expect: Vec<DocInvariant>,
}

/// Parses a scenario document: a sequence of one or more `scenario` blocks.
///
/// # Examples
///
/// ```
/// let docs = sched_dsl::doc::parse_doc(
///     "scenario \"probe\" {\n\
///          experiment e1;\n\
///          topology flat(2);\n\
///          loads [3, 0];\n\
///          policy listing1;\n\
///          driver replay;\n\
///          budget 16;\n\
///      }",
/// )
/// .unwrap();
/// assert_eq!(docs.len(), 1);
/// assert_eq!(docs[0].experiment, "e1");
/// ```
pub fn parse_doc(source: &str) -> Result<Vec<ScenarioDoc>, DslError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut docs = Vec::new();
    while parser.peek().is_some() {
        docs.push(scenario(&mut parser)?);
    }
    if docs.is_empty() {
        return Err(DslError::parse("a scenario document needs at least one `scenario` block"));
    }
    Ok(docs)
}

fn scenario(p: &mut Parser) -> Result<ScenarioDoc, DslError> {
    p.expect_keyword("scenario")?;
    let name = match p.next()? {
        Token::Str(s) => s,
        other => {
            return Err(DslError::parse(format!(
                "expected a quoted scenario name, found {other:?}"
            )))
        }
    };
    p.expect(Token::LBrace)?;

    let mut experiment = None;
    let mut topology = None;
    let mut loads = None;
    let mut policy = None;
    let mut backends = None;
    let mut driver = None;
    let mut budget = None;
    let mut events = None;
    let mut order = None;
    let mut batch = None;
    let mut mixed_nice = false;
    let mut expect = None;

    while p.peek() != Some(&Token::RBrace) {
        let keyword = p.expect_ident()?;
        let dup = |slot_taken: bool| {
            if slot_taken {
                Err(DslError::parse(format!("duplicate `{keyword}` clause in scenario `{name}`")))
            } else {
                Ok(())
            }
        };
        match keyword.as_str() {
            "experiment" => {
                dup(experiment.is_some())?;
                experiment = Some(p.expect_ident()?);
                p.expect(Token::Semi)?;
            }
            "topology" => {
                dup(topology.is_some())?;
                topology = Some(topo(p)?);
                p.expect(Token::Semi)?;
            }
            "loads" => {
                dup(loads.is_some())?;
                loads = Some(int_list(p)?);
                p.expect(Token::Semi)?;
            }
            "policy" => {
                dup(policy.is_some())?;
                policy = Some(policy_clause(p)?);
            }
            "backends" => {
                dup(backends.is_some())?;
                backends = Some(backend_list(p)?);
                p.expect(Token::Semi)?;
            }
            "driver" => {
                dup(driver.is_some())?;
                driver = Some(driver_clause(p)?);
            }
            "budget" => {
                dup(budget.is_some())?;
                budget = Some(unsigned(p, "budget")?);
                p.expect(Token::Semi)?;
            }
            "events" => {
                dup(events.is_some())?;
                events = Some(unsigned(p, "events")?);
                p.expect(Token::Semi)?;
            }
            "order" => {
                dup(order.is_some())?;
                order = Some(unsigned(p, "order")?);
                p.expect(Token::Semi)?;
            }
            "batch" => {
                dup(batch.is_some())?;
                batch = Some(match p.next()? {
                    Token::Int(k) if k > 0 => DocBatch::Fixed(k),
                    Token::Ident(word) if word == "half" => DocBatch::Half,
                    other => {
                        return Err(DslError::parse(format!(
                            "expected a positive batch size or `half`, found {other:?}"
                        )))
                    }
                });
                p.expect(Token::Semi)?;
            }
            "mixed_nice" => {
                dup(mixed_nice)?;
                mixed_nice = true;
                p.expect(Token::Semi)?;
            }
            "expect" => {
                dup(expect.is_some())?;
                expect = Some(expect_block(p)?);
            }
            other => {
                return Err(DslError::parse(format!(
                    "unknown scenario clause `{other}` in scenario `{name}`"
                )))
            }
        }
    }
    p.expect(Token::RBrace)?;

    let require =
        |what: &str| DslError::parse(format!("scenario `{name}` needs a `{what}` clause"));
    Ok(ScenarioDoc {
        experiment: experiment.ok_or_else(|| require("experiment"))?,
        topology: topology.ok_or_else(|| require("topology"))?,
        loads: loads.ok_or_else(|| require("loads"))?,
        policy: policy.ok_or_else(|| require("policy"))?,
        backends,
        driver: driver.unwrap_or(DocDriver::Replay),
        budget: budget.unwrap_or(0),
        events,
        order,
        batch,
        mixed_nice,
        expect: expect.unwrap_or_default(),
        name,
    })
}

fn topo(p: &mut Parser) -> Result<DocTopology, DslError> {
    match p.expect_ident()?.as_str() {
        "flat" => {
            p.expect(Token::LParen)?;
            let n = unsigned(p, "core count")?;
            p.expect(Token::RParen)?;
            if n == 0 {
                return Err(DslError::parse("a flat topology needs at least one core"));
            }
            Ok(DocTopology::Flat(n))
        }
        "dual_socket" => Ok(DocTopology::DualSocket),
        "eight_node" => Ok(DocTopology::EightNode),
        other => Err(DslError::parse(format!(
            "unknown topology `{other}` (expected `flat(<cores>)`, `dual_socket` or `eight_node`)"
        ))),
    }
}

fn int_list(p: &mut Parser) -> Result<Vec<u64>, DslError> {
    p.expect(Token::LBracket)?;
    let mut items = Vec::new();
    if p.peek() != Some(&Token::RBracket) {
        loop {
            items.push(unsigned(p, "load")?);
            match p.next()? {
                Token::Comma => continue,
                Token::RBracket => return Ok(items),
                other => {
                    return Err(DslError::parse(format!(
                        "expected `,` or `]` in a load list, found {other:?}"
                    )))
                }
            }
        }
    }
    p.expect(Token::RBracket)?;
    Ok(items)
}

fn backend_list(p: &mut Parser) -> Result<Vec<String>, DslError> {
    p.expect(Token::LBracket)?;
    let mut items = Vec::new();
    if p.peek() != Some(&Token::RBracket) {
        loop {
            match p.next()? {
                Token::Str(s) => items.push(s),
                other => {
                    return Err(DslError::parse(format!(
                        "expected a quoted backend name, found {other:?}"
                    )))
                }
            }
            match p.next()? {
                Token::Comma => continue,
                Token::RBracket => return Ok(items),
                other => {
                    return Err(DslError::parse(format!(
                        "expected `,` or `]` in a backend list, found {other:?}"
                    )))
                }
            }
        }
    }
    p.expect(Token::RBracket)?;
    Ok(items)
}

fn policy_clause(p: &mut Parser) -> Result<DocPolicy, DslError> {
    let name = p.expect_ident()?;
    match p.peek() {
        // `policy <name> { … }` — an inline policy program; the brace block
        // is the same grammar `sched_dsl::parse` accepts after the header.
        Some(Token::LBrace) => Ok(DocPolicy::Inline(p.policy_body(name)?)),
        Some(Token::LParen) => {
            p.next()?;
            let arg = match p.next()? {
                Token::Int(v) => v,
                other => {
                    return Err(DslError::parse(format!(
                        "expected an integer policy argument, found {other:?}"
                    )))
                }
            };
            p.expect(Token::RParen)?;
            p.expect(Token::Semi)?;
            Ok(DocPolicy::Named { name, arg: Some(arg) })
        }
        _ => {
            p.expect(Token::Semi)?;
            Ok(DocPolicy::Named { name, arg: None })
        }
    }
}

fn driver_clause(p: &mut Parser) -> Result<DocDriver, DslError> {
    match p.expect_ident()?.as_str() {
        "replay" => {
            p.expect(Token::Semi)?;
            Ok(DocDriver::Replay)
        }
        "workload" => {
            let kind = p.expect_ident()?;
            let (mut seed, mut jitter_pct) = (None, None);
            if p.peek() == Some(&Token::Semi) {
                p.next()?;
            } else {
                block(p, "workload", |p, key| match key {
                    "seed" => set_once(&mut seed, unsigned(p, "seed")?, key),
                    "jitter_pct" => set_once(&mut jitter_pct, percent(p)?, key),
                    other => Err(DslError::parse(format!("unknown workload clause `{other}`"))),
                })?;
            }
            Ok(DocDriver::Workload { kind, seed, jitter_pct })
        }
        "burst" => {
            let (mut epochs, mut epoch_ns, mut warmup_ns) = (None, None, None);
            let (mut seed, mut jitter_pct) = (None, None);
            block(p, "burst", |p, key| match key {
                "epochs" => set_once(&mut epochs, unsigned(p, key)?, key),
                "epoch_ns" => set_once(&mut epoch_ns, unsigned(p, key)?, key),
                "warmup_ns" => set_once(&mut warmup_ns, unsigned(p, key)?, key),
                "seed" => set_once(&mut seed, unsigned(p, key)?, key),
                "jitter_pct" => set_once(&mut jitter_pct, percent(p)?, key),
                other => Err(DslError::parse(format!("unknown burst clause `{other}`"))),
            })?;
            let need = |what: &str| DslError::parse(format!("a burst driver needs `{what}`"));
            Ok(DocDriver::Burst {
                epochs: epochs.ok_or_else(|| need("epochs"))?,
                epoch_ns: epoch_ns.ok_or_else(|| need("epoch_ns"))?,
                warmup_ns: warmup_ns.ok_or_else(|| need("warmup_ns"))?,
                seed,
                jitter_pct,
            })
        }
        "storm" => {
            let (mut epochs, mut fanout, mut rounds) = (None, None, None);
            block(p, "storm", |p, key| match key {
                "epochs" => set_once(&mut epochs, unsigned(p, key)?, key),
                "fanout" => set_once(&mut fanout, unsigned(p, key)?, key),
                "rounds" => set_once(&mut rounds, unsigned(p, key)?, key),
                other => Err(DslError::parse(format!("unknown storm clause `{other}`"))),
            })?;
            let need = |what: &str| DslError::parse(format!("a storm driver needs `{what}`"));
            Ok(DocDriver::Storm {
                epochs: epochs.ok_or_else(|| need("epochs"))?,
                fanout: fanout.ok_or_else(|| need("fanout"))?,
                rounds: rounds.ok_or_else(|| need("rounds"))?,
            })
        }
        "openloop" => {
            let (mut rate_hz, mut duration_ms) = (None, None);
            let (mut service, mut seed) = (None, None);
            block(p, "openloop", |p, key| match key {
                "rate_hz" => set_once(&mut rate_hz, unsigned(p, key)?, key),
                "duration_ms" => set_once(&mut duration_ms, unsigned(p, key)?, key),
                "service" => set_once(&mut service, service_clause(p)?, key),
                "seed" => set_once(&mut seed, unsigned(p, key)?, key),
                other => Err(DslError::parse(format!("unknown openloop clause `{other}`"))),
            })?;
            let need = |what: &str| DslError::parse(format!("an openloop driver needs `{what}`"));
            Ok(DocDriver::OpenLoop {
                rate_hz: rate_hz.ok_or_else(|| need("rate_hz"))?,
                duration_ms: duration_ms.ok_or_else(|| need("duration_ms"))?,
                service: service.ok_or_else(|| need("service"))?,
                seed,
            })
        }
        other => Err(DslError::parse(format!(
            "unknown driver `{other}` (expected `replay`, `workload`, `burst`, `storm` or `openloop`)"
        ))),
    }
}

/// Parses a `service fixed(NS) | exp(NS) | bimodal(SHORT, LONG, PCT)`
/// distribution (the clause's trailing `;` belongs to the enclosing block).
fn service_clause(p: &mut Parser) -> Result<DocService, DslError> {
    let kind = p.expect_ident()?;
    p.expect(Token::LParen)?;
    let mut args = vec![unsigned(p, "service argument")?];
    while p.peek() == Some(&Token::Comma) {
        p.next()?;
        args.push(unsigned(p, "service argument")?);
    }
    p.expect(Token::RParen)?;
    match (kind.as_str(), args.as_slice()) {
        ("fixed", [ns]) => Ok(DocService::Fixed(*ns)),
        ("exp", [mean_ns]) => Ok(DocService::Exp(*mean_ns)),
        ("bimodal", [short_ns, long_ns, pct]) if *pct <= 100 => {
            Ok(DocService::Bimodal(*short_ns, *long_ns, *pct))
        }
        ("bimodal", [_, _, pct]) => {
            Err(DslError::parse(format!("bimodal percentage must be 0–100, got {pct}")))
        }
        ("fixed" | "exp" | "bimodal", args) => Err(DslError::parse(format!(
            "wrong number of `{kind}` service arguments ({})",
            args.len()
        ))),
        (other, _) => Err(DslError::parse(format!(
            "unknown service mix `{other}` (expected `fixed`, `exp` or `bimodal`)"
        ))),
    }
}

/// Parses a `{ key value; … }` block, dispatching each key to `clause`.
fn block(
    p: &mut Parser,
    what: &str,
    mut clause: impl FnMut(&mut Parser, &str) -> Result<(), DslError>,
) -> Result<(), DslError> {
    p.expect(Token::LBrace)?;
    while p.peek() != Some(&Token::RBrace) {
        let key = p.expect_ident()?;
        clause(p, &key).map_err(|e| DslError::parse(format!("in `{what}` block: {e}")))?;
        p.expect(Token::Semi)?;
    }
    p.expect(Token::RBrace)?;
    Ok(())
}

fn set_once<T>(slot: &mut Option<T>, value: T, key: &str) -> Result<(), DslError> {
    if slot.is_some() {
        return Err(DslError::parse(format!("duplicate `{key}`")));
    }
    *slot = Some(value);
    Ok(())
}

fn unsigned(p: &mut Parser, what: &str) -> Result<u64, DslError> {
    match p.next()? {
        Token::Int(v) if v >= 0 => Ok(v as u64),
        Token::Int(v) => Err(DslError::parse(format!("{what} must be non-negative, got {v}"))),
        other => Err(DslError::parse(format!("expected an integer {what}, found {other:?}"))),
    }
}

fn percent(p: &mut Parser) -> Result<u32, DslError> {
    match p.next()? {
        Token::Int(v) if (0..=100).contains(&v) => Ok(v as u32),
        Token::Int(v) => Err(DslError::parse(format!("jitter_pct must be 0–100, got {v}"))),
        other => Err(DslError::parse(format!("expected a jitter percentage, found {other:?}"))),
    }
}

fn expect_block(p: &mut Parser) -> Result<Vec<DocInvariant>, DslError> {
    let mut invariants = Vec::new();
    block(p, "expect", |_, key| {
        let inv = match key {
            "work_conservation" => DocInvariant::WorkConservation,
            "conservation_of_tasks" => DocInvariant::ConservationOfTasks,
            "non_inversion" => DocInvariant::NonInversion,
            other => return Err(DslError::parse(format!("unknown invariant `{other}`"))),
        };
        if invariants.contains(&inv) {
            return Err(DslError::parse(format!("duplicate invariant `{key}`")));
        }
        invariants.push(inv);
        Ok(())
    })?;
    Ok(invariants)
}

/// Renders a whole document (blank line between scenarios).
pub fn print_doc(docs: &[ScenarioDoc]) -> String {
    docs.iter().map(print_scenario).collect::<Vec<_>>().join("\n")
}

/// Renders one scenario block as canonical source.
///
/// Forms a round-trip pair with [`parse_doc`]:
/// `parse_doc(&print_scenario(&doc)) == vec![doc]`.
pub fn print_scenario(doc: &ScenarioDoc) -> String {
    let mut out = String::new();
    out.push_str(&format!("scenario \"{}\" {{\n", escape(&doc.name)));
    out.push_str(&format!("    experiment {};\n", doc.experiment));
    out.push_str(&format!(
        "    topology {};\n",
        match doc.topology {
            DocTopology::Flat(n) => format!("flat({n})"),
            DocTopology::DualSocket => "dual_socket".into(),
            DocTopology::EightNode => "eight_node".into(),
        }
    ));
    let loads: Vec<String> = doc.loads.iter().map(u64::to_string).collect();
    out.push_str(&format!("    loads [{}];\n", loads.join(", ")));
    match &doc.policy {
        DocPolicy::Named { name, arg: None } => out.push_str(&format!("    policy {name};\n")),
        DocPolicy::Named { name, arg: Some(v) } => {
            out.push_str(&format!("    policy {name}({v});\n"))
        }
        DocPolicy::Inline(def) => out.push_str(&print_inline_policy(def)),
    }
    if let Some(backends) = &doc.backends {
        let quoted: Vec<String> = backends.iter().map(|b| format!("\"{}\"", escape(b))).collect();
        out.push_str(&format!("    backends [{}];\n", quoted.join(", ")));
    }
    out.push_str(&print_driver(&doc.driver));
    out.push_str(&format!("    budget {};\n", doc.budget));
    if let Some(events) = doc.events {
        out.push_str(&format!("    events {events};\n"));
    }
    if let Some(order) = doc.order {
        out.push_str(&format!("    order {order};\n"));
    }
    match doc.batch {
        None => {}
        Some(DocBatch::Fixed(k)) => out.push_str(&format!("    batch {k};\n")),
        Some(DocBatch::Half) => out.push_str("    batch half;\n"),
    }
    if doc.mixed_nice {
        out.push_str("    mixed_nice;\n");
    }
    if !doc.expect.is_empty() {
        out.push_str("    expect {\n");
        for inv in &doc.expect {
            out.push_str(&format!("        {};\n", inv.keyword()));
        }
        out.push_str("    }\n");
    }
    out.push_str("}\n");
    out
}

fn print_driver(driver: &DocDriver) -> String {
    match driver {
        DocDriver::Replay => "    driver replay;\n".into(),
        DocDriver::Workload { kind, seed: None, jitter_pct: None } => {
            format!("    driver workload {kind};\n")
        }
        DocDriver::Workload { kind, seed, jitter_pct } => {
            let mut s = format!("    driver workload {kind} {{\n");
            if let Some(seed) = seed {
                s.push_str(&format!("        seed {seed};\n"));
            }
            if let Some(j) = jitter_pct {
                s.push_str(&format!("        jitter_pct {j};\n"));
            }
            s.push_str("    }\n");
            s
        }
        DocDriver::Burst { epochs, epoch_ns, warmup_ns, seed, jitter_pct } => {
            let mut s = "    driver burst {\n".to_string();
            s.push_str(&format!("        epochs {epochs};\n"));
            s.push_str(&format!("        epoch_ns {epoch_ns};\n"));
            s.push_str(&format!("        warmup_ns {warmup_ns};\n"));
            if let Some(seed) = seed {
                s.push_str(&format!("        seed {seed};\n"));
            }
            if let Some(j) = jitter_pct {
                s.push_str(&format!("        jitter_pct {j};\n"));
            }
            s.push_str("    }\n");
            s
        }
        DocDriver::Storm { epochs, fanout, rounds } => format!(
            "    driver storm {{\n        epochs {epochs};\n        fanout {fanout};\n        rounds {rounds};\n    }}\n"
        ),
        DocDriver::OpenLoop { rate_hz, duration_ms, service, seed } => {
            let mut s = "    driver openloop {\n".to_string();
            s.push_str(&format!("        rate_hz {rate_hz};\n"));
            s.push_str(&format!("        duration_ms {duration_ms};\n"));
            let mix = match service {
                DocService::Fixed(ns) => format!("fixed({ns})"),
                DocService::Exp(mean_ns) => format!("exp({mean_ns})"),
                DocService::Bimodal(short_ns, long_ns, pct) => {
                    format!("bimodal({short_ns}, {long_ns}, {pct})")
                }
            };
            s.push_str(&format!("        service {mix};\n"));
            if let Some(seed) = seed {
                s.push_str(&format!("        seed {seed};\n"));
            }
            s.push_str("    }\n");
            s
        }
    }
}

/// Renders an inline policy at scenario indent, mirroring
/// [`crate::pretty::print_policy`]'s clause layout.
fn print_inline_policy(def: &PolicyDef) -> String {
    let mut s = format!("    policy {} {{\n", def.name);
    s.push_str(&format!(
        "        metric {};\n",
        match def.metric {
            MetricSpec::Threads => "threads",
            MetricSpec::Weighted => "weighted",
        }
    ));
    if let Some(LoadSpec::Pelt { half_life_ms }) = def.load {
        s.push_str(&format!("        load   pelt({half_life_ms});\n"));
    }
    s.push_str(&format!("        filter = {};\n", print_expr(&def.filter)));
    let choose = match &def.choose {
        ChooseRule::First => "first".to_string(),
        ChooseRule::MaxBy(key) => format!("max {}", print_expr(key)),
        ChooseRule::MinBy(key) => format!("min {}", print_expr(key)),
    };
    s.push_str(&format!("        choose = {choose};\n"));
    s.push_str(&format!("        steal  = {};\n", def.steal_count));
    s.push_str("    }\n");
    s
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn replay_doc() -> ScenarioDoc {
        ScenarioDoc {
            name: "single hot core".into(),
            experiment: "e2".into(),
            topology: DocTopology::Flat(8),
            loads: vec![16, 0, 0, 0, 0, 0, 0, 0],
            policy: DocPolicy::Named { name: "listing1".into(), arg: None },
            backends: None,
            driver: DocDriver::Replay,
            budget: 128,
            events: None,
            order: None,
            batch: None,
            mixed_nice: false,
            expect: vec![
                DocInvariant::WorkConservation,
                DocInvariant::ConservationOfTasks,
                DocInvariant::NonInversion,
            ],
        }
    }

    #[test]
    fn replay_scenario_round_trips() {
        let doc = replay_doc();
        let printed = print_scenario(&doc);
        let parsed = parse_doc(&printed).unwrap();
        assert_eq!(parsed, vec![doc], "printed source:\n{printed}");
    }

    #[test]
    fn every_driver_shape_round_trips() {
        let mut burst = replay_doc();
        burst.driver = DocDriver::Burst {
            epochs: 32,
            epoch_ns: 1_000_000,
            warmup_ns: 256_000_000,
            seed: Some(17),
            jitter_pct: Some(40),
        };
        let mut storm = replay_doc();
        storm.driver = DocDriver::Storm { epochs: 16, fanout: 24, rounds: 2 };
        storm.batch = Some(DocBatch::Half);
        storm.budget = 0;
        let mut workload = replay_doc();
        workload.driver =
            DocDriver::Workload { kind: "scientific".into(), seed: Some(42), jitter_pct: Some(5) };
        workload.topology = DocTopology::DualSocket;
        workload.backends = Some(vec!["model".into(), "sim".into(), "rq-deque".into()]);
        workload.mixed_nice = true;
        let mut event = replay_doc();
        event.backends = Some(vec!["sim".into(), "sim-event".into()]);
        event.events = Some(4_000_000);
        event.order = Some(7);
        let docs = vec![replay_doc(), burst, storm, workload, event];
        let printed = print_doc(&docs);
        assert_eq!(parse_doc(&printed).unwrap(), docs, "printed source:\n{printed}");
    }

    #[test]
    fn inline_policies_embed_the_policy_grammar() {
        let source = "scenario \"inline\" {\n\
                          experiment e13;\n\
                          topology flat(4);\n\
                          loads [8, 0, 0, 0];\n\
                          policy listing1 {\n\
                              metric threads;\n\
                              filter = victim.load - self.load >= 2;\n\
                              choose = max victim.load;\n\
                              steal  = 1;\n\
                          }\n\
                          driver replay;\n\
                          budget 64;\n\
                      }";
        let docs = parse_doc(source).unwrap();
        let DocPolicy::Inline(def) = &docs[0].policy else {
            panic!("expected an inline policy, got {:?}", docs[0].policy)
        };
        assert_eq!(def, &crate::parser::parse(crate::stdlib::LISTING1).unwrap());
        let reparsed = parse_doc(&print_scenario(&docs[0])).unwrap();
        assert_eq!(reparsed, docs);
    }

    #[test]
    fn named_policy_arguments_round_trip() {
        let mut doc = replay_doc();
        doc.policy = DocPolicy::Named { name: "pelt_half_life".into(), arg: Some(4) };
        assert_eq!(parse_doc(&print_scenario(&doc)).unwrap(), vec![doc]);
    }

    #[test]
    fn missing_required_clauses_are_rejected() {
        let err =
            parse_doc("scenario \"x\" { topology flat(2); loads [1, 0]; policy p; }").unwrap_err();
        assert!(err.to_string().contains("experiment"), "{err}");
        let err =
            parse_doc("scenario \"x\" { experiment e1; loads [1, 0]; policy p; }").unwrap_err();
        assert!(err.to_string().contains("topology"), "{err}");
        assert!(parse_doc("").is_err());
    }

    #[test]
    fn duplicate_and_unknown_clauses_are_rejected() {
        let base = "experiment e1; topology flat(2); loads [1, 0]; policy p;";
        let err = parse_doc(&format!("scenario \"x\" {{ {base} driver replay; driver storm {{ epochs 1; fanout 2; rounds 1; }} }}"))
            .unwrap_err();
        assert!(err.to_string().contains("duplicate `driver`"), "{err}");
        let err = parse_doc(&format!("scenario \"x\" {{ {base} frobnicate 3; }}")).unwrap_err();
        assert!(err.to_string().contains("unknown scenario clause"), "{err}");
        let err =
            parse_doc(&format!("scenario \"x\" {{ {base} expect {{ conservation_of_mass; }} }}"))
                .unwrap_err();
        assert!(err.to_string().contains("unknown invariant"), "{err}");
    }

    #[test]
    fn incomplete_driver_blocks_are_rejected() {
        let base = "experiment e1; topology flat(2); loads [1, 0]; policy p;";
        let err = parse_doc(&format!(
            "scenario \"x\" {{ {base} driver storm {{ epochs 4; fanout 8; }} }}"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("rounds"), "{err}");
        let err = parse_doc(&format!(
            "scenario \"x\" {{ {base} driver burst {{ epochs 4; epoch_ns 1000; }} }}"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("warmup_ns"), "{err}");
    }

    #[test]
    fn openloop_drivers_parse_and_round_trip() {
        let base = "experiment e26; topology flat(4); loads [0, 0, 0, 0]; policy p;";
        let source = format!(
            "scenario \"ladder\" {{ {base} driver openloop {{ rate_hz 6000; duration_ms 120; \
             service bimodal(2000, 20000, 5); seed 42; }} }}"
        );
        let docs = parse_doc(&source).unwrap();
        assert_eq!(
            docs[0].driver,
            DocDriver::OpenLoop {
                rate_hz: 6000,
                duration_ms: 120,
                service: DocService::Bimodal(2000, 20_000, 5),
                seed: Some(42),
            }
        );
        assert_eq!(parse_doc(&print_scenario(&docs[0])).unwrap(), docs);

        let err = parse_doc(&format!(
            "scenario \"x\" {{ {base} driver openloop {{ rate_hz 100; service fixed(10); }} }}"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("duration_ms"), "{err}");
        let err = parse_doc(&format!(
            "scenario \"x\" {{ {base} driver openloop {{ rate_hz 100; duration_ms 10; \
             service trimodal(1, 2, 3); }} }}"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("unknown service mix"), "{err}");
        let err = parse_doc(&format!(
            "scenario \"x\" {{ {base} driver openloop {{ rate_hz 100; duration_ms 10; \
             service bimodal(1, 2, 150); }} }}"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("0–100"), "{err}");
        let err = parse_doc(&format!(
            "scenario \"x\" {{ {base} driver openloop {{ rate_hz 100; duration_ms 10; \
             service exp(1, 2); }} }}"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("wrong number"), "{err}");
    }

    fn arb_driver() -> impl Strategy<Value = DocDriver> {
        prop_oneof![
            Just(DocDriver::Replay),
            (1u64..40, 1u64..5_000_000u64, 0u32..=100, any::<bool>()).prop_map(
                |(epochs, epoch_ns, jitter, with_jitter)| DocDriver::Burst {
                    epochs,
                    epoch_ns,
                    warmup_ns: epoch_ns * 8,
                    seed: Some(17),
                    jitter_pct: with_jitter.then_some(jitter),
                }
            ),
            (1u64..20, 1u64..64, 1u64..5).prop_map(|(epochs, fanout, rounds)| {
                DocDriver::Storm { epochs, fanout, rounds }
            }),
            (1u64..100, 0u32..=100, any::<bool>(), any::<bool>()).prop_map(
                |(seed, jitter, with_seed, with_jitter)| DocDriver::Workload {
                    kind: "oltp".into(),
                    seed: with_seed.then_some(seed),
                    jitter_pct: with_jitter.then_some(jitter),
                }
            ),
            (1u64..100_000, 1u64..2_000, arb_service(), any::<bool>()).prop_map(
                |(rate_hz, duration_ms, service, with_seed)| DocDriver::OpenLoop {
                    rate_hz,
                    duration_ms,
                    service,
                    seed: with_seed.then_some(23),
                }
            ),
        ]
    }

    fn arb_service() -> impl Strategy<Value = DocService> {
        prop_oneof![
            (1u64..1_000_000).prop_map(DocService::Fixed),
            (1u64..1_000_000).prop_map(DocService::Exp),
            (1u64..100_000, 1u64..1_000_000, 0u64..=100)
                .prop_map(|(s, l, p)| DocService::Bimodal(s, l, p)),
        ]
    }

    fn arb_doc() -> impl Strategy<Value = ScenarioDoc> {
        let topo = prop_oneof![
            (1u64..12).prop_map(DocTopology::Flat),
            Just(DocTopology::DualSocket),
            Just(DocTopology::EightNode),
        ];
        let policy = prop_oneof![
            Just(DocPolicy::Named { name: "listing1".into(), arg: None }),
            (1i64..64)
                .prop_map(|ms| DocPolicy::Named { name: "pelt_half_life".into(), arg: Some(ms) }),
        ];
        let batch = prop_oneof![
            Just(None),
            (1i64..16).prop_map(|k| Some(DocBatch::Fixed(k))),
            Just(Some(DocBatch::Half)),
        ];
        let head = (0u64..1000, 1u64..24, topo, prop::collection::vec(0u64..20, 1..16));
        let mid = (policy, arb_driver(), 0u64..2048, batch);
        let events = prop_oneof![Just(None), (1u64..10_000_000).prop_map(Some)];
        let order = prop_oneof![Just(None), (0u64..1_000).prop_map(Some)];
        let tail = (any::<bool>(), 0u8..8, events, order);
        (head, mid, tail).prop_map(
            |(
                (name_nr, exp, topology, loads),
                (policy, driver, budget, batch),
                (mixed_nice, invariant_mask, events, order),
            )| {
                let all = [
                    DocInvariant::WorkConservation,
                    DocInvariant::ConservationOfTasks,
                    DocInvariant::NonInversion,
                ];
                let expect = all
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| invariant_mask & (1 << i) != 0)
                    .map(|(_, inv)| *inv)
                    .collect();
                ScenarioDoc {
                    name: format!("generated scenario #{name_nr}: a \"quoted\" name"),
                    experiment: format!("e{exp}"),
                    topology,
                    loads,
                    policy,
                    backends: None,
                    driver,
                    budget,
                    events,
                    order,
                    batch,
                    mixed_nice,
                    expect,
                }
            },
        )
    }

    proptest! {
        #[test]
        fn random_documents_round_trip(doc in arb_doc()) {
            let printed = print_scenario(&doc);
            let parsed = parse_doc(&printed).unwrap();
            prop_assert!(parsed == vec![doc], "round trip changed the document; printed source:\n{}", printed);
        }
    }
}
