//! Tokeniser for the policy DSL.

use crate::error::DslError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier or keyword (`policy`, `metric`, `self`, `victim`, …).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A double-quoted string literal (scenario names in [`crate::doc`]).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
}

/// Tokenises `source`, skipping whitespace and `#`-to-end-of-line comments.
pub fn lex(source: &str) -> Result<Vec<Token>, DslError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] as char != '\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '"' => {
                i += 1;
                let mut text = String::new();
                loop {
                    match bytes.get(i) {
                        None | Some(b'\n') => {
                            return Err(DslError::parse("unterminated string literal"))
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            // Only the two escapes the printer emits.
                            match bytes.get(i + 1) {
                                Some(b'"') => text.push('"'),
                                Some(b'\\') => text.push('\\'),
                                other => {
                                    return Err(DslError::parse(format!(
                                        "unknown string escape `\\{}`",
                                        other.map(|b| *b as char).unwrap_or(' ')
                                    )))
                                }
                            }
                            i += 2;
                        }
                        Some(_) => {
                            // Strings are UTF-8: take the whole scalar value.
                            let rest = &source[i..];
                            let c = rest.chars().next().expect("in-bounds char");
                            text.push(c);
                            i += c.len_utf8();
                        }
                    }
                }
                tokens.push(Token::Str(text));
            }
            ';' => {
                tokens.push(Token::Semi);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::EqEq);
                    i += 2;
                } else {
                    tokens.push(Token::Assign);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(DslError::UnexpectedCharacter { found: '!', offset: i });
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(DslError::UnexpectedCharacter { found: '&', offset: i });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(DslError::UnexpectedCharacter { found: '|', offset: i });
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let value = text.parse::<i64>().map_err(|_| {
                    DslError::parse(format!("integer literal `{text}` out of range"))
                })?;
                tokens.push(Token::Int(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] as char == '_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(source[start..i].to_string()));
            }
            other => return Err(DslError::UnexpectedCharacter { found: other, offset: i }),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_listing1_policy() {
        let tokens = lex("policy p { filter = victim.load - self.load >= 2; }").unwrap();
        assert!(tokens.contains(&Token::Ident("policy".into())));
        assert!(tokens.contains(&Token::Ge));
        assert!(tokens.contains(&Token::Int(2)));
        assert_eq!(tokens.iter().filter(|t| **t == Token::Dot).count(), 2);
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let tokens = lex("# a comment\n  metric threads ; # trailing\n").unwrap();
        assert_eq!(
            tokens,
            vec![Token::Ident("metric".into()), Token::Ident("threads".into()), Token::Semi]
        );
    }

    #[test]
    fn two_character_operators() {
        let tokens = lex(">= <= == != && || > <").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ge,
                Token::Le,
                Token::EqEq,
                Token::Ne,
                Token::AndAnd,
                Token::OrOr,
                Token::Gt,
                Token::Lt
            ]
        );
    }

    #[test]
    fn lexes_scenario_document_tokens() {
        let tokens =
            lex("loads [12, 0]; scenario \"hot core: a \\\"quoted\\\" name\\\\\"").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("loads".into()),
                Token::LBracket,
                Token::Int(12),
                Token::Comma,
                Token::Int(0),
                Token::RBracket,
                Token::Semi,
                Token::Ident("scenario".into()),
                Token::Str("hot core: a \"quoted\" name\\".into()),
            ]
        );
    }

    #[test]
    fn rejects_bad_strings() {
        assert!(lex("\"no closing quote").is_err());
        assert!(lex("\"line\nbreak\"").is_err());
        assert!(lex("\"bad \\q escape\"").is_err());
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(matches!(lex("filter = $"), Err(DslError::UnexpectedCharacter { found: '$', .. })));
        assert!(lex("a & b").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("99999999999999999999").is_err());
    }
}
