//! The Rust code generator — the analogue of the paper's "compiled to C
//! code that can be integrated as a scheduling class into the Linux kernel".
//!
//! The generator emits a self-contained Rust module implementing the three
//! `sched-core` policy traits for the given definition.  The output is plain
//! text; it is not compiled by this crate (there is no `rustc` at run time),
//! but the golden tests assert its shape and the emitted code mirrors the
//! interpreter in [`crate::eval`] one-to-one, so behavioural equivalence is
//! inherited from the interpreter tests.

use crate::ast::{Actor, ChooseRule, Expr, Field, LoadSpec, MetricSpec, PolicyDef};

/// Generates a Rust module implementing `def`.
pub fn generate_rust(def: &PolicyDef) -> String {
    let base_metric = match def.metric {
        MetricSpec::Threads => "LoadMetric::NrThreads",
        MetricSpec::Weighted => "LoadMetric::Weighted",
    };
    // A decayed criterion makes every `.load` read the tracked view, and the
    // assembled policy carry the matching tracker.
    let (metric, tracker_expr) = match def.load {
        Some(LoadSpec::Pelt { half_life_ms }) => (
            "LoadMetric::Tracked",
            format!(
                "TrackerSpec::Pelt {{ base: {base_metric}, half_life_ns: {} }}.build()",
                u64::from(half_life_ms) * 1_000_000
            ),
        ),
        _ => (base_metric, format!("TrackerSpec::instantaneous({base_metric}).build()")),
    };
    let struct_name = camel_case(&def.name);
    let filter_expr = gen_bool_expr(&def.filter);
    let choose_body = match &def.choose {
        ChooseRule::First => "candidates.first().map(|c| c.id)".to_string(),
        ChooseRule::MaxBy(key) => format!(
            "candidates.iter().max_by_key(|victim| ({}, std::cmp::Reverse(victim.id))).map(|c| c.id)",
            gen_int_expr(key)
        ),
        ChooseRule::MinBy(key) => format!(
            "candidates.iter().min_by_key(|victim| ({}, victim.id)).map(|c| c.id)",
            gen_int_expr(key)
        ),
    };

    format!(
        r#"//! Generated from the `{name}` policy definition — do not edit by hand.

use sched_core::{{ChoicePolicy, CoreId, CoreSnapshot, CoreState, FilterPolicy, LoadMetric, Policy, StealPolicy, TaskId, TrackerSpec}};

/// Step 1 of `{name}`: the filter.
#[derive(Debug, Clone, Copy, Default)]
pub struct {struct_name}Filter;

impl FilterPolicy for {struct_name}Filter {{
    fn can_steal(&self, this: &CoreSnapshot, victim: &CoreSnapshot) -> bool {{
        let metric = {metric};
        {filter_expr}
    }}

    fn name(&self) -> &'static str {{
        "{name}_filter"
    }}
}}

/// Step 2 of `{name}`: the choice.
#[derive(Debug, Clone, Copy, Default)]
pub struct {struct_name}Choice;

impl ChoicePolicy for {struct_name}Choice {{
    fn choose(&self, this: &CoreSnapshot, candidates: &[CoreSnapshot]) -> Option<CoreId> {{
        let metric = {metric};
        let _ = (this, metric);
        {choose_body}
    }}

    fn name(&self) -> &'static str {{
        "{name}_choice"
    }}
}}

/// Step 3 of `{name}`: the steal.
#[derive(Debug, Clone, Copy, Default)]
pub struct {struct_name}Steal;

impl StealPolicy for {struct_name}Steal {{
    fn select_tasks(&self, _thief: &CoreState, victim: &CoreState) -> Vec<TaskId> {{
        victim.ready.iter().rev().take({steal_count}).map(|t| t.id).collect()
    }}

    fn name(&self) -> &'static str {{
        "{name}_steal"
    }}
}}

/// Assembles the `{name}` policy.
pub fn policy() -> Policy {{
    Policy::with_tracker({tracker_expr}, Box::new({struct_name}Filter), Box::new({struct_name}Choice), Box::new({struct_name}Steal))
}}
"#,
        name = def.name,
        struct_name = struct_name,
        metric = metric,
        tracker_expr = tracker_expr,
        filter_expr = filter_expr,
        choose_body = choose_body,
        steal_count = def.steal_count,
    )
}

fn camel_case(name: &str) -> String {
    name.split(['_', '-'])
        .filter(|s| !s.is_empty())
        .map(|s| {
            let mut chars = s.chars();
            match chars.next() {
                Some(first) => first.to_ascii_uppercase().to_string() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

fn field_access(actor: &Actor, field: &Field) -> String {
    let base = match actor {
        Actor::SelfCore => "this",
        Actor::Victim => "victim",
    };
    match field {
        Field::Load => format!("{base}.load(metric) as i128"),
        Field::NrThreads => format!("{base}.nr_threads as i128"),
        Field::WeightedLoad => format!("{base}.weighted_load as i128"),
        Field::LightestReady => format!("{base}.lightest_ready_weight.unwrap_or(0) as i128"),
        Field::TrackedLoad => format!("{base}.load(LoadMetric::Tracked) as i128"),
    }
}

fn gen_int_expr(expr: &Expr) -> String {
    match expr {
        Expr::Int(v) => format!("{v}i128"),
        Expr::Field(actor, field) => field_access(actor, field),
        Expr::Binary(op, lhs, rhs) => {
            format!("({} {} {})", gen_int_expr(lhs), op.symbol(), gen_int_expr(rhs))
        }
    }
}

fn gen_bool_expr(expr: &Expr) -> String {
    match expr {
        Expr::Binary(op, lhs, rhs) if op.takes_booleans() => {
            format!("({} {} {})", gen_bool_expr(lhs), op.symbol(), gen_bool_expr(rhs))
        }
        Expr::Binary(op, lhs, rhs) => {
            format!("({} {} {})", gen_int_expr(lhs), op.symbol(), gen_int_expr(rhs))
        }
        other => gen_int_expr(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn generates_a_module_for_listing1() {
        let def = parse(
            "policy listing1 { metric threads; filter = victim.load - self.load >= 2; choose = max victim.load; steal = 1; }",
        )
        .unwrap();
        let code = generate_rust(&def);
        assert!(code.contains("pub struct Listing1Filter"));
        assert!(
            code.contains("((victim.load(metric) as i128 - this.load(metric) as i128) >= 2i128)")
        );
        assert!(code.contains("impl ChoicePolicy for Listing1Choice"));
        assert!(code.contains(".take(1)"));
        assert!(code.contains("pub fn policy() -> Policy"));
    }

    #[test]
    fn weighted_policies_use_the_weighted_metric() {
        let def = parse(
            "policy weighted_fair { metric weighted; filter = victim.nr_threads >= 2 && victim.load > self.load + victim.lightest_ready; }",
        )
        .unwrap();
        let code = generate_rust(&def);
        assert!(code.contains("LoadMetric::Weighted"));
        assert!(code.contains("WeightedFairFilter"));
        assert!(code.contains("lightest_ready_weight.unwrap_or(0)"));
        assert!(code.contains("&&"));
    }

    #[test]
    fn pelt_policies_generate_a_decayed_tracker() {
        let def = parse(crate::stdlib::PELT).unwrap();
        let code = generate_rust(&def);
        assert!(code.contains("LoadMetric::Tracked"), "{code}");
        assert!(
            code.contains(
                "TrackerSpec::Pelt { base: LoadMetric::NrThreads, half_life_ns: 8000000 }"
            ),
            "{code}"
        );
        assert!(code.contains("Policy::with_tracker("));
    }

    #[test]
    fn camel_case_handles_separators() {
        assert_eq!(camel_case("simple_policy"), "SimplePolicy");
        assert_eq!(camel_case("a-b_c"), "ABC");
        assert_eq!(camel_case("x"), "X");
    }

    #[test]
    fn first_choice_degenerates_to_first_candidate() {
        let def = parse("policy p { filter = victim.load >= 2; choose = first; }").unwrap();
        let code = generate_rust(&def);
        assert!(code.contains("candidates.first()"));
    }
}
