//! The executable backend: compiling a DSL policy into `sched-core` policy
//! objects (the analogue of the paper's "compiled to C" path).

use sched_core::tracker::TrackerSpec;
use sched_core::{
    ChoicePolicy, CoreId, CoreSnapshot, CoreState, FilterPolicy, LoadMetric, Policy, StealPolicy,
    TaskId,
};

use crate::ast::{Actor, BinOp, ChooseRule, Expr, Field, LoadSpec, MetricSpec, PolicyDef};
use crate::error::DslError;
use crate::phase_check::{phase_check, PhaseWarning};
use crate::typecheck::typecheck;

/// The result of compiling a policy definition.
pub struct CompiledPolicy {
    /// The executable policy.
    pub policy: Policy,
    /// Warnings produced by the phase checker.
    pub warnings: Vec<PhaseWarning>,
    /// The definition the policy was compiled from.
    pub def: PolicyDef,
}

/// Compiles a checked policy definition into an executable [`Policy`].
pub fn compile(def: &PolicyDef) -> Result<CompiledPolicy, DslError> {
    typecheck(def)?;
    let warnings = phase_check(def)?;
    let base = match def.metric {
        MetricSpec::Threads => LoadMetric::NrThreads,
        MetricSpec::Weighted => LoadMetric::Weighted,
    };
    // A `load pelt(h)` clause wraps the base metric in a decayed tracker and
    // makes every `.load` in the policy read the tracked view.
    let tracker = match def.load {
        Some(LoadSpec::Pelt { half_life_ms }) => {
            TrackerSpec::Pelt { base, half_life_ns: u64::from(half_life_ms) * 1_000_000 }
        }
        _ => TrackerSpec::instantaneous(base),
    };
    let built = tracker.build();
    let metric = built.view();
    let policy = Policy::with_tracker(
        built,
        Box::new(DslFilter { expr: def.filter.clone(), metric }),
        Box::new(DslChoice { rule: def.choose.clone(), metric }),
        Box::new(DslSteal { count: def.steal_count as usize }),
    );
    Ok(CompiledPolicy { policy, warnings, def: def.clone() })
}

/// Parses, checks and compiles DSL source in one step.
pub fn compile_source(source: &str) -> Result<CompiledPolicy, DslError> {
    let def = crate::parser::parse(source)?;
    compile(&def)
}

/// Evaluates an integer expression over the two observations.
fn eval_int(expr: &Expr, this: &CoreSnapshot, victim: &CoreSnapshot, metric: LoadMetric) -> i128 {
    match expr {
        Expr::Int(v) => i128::from(*v),
        Expr::Field(actor, field) => {
            let snap = match actor {
                Actor::SelfCore => this,
                Actor::Victim => victim,
            };
            let value = match field {
                Field::Load => snap.load(metric),
                Field::NrThreads => snap.nr_threads,
                Field::WeightedLoad => snap.weighted_load,
                Field::LightestReady => snap.lightest_ready_weight.unwrap_or(0),
                Field::TrackedLoad => snap.load(LoadMetric::Tracked),
            };
            i128::from(value)
        }
        Expr::Binary(op, lhs, rhs) => {
            let l = eval_int(lhs, this, victim, metric);
            let r = eval_int(rhs, this, victim, metric);
            match op {
                BinOp::Add => l + r,
                BinOp::Sub => l - r,
                BinOp::Mul => l * r,
                _ => unreachable!("type checker guarantees integer operators here"),
            }
        }
    }
}

/// Evaluates a boolean expression over the two observations.
fn eval_bool(expr: &Expr, this: &CoreSnapshot, victim: &CoreSnapshot, metric: LoadMetric) -> bool {
    match expr {
        Expr::Binary(op, lhs, rhs) if op.takes_booleans() => {
            let l = eval_bool(lhs, this, victim, metric);
            let r = eval_bool(rhs, this, victim, metric);
            match op {
                BinOp::And => l && r,
                BinOp::Or => l || r,
                _ => unreachable!(),
            }
        }
        Expr::Binary(op, lhs, rhs) if op.is_boolean() => {
            let l = eval_int(lhs, this, victim, metric);
            let r = eval_int(rhs, this, victim, metric);
            match op {
                BinOp::Ge => l >= r,
                BinOp::Gt => l > r,
                BinOp::Le => l <= r,
                BinOp::Lt => l < r,
                BinOp::Eq => l == r,
                BinOp::Ne => l != r,
                _ => unreachable!(),
            }
        }
        _ => unreachable!("type checker guarantees the filter is boolean"),
    }
}

/// Step 1 compiled from a DSL filter expression.
#[derive(Debug, Clone)]
pub struct DslFilter {
    expr: Expr,
    metric: LoadMetric,
}

impl FilterPolicy for DslFilter {
    fn can_steal(&self, thief: &CoreSnapshot, victim: &CoreSnapshot) -> bool {
        eval_bool(&self.expr, thief, victim, self.metric)
    }

    fn name(&self) -> &'static str {
        "dsl_filter"
    }
}

/// Step 2 compiled from a DSL choose rule.
#[derive(Debug, Clone)]
pub struct DslChoice {
    rule: ChooseRule,
    metric: LoadMetric,
}

impl ChoicePolicy for DslChoice {
    fn choose(&self, thief: &CoreSnapshot, candidates: &[CoreSnapshot]) -> Option<CoreId> {
        match &self.rule {
            ChooseRule::First => candidates.first().map(|c| c.id),
            ChooseRule::MaxBy(key) => candidates
                .iter()
                .max_by_key(|c| (eval_int(key, thief, c, self.metric), std::cmp::Reverse(c.id)))
                .map(|c| c.id),
            ChooseRule::MinBy(key) => candidates
                .iter()
                .min_by_key(|c| (eval_int(key, thief, c, self.metric), c.id))
                .map(|c| c.id),
        }
    }

    fn name(&self) -> &'static str {
        "dsl_choice"
    }
}

/// Step 3 compiled from a DSL steal count.
#[derive(Debug, Clone)]
pub struct DslSteal {
    count: usize,
}

impl StealPolicy for DslSteal {
    fn select_tasks(&self, _thief: &CoreState, victim: &CoreState) -> Vec<TaskId> {
        // Never steal so much that the victim ends up idle (the §4.2 "does
        // not steal too much" obligation): if the victim has no running
        // thread, one waiting thread must stay behind.
        let keep = usize::from(victim.current.is_none());
        let take = self.count.min(victim.ready.len().saturating_sub(keep));
        victim.ready.iter().rev().take(take).map(|t| t.id).collect()
    }

    fn name(&self) -> &'static str {
        "dsl_steal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::prelude::*;

    const LISTING1: &str = "policy listing1 {\n    metric threads;\n    filter = victim.load - self.load >= 2;\n    choose = max victim.load;\n    steal  = 1;\n}";

    #[test]
    fn compiled_listing1_behaves_like_the_handwritten_policy() {
        let compiled = compile_source(LISTING1).unwrap();
        assert!(compiled.warnings.is_empty());

        let mut via_dsl = SystemState::from_loads(&[0, 4, 1, 0]);
        let mut via_rust = via_dsl.clone();
        let dsl_balancer = Balancer::new(compiled.policy);
        let rust_balancer = Balancer::new(Policy::simple());
        let a = converge(&mut via_dsl, &dsl_balancer, RoundSchedule::Sequential, 16);
        let b = converge(&mut via_rust, &rust_balancer, RoundSchedule::Sequential, 16);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(
            via_dsl.loads(LoadMetric::NrThreads),
            via_rust.loads(LoadMetric::NrThreads),
            "the DSL backend and the handwritten policy must agree step for step"
        );
    }

    #[test]
    fn greedy_dsl_policy_compiles_with_a_warning() {
        let compiled = compile_source("policy greedy { filter = stealee.load >= 2; }").unwrap();
        assert_eq!(compiled.warnings.len(), 1);
        assert_eq!(compiled.def.name, "greedy");
    }

    #[test]
    fn choose_min_prefers_the_least_loaded_candidate() {
        let compiled = compile_source(
            "policy nearest { filter = victim.load - self.load >= 2; choose = min victim.load; }",
        )
        .unwrap();
        let system = SystemState::from_loads(&[0, 3, 5]);
        let snapshot = SystemSnapshot::capture(&system);
        let balancer = Balancer::new(compiled.policy);
        let selection = balancer.select(&snapshot, CoreId(0));
        assert_eq!(selection.chosen, Some(CoreId(1)));
    }

    #[test]
    fn steal_count_is_respected() {
        let compiled =
            compile_source("policy batch { filter = victim.load - self.load >= 2; steal = 2; }")
                .unwrap();
        let mut system = SystemState::from_loads(&[0, 5]);
        let balancer = Balancer::new(compiled.policy);
        let attempt = balancer.balance_core(&mut system, CoreId(0), 0);
        assert_eq!(attempt.outcome.nr_stolen(), 2);
    }

    #[test]
    fn ill_typed_sources_do_not_compile() {
        assert!(compile_source("policy p { filter = victim.load + self.load; }").is_err());
        assert!(compile_source("policy p { filter = self.load >= 2; }").is_err());
    }

    #[test]
    fn tracked_load_mixes_decayed_and_instantaneous_views() {
        // "Decayed imbalance AND currently overloaded": the tracked gap
        // alone is not enough — the victim must have threads right now.
        let compiled = compile_source(
            "policy hybrid { metric threads; load pelt(8); \
             filter = victim.tracked_load - self.tracked_load >= 2 && victim.nr_threads >= 2; }",
        )
        .unwrap();
        // Build live observations through the model, so the test needs no
        // hand-rolled snapshot plumbing: core 1's tracked history warms up
        // separately from its instantaneous queue length.
        let warm = |tracked: u64, now: u64| {
            let mut system = SystemState::from_loads(&[0, now as usize]);
            system.core_mut(CoreId(1)).tracked.scaled = tracked * sched_core::TRACK_SCALE;
            CoreSnapshot::capture(system.core(CoreId(1)))
        };
        let this = CoreSnapshot::capture(SystemState::from_loads(&[0]).core(CoreId(0)));
        let filter = &compiled.policy.filter;
        // Decayed history says hot AND the queue is hot now: steal.
        assert!(filter.can_steal(&this, &warm(4, 4)));
        // Decayed history says hot but the queue just drained: no steal
        // (the instantaneous conjunct vetoes it).
        assert!(!filter.can_steal(&this, &warm(4, 0)));
        // Queue is hot now but the decayed view says it is a blip: no
        // steal (the tracked conjunct vetoes it).
        assert!(!filter.can_steal(&this, &warm(0, 4)));
    }

    #[test]
    fn tracked_load_without_a_decayed_tracker_is_rejected() {
        for source in [
            // No load clause at all.
            "policy p { filter = victim.tracked_load >= 2; }",
            // Instantaneous load clause (an alias for the metric).
            "policy p { load nr_threads; filter = victim.tracked_load >= 2; }",
            // Tracked view in the choose key only.
            "policy p { filter = victim.load >= 2; choose = max victim.tracked_load; }",
        ] {
            let err = match compile_source(source) {
                Err(err) => err,
                Ok(_) => panic!("{source}: must be rejected without a decayed tracker"),
            };
            assert!(
                err.to_string().contains("pelt"),
                "{source}: error must point at the missing tracker, got: {err}"
            );
        }
        // The same expressions compile once a decayed tracker is declared.
        assert!(compile_source(
            "policy p { load pelt(8); filter = victim.tracked_load >= 2; \
             choose = max victim.tracked_load; }"
        )
        .is_ok());
    }
}
