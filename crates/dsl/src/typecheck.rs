//! Expression typing: integers vs booleans, and field/criterion
//! coherence (`.tracked_load` needs a decayed tracker).

use crate::ast::{ChooseRule, Expr, Field, LoadSpec, PolicyDef};
use crate::error::DslError;

/// The type of a DSL expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprType {
    /// An integer quantity (loads, counts, weights).
    Int,
    /// A boolean (filter results).
    Bool,
}

/// Infers the type of `expr`, rejecting ill-typed operands.
pub fn type_of(expr: &Expr) -> Result<ExprType, DslError> {
    match expr {
        Expr::Int(_) | Expr::Field(_, _) => Ok(ExprType::Int),
        Expr::Binary(op, lhs, rhs) => {
            let lt = type_of(lhs)?;
            let rt = type_of(rhs)?;
            let expected = if op.takes_booleans() { ExprType::Bool } else { ExprType::Int };
            if lt != expected || rt != expected {
                return Err(DslError::type_error(format!(
                    "operator `{}` expects {:?} operands, found {:?} and {:?}",
                    op.symbol(),
                    expected,
                    lt,
                    rt
                )));
            }
            Ok(if op.is_boolean() { ExprType::Bool } else { ExprType::Int })
        }
    }
}

/// Type-checks a whole policy: the filter must be boolean, the choose key
/// must be an integer, and `.tracked_load` may only appear when the policy
/// configures a decayed tracker — this rule lives here, in the checker
/// every back-end (interpreter *and* code generator) runs through, rather
/// than in any single back-end.
pub fn typecheck(policy: &PolicyDef) -> Result<(), DslError> {
    if type_of(&policy.filter)? != ExprType::Bool {
        return Err(DslError::type_error(format!(
            "the filter of `{}` must be a boolean expression",
            policy.name
        )));
    }
    let choose_key = match &policy.choose {
        ChooseRule::First => None,
        ChooseRule::MaxBy(key) | ChooseRule::MinBy(key) => {
            if type_of(key)? != ExprType::Int {
                return Err(DslError::type_error(format!(
                    "the choose key of `{}` must be an integer expression",
                    policy.name
                )));
            }
            Some(key)
        }
    };
    // `.tracked_load` reads the decayed average; without a decayed tracker
    // there is no history to read and the field would silently alias
    // `.load` — reject rather than mislead.
    let uses_tracked = policy.filter.uses_field(Field::TrackedLoad)
        || choose_key.is_some_and(|key| key.uses_field(Field::TrackedLoad));
    if uses_tracked && !matches!(policy.load, Some(LoadSpec::Pelt { .. })) {
        return Err(DslError::type_error(
            "`.tracked_load` needs a decayed tracker: add a `load pelt(<half-life ms>)` clause",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn listing1_typechecks() {
        let p =
            parse("policy p { filter = victim.load - self.load >= 2; choose = max victim.load; }")
                .unwrap();
        assert!(typecheck(&p).is_ok());
    }

    #[test]
    fn integer_filter_is_rejected() {
        let p = parse("policy p { filter = victim.load - self.load; }").unwrap();
        let err = typecheck(&p).unwrap_err();
        assert!(err.to_string().contains("boolean"));
    }

    #[test]
    fn boolean_choose_key_is_rejected() {
        let p = parse("policy p { filter = victim.load >= 2; choose = max victim.load >= 2; }")
            .unwrap();
        let err = typecheck(&p).unwrap_err();
        assert!(err.to_string().contains("integer"));
    }

    #[test]
    fn tracked_load_requires_a_decayed_tracker_in_the_shared_checker() {
        // The rule guards both back-ends (interpreter and codegen), so it
        // lives here rather than in either one.
        let p = parse("policy p { filter = victim.tracked_load >= 2; }").unwrap();
        let err = typecheck(&p).unwrap_err();
        assert!(err.to_string().contains("pelt"), "{err}");
        let p = parse("policy p { load pelt(8); filter = victim.tracked_load >= 2; }").unwrap();
        assert!(typecheck(&p).is_ok());
    }

    #[test]
    fn mixed_operand_types_are_rejected() {
        let p = parse("policy p { filter = (victim.load >= 2) && self.load; }").unwrap();
        assert!(typecheck(&p).is_err());
        let q = parse("policy p { filter = (victim.load >= 2) + 1 >= 1; }").unwrap();
        assert!(typecheck(&q).is_err());
    }
}
