//! Abstract syntax of the scheduling-policy DSL.
//!
//! The paper's abstractions are "exposed to kernel developers via a
//! domain-specific language (DSL), which is then compiled to C code that can
//! be integrated as a scheduling class into the Linux kernel, and to Scala
//! code that is verified by the Leon toolkit" (§1).  The DSL here follows
//! the same three-step shape: a policy is a *filter* expression, a *choose*
//! rule and a *steal* count, plus the load metric it balances.
//!
//! Example source (the Listing 1 policy):
//!
//! ```text
//! policy listing1 {
//!     metric threads;
//!     filter = victim.load - self.load >= 2;
//!     choose = max victim.load;
//!     steal  = 1;
//! }
//! ```

/// The load metric a policy balances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricSpec {
    /// Thread counts (`metric threads`).
    Threads,
    /// Niceness-weighted load (`metric weighted`).
    Weighted,
}

/// The load-tracking criterion a policy balances (`load` clause).
///
/// Where [`MetricSpec`] names *which entities count*, `LoadSpec` names *how
/// the count evolves over time*: read instantaneously, or smoothed through
/// a PELT-style decayed average (`load pelt(<half-life ms>)`, compiled to a
/// [`sched_core::tracker::PeltTracker`] over the policy's metric).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSpec {
    /// Instantaneous thread counts (`load nr_threads`).
    NrThreads,
    /// Instantaneous weighted load (`load weighted`).
    Weighted,
    /// PELT-style decayed average of the policy's metric with the given
    /// half-life (`load pelt(8)` = 8 ms).
    Pelt {
        /// Half-life of the decay, in milliseconds.
        half_life_ms: u32,
    },
}

/// The core an expression field refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Actor {
    /// The core executing the balancing operation (`self`).
    SelfCore,
    /// The prospective victim being filtered or ranked (`victim`).
    Victim,
}

impl std::fmt::Display for Actor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Actor::SelfCore => f.write_str("self"),
            Actor::Victim => f.write_str("victim"),
        }
    }
}

/// A readable field of a core observation.
///
/// All fields are read-only views of a [`sched_core::CoreSnapshot`]; the DSL
/// has no construct that writes to a runqueue, which is how the "selection
/// phase may not modify runqueues" constraint (§3.1) is enforced by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// The load under the policy's metric (`.load`).
    Load,
    /// The thread count regardless of metric (`.nr_threads`).
    NrThreads,
    /// The weighted load regardless of metric (`.weighted_load`).
    WeightedLoad,
    /// The weight of the lightest waiting thread, or 0 if none
    /// (`.lightest_ready`).
    LightestReady,
    /// The tracker-maintained (decayed) load average (`.tracked_load`).
    ///
    /// Only meaningful when the policy configures a decayed tracker
    /// (`load pelt(h)`); the compiler rejects it otherwise, because with
    /// an instantaneous criterion there is no tracker history to read and
    /// the field would silently alias `.load`.  Exposing it alongside the
    /// instantaneous fields lets one predicate mix both views — "decayed
    /// imbalance AND currently overloaded".
    TrackedLoad,
}

impl std::fmt::Display for Field {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Field::Load => "load",
            Field::NrThreads => "nr_threads",
            Field::WeightedLoad => "weighted_load",
            Field::LightestReady => "lightest_ready",
            Field::TrackedLoad => "tracked_load",
        };
        f.write_str(s)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Returns `true` if the operator produces a boolean.
    pub fn is_boolean(self) -> bool {
        !matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul)
    }

    /// Returns `true` if the operator takes boolean operands.
    pub fn takes_booleans(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// Source text of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Ge => ">=",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Lt => "<",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// An expression over two core observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// A field of `self` or `victim`.
    Field(Actor, Field),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Builds a binary expression.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Returns `true` if the expression mentions the given actor.
    pub fn references(&self, actor: Actor) -> bool {
        match self {
            Expr::Int(_) => false,
            Expr::Field(a, _) => *a == actor,
            Expr::Binary(_, l, r) => l.references(actor) || r.references(actor),
        }
    }

    /// Returns `true` if the expression reads the given field (of either
    /// actor).
    pub fn uses_field(&self, field: Field) -> bool {
        match self {
            Expr::Int(_) => false,
            Expr::Field(_, f) => *f == field,
            Expr::Binary(_, l, r) => l.uses_field(field) || r.uses_field(field),
        }
    }

    /// Renders the expression back to DSL source.
    pub fn to_source(&self) -> String {
        match self {
            Expr::Int(v) => v.to_string(),
            Expr::Field(actor, field) => format!("{actor}.{field}"),
            Expr::Binary(op, l, r) => {
                format!("({} {} {})", l.to_source(), op.symbol(), r.to_source())
            }
        }
    }
}

/// The choose (step 2) rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChooseRule {
    /// Pick the first candidate.
    First,
    /// Pick the candidate maximising the key expression.
    MaxBy(Expr),
    /// Pick the candidate minimising the key expression.
    MinBy(Expr),
}

/// A complete policy definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyDef {
    /// Policy name.
    pub name: String,
    /// Metric the policy balances.
    pub metric: MetricSpec,
    /// Load-tracking criterion, if the policy declared one (`load` clause);
    /// `None` means the metric is read instantaneously.
    pub load: Option<LoadSpec>,
    /// The step-1 filter: a boolean expression over `self` and `victim`.
    pub filter: Expr,
    /// The step-2 choose rule.
    pub choose: ChooseRule,
    /// The step-3 steal count (how many waiting threads to migrate).
    pub steal_count: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn listing1_filter() -> Expr {
        Expr::binary(
            BinOp::Ge,
            Expr::binary(
                BinOp::Sub,
                Expr::Field(Actor::Victim, Field::Load),
                Expr::Field(Actor::SelfCore, Field::Load),
            ),
            Expr::Int(2),
        )
    }

    #[test]
    fn references_walks_the_tree() {
        let e = listing1_filter();
        assert!(e.references(Actor::Victim));
        assert!(e.references(Actor::SelfCore));
        assert!(!Expr::Int(3).references(Actor::Victim));
    }

    #[test]
    fn to_source_round_trips_structure() {
        assert_eq!(listing1_filter().to_source(), "((victim.load - self.load) >= 2)");
        assert_eq!(
            Expr::Field(Actor::SelfCore, Field::LightestReady).to_source(),
            "self.lightest_ready"
        );
    }

    #[test]
    fn operator_classification() {
        assert!(BinOp::Ge.is_boolean());
        assert!(!BinOp::Add.is_boolean());
        assert!(BinOp::And.takes_booleans());
        assert!(!BinOp::Lt.takes_booleans());
        assert_eq!(BinOp::Ne.symbol(), "!=");
    }
}
