//! The built-in policy library, written in the DSL itself.

/// The paper's Listing 1 policy: steal one thread from a core at least two
/// threads ahead, choosing the most loaded candidate.
pub const LISTING1: &str = "\
# Listing 1 of the paper: the simple, provably work-conserving balancer.
policy listing1 {
    metric threads;
    filter = victim.load - self.load >= 2;
    choose = max victim.load;
    steal  = 1;
}
";

/// The §4.3 counterexample: steal from any overloaded core.  Sound
/// sequentially, not work-conserving under concurrency.
pub const GREEDY: &str = "\
# The concurrency counterexample of the paper's section 4.3.
policy greedy {
    metric threads;
    filter = stealee.load >= 2;
    choose = max victim.load;
    steal  = 1;
}
";

/// A niceness-aware policy balancing weighted load (the §4.2 variant).
pub const WEIGHTED: &str = "\
# Balance weighted load; steal only when moving the lightest waiting thread
# still strictly reduces the imbalance.
policy weighted {
    metric weighted;
    filter = victim.nr_threads >= 2 && victim.weighted_load > self.weighted_load + victim.lightest_ready;
    choose = max victim.weighted_load;
    steal  = 1;
}
";

/// A batched variant of Listing 1 that migrates two threads per steal.
pub const BATCHED: &str = "\
policy batched {
    metric threads;
    filter = victim.load - self.load >= 2;
    choose = max victim.load;
    steal  = 2;
}
";

/// Listing 1 over a PELT-style decayed thread count: `.load` reads the
/// tracked (half-life 8 ms) average instead of the instantaneous queue
/// length, so brief bursts no longer trigger migrations.
///
/// Decayed policies are *time-coupled*: their correctness argument needs
/// settling ticks between rounds (see `sched-verify`'s decay lemmas), so
/// this policy is exercised by experiment E17 and the decay lemmas rather
/// than by the untimed exhaustive verifier that covers [`all`].
pub const PELT: &str = "\
# Listing 1 rebased onto a decayed load average (half-life 8 ms).
policy pelt {
    metric threads;
    load   pelt(8);
    filter = victim.load - self.load >= 2;
    choose = max victim.load;
    steal  = 1;
}
";

/// A hybrid-criterion policy mixing both load views in one predicate: a
/// *decayed* imbalance must exist (`.tracked_load`, so transient blips do
/// not trigger it) **and** the victim must be instantaneously overloaded
/// right now (`.nr_threads`, so work is actually there to take).  This is
/// the expression shape the `.tracked_load` field exists for; with only
/// `.load` a policy is all-decayed or all-instantaneous.
pub const PELT_HYBRID: &str = "\
# Steal on decayed imbalance, but only from a currently overloaded victim.
policy pelt_hybrid {
    metric threads;
    load   pelt(8);
    filter = victim.tracked_load - self.tracked_load >= 2 && victim.nr_threads >= 2;
    choose = max victim.tracked_load;
    steal  = 1;
}
";

/// All built-in *instantaneous* policies with their names (the set the
/// untimed verifier checks; [`PELT`] and [`PELT_HYBRID`] are time-coupled
/// and verified by the decay lemmas plus E17/E21 instead).
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![("listing1", LISTING1), ("greedy", GREEDY), ("weighted", WEIGHTED), ("batched", BATCHED)]
}

#[cfg(test)]
mod tests {
    use crate::eval::compile_source;
    use crate::parser::parse;

    #[test]
    fn every_stdlib_policy_parses_and_compiles() {
        for (name, source) in super::all() {
            let def = parse(source).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
            assert_eq!(def.name, name);
            compile_source(source).unwrap_or_else(|e| panic!("{name} does not compile: {e}"));
        }
    }

    #[test]
    fn the_hybrid_policy_compiles_and_mixes_both_views() {
        let compiled = compile_source(super::PELT_HYBRID)
            .unwrap_or_else(|e| panic!("pelt_hybrid does not compile: {e}"));
        assert!(compiled.policy.tracker.is_decayed());
        assert_eq!(compiled.def.name, "pelt_hybrid");
        // The whole point of the policy: the filter reads the tracked view
        // AND an instantaneous field in one predicate.
        assert!(compiled.def.filter.uses_field(crate::ast::Field::TrackedLoad));
        assert!(compiled.def.filter.uses_field(crate::ast::Field::NrThreads));
    }

    #[test]
    fn the_pelt_policy_compiles_to_a_decayed_tracker() {
        let compiled = compile_source(super::PELT).unwrap();
        assert!(compiled.policy.tracker.is_decayed());
        assert_eq!(compiled.policy.tracker.name(), "pelt(nr_threads, 8ms)");
        assert_eq!(compiled.policy.metric, sched_core::LoadMetric::Tracked);
    }

    #[test]
    fn stdlib_has_the_four_reference_policies() {
        let names: Vec<&str> = super::all().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["listing1", "greedy", "weighted", "batched"]);
    }
}
