//! Concurrency stress tests of the Chase–Lev deque: the steal-atomicity
//! claims (exclusive claim, no loss, no duplication, failure implies a
//! concurrent success) hammered with real OS threads.
//!
//! The `#[ignore]`d variants run the same races at nightly-strength
//! iteration counts; CI's `deque-stress` job runs them with `-- --ignored`
//! so the races cannot silently rot.

use std::sync::atomic::{AtomicBool, Ordering};

use sched_deque::{deque, Steal, StealMany};

/// Runs one owner-pop vs. `thieves`-way steal race over `items` elements
/// and returns (owner claims, per-thief claims, per-thief retry counts).
fn race_once(items: u64, thieves: usize) -> (Vec<u64>, Vec<Vec<u64>>, Vec<u64>) {
    let (mut worker, stealer) = deque(items.max(1) as usize);
    for v in 0..items {
        worker.push(v).unwrap();
    }
    let start = AtomicBool::new(false);
    let mut owner_claims = Vec::new();
    let mut thief_claims: Vec<Vec<u64>> = Vec::new();
    let mut retries: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..thieves)
            .map(|_| {
                let stealer = stealer.clone();
                let start = &start;
                scope.spawn(move || {
                    while !start.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    let mut claimed = Vec::new();
                    let mut failed = 0u64;
                    loop {
                        match stealer.steal() {
                            Steal::Stolen(v) => claimed.push(v),
                            Steal::Retry => failed += 1,
                            Steal::Empty => break,
                        }
                    }
                    (claimed, failed)
                })
            })
            .collect();
        start.store(true, Ordering::Release);
        // The owner drains from the bottom while the thieves drain the top.
        while let Some(v) = worker.pop() {
            owner_claims.push(v);
        }
        for handle in handles {
            let (claimed, failed) = handle.join().unwrap();
            thief_claims.push(claimed);
            retries.push(failed);
        }
    });
    (owner_claims, thief_claims, retries)
}

/// Asserts the union of all claims is exactly `0..items`, each once.
fn assert_exclusive(items: u64, owner: &[u64], thieves: &[Vec<u64>]) {
    let mut all: Vec<u64> = owner.to_vec();
    for claims in thieves {
        all.extend_from_slice(claims);
    }
    all.sort_unstable();
    let expected: Vec<u64> = (0..items).collect();
    assert_eq!(all, expected, "every element must be claimed exactly once");
}

#[test]
fn owner_pop_races_four_thieves_without_loss_or_duplication() {
    for _ in 0..50 {
        let items = 256;
        let (owner, thieves, _) = race_once(items, 4);
        assert_exclusive(items, &owner, &thieves);
    }
}

#[test]
fn single_element_race_has_exactly_one_winner() {
    // The tightest race in the algorithm: the owner's last-element take
    // joins the thieves' CAS on `top`.
    for _ in 0..500 {
        let (owner, thieves, _) = race_once(1, 4);
        let winners =
            usize::from(!owner.is_empty()) + thieves.iter().filter(|c| !c.is_empty()).count();
        assert_eq!(winners, 1, "exactly one party may claim the last element");
        assert_exclusive(1, &owner, &thieves);
    }
}

#[test]
fn a_failed_cas_implies_a_concurrent_claim_probed_deterministically() {
    // P1 at the instruction level: `top` only moves through successful
    // CASes, so a thief observing Retry proves another party claimed an
    // element concurrently.  The probe forces the interleaving (another
    // thief claims inside this thief's read-to-CAS window), so the check
    // does not depend on the OS scheduler preempting at the right spot —
    // essential on single-CPU runners.
    let (mut worker, stealer) = deque(8);
    worker.push(1).unwrap();
    worker.push(2).unwrap();
    let rival = stealer.clone();
    let outcome = stealer.steal_with_probe(|| {
        assert_eq!(rival.steal(), Steal::Stolen(1), "the rival claims inside the window");
    });
    assert_eq!(outcome, Steal::Retry, "the doomed CAS must fail, not double-claim");
    // The element the loser read was claimed exactly once (by the rival);
    // the remaining element is still claimable exactly once.
    assert_eq!(stealer.steal(), Steal::Stolen(2));
    assert_eq!(stealer.steal(), Steal::Empty);
}

#[test]
fn single_element_owner_vs_thief_race_probed_deterministically() {
    // Thief-side window: the owner takes the last element between the
    // thief's read and its CAS.
    let (mut worker, stealer) = deque(8);
    worker.push(7).unwrap();
    let worker_cell = std::cell::RefCell::new(worker);
    let outcome = stealer.steal_with_probe(|| {
        assert_eq!(worker_cell.borrow_mut().pop(), Some(7), "the owner wins the forced race");
    });
    assert_eq!(outcome, Steal::Retry);
    assert_eq!(stealer.steal(), Steal::Empty);

    // Owner-side window: once the owner has published its claim on the
    // bottom element (bottom lowered), a thief arriving in the window
    // backs off and the owner's CAS wins.
    let (mut worker, stealer) = deque(8);
    worker.push(9).unwrap();
    let thief = stealer.clone();
    let got = worker.pop_with_probe(|| {
        assert_eq!(thief.steal(), Steal::Empty, "thieves back off a claimed bottom");
    });
    assert_eq!(got, Some(9));
    assert_eq!(stealer.steal(), Steal::Empty);
}

#[test]
fn stochastic_retries_always_coincide_with_concurrent_claims() {
    // The scheduling-dependent counterpart of the probed test: whenever a
    // retry happens to be observed under real threads, somebody else must
    // have claimed.  (On a single-CPU host retries may simply not occur;
    // the probed test above covers the window regardless.)
    for _ in 0..50 {
        let items = 256;
        let (owner, thieves, retries) = race_once(items, 4);
        assert_exclusive(items, &owner, &thieves);
        for (i, &failed) in retries.iter().enumerate() {
            if failed > 0 {
                let others: usize = owner.len()
                    + thieves
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, c)| c.len())
                        .sum::<usize>();
                assert!(
                    others >= 1,
                    "thief {i} failed {failed} CASes but nobody else claimed anything"
                );
            }
        }
    }
}

#[test]
fn concurrent_pushes_and_steals_conserve_elements() {
    // The owner keeps producing while thieves drain: pushed == claimed
    // at the end, across the full wraparound of a small ring.
    let (mut worker, stealer) = deque(32);
    let produced = 4_096u64;
    let stop = AtomicBool::new(false);
    let mut owner_claims = 0u64;
    let mut thief_total = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let stealer = stealer.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut claimed = 0u64;
                    loop {
                        match stealer.steal() {
                            Steal::Stolen(_) => claimed += 1,
                            Steal::Retry => {}
                            Steal::Empty => {
                                if stop.load(Ordering::Acquire) && stealer.is_empty() {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    claimed
                })
            })
            .collect();
        let mut next = 0u64;
        while next < produced {
            match worker.push(next) {
                Ok(()) => next += 1,
                Err(_) => {
                    // Ring full: the owner helps drain from its own end.
                    if worker.pop().is_some() {
                        owner_claims += 1;
                    }
                }
            }
        }
        stop.store(true, Ordering::Release);
        for handle in handles {
            thief_total += handle.join().unwrap();
        }
    });
    // Whatever is left in the deque was produced but never claimed.
    let leftover = stealer.len() as u64;
    assert_eq!(
        owner_claims + thief_total + leftover,
        produced,
        "production and claims must balance exactly"
    );
}

/// Runs one owner-pop vs. multi-thief **batch** race: each thief claims
/// with `steal_many(k)` (k varied per thief) while the owner drains from
/// the bottom; returns (owner claims, per-thief claims).
fn batch_race_once(items: u64, thieves: usize, k: usize) -> (Vec<u64>, Vec<Vec<u64>>) {
    let (mut worker, stealer) = deque(items.max(1) as usize);
    for v in 0..items {
        worker.push(v).unwrap();
    }
    let start = AtomicBool::new(false);
    let mut owner_claims = Vec::new();
    let mut thief_claims: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..thieves)
            .map(|i| {
                let stealer = stealer.clone();
                let start = &start;
                // Mix batch sizes so reservation winners and single-path
                // fallback losers race each other every round.
                let k = 1 + (k + i) % 8;
                scope.spawn(move || {
                    while !start.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    let mut claimed = Vec::new();
                    loop {
                        match stealer.steal_many(k) {
                            StealMany::Stolen(batch) => claimed.extend(batch),
                            StealMany::Retry => {}
                            StealMany::Empty => break,
                        }
                    }
                    claimed
                })
            })
            .collect();
        start.store(true, Ordering::Release);
        while let Some(v) = worker.pop() {
            owner_claims.push(v);
        }
        for handle in handles {
            thief_claims.push(handle.join().unwrap());
        }
    });
    (owner_claims, thief_claims)
}

#[test]
fn batched_steals_race_owner_pops_without_loss_or_duplication() {
    for round in 0..50 {
        let items = 256;
        let (owner, thieves) = batch_race_once(items, 4, round % 8);
        assert_exclusive(items, &owner, &thieves);
    }
}

#[test]
fn batched_steals_race_owner_pushes_and_pops_conserving_elements() {
    // The owner keeps producing (and helps drain on overflow) while batch
    // thieves claim multi-element ranges: production and claims balance.
    let (mut worker, stealer) = deque(32);
    let produced = 4_096u64;
    let stop = AtomicBool::new(false);
    let mut owner_claims: Vec<u64> = Vec::new();
    let mut thief_claims: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let stealer = stealer.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut claimed = Vec::new();
                    loop {
                        match stealer.steal_many(2 + i * 3) {
                            StealMany::Stolen(batch) => claimed.extend(batch),
                            StealMany::Retry => {}
                            StealMany::Empty => {
                                if stop.load(Ordering::Acquire) && stealer.is_empty() {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    claimed
                })
            })
            .collect();
        let mut next = 0u64;
        while next < produced {
            match worker.push(next) {
                Ok(()) => next += 1,
                Err(_) => {
                    if let Some(v) = worker.pop() {
                        owner_claims.push(v);
                    }
                }
            }
        }
        stop.store(true, Ordering::Release);
        for handle in handles {
            thief_claims.extend(handle.join().unwrap());
        }
    });
    let mut all = owner_claims;
    all.extend(thief_claims);
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len() as u64, produced, "no element lost or claimed twice");
}

#[test]
#[ignore = "nightly-strength stress; run via `cargo test -- --ignored`"]
fn stress_batched_steal_races_high_iteration() {
    for round in 0..400 {
        let items = 1_024;
        let thieves = 2 + (round % 7);
        let (owner, thief_claims) = batch_race_once(items, thieves, round);
        assert_exclusive(items, &owner, &thief_claims);
    }
}

#[test]
#[ignore = "nightly-strength stress; run via `cargo test -- --ignored`"]
fn stress_owner_vs_many_thieves_high_iteration() {
    for round in 0..400 {
        let items = 1_024;
        let thieves = 2 + (round % 7);
        let (owner, thief_claims, _) = race_once(items, thieves);
        assert_exclusive(items, &owner, &thief_claims);
    }
}

#[test]
#[ignore = "nightly-strength stress; run via `cargo test -- --ignored`"]
fn stress_single_element_race_high_iteration() {
    for _ in 0..20_000 {
        let (owner, thieves, _) = race_once(1, 8);
        let winners =
            usize::from(!owner.is_empty()) + thieves.iter().filter(|c| !c.is_empty()).count();
        assert_eq!(winners, 1);
    }
}
