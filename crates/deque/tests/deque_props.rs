//! Property-based tests of the deque's edge cases: empty steals, the
//! single-element owner-vs-thief race, and fixed-capacity overflow
//! (the satellite's grow/shrink obligation, realised here as explicit
//! overflow reporting on the bounded ring).

use proptest::prelude::*;
use sched_deque::{deque, Full, Steal, StealMany};

proptest! {
    #[test]
    fn empty_steal_is_always_empty_after_any_push_pop_balance(pushes in 0usize..64) {
        let (mut w, s) = deque(64);
        for v in 0..pushes as u64 {
            w.push(v).unwrap();
        }
        for _ in 0..pushes {
            prop_assert!(w.pop().is_some());
        }
        // Fully drained: both ends observe emptiness, repeatedly.
        prop_assert_eq!(w.pop(), None);
        prop_assert_eq!(s.steal(), Steal::Empty);
        prop_assert_eq!(s.steal(), Steal::Empty);
        prop_assert!(w.is_empty() && s.is_empty());
    }

    #[test]
    fn overflow_rejects_exactly_beyond_capacity(min_cap in 1usize..=64, extra in 1usize..8) {
        let (mut w, _s) = deque(min_cap);
        let cap = w.capacity() as u64;
        prop_assert!(cap >= min_cap as u64 && cap.is_power_of_two());
        for v in 0..cap {
            prop_assert_eq!(w.push(v), Ok(()));
        }
        // Every push past capacity reports Full and hands the value back.
        for v in 0..extra as u64 {
            prop_assert_eq!(w.push(1000 + v), Err(Full(1000 + v)));
        }
        prop_assert_eq!(w.len() as u64, cap);
        // Draining returns exactly the accepted elements.
        let mut drained = Vec::new();
        while let Some(v) = w.pop() {
            drained.push(v);
        }
        drained.sort_unstable();
        prop_assert_eq!(drained, (0..cap).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_owner_and_thief_claims_partition_the_elements(
        items in 1u64..=128,
        thief_share in 0u64..=128,
    ) {
        // Sequential interleaving of bottom pops and top steals: whatever
        // order they run in, the claims partition the pushed set.
        let (mut w, s) = deque(128);
        for v in 0..items {
            w.push(v).unwrap();
        }
        let mut claimed = Vec::new();
        let mut steal_next = thief_share.is_multiple_of(2);
        let mut remaining_steals = thief_share.min(items);
        while claimed.len() < items as usize {
            if steal_next && remaining_steals > 0 {
                match s.steal() {
                    Steal::Stolen(v) => claimed.push(v),
                    Steal::Retry => {}
                    Steal::Empty => break,
                }
                remaining_steals -= 1;
            } else if let Some(v) = w.pop() {
                claimed.push(v);
            } else {
                break;
            }
            steal_next = !steal_next;
        }
        claimed.sort_unstable();
        claimed.dedup();
        prop_assert_eq!(claimed.len() as u64, items);
    }

    #[test]
    fn steal_many_claims_min_k_len_oldest_first(
        items in 0u64..=48,
        k in 0usize..=64,
    ) {
        let (mut w, s) = deque(64);
        for v in 0..items {
            w.push(v).unwrap();
        }
        match s.steal_many(k) {
            StealMany::Stolen(batch) => {
                let expect = (items as usize).min(k);
                prop_assert_eq!(batch.clone(), (0..expect as u64).collect::<Vec<_>>());
            }
            StealMany::Empty => {
                prop_assert!(k == 0 || items == 0, "a nonzero claim was available");
                // Empty must be claim-free.
                prop_assert_eq!(w.len() as u64, items);
            }
            StealMany::Retry => prop_assert!(false, "no concurrency, no Retry"),
        }
    }

    #[test]
    fn steal_many_partitions_against_owner_pops_sequentially(
        items in 1u64..=64,
        k in 1usize..=16,
        owner_pops in 0usize..=64,
    ) {
        // Alternate batch claims and owner pops in one thread: the claims
        // must partition the pushed set regardless of interleaving order.
        let (mut w, s) = deque(64);
        for v in 0..items {
            w.push(v).unwrap();
        }
        let mut claimed = Vec::new();
        let mut pops_left = owner_pops;
        loop {
            match s.steal_many(k) {
                StealMany::Stolen(batch) => claimed.extend(batch),
                StealMany::Empty => break,
                StealMany::Retry => {}
            }
            if pops_left > 0 {
                if let Some(v) = w.pop() {
                    claimed.push(v);
                }
                pops_left -= 1;
            }
        }
        while let Some(v) = w.pop() {
            claimed.push(v);
        }
        claimed.sort_unstable();
        prop_assert_eq!(claimed, (0..items).collect::<Vec<_>>());
    }

    #[test]
    fn steal_many_at_the_overflow_boundary_conserves_capacity(
        min_cap in 1usize..=32,
        k in 1usize..=40,
    ) {
        // Fill to capacity (ring full), batch-claim, refill: the number of
        // accepted pushes equals the number of claimed slots, exactly.
        let (mut w, s) = deque(min_cap);
        let cap = w.capacity() as u64;
        for v in 0..cap {
            prop_assert_eq!(w.push(v), Ok(()));
        }
        prop_assert_eq!(w.push(777), Err(Full(777)));
        let batch = s.steal_many(k).stolen().unwrap_or_default();
        let freed = batch.len() as u64;
        prop_assert_eq!(batch, (0..freed).collect::<Vec<_>>());
        for v in 0..freed {
            prop_assert_eq!(w.push(cap + v), Ok(()));
        }
        // The freed slot count is exact.
        prop_assert_eq!(w.push(888), Err(Full(888)));
    }

    #[test]
    fn single_element_sequential_race_has_one_winner(owner_first in proptest::arbitrary::any::<bool>()) {
        let (mut w, s) = deque(2);
        w.push(42).unwrap();
        let (a, b) = if owner_first {
            (w.pop().map(Steal::Stolen).unwrap_or(Steal::Empty), s.steal())
        } else {
            (s.steal(), w.pop().map(Steal::Stolen).unwrap_or(Steal::Empty))
        };
        let winners = [a, b].iter().filter(|o| o.stolen().is_some()).count();
        prop_assert_eq!(winners, 1);
    }
}
