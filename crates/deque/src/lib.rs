//! A Chase–Lev work-stealing deque over plain atomics.
//!
//! The paper's stealing phase "must be done atomically for correctness
//! (i.e., no two cores should be able to steal the same thread)" (§3.1).
//! `sched-rq`'s mutex backend obtains that atomicity by double-locking the
//! two runqueues; this crate provides the lock-free alternative: the
//! owner/stealer deque of Chase & Lev (*Dynamic Circular Work-Stealing
//! Deque*, SPAA 2005), with the memory orderings of Lê et al. (*Correct and
//! Efficient Work-Stealing for Weak Memory Models*, PPoPP 2013).
//!
//! * The **owner** pushes and pops at the *bottom* of the deque.  It never
//!   contends with thieves except on the very last element, where it joins
//!   the thieves' CAS race on `top`.
//! * **Thieves** claim elements at the *top* with a single
//!   compare-and-swap.  A successful CAS *is* the steal's linearization
//!   point: `top` only ever grows, each value of `top` is CASed away at
//!   most once, so every element is claimed by exactly one party — no task
//!   duplicated, no task lost.
//! * A **failed** CAS means another CAS on `top` succeeded in between —
//!   i.e. a concurrent steal (or the owner's last-element take) claimed an
//!   element.  This is the paper's property P1, reproduced at the
//!   instruction level: failures imply concurrent successes.
//!
//! # Design choices
//!
//! The buffer is a **fixed-capacity** power-of-two ring of [`AtomicU64`]
//! slots, chosen over the growable original for two reasons: growth
//! requires reclaiming retired buffers under concurrent racy reads (epoch
//! or hazard-pointer machinery this offline workspace does not carry), and
//! a fixed ring keeps the whole implementation in **safe Rust** — every
//! slot access is an atomic operation, so the "racy" reads of the classic
//! algorithm are well-defined here and the claim argument carries over
//! unchanged.  [`Worker::push`] reports overflow as [`Full`] instead of
//! growing; callers spill (see `sched-rq`'s `DequeRq`) or size the ring for
//! their workload.
//!
//! Elements are bare `u64` words.  Schedulers pack their task descriptors
//! into a word (id + niceness fits comfortably); keeping the deque
//! word-sized is what makes the slot reads atomic and the crate
//! `forbid(unsafe_code)`-clean.
//!
//! Because the ring is fixed-capacity, overflow needs a second structure
//! that **stays visible to thieves** — an owner-private spill list would
//! recreate the idle-while-work-waits bug class the paper targets.  The
//! [`Injector`] (see [`injector`]) is that structure: a shared MPMC segment
//! queue any thief may claim from the moment a rejected element is pushed,
//! with the same [`Steal`] vocabulary and the same deterministic probe
//! hooks as the ring.
//!
//! # Why the stale slot read is safe
//!
//! A thief reads `slots[top & mask]` *before* CASing `top`.  The slot could
//! in principle be overwritten by a later `push` wrapping around the ring —
//! but a push only writes index `b` when `b - top < capacity`, so the
//! overwriting push observed `top > t`, which means the thief's CAS from
//! `t` is already doomed to fail and the stale value is discarded.  A
//! *successful* CAS from `t` therefore proves the value read at `t & mask`
//! was the live element `t`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod injector;

pub use injector::Injector;

use std::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared state of one deque.
#[derive(Debug)]
struct Inner {
    /// Index of the oldest element; grows monotonically, advanced only by
    /// successful CAS (thief steals and the owner's last-element take).
    top: AtomicI64,
    /// Index one past the newest element; written only by the owner.
    bottom: AtomicI64,
    /// The ring of elements; `slots.len()` is a power of two.
    slots: Box<[AtomicU64]>,
    /// `slots.len() - 1`, for cheap index masking.
    mask: i64,
}

impl Inner {
    fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Acquire);
        let t = self.top.load(Ordering::Acquire);
        usize::try_from((b - t).max(0)).expect("clamped to non-negative")
    }
}

/// Error returned by [`Worker::push`] when the ring is full, carrying the
/// rejected element back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Full(pub u64);

/// Outcome of one [`Stealer::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The deque had no elements to steal.
    Empty,
    /// The claiming CAS failed: a *concurrent* claim (another thief, or the
    /// owner taking the last element) advanced `top` in between.  The
    /// caller may retry against the fresh state.
    Retry,
    /// Exactly this thief claimed the element.
    Stolen(u64),
}

impl Steal {
    /// Returns the stolen element, if the attempt succeeded.
    pub fn stolen(self) -> Option<u64> {
        match self {
            Steal::Stolen(v) => Some(v),
            _ => None,
        }
    }
}

/// The owner-side handle: push and pop at the bottom of the deque.
///
/// There is exactly one `Worker` per deque and its methods take `&mut
/// self`: single ownership of the bottom end is enforced by the type
/// system, which is the precondition the Chase–Lev proof rests on.
#[derive(Debug)]
pub struct Worker {
    inner: Arc<Inner>,
}

/// The thief-side handle: claim elements at the top with a CAS.
///
/// Cloneable and shareable; any number of thieves may race.
#[derive(Debug, Clone)]
pub struct Stealer {
    inner: Arc<Inner>,
}

/// Creates an empty deque with at least `min_capacity` slots (rounded up
/// to a power of two), returning the unique owner handle and a cloneable
/// stealer handle.
///
/// # Panics
///
/// Panics if `min_capacity` is zero.
pub fn deque(min_capacity: usize) -> (Worker, Stealer) {
    assert!(min_capacity > 0, "a deque needs at least one slot");
    let capacity = min_capacity.next_power_of_two();
    let slots: Box<[AtomicU64]> = (0..capacity).map(|_| AtomicU64::new(0)).collect();
    let inner = Arc::new(Inner {
        top: AtomicI64::new(0),
        bottom: AtomicI64::new(0),
        slots,
        mask: (capacity - 1) as i64,
    });
    (Worker { inner: Arc::clone(&inner) }, Stealer { inner })
}

impl Worker {
    /// Pushes `value` at the bottom of the deque.
    ///
    /// Returns [`Full`] (carrying the value back) when the ring has no free
    /// slot — overflow is reported, never silently dropped, and never
    /// overwrites an unclaimed element.
    pub fn push(&mut self, value: u64) -> Result<(), Full> {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        if b - t > inner.mask {
            return Err(Full(value));
        }
        inner.slots[(b & inner.mask) as usize].store(value, Ordering::Relaxed);
        inner.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Pops the most recently pushed element (LIFO), racing thieves on the
    /// last one.
    pub fn pop(&mut self) -> Option<u64> {
        self.pop_with_probe(|| {})
    }

    /// [`Worker::pop`] with a verification probe injected after the owner
    /// has published its claim on the bottom element but **before** the
    /// last-element CAS race is resolved.
    ///
    /// See [`Stealer::steal_with_probe`]; this is the owner-side half of
    /// the deterministic race checks.
    pub fn pop_with_probe(&mut self, probe: impl FnOnce()) -> Option<u64> {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let value = inner.slots[(b & inner.mask) as usize].load(Ordering::Relaxed);
        if t == b {
            probe();
            // Last element: join the thieves' CAS race on `top`.  Winning
            // claims the element; losing means a thief claimed it first.
            let won =
                inner.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok();
            inner.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(value);
        }
        Some(value)
    }

    /// Number of elements currently in the deque (exact when quiescent,
    /// a snapshot otherwise).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns `true` if the deque holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// A new stealer handle for this deque.
    pub fn stealer(&self) -> Stealer {
        Stealer { inner: Arc::clone(&self.inner) }
    }
}

impl Stealer {
    /// Attempts to claim the oldest element with a single CAS on `top`.
    ///
    /// [`Steal::Stolen`] means this caller — and nobody else — owns the
    /// element.  [`Steal::Retry`] means the CAS lost to a concurrent claim;
    /// the state has changed, so callers re-evaluating a steal condition
    /// (the re-check of Listing 1, line 12) must do so before retrying.
    pub fn steal(&self) -> Steal {
        self.steal_with_probe(|| {})
    }

    /// [`Stealer::steal`] with a verification probe injected **between**
    /// the optimistic reads and the claiming CAS — the window every
    /// steal-atomicity argument is about.
    ///
    /// Whatever the probe does concurrently (steal, pop, push), the CAS
    /// still claims exclusively or fails: `sched-verify`'s CAS lemmas use
    /// this to check the race *deterministically* instead of hoping the
    /// OS scheduler preempts at the right instruction.
    pub fn steal_with_probe(&self, probe: impl FnOnce()) -> Steal {
        let inner = &self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let value = inner.slots[(t & inner.mask) as usize].load(Ordering::Relaxed);
        probe();
        if inner.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_err() {
            return Steal::Retry;
        }
        Steal::Stolen(value)
    }

    /// Number of elements currently in the deque (a racy snapshot).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns `true` if the deque looks empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_for_the_owner_fifo_for_thieves() {
        let (mut w, s) = deque(8);
        for v in 1..=3 {
            w.push(v).unwrap();
        }
        assert_eq!(w.len(), 3);
        // Thief takes the oldest.
        assert_eq!(s.steal(), Steal::Stolen(1));
        // Owner takes the newest.
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn capacity_rounds_up_and_full_reports_overflow() {
        let (mut w, s) = deque(3);
        assert_eq!(w.capacity(), 4);
        for v in 0..4 {
            w.push(v).unwrap();
        }
        assert_eq!(w.push(99), Err(Full(99)), "the rejected element comes back");
        // Claiming one element frees a slot.
        assert_eq!(s.steal(), Steal::Stolen(0));
        w.push(99).unwrap();
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn wraparound_reuses_slots_only_after_they_are_claimed() {
        let (mut w, s) = deque(4);
        // Push/steal far past the capacity so indices wrap many times.
        for round in 0..64u64 {
            w.push(round).unwrap();
            assert_eq!(s.steal(), Steal::Stolen(round));
        }
        assert!(w.is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn empty_pop_and_steal_are_clean_noops() {
        let (mut w, s) = deque(2);
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
        w.push(7).unwrap();
        assert_eq!(w.pop(), Some(7));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_is_rejected() {
        let _ = deque(0);
    }
}
