//! A Chase–Lev work-stealing deque over plain atomics.
//!
//! The paper's stealing phase "must be done atomically for correctness
//! (i.e., no two cores should be able to steal the same thread)" (§3.1).
//! `sched-rq`'s mutex backend obtains that atomicity by double-locking the
//! two runqueues; this crate provides the lock-free alternative: the
//! owner/stealer deque of Chase & Lev (*Dynamic Circular Work-Stealing
//! Deque*, SPAA 2005), with the memory orderings of Lê et al. (*Correct and
//! Efficient Work-Stealing for Weak Memory Models*, PPoPP 2013).
//!
//! * The **owner** pushes and pops at the *bottom* of the deque.  It never
//!   contends with thieves except on the very last element, where it joins
//!   the thieves' CAS race on `top`.
//! * **Thieves** claim elements at the *top* with a single
//!   compare-and-swap.  A successful CAS *is* the steal's linearization
//!   point: `top` only ever grows, each value of `top` is CASed away at
//!   most once, so every element is claimed by exactly one party — no task
//!   duplicated, no task lost.
//! * A **failed** CAS means another CAS on `top` succeeded in between —
//!   i.e. a concurrent steal (or the owner's last-element take) claimed an
//!   element.  This is the paper's property P1, reproduced at the
//!   instruction level: failures imply concurrent successes.
//!
//! # Design choices
//!
//! The buffer is a **fixed-capacity** power-of-two ring of [`AtomicU64`]
//! slots, chosen over the growable original for two reasons: growth
//! requires reclaiming retired buffers under concurrent racy reads (epoch
//! or hazard-pointer machinery this offline workspace does not carry), and
//! a fixed ring keeps the whole implementation in **safe Rust** — every
//! slot access is an atomic operation, so the "racy" reads of the classic
//! algorithm are well-defined here and the claim argument carries over
//! unchanged.  [`Worker::push`] reports overflow as [`Full`] instead of
//! growing; callers spill (see `sched-rq`'s `DequeRq`) or size the ring for
//! their workload.
//!
//! Elements are bare `u64` words.  Schedulers pack their task descriptors
//! into a word (id + niceness fits comfortably); keeping the deque
//! word-sized is what makes the slot reads atomic and the crate
//! `forbid(unsafe_code)`-clean.
//!
//! Because the ring is fixed-capacity, overflow needs a second structure
//! that **stays visible to thieves** — an owner-private spill list would
//! recreate the idle-while-work-waits bug class the paper targets.  The
//! [`Injector`] (see [`injector`]) is that structure: a shared MPMC segment
//! queue any thief may claim from the moment a rejected element is pushed,
//! with the same [`Steal`] vocabulary and the same deterministic probe
//! hooks as the ring.
//!
//! # Why the stale slot read is safe
//!
//! A thief reads `slots[top & mask]` *before* CASing `top`.  The slot could
//! in principle be overwritten by a later `push` wrapping around the ring —
//! but a push only writes index `b` when `b - top < capacity`, so the
//! overwriting push observed `top > t`, which means the thief's CAS from
//! `t` is already doomed to fail and the stale value is discarded.  A
//! *successful* CAS from `t` therefore proves the value read at `t & mask`
//! was the live element `t`.
//!
//! The same argument covers the **multi-slot** reads of
//! [`Stealer::steal_many`]: a push overwriting any slot in `[t, t + n)`
//! must write at an index `≥ t + capacity`, whose capacity check observed
//! `top > t` — so the batch CAS from `t` is doomed and every value read is
//! discarded together.
//!
//! # Why a batch claim needs a reservation
//!
//! Pushes are not the only hazard for a multi-claim.  The owner pops at the
//! *bottom* and only ever touches `top` for the very last element; it can
//! therefore drain any number of elements **inside** a thief's planned
//! range `[t, t + n)` without the thief's CAS from `t` ever noticing — the
//! CAS would succeed and the drained elements would be claimed twice.  (A
//! single-element claim is immune: claiming only index `t` is validated by
//! the owner's fence-ordered `top` read, which is exactly the Chase–Lev
//! argument.)
//!
//! [`Stealer::steal_many`] closes that hole with a one-word **batch
//! reservation** (`reserved`, the exclusive upper bound of the in-flight
//! claim).  The thief publishes the reservation, then re-reads `bottom`
//! and shrinks its range to what is still present; the owner's pop loads
//! `reserved` and then `top` — **in that order**, both SeqCst, after its
//! SeqCst fence.  Place the pop's `reserved` load in the SeqCst total
//! order against the lifetime of any batch that claims the popped index
//! `x` (reservation CAS → `top` CAS → clear) and exactly three cases
//! remain:
//!
//! 1. *before the reservation CAS* — the batch's post-reservation
//!    `bottom` re-read is fence-ordered after the pop's lowered
//!    `bottom ≤ x`, so the claim shrinks below `x`;
//! 2. *between the CAS and the clear* — the pop observes the reservation
//!    covering `x` and backs off while it is in flight;
//! 3. *after the clear* — the batch's `top` CAS already committed, and
//!    the pop's **later** `top` load observes it, so the pop sees `x`
//!    as already gone.
//!
//! Either way no element is claimed by both parties.  The load order is
//! load-bearing: reading `top` before `reserved` re-opens a window where
//! an entire batch (reserve → CAS → clear) commits between the two loads
//! and the pop sees both a stale `top` and a cleared reservation —
//! `lemmas::cas` forces exactly that straddle deterministically via
//! [`Worker::pop_with_window_probe`].
//!
//! The reservation bound is cleared through a drop guard, so it cannot
//! leak even if the claim attempt unwinds (a panicking probe, a failed
//! allocation); a pop backing off under case 2 therefore waits a bounded
//! number of the reservation holder's own steps — the holder never waits
//! on the owner — though the owner's pop below an in-flight reservation
//! is *blocking* in that window (e.g. if the holder is preempted), which
//! is the one non-blocking concession the batch path makes.  Only one
//! batch reservation is in flight at a time; a thief that loses the
//! reservation race falls back to the plain single-element CAS, so it
//! still makes progress and `Retry` keeps meaning "a concurrent claim
//! advanced `top`" (P1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod injector;

pub use injector::Injector;

use std::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for [`Inner::reserved`]: no batch claim is in flight (no index
/// compares below it).
const RESERVED_NONE: i64 = i64::MIN;

/// Clears the batch reservation when dropped, so the bound is reset on
/// *every* exit from [`Stealer::steal_many_with_probe`] — including an
/// unwind out of the user-supplied probe or the batch allocation.  Owner
/// pops below a stale bound would otherwise back off forever.
struct BatchReservation<'a> {
    reserved: &'a AtomicI64,
}

impl Drop for BatchReservation<'_> {
    fn drop(&mut self) {
        self.reserved.store(RESERVED_NONE, Ordering::SeqCst);
    }
}

/// Shared state of one deque.
#[derive(Debug)]
struct Inner {
    /// Index of the oldest element; grows monotonically, advanced only by
    /// successful CAS (thief steals and the owner's last-element take).
    top: AtomicI64,
    /// Index one past the newest element; written only by the owner.
    bottom: AtomicI64,
    /// Exclusive upper bound of the in-flight batch claim
    /// ([`Stealer::steal_many`]), or [`RESERVED_NONE`].  The owner's pop
    /// backs off from elements below this bound; see the module docs
    /// ("Why a batch claim needs a reservation").
    reserved: AtomicI64,
    /// The ring of elements; `slots.len()` is a power of two.
    slots: Box<[AtomicU64]>,
    /// `slots.len() - 1`, for cheap index masking.
    mask: i64,
}

impl Inner {
    fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Acquire);
        let t = self.top.load(Ordering::Acquire);
        usize::try_from((b - t).max(0)).expect("clamped to non-negative")
    }
}

/// Error returned by [`Worker::push`] when the ring is full, carrying the
/// rejected element back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Full(pub u64);

/// Outcome of one [`Stealer::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The deque had no elements to steal.
    Empty,
    /// The claiming CAS failed: a *concurrent* claim (another thief, or the
    /// owner taking the last element) advanced `top` in between.  The
    /// caller may retry against the fresh state.
    Retry,
    /// Exactly this thief claimed the element.
    Stolen(u64),
}

impl Steal {
    /// Returns the stolen element, if the attempt succeeded.
    pub fn stolen(self) -> Option<u64> {
        match self {
            Steal::Stolen(v) => Some(v),
            _ => None,
        }
    }
}

/// Outcome of one [`Stealer::steal_many`] attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StealMany {
    /// The deque had no elements to steal (or `k` was zero — a zero-sized
    /// batch is claim-free by definition).
    Empty,
    /// The claiming CAS failed: a concurrent claim advanced `top` in
    /// between (P1, exactly as for [`Steal::Retry`]).  Nothing was claimed;
    /// the values read are discarded together.
    Retry,
    /// Exactly this thief claimed these elements — oldest first — with a
    /// single CAS on `top`.
    Stolen(Vec<u64>),
}

impl StealMany {
    /// Returns the stolen elements, if the attempt claimed any.
    pub fn stolen(self) -> Option<Vec<u64>> {
        match self {
            StealMany::Stolen(v) => Some(v),
            _ => None,
        }
    }

    /// Number of elements claimed by this attempt.
    pub fn count(&self) -> usize {
        match self {
            StealMany::Stolen(v) => v.len(),
            _ => 0,
        }
    }
}

/// The owner-side handle: push and pop at the bottom of the deque.
///
/// There is exactly one `Worker` per deque and its methods take `&mut
/// self`: single ownership of the bottom end is enforced by the type
/// system, which is the precondition the Chase–Lev proof rests on.
#[derive(Debug)]
pub struct Worker {
    inner: Arc<Inner>,
}

/// The thief-side handle: claim elements at the top with a CAS.
///
/// Cloneable and shareable; any number of thieves may race.
#[derive(Debug, Clone)]
pub struct Stealer {
    inner: Arc<Inner>,
}

/// Creates an empty deque with at least `min_capacity` slots (rounded up
/// to a power of two), returning the unique owner handle and a cloneable
/// stealer handle.
///
/// # Panics
///
/// Panics if `min_capacity` is zero.
pub fn deque(min_capacity: usize) -> (Worker, Stealer) {
    assert!(min_capacity > 0, "a deque needs at least one slot");
    let capacity = min_capacity.next_power_of_two();
    let slots: Box<[AtomicU64]> = (0..capacity).map(|_| AtomicU64::new(0)).collect();
    let inner = Arc::new(Inner {
        top: AtomicI64::new(0),
        bottom: AtomicI64::new(0),
        reserved: AtomicI64::new(RESERVED_NONE),
        slots,
        mask: (capacity - 1) as i64,
    });
    (Worker { inner: Arc::clone(&inner) }, Stealer { inner })
}

impl Worker {
    /// Pushes `value` at the bottom of the deque.
    ///
    /// Returns [`Full`] (carrying the value back) when the ring has no free
    /// slot — overflow is reported, never silently dropped, and never
    /// overwrites an unclaimed element.
    pub fn push(&mut self, value: u64) -> Result<(), Full> {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        if b - t > inner.mask {
            return Err(Full(value));
        }
        inner.slots[(b & inner.mask) as usize].store(value, Ordering::Relaxed);
        inner.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Pops the most recently pushed element (LIFO), racing thieves on the
    /// last one.
    pub fn pop(&mut self) -> Option<u64> {
        self.pop_with_probe(|| {})
    }

    /// [`Worker::pop`] with a verification probe injected after the owner
    /// has published its claim on the bottom element but **before** the
    /// last-element CAS race is resolved.
    ///
    /// See [`Stealer::steal_with_probe`]; this is the owner-side half of
    /// the deterministic race checks.
    pub fn pop_with_probe(&mut self, probe: impl FnOnce()) -> Option<u64> {
        self.pop_impl(|| {}, probe)
    }

    /// [`Worker::pop`] with a verification probe injected **between** the
    /// pop's `reserved` load and its `top` load — the window in which a
    /// batch claim can run to completion (reserve → CAS → clear) entirely
    /// inside one pop.  The pop must still observe the batch's advanced
    /// `top` (the load-order argument in the module docs); `lemmas::cas`
    /// uses this hook to force that straddle deterministically.
    ///
    /// The probe may fire once per retry of the pop's back-off loop, hence
    /// `FnMut`.
    pub fn pop_with_window_probe(&mut self, window_probe: impl FnMut()) -> Option<u64> {
        self.pop_impl(window_probe, || {})
    }

    fn pop_impl(
        &mut self,
        mut window_probe: impl FnMut(),
        claim_probe: impl FnOnce(),
    ) -> Option<u64> {
        let mut claim_probe = Some(claim_probe);
        loop {
            let inner = &self.inner;
            let b = inner.bottom.load(Ordering::Relaxed) - 1;
            inner.bottom.store(b, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            // `reserved` strictly before `top`, both SeqCst: observing a
            // cleared reservation must imply observing the batch's CAS'd
            // `top` (case 3 of the module docs).  Loading `top` first
            // admits a straddle where a whole batch commits between the
            // two loads and this pop claims an element the batch already
            // took.
            let r = inner.reserved.load(Ordering::SeqCst);
            window_probe();
            let t = inner.top.load(Ordering::SeqCst);
            if t > b {
                // Empty: restore bottom.
                inner.bottom.store(b + 1, Ordering::Relaxed);
                return None;
            }
            if t < b && r > b {
                // A batch claim has reserved this element (see the module
                // docs).  The reservation holder never waits on the owner
                // and clears its bound even on unwind (drop guard), so it
                // clears in a bounded number of its own steps; back off
                // and retry against the post-batch state.  The last
                // element (`t == b`) needs no back-off: there the owner
                // joins the CAS race on `top`, which arbitrates against
                // the batch CAS directly.
                inner.bottom.store(b + 1, Ordering::Relaxed);
                std::hint::spin_loop();
                continue;
            }
            let value = inner.slots[(b & inner.mask) as usize].load(Ordering::Relaxed);
            if t == b {
                if let Some(probe) = claim_probe.take() {
                    probe();
                }
                // Last element: join the thieves' CAS race on `top`.  Winning
                // claims the element; losing means a thief claimed it first.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                return won.then_some(value);
            }
            return Some(value);
        }
    }

    /// Number of elements currently in the deque (exact when quiescent,
    /// a snapshot otherwise).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns `true` if the deque holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// A new stealer handle for this deque.
    pub fn stealer(&self) -> Stealer {
        Stealer { inner: Arc::clone(&self.inner) }
    }
}

impl Stealer {
    /// Attempts to claim the oldest element with a single CAS on `top`.
    ///
    /// [`Steal::Stolen`] means this caller — and nobody else — owns the
    /// element.  [`Steal::Retry`] means the CAS lost to a concurrent claim;
    /// the state has changed, so callers re-evaluating a steal condition
    /// (the re-check of Listing 1, line 12) must do so before retrying.
    pub fn steal(&self) -> Steal {
        self.steal_with_probe(|| {})
    }

    /// [`Stealer::steal`] with a verification probe injected **between**
    /// the optimistic reads and the claiming CAS — the window every
    /// steal-atomicity argument is about.
    ///
    /// Whatever the probe does concurrently (steal, pop, push), the CAS
    /// still claims exclusively or fails: `sched-verify`'s CAS lemmas use
    /// this to check the race *deterministically* instead of hoping the
    /// OS scheduler preempts at the right instruction.
    pub fn steal_with_probe(&self, probe: impl FnOnce()) -> Steal {
        let inner = &self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let value = inner.slots[(t & inner.mask) as usize].load(Ordering::Relaxed);
        probe();
        if inner.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_err() {
            return Steal::Retry;
        }
        Steal::Stolen(value)
    }

    /// Attempts to claim up to `k` of the oldest elements with a **single**
    /// CAS on `top` — one acquisition amortized over the whole batch,
    /// instead of one CAS race per element.
    ///
    /// The claim is protected against concurrent owner pops by the batch
    /// reservation described in the module docs; the per-slot reads happen
    /// before the CAS and are covered by the same overwrite-safety argument
    /// as the single-element steal.  `k == 0` returns
    /// [`StealMany::Empty`] without touching the deque, and a contended
    /// reservation falls back to the single-element path (claiming at most
    /// one), so [`StealMany::Retry`] still means a concurrent claim
    /// advanced `top`.
    pub fn steal_many(&self, k: usize) -> StealMany {
        self.steal_many_with_probe(k, || {})
    }

    /// [`Stealer::steal_many`] with a verification probe injected between
    /// the batched slot reads and the claiming CAS — the multi-claim
    /// window `sched-verify`'s batch lemmas force interleavings into.
    pub fn steal_many_with_probe(&self, k: usize, probe: impl FnOnce()) -> StealMany {
        // A zero-sized batch claims nothing and must not touch the deque.
        if k == 0 {
            return StealMany::Empty;
        }
        let single = |outcome: Steal| match outcome {
            Steal::Empty => StealMany::Empty,
            Steal::Retry => StealMany::Retry,
            Steal::Stolen(v) => StealMany::Stolen(vec![v]),
        };
        if k == 1 {
            // A batch of one is the plain CAS; no reservation needed.
            return single(self.steal_with_probe(probe));
        }
        let inner = &self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return StealMany::Empty;
        }
        let mut n = (b - t).min(i64::try_from(k).unwrap_or(i64::MAX));
        // Publish the reservation.  At most one batch claim is in flight
        // per deque; a loser falls back to the single-element path so the
        // attempt still makes progress without waiting.
        if inner
            .reserved
            .compare_exchange(RESERVED_NONE, t + n, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return single(self.steal_with_probe(probe));
        }
        // Held from here to every exit — return, lost CAS, or an unwind
        // out of the probe or the Vec allocation.  A leaked reservation
        // would pin owner pops below the stale bound in their back-off
        // loop forever, so clearing must not depend on reaching any
        // particular line below.
        let _reservation = BatchReservation { reserved: &inner.reserved };
        // Re-read `bottom` under the reservation and shrink the claim to
        // what is still present: any owner pop that did not observe the
        // reservation is fence-ordered to have its lowered `bottom` visible
        // here, so the shrunk range excludes every element the owner took.
        fence(Ordering::SeqCst);
        let b2 = inner.bottom.load(Ordering::Acquire);
        if b2 <= t {
            return StealMany::Empty;
        }
        n = n.min(b2 - t);
        let mut values = Vec::with_capacity(usize::try_from(n).expect("positive batch"));
        for i in 0..n {
            values.push(inner.slots[((t + i) & inner.mask) as usize].load(Ordering::Relaxed));
        }
        probe();
        let claimed =
            inner.top.compare_exchange(t, t + n, Ordering::SeqCst, Ordering::Relaxed).is_ok();
        if claimed {
            StealMany::Stolen(values)
        } else {
            StealMany::Retry
        }
    }

    /// Number of elements currently in the deque (a racy snapshot).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns `true` if the deque looks empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_for_the_owner_fifo_for_thieves() {
        let (mut w, s) = deque(8);
        for v in 1..=3 {
            w.push(v).unwrap();
        }
        assert_eq!(w.len(), 3);
        // Thief takes the oldest.
        assert_eq!(s.steal(), Steal::Stolen(1));
        // Owner takes the newest.
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn capacity_rounds_up_and_full_reports_overflow() {
        let (mut w, s) = deque(3);
        assert_eq!(w.capacity(), 4);
        for v in 0..4 {
            w.push(v).unwrap();
        }
        assert_eq!(w.push(99), Err(Full(99)), "the rejected element comes back");
        // Claiming one element frees a slot.
        assert_eq!(s.steal(), Steal::Stolen(0));
        w.push(99).unwrap();
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn wraparound_reuses_slots_only_after_they_are_claimed() {
        let (mut w, s) = deque(4);
        // Push/steal far past the capacity so indices wrap many times.
        for round in 0..64u64 {
            w.push(round).unwrap();
            assert_eq!(s.steal(), Steal::Stolen(round));
        }
        assert!(w.is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn empty_pop_and_steal_are_clean_noops() {
        let (mut w, s) = deque(2);
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
        w.push(7).unwrap();
        assert_eq!(w.pop(), Some(7));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_is_rejected() {
        let _ = deque(0);
    }

    #[test]
    fn steal_many_claims_the_oldest_elements_in_order() {
        let (mut w, s) = deque(8);
        for v in 0..6 {
            w.push(v).unwrap();
        }
        assert_eq!(s.steal_many(3), StealMany::Stolen(vec![0, 1, 2]));
        // The remainder is untouched: owner still pops LIFO, thief FIFO.
        assert_eq!(w.pop(), Some(5));
        assert_eq!(s.steal(), Steal::Stolen(3));
        assert_eq!(s.steal_many(8), StealMany::Stolen(vec![4]));
        assert_eq!(s.steal_many(2), StealMany::Empty);
    }

    #[test]
    fn steal_many_k_larger_than_len_claims_everything_present() {
        let (mut w, s) = deque(4);
        for v in 10..13 {
            w.push(v).unwrap();
        }
        assert_eq!(s.steal_many(64), StealMany::Stolen(vec![10, 11, 12]));
        assert!(w.is_empty());
    }

    #[test]
    fn steal_many_zero_is_claim_free() {
        let (mut w, s) = deque(2);
        w.push(5).unwrap();
        assert_eq!(s.steal_many(0), StealMany::Empty);
        assert_eq!(w.len(), 1, "a zero-sized batch must not claim");
        assert_eq!(s.steal_many(0), StealMany::Empty);
        assert_eq!(s.steal(), Steal::Stolen(5));
    }

    #[test]
    fn steal_many_on_an_empty_deque_is_empty() {
        let (_w, s) = deque(4);
        assert_eq!(s.steal_many(4), StealMany::Empty);
    }

    #[test]
    fn steal_many_at_the_overflow_boundary_frees_the_whole_batch() {
        // Fill the ring to capacity, batch-claim, and verify the freed
        // slots are immediately reusable — the wraparound indices the
        // multi-slot overwrite argument is about.
        let (mut w, s) = deque(4);
        for v in 0..4 {
            w.push(v).unwrap();
        }
        assert_eq!(w.push(99), Err(Full(99)));
        assert_eq!(s.steal_many(3), StealMany::Stolen(vec![0, 1, 2]));
        for v in 4..7 {
            w.push(v).unwrap();
        }
        assert_eq!(w.push(99), Err(Full(99)), "capacity is honoured after the batch");
        assert_eq!(s.steal_many(8), StealMany::Stolen(vec![3, 4, 5, 6]));
        assert!(s.is_empty());
    }

    #[test]
    fn steal_many_wraparound_stays_exact() {
        let (mut w, s) = deque(4);
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for round in 0..32u64 {
            w.push(2 * round).unwrap();
            w.push(2 * round + 1).unwrap();
            expected.extend([2 * round, 2 * round + 1]);
            got.extend(s.steal_many(2).stolen().unwrap());
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn probed_rival_claim_dooms_the_batch_cas() {
        let (mut w, s) = deque(8);
        for v in 0..4 {
            w.push(v).unwrap();
        }
        let rival = s.clone();
        let mut rival_got = None;
        let outcome = s.steal_many_with_probe(3, || {
            rival_got = rival.steal().stolen();
        });
        assert_eq!(rival_got, Some(0), "the rival claims inside the window");
        assert_eq!(outcome, StealMany::Retry, "the doomed batch CAS must fail");
        // Nothing was lost or duplicated: the remainder drains exactly once.
        assert_eq!(s.steal_many(8), StealMany::Stolen(vec![1, 2, 3]));
    }

    #[test]
    fn owner_pop_above_the_reservation_proceeds_during_a_batch() {
        let (mut w, s) = deque(8);
        for v in 0..4 {
            w.push(v).unwrap();
        }
        let worker = std::cell::RefCell::new(w);
        // The batch reserves [0, 2); the owner's pop of index 3 is outside
        // the reservation and must not block or conflict.
        let outcome = s.steal_many_with_probe(2, || {
            assert_eq!(worker.borrow_mut().pop(), Some(3));
        });
        assert_eq!(outcome, StealMany::Stolen(vec![0, 1]));
        assert_eq!(worker.borrow_mut().pop(), Some(2));
        assert_eq!(worker.borrow_mut().pop(), None);
    }

    #[test]
    fn a_panicking_probe_clears_the_batch_reservation() {
        // The reservation is cleared by a drop guard, so an unwind out of
        // the probe must not leave a stale bound pinning owner pops in
        // their back-off loop.
        let (mut w, s) = deque(8);
        for v in 0..4 {
            w.push(v).unwrap();
        }
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.steal_many_with_probe(3, || panic!("probe unwinds mid-claim"));
        }));
        assert!(attempt.is_err(), "the probe's panic propagates");
        // Nothing was claimed (the CAS never ran), the owner's pop below
        // the dead reservation's bound does not spin, and fresh batches
        // claim normally.
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal_many(8), StealMany::Stolen(vec![0, 1, 2]));
        assert!(s.is_empty());
    }

    #[test]
    fn a_batch_completing_inside_the_pop_window_is_observed() {
        // A whole batch (reserve -> CAS -> clear) runs between the pop's
        // `reserved` load and its `top` load: the pop's later `top` load
        // must see the batch's claim, so the parties partition the deque.
        // (With the loads in the reverse order the pop would see a stale
        // `top` and a cleared reservation and double-claim.)
        let (mut w, s) = deque(8);
        for v in 0..3 {
            w.push(v).unwrap();
        }
        let thief = s.clone();
        let mut batch = None;
        let got = w.pop_with_window_probe(|| {
            if batch.is_none() {
                batch = Some(thief.steal_many(8));
            }
        });
        // The batch saw the pop's lowered bottom and claimed [0, 1]; the
        // pop then won the last-element race on 2.
        assert_eq!(batch, Some(StealMany::Stolen(vec![0, 1])));
        assert_eq!(got, Some(2));
        assert!(s.is_empty());
    }

    #[test]
    fn owner_pop_inside_its_probe_sees_the_lowered_bottom() {
        // The owner lowers `bottom` over the last element; a batch arriving
        // in the owner's CAS window observes the lowered bottom and backs
        // off empty — the single-element race keeps exactly one winner.
        let (mut w, s) = deque(2);
        w.push(9).unwrap();
        let thief = s.clone();
        let mut thief_saw = None;
        let got = w.pop_with_probe(|| {
            thief_saw = Some(thief.steal_many(4));
        });
        assert_eq!(got, Some(9));
        assert_eq!(thief_saw, Some(StealMany::Empty));
    }
}
