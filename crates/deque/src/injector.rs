//! A shared MPMC injector: the overflow half of the work-stealing story.
//!
//! The Chase–Lev ring in [`crate`] is fixed-capacity: [`crate::Worker::push`]
//! reports [`crate::Full`] instead of growing.  Whatever the caller does with
//! the rejected element decides whether the system stays *work-conserving*
//! (the paper's criterion: no core idles while runnable work waits).  An
//! owner-private spill list — the obvious fix — reintroduces exactly the bug
//! class the paper targets: spilled work is counted by load observers but
//! **invisible to thieves**, so idle cores starve against a non-empty queue
//! until some owner-side drain runs.
//!
//! The `Injector` is the conserving alternative, in the style of crossbeam's
//! global injector: a multi-producer/multi-consumer segment queue that the
//! owner overflows into and that *any* thief may claim from the moment the
//! push returns.  `sched-rq`'s `DequeRq` pairs one injector with each ring;
//! thieves check a victim's injector share whenever the ring CAS finds it
//! empty, so overflow never hides.
//!
//! # Design
//!
//! The queue is **finely locked**, not lock-free: elements live in
//! fixed-size segments (amortising allocation to one per
//! [`SEGMENT_CAPACITY`] pushes) behind a single mutex whose critical
//! sections are O(1) pushes and pops (the batch claim pops up to its
//! `max`, and never runs caller code under the lock) — no traversal, no
//! reallocation of live elements.  What *is* lock-free is the empty check: a resident
//! counter published with release/acquire atomics lets thieves skip empty
//! injectors without touching the lock, which keeps the common case (no
//! overflow anywhere) free of any shared-lock traffic.  The overflow path
//! itself is rare by construction — it only runs when a ring sized for the
//! workload has already filled — so a short mutex hold there buys
//! simplicity without showing up on the owner's hot path, and the whole
//! crate stays `forbid(unsafe_code)`-clean.
//!
//! # The `Retry` contract
//!
//! [`Injector::steal`] speaks the same [`Steal`] vocabulary as the ring,
//! with the same P1 flavour: the resident counter is incremented only
//! *after* an element is reachable and decremented only by the claim that
//! removes it, so a thief that observed residents but found the queue empty
//! under the lock lost a race to a **concurrent successful claim** — that
//! attempt returns [`Steal::Retry`], never a false [`Steal::Empty`].
//! `sched-verify`'s injector lemmas pin this deterministically through the
//! probe hooks ([`Injector::steal_with_probe`], [`Injector::push_with_probe`],
//! [`Injector::steal_batch_with_probe`]), which force the adversarial
//! interleaving instead of hoping the OS preempts between the counter read
//! and the lock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::Steal;

/// Elements per segment: large enough that a sustained overflow storm
/// allocates rarely, small enough that an idle injector pins one cache
/// line's worth of bookkeeping plus half a kilobyte.
pub const SEGMENT_CAPACITY: usize = 64;

/// One fixed-size block of the segment chain.  `slots[head..tail]` are the
/// live elements; pushes fill the last segment's tail, claims advance the
/// first segment's head, and a fully drained front segment is recycled.
#[derive(Debug)]
struct Segment {
    slots: [u64; SEGMENT_CAPACITY],
    head: usize,
    tail: usize,
}

impl Segment {
    fn new() -> Self {
        Segment { slots: [0; SEGMENT_CAPACITY], head: 0, tail: 0 }
    }
}

/// The mutex-protected side: a chain of segments, oldest first.
#[derive(Debug, Default)]
struct Chain {
    segments: VecDeque<Segment>,
}

impl Chain {
    fn push(&mut self, value: u64) {
        let needs_segment = self.segments.back().is_none_or(|s| s.tail == SEGMENT_CAPACITY);
        if needs_segment {
            self.segments.push_back(Segment::new());
        }
        let seg = self.segments.back_mut().expect("a segment was just ensured");
        seg.slots[seg.tail] = value;
        seg.tail += 1;
    }

    fn pop(&mut self) -> Option<u64> {
        let nr_segments = self.segments.len();
        let seg = self.segments.front_mut()?;
        if seg.head == seg.tail {
            // Only the last segment may sit empty (as push's scratch); an
            // empty front segment with no successor means an empty chain.
            return None;
        }
        let value = seg.slots[seg.head];
        seg.head += 1;
        if seg.head == seg.tail {
            // Drained: recycle the segment unless push is still filling it.
            if seg.tail == SEGMENT_CAPACITY || nr_segments > 1 {
                self.segments.pop_front();
            } else {
                seg.head = 0;
                seg.tail = 0;
            }
        }
        Some(value)
    }
}

/// A shared MPMC overflow queue (see the module docs).
///
/// Any number of producers and claimants may race; there is no owner end.
/// All methods take `&self`.
#[derive(Debug, Default)]
pub struct Injector {
    /// Number of claimable residents.  Incremented *after* an element is
    /// reachable in the chain, decremented *by* the claim that removes it
    /// (both inside the lock), so a lock-free read is never an
    /// over-statement of unreachable work.
    len: AtomicU64,
    chain: Mutex<Chain>,
}

impl Injector {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector::default()
    }

    fn lock(&self) -> MutexGuard<'_, Chain> {
        // The chain holds plain integers; a panic inside the critical
        // section cannot leave it logically torn, so poisoning is cleared.
        self.chain.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Makes `value` claimable by any thief.  Never fails and never blocks
    /// beyond the O(1) critical section.
    pub fn push(&self, value: u64) {
        self.push_with_probe(value, || {});
    }

    /// [`Injector::push`] with a verification probe injected **before** the
    /// element is published — the window in which a concurrent claimant
    /// must see the injector as it was, not half-updated.
    ///
    /// Whatever the probe does (steal, push, read `len`), the element being
    /// pushed is not yet counted and not yet claimable: publication is
    /// atomic from every observer's point of view.  The injector lemmas in
    /// `sched-verify` use this to check the push linearization point
    /// deterministically.
    pub fn push_with_probe(&self, value: u64, probe: impl FnOnce()) {
        probe();
        let mut chain = self.lock();
        chain.push(value);
        // Counted only now that the element is reachable: a concurrent
        // `len() > 0` observation is therefore always backed by work that
        // was genuinely claimable at that instant.
        self.len.fetch_add(1, Ordering::Release);
    }

    /// Attempts to claim one element.
    ///
    /// * [`Steal::Stolen`] — this caller, and nobody else, owns the element.
    /// * [`Steal::Empty`] — no resident was published at the check.
    /// * [`Steal::Retry`] — residents were observed but a **concurrent
    ///   claim** emptied the queue before this one acquired the lock; the
    ///   state has changed, so callers re-evaluating a steal condition must
    ///   do so before retrying (the same contract as the ring's CAS loss).
    pub fn steal(&self) -> Steal {
        self.steal_with_probe(|| {})
    }

    /// [`Injector::steal`] with a verification probe injected **between**
    /// the lock-free resident check and the claiming critical section — the
    /// window the `Retry` contract is about.
    ///
    /// A probe that performs a rival claim forces this attempt to observe
    /// the loss and report [`Steal::Retry`]; `sched-verify` uses the hook to
    /// check "retry implies concurrent success" on forced interleavings.
    pub fn steal_with_probe(&self, probe: impl FnOnce()) -> Steal {
        if self.len.load(Ordering::Acquire) == 0 {
            return Steal::Empty;
        }
        probe();
        let mut chain = self.lock();
        match chain.pop() {
            Some(value) => {
                self.len.fetch_sub(1, Ordering::Release);
                Steal::Stolen(value)
            }
            // Residents were published when we checked; their disappearance
            // can only be another claimant's success.
            None => Steal::Retry,
        }
    }

    /// Claims up to `max` elements under one lock acquisition, feeding
    /// each to `sink` in FIFO order; returns how many were claimed.
    ///
    /// This is the balancer-facing batch API (the ROADMAP's batched-claim
    /// step 3 is its intended caller): a thief that found a victim's ring
    /// empty can move a chunk of its overflow in one go instead of paying
    /// a lock round-trip per element.
    ///
    /// Unlike [`Injector::steal`], a lost race is absorbed *inside* the
    /// call: when residents were observed but concurrent claims drained
    /// the queue first, the attempt re-checks and retries rather than
    /// returning — so a return of `0` always means "no resident was
    /// published at the final check" (a genuine empty), never a
    /// misreported [`Steal::Retry`] that would read as "no work" to a
    /// backing-off balancer.  Callers that need the per-claim retry
    /// signal to re-evaluate a steal condition use [`Injector::steal`].
    pub fn steal_batch(&self, max: usize, sink: impl FnMut(u64)) -> usize {
        self.steal_batch_with_probe(max, sink, || {})
    }

    /// [`Injector::steal_batch`] with a verification probe injected once,
    /// between the first resident check and the lock — the same lost-race
    /// window as [`Injector::steal_with_probe`].
    ///
    /// A probe that performs rival claims shrinks (or empties) what the
    /// batch can take; whoever wins each element, the resident counter is
    /// decremented exactly once per element — a partial batch never
    /// double-counts the elements a rival took, and a fully raced-out
    /// attempt returns `0` having decremented nothing.
    pub fn steal_batch_with_probe(
        &self,
        max: usize,
        mut sink: impl FnMut(u64),
        probe: impl FnOnce(),
    ) -> usize {
        if max == 0 {
            return 0;
        }
        let mut probe = Some(probe);
        let mut batch = Vec::new();
        loop {
            if self.len.load(Ordering::Acquire) == 0 {
                return 0;
            }
            if let Some(probe) = probe.take() {
                probe();
            }
            let mut chain = self.lock();
            while batch.len() < max {
                match chain.pop() {
                    Some(value) => {
                        self.len.fetch_sub(1, Ordering::Release);
                        batch.push(value);
                    }
                    None => break,
                }
            }
            drop(chain);
            if !batch.is_empty() {
                // The sink runs strictly outside the critical section: a
                // caller whose sink touches this (non-reentrant) injector
                // again — re-enqueueing a claimed element, say — must not
                // deadlock, and rival claimants must not wait on caller
                // code.
                let claimed = batch.len();
                for value in batch {
                    sink(value);
                }
                return claimed;
            }
            // Residents were observed but rivals drained them first: a
            // concurrent claim happened, so re-check instead of reporting
            // a false empty (progress is guaranteed by the rivals' wins).
        }
    }

    /// Number of claimable residents (exact between operations, a racy
    /// snapshot during them — never counting unreachable work).
    pub fn len(&self) -> usize {
        usize::try_from(self.len.load(Ordering::Acquire)).expect("resident count fits usize")
    }

    /// Returns `true` if no resident is published.
    pub fn is_empty(&self) -> bool {
        self.len.load(Ordering::Acquire) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn fifo_across_segment_boundaries() {
        let inj = Injector::new();
        let total = (3 * SEGMENT_CAPACITY + 7) as u64;
        for v in 0..total {
            inj.push(v);
        }
        assert_eq!(inj.len(), total as usize);
        for v in 0..total {
            assert_eq!(inj.steal(), Steal::Stolen(v), "injector claims are FIFO");
        }
        assert_eq!(inj.steal(), Steal::Empty);
        assert!(inj.is_empty());
    }

    #[test]
    fn interleaved_push_and_steal_recycle_segments() {
        let inj = Injector::new();
        // Far more traffic than any segment holds: the chain must recycle
        // drained segments instead of growing without bound, and claims
        // must stay FIFO and exactly-once throughout.
        let rounds = 8 * SEGMENT_CAPACITY as u64;
        let mut claimed = Vec::new();
        for round in 0..rounds {
            inj.push(2 * round);
            inj.push(2 * round + 1);
            claimed.push(inj.steal().stolen().expect("one resident per round is claimable"));
        }
        assert_eq!(inj.len(), rounds as usize, "one element left behind per round");
        while let Steal::Stolen(v) = inj.steal() {
            claimed.push(v);
        }
        let expected: Vec<u64> = (0..2 * rounds).collect();
        assert_eq!(claimed, expected, "claims are FIFO and exactly-once across recycling");
    }

    #[test]
    fn steal_batch_claims_at_most_max_in_order() {
        let inj = Injector::new();
        for v in 0..10 {
            inj.push(v);
        }
        let mut got = Vec::new();
        assert_eq!(inj.steal_batch(4, |v| got.push(v)), 4);
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(inj.len(), 6);
        assert_eq!(inj.steal_batch(100, |v| got.push(v)), 6);
        assert_eq!(got.len(), 10);
        assert_eq!(inj.steal_batch(1, |_| panic!("empty batch must not claim")), 0);
        assert_eq!(inj.steal_batch(0, |_| panic!("max 0 must not claim")), 0);
    }

    #[test]
    fn batch_raced_by_a_partial_rival_drain_decrements_exactly_once() {
        // A rival claims most of the queue inside the check-to-lock
        // window.  The batch takes what is left, and every element —
        // whoever won it — moved the resident counter exactly once: the
        // final count is zero, not negative wrap and not stale residue.
        let inj = Injector::new();
        for v in 0..8 {
            inj.push(v);
        }
        let mut rival = Vec::new();
        let mut got = Vec::new();
        let claimed = inj.steal_batch_with_probe(
            4,
            |v| got.push(v),
            || {
                for _ in 0..6 {
                    rival.push(inj.steal().stolen().expect("rival wins its claims"));
                }
            },
        );
        assert_eq!(claimed, 2, "the batch takes what the rival left");
        assert_eq!(got, vec![6, 7]);
        assert_eq!(rival, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(inj.len(), 0, "8 elements, 8 decrements — nothing double-counted");
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn batch_raced_out_entirely_reports_a_true_empty_with_an_intact_counter() {
        // The rival drains *everything* in the window: the batch claims
        // nothing, returns the genuine-empty 0, and must not have touched
        // the counter — the next push/claim cycle sees exact counts.
        let inj = Injector::new();
        for v in 0..3 {
            inj.push(v);
        }
        let mut rival = 0;
        let claimed = inj.steal_batch_with_probe(
            8,
            |_| panic!("a raced-out batch must not deliver"),
            || {
                while inj.steal().stolen().is_some() {
                    rival += 1;
                }
            },
        );
        assert_eq!(claimed, 0);
        assert_eq!(rival, 3);
        assert_eq!(inj.len(), 0);
        inj.push(9);
        assert_eq!(inj.len(), 1, "the counter survives the raced cycle intact");
        assert_eq!(inj.steal(), Steal::Stolen(9));
        assert_eq!(inj.len(), 0);
    }

    #[test]
    fn forced_rival_claim_in_the_window_yields_retry_not_empty() {
        // The deterministic P1 analogue: residents observed, then a rival
        // drains the queue inside the check-to-lock window.  The doomed
        // attempt must report Retry (a concurrent claim happened), never a
        // false Empty (which would read as "no work" to a backing-off
        // thief).
        let inj = Injector::new();
        inj.push(42);
        let mut rival_got = None;
        let outcome = inj.steal_with_probe(|| {
            rival_got = inj.steal().stolen();
        });
        assert_eq!(rival_got, Some(42), "the rival's claim inside the window succeeds");
        assert_eq!(outcome, Steal::Retry);
        assert_eq!(inj.steal(), Steal::Empty, "the element was claimed exactly once");
    }

    #[test]
    fn unpublished_pushes_are_neither_counted_nor_claimable() {
        let inj = Injector::new();
        inj.push_with_probe(7, || {
            assert_eq!(inj.len(), 0, "mid-push, the element is not yet counted");
            assert_eq!(inj.steal(), Steal::Empty, "…and not yet claimable");
        });
        assert_eq!(inj.len(), 1);
        assert_eq!(inj.steal(), Steal::Stolen(7));
    }

    fn storm(producers: usize, thieves: usize, per_producer: u64) {
        let inj = Injector::new();
        let start = AtomicBool::new(false);
        let total_claimed = AtomicU64::new(0);
        let mut claims: Vec<u64> = Vec::new();
        std::thread::scope(|scope| {
            for p in 0..producers {
                let inj = &inj;
                let start = &start;
                scope.spawn(move || {
                    while !start.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    for i in 0..per_producer {
                        inj.push(p as u64 * per_producer + i);
                    }
                });
            }
            let handles: Vec<_> = (0..thieves)
                .map(|_| {
                    let inj = &inj;
                    let start = &start;
                    let total_claimed = &total_claimed;
                    let target = producers as u64 * per_producer;
                    scope.spawn(move || {
                        while !start.load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                        let mut got = Vec::new();
                        // Keep claiming until the whole storm is settled:
                        // producers may still be mid-push when Empty shows,
                        // so thieves run until the *global* claim count says
                        // every pushed element found an owner.
                        while total_claimed.load(Ordering::Acquire) < target {
                            if let Steal::Stolen(v) = inj.steal() {
                                got.push(v);
                                total_claimed.fetch_add(1, Ordering::AcqRel);
                            }
                        }
                        got
                    })
                })
                .collect();
            start.store(true, Ordering::Release);
            for handle in handles {
                claims.extend(handle.join().unwrap());
            }
        });
        claims.sort_unstable();
        let expected: Vec<u64> = (0..producers as u64 * per_producer).collect();
        assert_eq!(claims, expected, "every element claimed exactly once");
        assert!(inj.is_empty());
    }

    #[test]
    fn concurrent_storm_claims_every_element_exactly_once() {
        storm(2, 3, 256);
    }

    #[test]
    #[ignore = "nightly-strength stress; run via `cargo test -- --ignored`"]
    fn stress_storm_high_iteration() {
        for _ in 0..20 {
            storm(4, 4, 2048);
        }
    }
}
