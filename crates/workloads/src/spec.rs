//! Workload description consumed by the simulator.

/// One phase of a thread's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Execute on a CPU for this many nanoseconds.
    Compute(u64),
    /// Sleep (blocked, off the runqueue) for this many nanoseconds.
    Sleep(u64),
    /// Wait at the barrier with this id until every participant arrives.
    Barrier(u32),
}

impl Phase {
    /// Returns the CPU time this phase consumes.
    pub fn cpu_ns(&self) -> u64 {
        match self {
            Phase::Compute(ns) => *ns,
            _ => 0,
        }
    }

    /// Returns the wall time this phase occupies on its own (compute or
    /// sleep duration; zero for barriers, whose wait depends on the other
    /// participants).
    pub fn duration_ns(&self) -> u64 {
        match self {
            Phase::Compute(ns) | Phase::Sleep(ns) => *ns,
            Phase::Barrier(_) => 0,
        }
    }
}

/// The static description of one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSpec {
    /// Niceness of the thread (importance).
    pub nice: i8,
    /// Time at which the thread becomes runnable for the first time.
    pub arrival_ns: u64,
    /// Core the thread is initially placed on, if the workload pins the
    /// fork; `None` lets the scheduler's wakeup placement decide.
    pub origin_core: Option<usize>,
    /// The phases the thread executes, in order.
    pub phases: Vec<Phase>,
}

impl ThreadSpec {
    /// Creates a spec arriving at time zero with default niceness.
    pub fn new(phases: Vec<Phase>) -> Self {
        ThreadSpec { nice: 0, arrival_ns: 0, origin_core: None, phases }
    }

    /// Total CPU demand of the thread.
    pub fn total_cpu_ns(&self) -> u64 {
        self.phases.iter().map(Phase::cpu_ns).sum()
    }

    /// Number of `Compute` phases — the "operations" counted for throughput.
    pub fn nr_operations(&self) -> u64 {
        self.phases.iter().filter(|p| matches!(p, Phase::Compute(_))).count() as u64
    }
}

/// A complete workload: a set of threads plus barrier membership counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Workload {
    /// Human-readable name used in experiment tables.
    pub name: String,
    /// The threads of the workload.
    pub threads: Vec<ThreadSpec>,
    /// For each barrier id used by the threads, the number of participants.
    pub barriers: Vec<(u32, usize)>,
}

impl Workload {
    /// Creates an empty workload.
    pub fn new(name: impl Into<String>) -> Self {
        Workload { name: name.into(), threads: Vec::new(), barriers: Vec::new() }
    }

    /// Adds a thread.
    pub fn push(&mut self, spec: ThreadSpec) -> &mut Self {
        self.threads.push(spec);
        self
    }

    /// Declares a barrier with the given participant count.
    pub fn declare_barrier(&mut self, id: u32, participants: usize) -> &mut Self {
        self.barriers.push((id, participants));
        self
    }

    /// Number of threads.
    pub fn nr_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total CPU demand across all threads.
    pub fn total_cpu_ns(&self) -> u64 {
        self.threads.iter().map(ThreadSpec::total_cpu_ns).sum()
    }

    /// Total number of operations (compute phases) across all threads.
    pub fn total_operations(&self) -> u64 {
        self.threads.iter().map(ThreadSpec::nr_operations).sum()
    }

    /// The ideal (perfectly parallel, zero-overhead) makespan on `nr_cores`
    /// cores: total CPU time divided by core count, ignoring barriers and
    /// sleeps.  Used as the denominator of slowdown factors in experiment
    /// tables.
    pub fn ideal_makespan_ns(&self, nr_cores: usize) -> u64 {
        if nr_cores == 0 {
            return 0;
        }
        self.total_cpu_ns() / nr_cores as u64
    }

    /// Validates that every barrier referenced by a thread is declared with
    /// a participant count matching the number of threads that use it.
    pub fn validate(&self) -> Result<(), String> {
        for (id, participants) in &self.barriers {
            let users = self
                .threads
                .iter()
                .filter(|t| t.phases.iter().any(|p| matches!(p, Phase::Barrier(b) if b == id)))
                .count();
            if users != *participants {
                return Err(format!(
                    "barrier {id} declares {participants} participants but {users} threads use it"
                ));
            }
        }
        for thread in &self.threads {
            for phase in &thread.phases {
                if let Phase::Barrier(id) = phase {
                    if !self.barriers.iter().any(|(b, _)| b == id) {
                        return Err(format!("barrier {id} is used but never declared"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_spec_accounting() {
        let spec = ThreadSpec::new(vec![
            Phase::Compute(1_000),
            Phase::Sleep(5_000),
            Phase::Compute(2_000),
            Phase::Barrier(0),
        ]);
        assert_eq!(spec.total_cpu_ns(), 3_000);
        assert_eq!(spec.nr_operations(), 2);
    }

    #[test]
    fn workload_validation_catches_mismatched_barriers() {
        let mut w = Workload::new("test");
        w.push(ThreadSpec::new(vec![Phase::Barrier(0)]));
        w.push(ThreadSpec::new(vec![Phase::Barrier(0)]));
        w.declare_barrier(0, 3);
        assert!(w.validate().is_err());
        let mut ok = Workload::new("test");
        ok.push(ThreadSpec::new(vec![Phase::Barrier(0)]));
        ok.push(ThreadSpec::new(vec![Phase::Barrier(0)]));
        ok.declare_barrier(0, 2);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn undeclared_barrier_is_rejected() {
        let mut w = Workload::new("test");
        w.push(ThreadSpec::new(vec![Phase::Barrier(7)]));
        assert!(w.validate().is_err());
    }

    #[test]
    fn ideal_makespan_divides_by_cores() {
        let mut w = Workload::new("test");
        for _ in 0..4 {
            w.push(ThreadSpec::new(vec![Phase::Compute(1_000_000)]));
        }
        assert_eq!(w.ideal_makespan_ns(4), 1_000_000);
        assert_eq!(w.ideal_makespan_ns(2), 2_000_000);
        assert_eq!(w.ideal_makespan_ns(0), 0);
        assert_eq!(w.total_operations(), 4);
        assert_eq!(w.nr_threads(), 4);
    }
}
