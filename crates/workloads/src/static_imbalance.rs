//! Static initial imbalances for convergence experiments.
//!
//! These are not simulator workloads but initial *placements*: load vectors
//! handed directly to the pure scheduler model to measure how many
//! load-balancing rounds (`N` in the §3.2 definition) the policy needs to
//! restore work conservation (experiment E8).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The shape of the initial imbalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImbalancePattern {
    /// All threads start on core 0 (e.g. right after a fork storm).
    SingleHot,
    /// The first half of the cores hold two threads each, the second half
    /// none (e.g. after half the machine finished its work).
    Step,
    /// Threads are scattered uniformly at random (many small imbalances).
    Random,
}

impl ImbalancePattern {
    /// Human-readable name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ImbalancePattern::SingleHot => "single_hot",
            ImbalancePattern::Step => "step",
            ImbalancePattern::Random => "random",
        }
    }

    /// All patterns, for parameter sweeps.
    pub fn all() -> [ImbalancePattern; 3] {
        [ImbalancePattern::SingleHot, ImbalancePattern::Step, ImbalancePattern::Random]
    }
}

impl std::fmt::Display for ImbalancePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generator of initial load vectors.
#[derive(Debug, Clone)]
pub struct StaticImbalance {
    /// Number of cores.
    pub nr_cores: usize,
    /// Total number of threads to distribute.
    pub nr_threads: usize,
    /// The imbalance shape.
    pub pattern: ImbalancePattern,
    /// Seed used by the random pattern.
    pub seed: u64,
}

impl StaticImbalance {
    /// Creates a generator.
    pub fn new(nr_cores: usize, nr_threads: usize, pattern: ImbalancePattern) -> Self {
        StaticImbalance { nr_cores, nr_threads, pattern, seed: 42 }
    }

    /// Generates the per-core thread counts.
    ///
    /// # Panics
    ///
    /// Panics if `nr_cores` is zero.
    pub fn loads(&self) -> Vec<usize> {
        assert!(self.nr_cores > 0, "need at least one core");
        let mut loads = vec![0usize; self.nr_cores];
        match self.pattern {
            ImbalancePattern::SingleHot => {
                loads[0] = self.nr_threads;
            }
            ImbalancePattern::Step => {
                let busy = (self.nr_cores / 2).max(1);
                for (i, slot) in loads.iter_mut().enumerate().take(busy) {
                    *slot = self.nr_threads / busy + usize::from(i < self.nr_threads % busy);
                }
            }
            ImbalancePattern::Random => {
                let mut rng = SmallRng::seed_from_u64(self.seed);
                for _ in 0..self.nr_threads {
                    let core = rng.gen_range(0..self.nr_cores);
                    loads[core] += 1;
                }
            }
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_hot_puts_everything_on_core_zero() {
        let loads = StaticImbalance::new(8, 12, ImbalancePattern::SingleHot).loads();
        assert_eq!(loads[0], 12);
        assert_eq!(loads.iter().sum::<usize>(), 12);
    }

    #[test]
    fn step_loads_half_the_machine() {
        let loads = StaticImbalance::new(8, 8, ImbalancePattern::Step).loads();
        assert_eq!(loads.iter().sum::<usize>(), 8);
        assert!(loads[4..].iter().all(|&l| l == 0));
        assert!(loads[..4].iter().all(|&l| l == 2));
    }

    #[test]
    fn random_distributes_every_thread() {
        let loads = StaticImbalance::new(16, 40, ImbalancePattern::Random).loads();
        assert_eq!(loads.iter().sum::<usize>(), 40);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = StaticImbalance::new(8, 20, ImbalancePattern::Random).loads();
        let b = StaticImbalance::new(8, 20, ImbalancePattern::Random).loads();
        assert_eq!(a, b);
    }

    #[test]
    fn pattern_names_are_stable() {
        assert_eq!(ImbalancePattern::SingleHot.to_string(), "single_hot");
        assert_eq!(ImbalancePattern::all().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_is_rejected() {
        let _ = StaticImbalance::new(0, 4, ImbalancePattern::Step).loads();
    }
}
