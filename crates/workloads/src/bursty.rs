//! Bursty arrival workload.
//!
//! Short tasks arrive in periodic bursts on a single core, repeatedly
//! pushing the system away from work conservation; the interesting metric
//! is how quickly the balancer restores it (violating idle time and
//! scheduling latency).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec::{Phase, ThreadSpec, Workload};

/// Generator for the bursty workload.
#[derive(Debug, Clone)]
pub struct BurstyWorkload {
    /// Number of bursts.
    pub bursts: usize,
    /// Tasks per burst.
    pub tasks_per_burst: usize,
    /// Gap between bursts, in nanoseconds.
    pub burst_gap_ns: u64,
    /// CPU time of each task, in nanoseconds.
    pub task_ns: u64,
    /// Relative jitter on task CPU time.
    pub jitter: f64,
    /// Seed for the jitter.
    pub seed: u64,
}

impl Default for BurstyWorkload {
    fn default() -> Self {
        BurstyWorkload {
            bursts: 8,
            tasks_per_burst: 16,
            burst_gap_ns: 10_000_000,
            task_ns: 2_000_000,
            jitter: 0.3,
            seed: 23,
        }
    }
}

impl BurstyWorkload {
    /// Generates the workload description.
    pub fn generate(&self) -> Workload {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut workload = Workload::new(format!(
            "bursty({} bursts x {} tasks)",
            self.bursts, self.tasks_per_burst
        ));
        for burst in 0..self.bursts {
            for _ in 0..self.tasks_per_burst {
                let range = (self.task_ns as f64 * self.jitter) as i64;
                let delta = if range > 0 { rng.gen_range(-range..=range) } else { 0 };
                let cpu = (self.task_ns as i64 + delta).max(1) as u64;
                workload.push(ThreadSpec {
                    nice: 0,
                    arrival_ns: burst as u64 * self.burst_gap_ns,
                    // Every burst lands on core 0: the handler thread's core.
                    origin_core: Some(0),
                    phases: vec![Phase::Compute(cpu)],
                });
            }
        }
        workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_bursts_on_core_zero() {
        let w = BurstyWorkload::default().generate();
        assert_eq!(w.nr_threads(), 8 * 16);
        assert!(w.threads.iter().all(|t| t.origin_core == Some(0)));
        assert!(w.validate().is_ok());
    }

    #[test]
    fn bursts_are_spaced_by_the_gap() {
        let gen = BurstyWorkload { bursts: 3, ..Default::default() };
        let w = gen.generate();
        let arrivals: std::collections::BTreeSet<u64> =
            w.threads.iter().map(|t| t.arrival_ns).collect();
        assert_eq!(arrivals.len(), 3);
        let v: Vec<u64> = arrivals.into_iter().collect();
        assert_eq!(v[1] - v[0], gen.burst_gap_ns);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(BurstyWorkload::default().generate(), BurstyWorkload::default().generate());
    }
}
