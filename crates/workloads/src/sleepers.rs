//! Mostly-sleeping workload with sparse compute bursts.
//!
//! A very large population of tasks arrives at time zero and immediately
//! goes to sleep for a long, jittered interval; only a small fraction wakes
//! into a short compute burst before finishing.  The machine is therefore
//! asleep almost all of the time: the interesting schedule is a handful of
//! sparse bursts scattered across a huge quiet calendar.
//!
//! This is the adversarial shape for a tick-driven simulator — it pays a
//! per-core timer and a machine-wide balance fold on every tick of the
//! quiet calendar, so its cost scales with `cores × horizon` even though
//! almost nothing happens.  An event-driven simulator pays only for the
//! arrivals, the sleep expiries and the bursts, so its cost scales with the
//! number of events.  Experiment E24 uses this workload to demonstrate that
//! asymptotic gap.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec::{Phase, ThreadSpec, Workload};

/// Generator for the mostly-sleeping workload.
#[derive(Debug, Clone)]
pub struct SleeperWorkload {
    /// Total number of tasks (all arrive at time zero).
    pub nr_tasks: usize,
    /// Base duration of the initial sleep, in nanoseconds.
    pub sleep_ns: u64,
    /// Relative jitter on the sleep (spreads the wakeups out in time).
    pub jitter: f64,
    /// Percentage (0..=100) of tasks that wake into a compute burst instead
    /// of finishing silently.
    pub burst_percent: u32,
    /// CPU time of one burst, in nanoseconds.
    pub burst_ns: u64,
    /// Seed for the jitter and the burst selection.
    pub seed: u64,
}

impl Default for SleeperWorkload {
    fn default() -> Self {
        SleeperWorkload {
            nr_tasks: 10_000,
            sleep_ns: 20_000_000_000,
            jitter: 0.2,
            burst_percent: 2,
            burst_ns: 500_000,
            seed: 24,
        }
    }
}

impl SleeperWorkload {
    /// Generates the workload description.
    pub fn generate(&self) -> Workload {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut workload = Workload::new(format!(
            "sleepers({} tasks, {}% bursting)",
            self.nr_tasks, self.burst_percent
        ));
        workload.threads.reserve(self.nr_tasks);
        for _ in 0..self.nr_tasks {
            let jig = |base: u64, rng: &mut SmallRng| {
                let range = (base as f64 * self.jitter) as i64;
                let delta = if range > 0 { rng.gen_range(-range..=range) } else { 0 };
                (base as i64 + delta).max(1) as u64
            };
            let sleep = jig(self.sleep_ns, &mut rng);
            let phases = if rng.gen_range(0..100) < self.burst_percent {
                vec![Phase::Sleep(sleep), Phase::Compute(jig(self.burst_ns, &mut rng))]
            } else {
                vec![Phase::Sleep(sleep)]
            };
            workload.push(ThreadSpec { nice: 0, arrival_ns: 0, origin_core: None, phases });
        }
        workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_tasks_only_sleep() {
        let gen = SleeperWorkload::default();
        let w = gen.generate();
        assert_eq!(w.nr_threads(), gen.nr_tasks);
        assert!(w.validate().is_ok());
        let bursting = w.threads.iter().filter(|t| t.nr_operations() > 0).count();
        // Around burst_percent of the population, with generous slack.
        assert!(bursting > 0 && bursting < gen.nr_tasks / 10, "{bursting} bursting tasks");
        assert!(w.threads.iter().all(|t| matches!(t.phases[0], Phase::Sleep(_))));
    }

    #[test]
    fn sleeps_are_jittered_around_the_base() {
        let gen = SleeperWorkload::default();
        let w = gen.generate();
        let lo = (gen.sleep_ns as f64 * (1.0 - gen.jitter)) as u64;
        let hi = (gen.sleep_ns as f64 * (1.0 + gen.jitter)) as u64;
        for t in &w.threads {
            match t.phases[0] {
                Phase::Sleep(ns) => {
                    assert!(ns >= lo && ns <= hi, "sleep {ns} outside [{lo}, {hi}]")
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(SleeperWorkload::default().generate(), SleeperWorkload::default().generate());
    }
}
