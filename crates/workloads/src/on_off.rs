//! On/off (blinking) workload.
//!
//! Each core carries one long-running task plus a set of "blinker" tasks
//! that alternate short compute and sleep phases.  The instantaneous load
//! of a core therefore oscillates every few milliseconds while the
//! *time-averaged* load of every core is identical — the adversarial shape
//! for balancers driven by instantaneous queue lengths: every blink opens a
//! transient imbalance that an instantaneous filter reacts to with a
//! migration, while a decayed (PELT-style) criterion correctly sees a
//! balanced machine and leaves the threads where they are.  Experiment E17
//! measures exactly that difference.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec::{Phase, ThreadSpec, Workload};

/// Generator for the on/off workload.
#[derive(Debug, Clone)]
pub struct OnOffWorkload {
    /// Number of cores to pin one long task and `blinkers_per_core`
    /// blinkers on.
    pub nr_cores: usize,
    /// Oscillating tasks started on each core.
    pub blinkers_per_core: usize,
    /// Compute/sleep cycles per blinker.
    pub cycles: usize,
    /// CPU time of one blinker burst, in nanoseconds.
    pub on_ns: u64,
    /// Sleep time between bursts, in nanoseconds.
    pub off_ns: u64,
    /// Relative jitter on the blinker phases (de-synchronises the blinks).
    pub jitter: f64,
    /// Seed for the jitter.
    pub seed: u64,
}

impl Default for OnOffWorkload {
    fn default() -> Self {
        OnOffWorkload {
            nr_cores: 8,
            blinkers_per_core: 2,
            cycles: 12,
            on_ns: 2_000_000,
            off_ns: 2_000_000,
            jitter: 0.4,
            seed: 17,
        }
    }
}

impl OnOffWorkload {
    /// Total CPU time the blinkers of one core spread over their cycles —
    /// the long task must outlive it so no core ever goes truly idle.
    fn long_task_ns(&self) -> u64 {
        (self.cycles as u64 + 2) * (self.on_ns + self.off_ns) * 2
    }

    /// Generates the workload description.
    pub fn generate(&self) -> Workload {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut workload = Workload::new(format!(
            "on_off({} cores x {} blinkers)",
            self.nr_cores, self.blinkers_per_core
        ));
        for core in 0..self.nr_cores {
            workload.push(ThreadSpec {
                nice: 0,
                arrival_ns: 0,
                origin_core: Some(core),
                phases: vec![Phase::Compute(self.long_task_ns())],
            });
            for _ in 0..self.blinkers_per_core {
                let mut phases = Vec::with_capacity(2 * self.cycles);
                for _ in 0..self.cycles {
                    let jig = |base: u64, rng: &mut SmallRng| {
                        let range = (base as f64 * self.jitter) as i64;
                        let delta = if range > 0 { rng.gen_range(-range..=range) } else { 0 };
                        (base as i64 + delta).max(1) as u64
                    };
                    phases.push(Phase::Compute(jig(self.on_ns, &mut rng)));
                    phases.push(Phase::Sleep(jig(self.off_ns, &mut rng)));
                }
                workload.push(ThreadSpec {
                    nice: 0,
                    arrival_ns: 0,
                    origin_core: Some(core),
                    phases,
                });
            }
        }
        workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_one_long_task_and_blinkers_per_core() {
        let gen = OnOffWorkload::default();
        let w = gen.generate();
        assert_eq!(w.nr_threads(), 8 * (1 + 2));
        assert!(w.validate().is_ok());
        // Every thread is pinned to its origin core at first placement.
        assert!(w.threads.iter().all(|t| t.origin_core.is_some()));
    }

    #[test]
    fn long_tasks_outlive_the_blinkers() {
        let gen = OnOffWorkload::default();
        let w = gen.generate();
        let long = w.threads[0].phases.iter().map(|p| p.duration_ns()).sum::<u64>();
        for blinker in &w.threads[1..=2] {
            let total: u64 = blinker.phases.iter().map(|p| p.duration_ns()).sum();
            assert!(long > total, "the long task must cover the blink phase ({long} vs {total})");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(OnOffWorkload::default().generate(), OnOffWorkload::default().generate());
    }
}
