//! Synthetic workload generators.
//!
//! The paper's motivation rests on real workloads observed on real machines:
//! "many-fold performance degradation in the case of scientific
//! applications, and up to 25% decrease in throughput for realistic database
//! workloads" (§1), both symptoms of the Linux "wasted cores" bugs.  Those
//! applications and machines are not available here, so this crate generates
//! synthetic workloads that exercise the same failure modes (see DESIGN.md
//! §2 for the substitution argument):
//!
//! * [`scientific`] — a fork-join kernel with barriers, whose makespan is
//!   dominated by the slowest thread: stacking two threads on one core while
//!   another core idles doubles the barrier time (the "many-fold" claim),
//! * [`oltp`] — database-style workers alternating short transactions and
//!   think time, whose throughput drops when runnable workers pile up behind
//!   each other (the "25%" claim),
//! * [`build`] — a `make -j`-style stream of independent jobs,
//! * [`bursty`] — arrival bursts that repeatedly push the system away from
//!   work conservation,
//! * [`on_off`] — per-core blinking loads whose instantaneous imbalance
//!   oscillates while the time-averaged load is flat (the adversarial
//!   shape for instantaneous balancing, used by the load-tracking
//!   experiment E17),
//! * [`static_imbalance`] — pure initial-placement imbalances (no arrivals)
//!   used by the convergence experiments,
//! * [`sleepers`] — a huge mostly-sleeping population with sparse compute
//!   bursts, the adversarial shape for a tick-driven simulator (used by the
//!   event-engine scaling experiment E24).

pub mod build;
pub mod bursty;
pub mod oltp;
pub mod on_off;
pub mod scientific;
pub mod sleepers;
pub mod spec;
pub mod static_imbalance;

pub use build::BuildWorkload;
pub use bursty::BurstyWorkload;
pub use oltp::OltpWorkload;
pub use on_off::OnOffWorkload;
pub use scientific::ScientificWorkload;
pub use sleepers::SleeperWorkload;
pub use spec::{Phase, ThreadSpec, Workload};
pub use static_imbalance::{ImbalancePattern, StaticImbalance};
