//! Fork-join scientific kernel.
//!
//! Models the HPC applications of the "wasted cores" study: `nr_threads`
//! workers compute for roughly `phase_ns` and then synchronise at a barrier,
//! repeated `iterations` times.  The time of each iteration is the time of
//! the *slowest* worker, so any placement that stacks two workers on one
//! core while another core idles roughly doubles the iteration time — which
//! is how a non-work-conserving scheduler produces the "many-fold"
//! degradation of §1.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec::{Phase, ThreadSpec, Workload};

/// Generator for the fork-join workload.
#[derive(Debug, Clone)]
pub struct ScientificWorkload {
    /// Number of worker threads (typically one per core).
    pub nr_threads: usize,
    /// Number of compute/barrier iterations.
    pub iterations: usize,
    /// Nominal compute time per iteration, in nanoseconds.
    pub phase_ns: u64,
    /// Relative jitter applied to each compute phase (0.1 = ±10%).
    pub jitter: f64,
    /// Seed for the jitter.
    pub seed: u64,
    /// If set, all threads are initially spawned on this core, as happens
    /// when a parallel runtime forks its workers from one main thread —
    /// the load balancer then has to spread them.
    pub fork_on_core: Option<usize>,
}

impl Default for ScientificWorkload {
    fn default() -> Self {
        ScientificWorkload {
            nr_threads: 16,
            iterations: 10,
            phase_ns: 4_000_000,
            jitter: 0.05,
            seed: 1,
            fork_on_core: Some(0),
        }
    }
}

impl ScientificWorkload {
    /// Creates the default configuration scaled to `nr_threads` workers.
    pub fn with_threads(nr_threads: usize) -> Self {
        ScientificWorkload { nr_threads, ..Default::default() }
    }

    /// Generates the workload description.
    pub fn generate(&self) -> Workload {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut workload = Workload::new(format!(
            "scientific({} threads x {} iterations)",
            self.nr_threads, self.iterations
        ));
        for barrier in 0..self.iterations {
            workload.declare_barrier(barrier as u32, self.nr_threads);
        }
        for _ in 0..self.nr_threads {
            let mut phases = Vec::with_capacity(self.iterations * 2);
            for barrier in 0..self.iterations {
                let jitter_range = (self.phase_ns as f64 * self.jitter) as i64;
                let jitter =
                    if jitter_range > 0 { rng.gen_range(-jitter_range..=jitter_range) } else { 0 };
                let compute = (self.phase_ns as i64 + jitter).max(1) as u64;
                phases.push(Phase::Compute(compute));
                phases.push(Phase::Barrier(barrier as u32));
            }
            workload.push(ThreadSpec {
                nice: 0,
                arrival_ns: 0,
                origin_core: self.fork_on_core,
                phases,
            });
        }
        workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_a_valid_workload() {
        let w = ScientificWorkload::with_threads(8).generate();
        assert_eq!(w.nr_threads(), 8);
        assert!(w.validate().is_ok());
        assert_eq!(w.barriers.len(), 10);
        assert_eq!(w.total_operations(), 8 * 10);
    }

    #[test]
    fn jitter_keeps_phases_close_to_nominal() {
        let gen = ScientificWorkload { jitter: 0.1, ..ScientificWorkload::with_threads(4) };
        let w = gen.generate();
        for t in &w.threads {
            for p in &t.phases {
                if let Phase::Compute(ns) = p {
                    let nominal = gen.phase_ns as f64;
                    assert!((*ns as f64) >= nominal * 0.85 && (*ns as f64) <= nominal * 1.15);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = ScientificWorkload::with_threads(4).generate();
        let b = ScientificWorkload::with_threads(4).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn fork_core_is_propagated() {
        let w = ScientificWorkload { fork_on_core: Some(3), ..Default::default() }.generate();
        assert!(w.threads.iter().all(|t| t.origin_core == Some(3)));
    }
}
