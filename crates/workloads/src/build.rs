//! `make -j`-style parallel build workload.
//!
//! Independent compilation jobs of widely varying size arrive in waves as
//! the build progresses.  There are no barriers, so the figure of merit is
//! the makespan; load imbalance shows up as long tails where a few cores
//! grind through queued jobs while the rest of the machine idles.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec::{Phase, ThreadSpec, Workload};

/// Generator for the parallel-build workload.
#[derive(Debug, Clone)]
pub struct BuildWorkload {
    /// Total number of compilation jobs.
    pub nr_jobs: usize,
    /// Number of waves the jobs arrive in (dependency levels of the build).
    pub waves: usize,
    /// Gap between waves, in nanoseconds.
    pub wave_gap_ns: u64,
    /// Minimum job CPU time, in nanoseconds.
    pub min_job_ns: u64,
    /// Maximum job CPU time, in nanoseconds.
    pub max_job_ns: u64,
    /// Seed for job sizing.
    pub seed: u64,
    /// Number of cores the build system spawns jobs onto (the `make`
    /// process's own core plus its immediate neighbours).
    pub spawn_spread: usize,
}

impl Default for BuildWorkload {
    fn default() -> Self {
        BuildWorkload {
            nr_jobs: 64,
            waves: 4,
            wave_gap_ns: 2_000_000,
            min_job_ns: 500_000,
            max_job_ns: 8_000_000,
            seed: 11,
            spawn_spread: 2,
        }
    }
}

impl BuildWorkload {
    /// Creates the default configuration with `nr_jobs` jobs.
    pub fn with_jobs(nr_jobs: usize) -> Self {
        BuildWorkload { nr_jobs, ..Default::default() }
    }

    /// Generates the workload description.
    pub fn generate(&self) -> Workload {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut workload =
            Workload::new(format!("build({} jobs, {} waves)", self.nr_jobs, self.waves));
        let per_wave = self.nr_jobs.div_ceil(self.waves.max(1));
        for job in 0..self.nr_jobs {
            let wave = job / per_wave.max(1);
            let cpu = rng.gen_range(self.min_job_ns..=self.max_job_ns);
            workload.push(ThreadSpec {
                nice: 0,
                arrival_ns: wave as u64 * self.wave_gap_ns,
                origin_core: Some(job % self.spawn_spread.max(1)),
                phases: vec![Phase::Compute(cpu)],
            });
        }
        workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_the_requested_number_of_jobs() {
        let w = BuildWorkload::with_jobs(32).generate();
        assert_eq!(w.nr_threads(), 32);
        assert!(w.validate().is_ok());
        assert_eq!(w.total_operations(), 32);
    }

    #[test]
    fn jobs_arrive_in_waves() {
        let gen = BuildWorkload { waves: 4, ..BuildWorkload::with_jobs(16) };
        let w = gen.generate();
        let distinct: std::collections::BTreeSet<u64> =
            w.threads.iter().map(|t| t.arrival_ns).collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn job_sizes_are_within_bounds() {
        let gen = BuildWorkload::default();
        let w = gen.generate();
        for t in &w.threads {
            let cpu = t.total_cpu_ns();
            assert!(cpu >= gen.min_job_ns && cpu <= gen.max_job_ns);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(BuildWorkload::default().generate(), BuildWorkload::default().generate());
    }
}
