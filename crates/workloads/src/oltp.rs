//! OLTP-style database workload.
//!
//! Models the "realistic database workloads" of §1: `nr_workers` threads
//! each execute `transactions` short CPU bursts separated by think/IO time.
//! Throughput (transactions per second) is the figure of merit; when a
//! non-work-conserving scheduler lets runnable workers queue behind each
//! other while cores idle, transactions serialise and throughput drops by
//! tens of percent.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec::{Phase, ThreadSpec, Workload};

/// Generator for the OLTP workload.
#[derive(Debug, Clone)]
pub struct OltpWorkload {
    /// Number of worker threads.
    pub nr_workers: usize,
    /// Transactions each worker executes.
    pub transactions: usize,
    /// Nominal CPU time of one transaction, in nanoseconds.
    pub service_ns: u64,
    /// Nominal think/IO time between transactions, in nanoseconds.
    pub think_ns: u64,
    /// Relative jitter on service and think times.
    pub jitter: f64,
    /// Seed for the jitter.
    pub seed: u64,
    /// Number of cores the workers are initially spread over (models a
    /// connection handler waking workers on a subset of the machine).
    pub initial_spread: usize,
}

impl Default for OltpWorkload {
    fn default() -> Self {
        OltpWorkload {
            nr_workers: 32,
            transactions: 50,
            service_ns: 500_000,
            think_ns: 300_000,
            jitter: 0.2,
            seed: 7,
            initial_spread: 4,
        }
    }
}

impl OltpWorkload {
    /// Creates the default configuration with `nr_workers` workers.
    pub fn with_workers(nr_workers: usize) -> Self {
        OltpWorkload { nr_workers, ..Default::default() }
    }

    /// Generates the workload description.
    pub fn generate(&self) -> Workload {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut workload = Workload::new(format!(
            "oltp({} workers x {} txns)",
            self.nr_workers, self.transactions
        ));
        for worker in 0..self.nr_workers {
            let mut phases = Vec::with_capacity(self.transactions * 2);
            for _ in 0..self.transactions {
                phases.push(Phase::Compute(jittered(&mut rng, self.service_ns, self.jitter)));
                phases.push(Phase::Sleep(jittered(&mut rng, self.think_ns, self.jitter)));
            }
            workload.push(ThreadSpec {
                nice: 0,
                // Workers connect over a short ramp-up window.
                arrival_ns: (worker as u64) * 10_000,
                origin_core: Some(worker % self.initial_spread.max(1)),
                phases,
            });
        }
        workload
    }
}

fn jittered(rng: &mut SmallRng, nominal: u64, jitter: f64) -> u64 {
    let range = (nominal as f64 * jitter) as i64;
    let delta = if range > 0 { rng.gen_range(-range..=range) } else { 0 };
    (nominal as i64 + delta).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_a_valid_workload() {
        let w = OltpWorkload::with_workers(8).generate();
        assert_eq!(w.nr_threads(), 8);
        assert!(w.validate().is_ok());
        assert_eq!(w.total_operations(), 8 * 50);
    }

    #[test]
    fn workers_arrive_staggered_on_a_subset_of_cores() {
        let w = OltpWorkload { initial_spread: 2, ..OltpWorkload::with_workers(6) }.generate();
        assert!(w.threads.iter().all(|t| t.origin_core.unwrap() < 2));
        let arrivals: Vec<u64> = w.threads.iter().map(|t| t.arrival_ns).collect();
        let mut sorted = arrivals.clone();
        sorted.sort();
        assert_eq!(arrivals, sorted, "arrival times ramp up monotonically");
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(OltpWorkload::default().generate(), OltpWorkload::default().generate());
    }

    #[test]
    fn jitter_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = jittered(&mut rng, 1000, 0.5);
            assert!((500..=1500).contains(&v));
        }
        assert_eq!(jittered(&mut rng, 1000, 0.0), 1000);
    }
}
