//! Per-core scheduler state: the current thread and the runqueue.

use sched_topology::NodeId;

use crate::load::LoadMetric;
use crate::task::{Task, TaskId, Weight};
use crate::tracker::{LoadTracker, TrackedLoad};
use crate::CoreId;

/// The scheduling state of one core.
///
/// "A scheduler is defined with reference to, for each core of the machine,
/// the current thread, if any, that is running on that core, and a runqueue
/// containing threads waiting to be scheduled." (§3.1)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreState {
    /// Identity of the core.
    pub id: CoreId,
    /// NUMA node the core belongs to (used only by step-2 choice policies).
    pub node: NodeId,
    /// The thread currently running on the core, if any.
    pub current: Option<Task>,
    /// Threads waiting to be scheduled on this core, oldest first.
    pub ready: Vec<Task>,
    /// The tracker-maintained load average of the core (updated by
    /// [`CoreState::track`], read through [`LoadMetric::Tracked`]).
    pub tracked: TrackedLoad,
}

impl CoreState {
    /// Creates an idle core on node 0.
    pub fn new(id: CoreId) -> Self {
        CoreState {
            id,
            node: NodeId(0),
            current: None,
            ready: Vec::new(),
            tracked: TrackedLoad::default(),
        }
    }

    /// Creates an idle core on the given node.
    pub fn on_node(id: CoreId, node: NodeId) -> Self {
        CoreState { id, node, current: None, ready: Vec::new(), tracked: TrackedLoad::default() }
    }

    /// Number of threads on the core, counting the current thread.
    ///
    /// This is the `load()` of the paper's Listing 1:
    /// `self.ready.size + self.current.size`.
    pub fn nr_threads(&self) -> u64 {
        self.ready.len() as u64 + u64::from(self.current.is_some())
    }

    /// Sum of the load weights of the threads on the core, counting the
    /// current thread.
    pub fn weighted_load(&self) -> u64 {
        let cur = self.current.as_ref().map_or(0, |t| t.weight().raw());
        cur + self.ready.iter().map(|t| t.weight().raw()).sum::<u64>()
    }

    /// Load of the core under the given metric.
    pub fn load(&self, metric: LoadMetric) -> u64 {
        match metric {
            LoadMetric::NrThreads => self.nr_threads(),
            LoadMetric::Weighted => self.weighted_load(),
            LoadMetric::Tracked => self.tracked.load(),
        }
    }

    /// Folds the core's current instantaneous load (under `tracker`'s base
    /// metric) into its tracked average, as observed at `now_ns`.
    pub fn track(&mut self, now_ns: u64, tracker: &dyn LoadTracker) {
        let inst = self.load(tracker.base());
        tracker.update(&mut self.tracked, now_ns, inst);
    }

    /// Returns `true` if the core is idle.
    ///
    /// "We define an idle core as a core that has no current thread and no
    /// thread in its runqueue." (§3.1)
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.ready.is_empty()
    }

    /// Returns `true` if the core is overloaded.
    ///
    /// "We define an overloaded core as a core that has two or more threads,
    /// including the current thread." (§3.1) — this is also exactly the
    /// `isOverloaded` predicate of Listing 2.
    pub fn is_overloaded(&self) -> bool {
        self.nr_threads() >= 2
    }

    /// Weight of the lightest thread waiting in the runqueue, if any.
    ///
    /// Only *waiting* threads can be stolen; the current thread never
    /// migrates during a balancing round.
    pub fn lightest_ready_weight(&self) -> Option<Weight> {
        self.ready.iter().map(Task::weight).min()
    }

    /// Makes a thread runnable on this core.
    ///
    /// If the core has no current thread the new thread starts running
    /// immediately, otherwise it is appended to the runqueue.
    pub fn enqueue(&mut self, task: Task) {
        if self.current.is_none() {
            self.current = Some(task);
        } else {
            self.ready.push(task);
        }
    }

    /// Appends a thread to the runqueue without promoting it to `current`.
    ///
    /// This models a migration: a stolen thread lands in the thief's
    /// runqueue; electing it to run is the thief's own scheduling decision.
    pub fn push_ready(&mut self, task: Task) {
        self.ready.push(task);
    }

    /// Removes a waiting thread by id, returning it if present.
    pub fn remove_ready(&mut self, id: TaskId) -> Option<Task> {
        let pos = self.ready.iter().position(|t| t.id == id)?;
        Some(self.ready.remove(pos))
    }

    /// Elects a thread to run if the core has none, FIFO order.
    ///
    /// Returns the elected task id, if any election happened.
    pub fn pick_next(&mut self) -> Option<TaskId> {
        if self.current.is_none() && !self.ready.is_empty() {
            let task = self.ready.remove(0);
            let id = task.id;
            self.current = Some(task);
            Some(id)
        } else {
            None
        }
    }

    /// All task ids on this core, current first.
    pub fn task_ids(&self) -> Vec<TaskId> {
        self.current.iter().map(|t| t.id).chain(self.ready.iter().map(|t| t.id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Nice;
    use sched_topology::CpuId;

    fn task(id: u64) -> Task {
        Task::new(TaskId(id))
    }

    #[test]
    fn fresh_core_is_idle_and_not_overloaded() {
        let c = CoreState::new(CpuId(0));
        assert!(c.is_idle());
        assert!(!c.is_overloaded());
        assert_eq!(c.nr_threads(), 0);
        assert_eq!(c.weighted_load(), 0);
    }

    #[test]
    fn one_running_thread_is_neither_idle_nor_overloaded() {
        let mut c = CoreState::new(CpuId(0));
        c.enqueue(task(1));
        assert!(!c.is_idle());
        assert!(!c.is_overloaded());
        assert_eq!(c.nr_threads(), 1);
        assert_eq!(c.current.as_ref().unwrap().id, TaskId(1));
    }

    #[test]
    fn two_threads_make_a_core_overloaded() {
        let mut c = CoreState::new(CpuId(0));
        c.enqueue(task(1));
        c.enqueue(task(2));
        assert!(c.is_overloaded());
        assert_eq!(c.ready.len(), 1);
    }

    #[test]
    fn overloaded_matches_listing2_definition() {
        // Listing 2: current.size == 1 => ready.size >= 1; else ready.size >= 2.
        let mut running_plus_one = CoreState::new(CpuId(0));
        running_plus_one.enqueue(task(1));
        running_plus_one.enqueue(task(2));
        assert!(running_plus_one.is_overloaded());

        let mut two_ready_no_current = CoreState::new(CpuId(1));
        two_ready_no_current.push_ready(task(3));
        two_ready_no_current.push_ready(task(4));
        assert!(two_ready_no_current.is_overloaded());

        let mut one_ready_no_current = CoreState::new(CpuId(2));
        one_ready_no_current.push_ready(task(5));
        assert!(!one_ready_no_current.is_overloaded());
    }

    #[test]
    fn weighted_load_sums_weights() {
        let mut c = CoreState::new(CpuId(0));
        c.enqueue(Task::with_nice(TaskId(1), Nice::new(0)));
        c.enqueue(Task::with_nice(TaskId(2), Nice::new(19)));
        assert_eq!(c.weighted_load(), 1024 + 15);
        assert_eq!(c.load(LoadMetric::Weighted), 1024 + 15);
        assert_eq!(c.load(LoadMetric::NrThreads), 2);
        assert_eq!(c.lightest_ready_weight(), Some(Weight::MIN));
    }

    #[test]
    fn remove_ready_only_touches_the_runqueue() {
        let mut c = CoreState::new(CpuId(0));
        c.enqueue(task(1));
        c.enqueue(task(2));
        assert!(c.remove_ready(TaskId(1)).is_none(), "current thread must not be stealable");
        assert_eq!(c.remove_ready(TaskId(2)).unwrap().id, TaskId(2));
        assert!(c.ready.is_empty());
    }

    #[test]
    fn pick_next_elects_fifo() {
        let mut c = CoreState::new(CpuId(0));
        c.push_ready(task(1));
        c.push_ready(task(2));
        assert_eq!(c.pick_next(), Some(TaskId(1)));
        assert_eq!(c.pick_next(), None, "already has a current thread");
        assert_eq!(c.task_ids(), vec![TaskId(1), TaskId(2)]);
    }
}
