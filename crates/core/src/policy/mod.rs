//! Load-balancing policies: the three user-defined steps of Figure 1.
//!
//! A policy is made of three independent pieces, matching the paper's
//! abstraction exactly:
//!
//! 1. a [`FilterPolicy`] — *"a core uses a filter function to create a list
//!    of other cores that it can steal from"* (step 1, `canSteal` in
//!    Listing 1),
//! 2. a [`ChoicePolicy`] — *"it chooses a core from this list (if any)"*
//!    (step 2, `selectCore` in Listing 1; this is where all the complex
//!    heuristics such as NUMA-aware placement live, and it is deliberately
//!    irrelevant to the work-conservation proof),
//! 3. a [`StealPolicy`] — *"the core steals thread(s) from the chosen
//!    core"* (step 3, `stealCore`/`stealOneThread` in Listing 1).
//!
//! The filter and the choice run in the lock-less selection phase and only
//! see read-only [`CoreSnapshot`]s; the steal policy runs in the locked
//! stealing phase and sees the live [`CoreState`]s of exactly the two cores
//! involved.

pub mod choice;
pub mod greedy;
pub mod hierarchical;
pub mod simple;
pub mod steal;
pub mod topology_aware;
pub mod weighted;

use std::sync::Arc;

use crate::core_state::CoreState;
use crate::load::LoadMetric;
use crate::snapshot::CoreSnapshot;
use crate::task::TaskId;
use crate::tracker::{LoadTracker, PeltTracker, TrackerSpec};
use crate::CoreId;

pub use choice::{
    FirstChoice, MaxLoadChoice, MinMigrationCostChoice, NumaAwareChoice, RandomChoice,
};
pub use greedy::GreedyFilter;
pub use hierarchical::{GroupAwareChoice, NodeRestrictedFilter};
pub use simple::DeltaFilter;
pub use steal::{StealHalfImbalance, StealLightest, StealOne};
pub use topology_aware::{LevelThresholds, TopologyAwareChoice};
pub use weighted::WeightedDeltaFilter;

/// Step 1 of a balancing round: decides which cores may be stolen from.
///
/// The filter is evaluated twice per attempt: once on the optimistic
/// snapshot during the selection phase, and once more on the live state at
/// the start of the stealing phase (Listing 1, line 12).  A filter that held
/// during selection but no longer holds at stealing time is exactly what the
/// paper calls a *failed* work-stealing attempt.
pub trait FilterPolicy: Send + Sync {
    /// Returns `true` if `thief` may steal from `victim` given these
    /// (possibly stale) observations.
    fn can_steal(&self, thief: &CoreSnapshot, victim: &CoreSnapshot) -> bool;

    /// Human-readable name used in reports and experiment tables.
    fn name(&self) -> &'static str;
}

/// Step 2 of a balancing round: picks one core from the filtered list.
///
/// The paper's key observation is that this step "can mostly be ignored in
/// the work-conserving proof": any choice that returns a member of the
/// candidate list preserves the proof, so NUMA-aware and cache-aware
/// heuristics are free.
pub trait ChoicePolicy: Send + Sync {
    /// Chooses a victim among `candidates` (which never contains the thief).
    ///
    /// Must return the id of one of the candidates, or `None` if the list is
    /// empty; the balancer enforces the membership post-condition
    /// (Listing 1's `ensuring(res => cores.contains(res))`).
    fn choose(&self, thief: &CoreSnapshot, candidates: &[CoreSnapshot]) -> Option<CoreId>;

    /// Feedback from the stealing phase: the attempt `thief` made against
    /// `victim` either migrated threads (`success`) or failed its re-check.
    ///
    /// `success` means **any nonzero claim**: a batched steal that asked
    /// for `k` threads and got fewer — because the victim ran short or the
    /// per-task re-check trimmed the batch — migrated real work and must
    /// be reported `true`.  Treating a partial batch as a failure would
    /// feed the backoff machinery exactly backwards, deprioritising the
    /// victims that are actually yielding work.
    ///
    /// Purely advisory — policies may use it to adapt future choices (e.g.
    /// [`TopologyAwareChoice`] backs off distance levels whose steals keep
    /// failing); the default implementation ignores it, and nothing in the
    /// work-conservation proofs depends on it because it only ever
    /// influences step 2.
    fn observe(&self, thief: CoreId, victim: CoreId, success: bool) {
        let _ = (thief, victim, success);
    }

    /// Places a waking task: picks the core a wakeup should land on, given
    /// the waker's view of the machine.
    ///
    /// This is the dual of [`ChoicePolicy::choose`] — instead of a loaded
    /// victim to take work *from*, it wants the emptiest target to hand work
    /// *to*.  The default prefers the task's previous core while it is idle
    /// (cache affinity for free), then any idle core, then the least-loaded
    /// one.  Idleness ties break on the lowest **tracked** load, not the
    /// instantaneous queue length: two cores that are both momentarily idle
    /// can carry very different decayed histories, and placing on the one
    /// that has genuinely been idle avoids churning on transient blips.
    /// Remaining ties break on the lowest core id for determinism.
    fn place_wakeup(&self, prev: CoreId, candidates: &[CoreSnapshot]) -> Option<CoreId> {
        if candidates.iter().any(|c| c.id == prev && c.is_idle()) {
            return Some(prev);
        }
        candidates
            .iter()
            .filter(|c| c.is_idle())
            .min_by_key(|c| (c.tracked_scaled, c.id.0))
            .or_else(|| candidates.iter().min_by_key(|c| (c.tracked_scaled, c.id.0)))
            .map(|c| c.id)
    }

    /// Human-readable name used in reports and experiment tables.
    fn name(&self) -> &'static str;
}

/// Step 3 of a balancing round: decides which waiting threads migrate.
///
/// Runs with both runqueues locked; it may inspect the live state of the
/// thief and the victim but only ever selects threads from the victim's
/// *runqueue* (the victim's current thread is never migrated, so a steal can
/// never render the victim idle).
pub trait StealPolicy: Send + Sync {
    /// Returns the ids of the victim's waiting threads to migrate.
    fn select_tasks(&self, thief: &CoreState, victim: &CoreState) -> Vec<TaskId>;

    /// Human-readable name used in reports and experiment tables.
    fn name(&self) -> &'static str;
}

/// A complete balancing policy: filter + choice + steal + the load
/// criterion the three steps (and the potential function) are measured in.
pub struct Policy {
    /// The load view the policy balances (and the potential is measured in);
    /// always equal to `tracker.view()`.
    pub metric: LoadMetric,
    /// The criterion maintaining the loads the steps read — which entities
    /// count, and whether/how history decays (see [`crate::tracker`]).
    pub tracker: Arc<dyn LoadTracker>,
    /// Step 1.
    pub filter: Box<dyn FilterPolicy>,
    /// Step 2.
    pub choice: Box<dyn ChoicePolicy>,
    /// Step 3.
    pub steal: Box<dyn StealPolicy>,
}

impl Policy {
    /// Builds a policy balancing an instantaneous metric from its three
    /// steps.
    ///
    /// # Panics
    ///
    /// Panics on [`LoadMetric::Tracked`]: a tracked view does not say which
    /// tracker maintains it — use [`Policy::with_tracker`] instead.
    pub fn new(
        metric: LoadMetric,
        filter: Box<dyn FilterPolicy>,
        choice: Box<dyn ChoicePolicy>,
        steal: Box<dyn StealPolicy>,
    ) -> Self {
        Policy {
            metric,
            tracker: TrackerSpec::instantaneous(metric).build(),
            filter,
            choice,
            steal,
        }
    }

    /// Builds a policy around an explicit load tracker; the steps read the
    /// tracker's view ([`LoadMetric::Tracked`] for decayed trackers).
    pub fn with_tracker(
        tracker: Arc<dyn LoadTracker>,
        filter: Box<dyn FilterPolicy>,
        choice: Box<dyn ChoicePolicy>,
        steal: Box<dyn StealPolicy>,
    ) -> Self {
        Policy { metric: tracker.view(), tracker, filter, choice, steal }
    }

    /// The paper's Listing 1 policy: steal one thread from a core whose
    /// thread count exceeds ours by at least two, choosing the most loaded
    /// candidate.
    pub fn simple() -> Self {
        Policy::new(
            LoadMetric::NrThreads,
            Box::new(DeltaFilter::listing1()),
            Box::new(MaxLoadChoice::new(LoadMetric::NrThreads)),
            Box::new(StealOne),
        )
    }

    /// The §4.3 counterexample policy: steal from *any* overloaded core
    /// (`canSteal(stealee) = stealee.load() >= 2`).  Not work-conserving
    /// under concurrency.
    pub fn greedy() -> Self {
        Policy::new(
            LoadMetric::NrThreads,
            Box::new(GreedyFilter::new()),
            Box::new(MaxLoadChoice::new(LoadMetric::NrThreads)),
            Box::new(StealOne),
        )
    }

    /// A niceness-aware policy balancing weighted load, as discussed in §4.2
    /// ("a load balancer that tries to balance the number of threads weighted
    /// by their importance").
    pub fn weighted() -> Self {
        Policy::new(
            LoadMetric::Weighted,
            Box::new(WeightedDeltaFilter::new()),
            Box::new(MaxLoadChoice::new(LoadMetric::Weighted)),
            Box::new(StealLightest),
        )
    }

    /// Listing 1 rebased onto a PELT-style decayed thread count: steal one
    /// thread when the *decayed* load difference reaches two, so brief
    /// bursts and idle blips no longer trigger migrations.
    pub fn pelt(half_life_ns: u64) -> Self {
        Policy::with_tracker(
            Arc::new(PeltTracker::new(LoadMetric::NrThreads, half_life_ns)),
            Box::new(DeltaFilter::new(LoadMetric::Tracked, 2)),
            Box::new(MaxLoadChoice::new(LoadMetric::Tracked)),
            Box::new(StealOne),
        )
    }

    /// The weighted balancer rebased onto a PELT-style decayed weighted
    /// load: steal the lightest waiting thread when the decayed weighted
    /// difference reaches two `nice 0` units.
    pub fn pelt_weighted(half_life_ns: u64) -> Self {
        Policy::with_tracker(
            Arc::new(PeltTracker::new(LoadMetric::Weighted, half_life_ns)),
            Box::new(DeltaFilter::new(LoadMetric::Tracked, 2048)),
            Box::new(MaxLoadChoice::new(LoadMetric::Tracked)),
            Box::new(StealLightest),
        )
    }

    /// Replaces the choice step, keeping filter and steal — the operation
    /// the paper argues is always proof-preserving.
    pub fn with_choice(mut self, choice: Box<dyn ChoicePolicy>) -> Self {
        self.choice = choice;
        self
    }

    /// Replaces the steal step.
    pub fn with_steal(mut self, steal: Box<dyn StealPolicy>) -> Self {
        self.steal = steal;
        self
    }

    /// A compact `filter/choice/steal` description for reports.
    pub fn describe(&self) -> String {
        format!("{}/{}/{}", self.filter.name(), self.choice.name(), self.steal.name())
    }
}

impl std::fmt::Debug for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Policy")
            .field("metric", &self.metric)
            .field("tracker", &self.tracker.name())
            .field("filter", &self.filter.name())
            .field("choice", &self.choice.name())
            .field("steal", &self.steal.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_in_policies_describe_themselves() {
        assert_eq!(Policy::simple().describe(), "delta_filter/max_load/steal_one");
        assert_eq!(Policy::greedy().describe(), "greedy_filter/max_load/steal_one");
        assert_eq!(Policy::weighted().describe(), "weighted_delta_filter/max_load/steal_lightest");
    }

    #[test]
    fn with_choice_only_replaces_step_2() {
        let p = Policy::simple().with_choice(Box::new(FirstChoice));
        assert_eq!(p.describe(), "delta_filter/first/steal_one");
        assert_eq!(p.metric, LoadMetric::NrThreads);
    }

    #[test]
    fn debug_format_is_stable() {
        let p = Policy::simple();
        let s = format!("{p:?}");
        assert!(s.contains("delta_filter"));
        assert!(s.contains("NrThreads"));
    }

    #[test]
    fn instantaneous_policies_carry_matching_trackers() {
        assert_eq!(Policy::simple().tracker.name(), "nr_threads");
        assert_eq!(Policy::weighted().tracker.name(), "weighted");
        assert_eq!(Policy::simple().metric, Policy::simple().tracker.view());
    }

    #[test]
    fn pelt_policies_balance_the_tracked_view() {
        let p = Policy::pelt(8_000_000);
        assert_eq!(p.metric, LoadMetric::Tracked);
        assert!(p.tracker.is_decayed());
        assert_eq!(p.tracker.base(), LoadMetric::NrThreads);
        assert_eq!(p.describe(), "delta_filter/max_load/steal_one");
        let w = Policy::pelt_weighted(8_000_000);
        assert_eq!(w.tracker.base(), LoadMetric::Weighted);
        assert_eq!(w.describe(), "delta_filter/max_load/steal_lightest");
    }

    #[test]
    #[should_panic(expected = "does not name a tracker")]
    fn tracked_metric_needs_an_explicit_tracker() {
        let _ = Policy::new(
            LoadMetric::Tracked,
            Box::new(DeltaFilter::listing1()),
            Box::new(FirstChoice),
            Box::new(StealOne),
        );
    }
}
