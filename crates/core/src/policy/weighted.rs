//! Niceness-aware filter balancing weighted load.

use crate::policy::FilterPolicy;
use crate::snapshot::CoreSnapshot;

/// A filter that balances the *weighted* load while staying work-conserving.
///
/// §4.2 reports that the Listing 2 proof "is still automatically verified for
/// a load balancer that tries to balance the number of threads weighted by
/// their importance".  The condition used here is:
///
/// ```text
/// canSteal(victim) = victim.nr_threads >= 2
///                 && victim.weighted_load > thief.weighted_load
///                                           + victim.lightest_ready_weight
/// ```
///
/// * the `nr_threads >= 2` conjunct keeps the filter *sound* — it never
///   targets a core that is not overloaded, so a successful steal can never
///   empty the victim (Lemma 1, second conjunct);
/// * the margin of one "lightest waiting thread of the victim" keeps the
///   filter *complete* for idle thieves — an overloaded victim always has at
///   least one more thread than its lightest waiting thread, so an idle
///   thief (weighted load 0) always passes (Lemma 1, first conjunct);
/// * the same margin is exactly what makes every successful steal (which
///   migrates that lightest waiting thread, see
///   [`crate::policy::StealLightest`]) strictly decrease the weighted
///   potential `d`, which is the §4.3 P2 termination argument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeightedDeltaFilter {
    _private: (),
}

impl WeightedDeltaFilter {
    /// Creates the weighted filter.
    pub fn new() -> Self {
        WeightedDeltaFilter { _private: () }
    }
}

impl FilterPolicy for WeightedDeltaFilter {
    fn can_steal(&self, thief: &CoreSnapshot, victim: &CoreSnapshot) -> bool {
        let Some(lightest) = victim.lightest_ready_weight else {
            // Nothing is waiting on the victim, so there is nothing to steal.
            return false;
        };
        victim.nr_threads >= 2 && victim.weighted_load > thief.weighted_load + lightest
    }

    fn name(&self) -> &'static str {
        "weighted_delta_filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SystemSnapshot;
    use crate::system::SystemState;
    use crate::task::{Nice, Task, TaskId, Weight};
    use crate::CoreId;
    use sched_topology::NodeId;

    fn snap(id: usize, nr: u64, weighted: u64, lightest: Option<u64>) -> CoreSnapshot {
        CoreSnapshot {
            id: CoreId(id),
            node: NodeId(0),
            nr_threads: nr,
            weighted_load: weighted,
            lightest_ready_weight: lightest,
            tracked_scaled: 0,
            injected: 0,
        }
    }

    #[test]
    fn idle_thief_always_passes_against_overloaded_victim() {
        let f = WeightedDeltaFilter::new();
        let thief = snap(0, 0, 0, None);
        // Worst case: two nice-19 threads, the lightest overloaded core
        // possible (one running, one waiting).
        let victim = snap(1, 2, 2 * Weight::MIN.raw(), Some(Weight::MIN.raw()));
        assert!(f.can_steal(&thief, &victim));
    }

    #[test]
    fn never_targets_a_non_overloaded_core() {
        let f = WeightedDeltaFilter::new();
        let thief = snap(0, 0, 0, None);
        // One very heavy running thread: huge weighted load, nothing waiting.
        let victim = snap(1, 1, Weight::MAX.raw(), None);
        assert!(!f.can_steal(&thief, &victim));
    }

    #[test]
    fn requires_more_imbalance_than_the_lightest_waiting_thread() {
        let f = WeightedDeltaFilter::new();
        // Thief and victim both hold nice-0 threads; the victim is only one
        // thread ahead, so stealing would just swap the imbalance.
        let thief = snap(0, 1, 1024, None);
        let victim = snap(1, 2, 2048, Some(1024));
        assert!(!f.can_steal(&thief, &victim));
        // A second waiting thread tips the balance.
        let heavier = snap(1, 3, 3072, Some(1024));
        assert!(f.can_steal(&thief, &heavier));
    }

    #[test]
    fn a_light_waiting_thread_can_move_even_under_small_imbalance() {
        let f = WeightedDeltaFilter::new();
        let thief = snap(0, 1, 1024, None);
        // Victim runs a nice-0 thread and queues two nice-19 threads:
        // stealing one light thread still strictly reduces the imbalance,
        // so the filter accepts even though the imbalance is tiny.
        let victim = snap(1, 3, 1024 + 30, Some(15));
        assert!(f.can_steal(&thief, &victim));
        // With a single light waiting thread the steal would only swap the
        // imbalance, so the filter declines.
        let marginal = snap(1, 2, 1024 + 15, Some(15));
        assert!(!f.can_steal(&thief, &marginal));
    }

    #[test]
    fn respects_real_weights_from_niceness() {
        let mut s = SystemState::new(2);
        s.core_mut(CoreId(1)).enqueue(Task::with_nice(TaskId(0), Nice::new(-10)));
        s.core_mut(CoreId(1)).enqueue(Task::with_nice(TaskId(1), Nice::new(5)));
        let snapshot = SystemSnapshot::capture(&s);
        let f = WeightedDeltaFilter::new();
        assert!(f.can_steal(snapshot.core(CoreId(0)), snapshot.core(CoreId(1))));
        assert!(!f.can_steal(snapshot.core(CoreId(1)), snapshot.core(CoreId(0))));
    }
}
