//! Hierarchical (group-aware) balancing, expressed purely in step 2.
//!
//! §5: "We aim to extend these abstractions to include hierarchical load
//! balancing, for instance to allow balancing load between groups of cores,
//! and then inside groups, instead of balancing load directly between
//! individual cores."
//!
//! Two designs are provided:
//!
//! * [`GroupAwareChoice`] keeps the hierarchy entirely inside the *choice*
//!   step: the filter is untouched, so every work-conservation lemma carries
//!   over unchanged — this is the design the paper advocates.
//! * [`NodeRestrictedFilter`] instead pushes the hierarchy into the *filter*
//!   step by refusing to steal across NUMA nodes.  It is intentionally
//!   **not** work-conserving (an idle node can starve next to an overloaded
//!   one); `sched-verify` finds the violation, which is exactly why the
//!   paper insists hierarchy should live in step 2.

use std::sync::Arc;

use sched_topology::{MachineTopology, NodeId};

use crate::load::LoadMetric;
use crate::policy::{ChoicePolicy, FilterPolicy};
use crate::snapshot::CoreSnapshot;
use crate::CoreId;

/// Chooses the victim from the most loaded *group* (NUMA node) first, then
/// picks the most loaded core inside that group.
///
/// Because this is only a choice policy, it returns a member of the filtered
/// candidate list and therefore inherits the Listing 1 proof untouched.
#[derive(Debug, Clone)]
pub struct GroupAwareChoice {
    topo: Arc<MachineTopology>,
    metric: LoadMetric,
}

impl GroupAwareChoice {
    /// Creates the policy for the given machine topology.
    pub fn new(topo: Arc<MachineTopology>, metric: LoadMetric) -> Self {
        GroupAwareChoice { topo, metric }
    }

    fn group_load(&self, node: NodeId, candidates: &[CoreSnapshot]) -> u64 {
        candidates.iter().filter(|c| c.node == node).map(|c| c.load(self.metric)).sum()
    }
}

impl ChoicePolicy for GroupAwareChoice {
    fn choose(&self, _thief: &CoreSnapshot, candidates: &[CoreSnapshot]) -> Option<CoreId> {
        let _ = &self.topo; // The topology defines the grouping granularity.
        candidates
            .iter()
            .max_by(|a, b| {
                let ga = self.group_load(a.node, candidates);
                let gb = self.group_load(b.node, candidates);
                ga.cmp(&gb)
                    .then(a.load(self.metric).cmp(&b.load(self.metric)))
                    .then(b.id.cmp(&a.id))
            })
            .map(|c| c.id)
    }

    fn name(&self) -> &'static str {
        "group_aware"
    }
}

/// A filter that wraps another filter but refuses to steal across NUMA nodes.
///
/// **Deliberately unsound** with respect to work conservation: if every
/// overloaded core sits on a remote node, an idle core filters out all of
/// them and stays idle forever.  Used by experiment E12 and the verifier's
/// negative tests to show why hierarchy must not live in step 1.
#[derive(Debug, Clone)]
pub struct NodeRestrictedFilter<F> {
    inner: F,
}

impl<F: FilterPolicy> NodeRestrictedFilter<F> {
    /// Wraps `inner`, restricting it to same-node victims.
    pub fn new(inner: F) -> Self {
        NodeRestrictedFilter { inner }
    }
}

impl<F: FilterPolicy> FilterPolicy for NodeRestrictedFilter<F> {
    fn can_steal(&self, thief: &CoreSnapshot, victim: &CoreSnapshot) -> bool {
        thief.node == victim.node && self.inner.can_steal(thief, victim)
    }

    fn name(&self) -> &'static str {
        "node_restricted_filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::simple::DeltaFilter;
    use crate::snapshot::SystemSnapshot;
    use crate::system::SystemState;
    use crate::task::{Task, TaskId};
    use sched_topology::TopologyBuilder;

    fn two_node_system() -> (Arc<MachineTopology>, SystemState) {
        let topo = Arc::new(TopologyBuilder::new().sockets(2).cores_per_socket(2).build());
        let system = SystemState::with_topology(&topo);
        (topo, system)
    }

    #[test]
    fn group_aware_prefers_the_most_loaded_node() {
        let (topo, mut system) = two_node_system();
        // Node 0 (cores 0,1): thief plus a core with 2 threads.
        // Node 1 (cores 2,3): two cores with 2 and 3 threads — the heavier group.
        let mut next = 0u64;
        let mut add = |sys: &mut SystemState, core: usize, n: usize| {
            for _ in 0..n {
                sys.core_mut(CoreId(core)).enqueue(Task::new(TaskId(next)));
                next += 1;
            }
        };
        add(&mut system, 1, 2);
        add(&mut system, 2, 2);
        add(&mut system, 3, 3);
        let snap = SystemSnapshot::capture(&system);
        let choice = GroupAwareChoice::new(topo, LoadMetric::NrThreads);
        let chosen = choice.choose(snap.core(CoreId(0)), &snap.others(CoreId(0))).unwrap();
        assert_eq!(chosen, CoreId(3), "heaviest core of the heaviest group");
    }

    #[test]
    fn group_aware_returns_none_for_no_candidates() {
        let (topo, system) = two_node_system();
        let snap = SystemSnapshot::capture(&system);
        let choice = GroupAwareChoice::new(topo, LoadMetric::NrThreads);
        assert_eq!(choice.choose(snap.core(CoreId(0)), &[]), None);
    }

    #[test]
    fn node_restricted_filter_blocks_cross_node_steals() {
        let (_topo, mut system) = two_node_system();
        for i in 0..3 {
            system.core_mut(CoreId(3)).enqueue(Task::new(TaskId(i)));
        }
        let snap = SystemSnapshot::capture(&system);
        let unrestricted = DeltaFilter::listing1();
        let restricted = NodeRestrictedFilter::new(DeltaFilter::listing1());
        // Core 0 is on node 0, core 3 on node 1: the plain filter allows the
        // steal, the node-restricted one forbids it — which is precisely the
        // work-conservation violation E12 demonstrates.
        assert!(unrestricted.can_steal(snap.core(CoreId(0)), snap.core(CoreId(3))));
        assert!(!restricted.can_steal(snap.core(CoreId(0)), snap.core(CoreId(3))));
        // Same-node stealing is still permitted.
        assert!(restricted.can_steal(snap.core(CoreId(2)), snap.core(CoreId(3))));
    }
}
