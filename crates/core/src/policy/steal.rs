//! Step-3 steal policies: which waiting threads migrate once both runqueues
//! are locked.

use crate::core_state::CoreState;
use crate::load::LoadMetric;
use crate::policy::StealPolicy;
use crate::task::TaskId;

/// Steals exactly one thread: the most recently queued waiting thread.
///
/// This is Listing 1's `stealOneThread`.  Taking the newest waiting thread
/// (rather than the oldest) keeps threads that have been waiting longest on
/// their original core, which preserves their FIFO position there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealOne;

impl StealPolicy for StealOne {
    fn select_tasks(&self, _thief: &CoreState, victim: &CoreState) -> Vec<TaskId> {
        victim.ready.last().map(|t| vec![t.id]).unwrap_or_default()
    }

    fn name(&self) -> &'static str {
        "steal_one"
    }
}

/// Steals exactly one thread: the lightest waiting thread.
///
/// Used by the weighted policy so that a steal can never overshoot and
/// invert the weighted imbalance, which keeps the weighted potential
/// strictly decreasing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealLightest;

impl StealPolicy for StealLightest {
    fn select_tasks(&self, _thief: &CoreState, victim: &CoreState) -> Vec<TaskId> {
        victim
            .ready
            .iter()
            .min_by_key(|t| (t.weight().raw(), t.id))
            .map(|t| vec![t.id])
            .unwrap_or_default()
    }

    fn name(&self) -> &'static str {
        "steal_lightest"
    }
}

/// Steals enough threads to halve the imbalance, never emptying the victim.
///
/// CFS migrates batches rather than single threads; this policy models that
/// behaviour.  It steals `⌊(victim − thief) / 2⌋` threads (at least one, and
/// never the victim's current thread), which converges in fewer rounds than
/// [`StealOne`] at the cost of larger per-round migrations — the trade-off
/// measured by the E8 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealHalfImbalance {
    metric: LoadMetric,
}

impl StealHalfImbalance {
    /// Creates the policy for the given metric.
    pub fn new(metric: LoadMetric) -> Self {
        StealHalfImbalance { metric }
    }
}

impl StealPolicy for StealHalfImbalance {
    fn select_tasks(&self, thief: &CoreState, victim: &CoreState) -> Vec<TaskId> {
        let victim_load = victim.load(self.metric);
        let thief_load = thief.load(self.metric);
        if victim_load <= thief_load {
            return Vec::new();
        }
        let target = match self.metric {
            LoadMetric::NrThreads => ((victim_load - thief_load) / 2).max(1) as usize,
            // Weighted imbalances convert to a thread count by assuming
            // nice-0 threads.  A *tracked* imbalance is in whatever units
            // its tracker's base metric uses, which this policy cannot see,
            // so it takes the conservative reading too: correct when the
            // base is weighted, and a safe steal-one when the base is a
            // thread count (a batch would need the unit).  Either way the
            // clamp below keeps the steal from overshooting.
            LoadMetric::Weighted | LoadMetric::Tracked => (((victim_load - thief_load) / 2)
                / crate::task::Weight::NICE_0.raw())
            .max(1) as usize,
        };
        // Never steal so much that the victim ends up idle: if the victim has
        // no current thread (its work is all waiting), one waiting thread must
        // stay behind.  This is the "does not steal too much" obligation of
        // §4.2.
        let keep = usize::from(victim.current.is_none());
        let take = target.min(victim.ready.len().saturating_sub(keep));
        victim.ready.iter().rev().take(take).map(|t| t.id).collect()
    }

    fn name(&self) -> &'static str {
        "steal_half"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemState;
    use crate::task::{Nice, Task};
    use crate::CoreId;

    #[test]
    fn steal_one_takes_the_newest_waiting_thread() {
        let s = SystemState::from_loads(&[0, 3]);
        let thief = s.core(CoreId(0));
        let victim = s.core(CoreId(1));
        let picked = StealOne.select_tasks(thief, victim);
        assert_eq!(picked, vec![victim.ready.last().unwrap().id]);
    }

    #[test]
    fn steal_one_returns_nothing_for_an_empty_runqueue() {
        let s = SystemState::from_loads(&[0, 1]);
        assert!(StealOne.select_tasks(s.core(CoreId(0)), s.core(CoreId(1))).is_empty());
    }

    #[test]
    fn steal_lightest_picks_minimum_weight() {
        let mut s = SystemState::new(2);
        s.core_mut(CoreId(1)).enqueue(Task::with_nice(TaskId(0), Nice::new(0)));
        s.core_mut(CoreId(1)).enqueue(Task::with_nice(TaskId(1), Nice::new(-10)));
        s.core_mut(CoreId(1)).enqueue(Task::with_nice(TaskId(2), Nice::new(10)));
        let picked = StealLightest.select_tasks(s.core(CoreId(0)), s.core(CoreId(1)));
        assert_eq!(picked, vec![TaskId(2)]);
    }

    #[test]
    fn steal_half_halves_the_imbalance() {
        let s = SystemState::from_loads(&[0, 7]);
        let picked = StealHalfImbalance::new(LoadMetric::NrThreads)
            .select_tasks(s.core(CoreId(0)), s.core(CoreId(1)));
        assert_eq!(picked.len(), 3);
        // All picked tasks are waiting tasks of the victim.
        for id in &picked {
            assert!(s.core(CoreId(1)).ready.iter().any(|t| t.id == *id));
        }
    }

    #[test]
    fn steal_half_never_returns_more_than_the_queue() {
        let s = SystemState::from_loads(&[0, 2]);
        let picked = StealHalfImbalance::new(LoadMetric::NrThreads)
            .select_tasks(s.core(CoreId(0)), s.core(CoreId(1)));
        assert_eq!(picked.len(), 1);
    }

    #[test]
    fn steal_half_on_a_tracked_metric_never_drains_the_victim() {
        // A tracked imbalance may be in weighted units (e.g. 4096 between
        // two cores under a weighted-base PELT tracker): the conversion
        // must not read it as "4096 threads" and empty the victim's queue.
        let mut s = SystemState::from_loads(&[0, 6]);
        let tracker = crate::tracker::PeltTracker::new(LoadMetric::Weighted, 1_000_000);
        s.tick(64_000_000, &tracker);
        let picked = StealHalfImbalance::new(LoadMetric::Tracked)
            .select_tasks(s.core(CoreId(0)), s.core(CoreId(1)));
        // Weighted imbalance 6×1024: halved and converted = 3 threads.
        assert_eq!(picked.len(), 3);
        assert!(picked.len() < s.core(CoreId(1)).ready.len() + 1);
    }

    #[test]
    fn steal_half_declines_when_there_is_no_imbalance() {
        let s = SystemState::from_loads(&[3, 3]);
        let picked = StealHalfImbalance::new(LoadMetric::NrThreads)
            .select_tasks(s.core(CoreId(0)), s.core(CoreId(1)));
        assert!(picked.is_empty());
    }

    use crate::task::TaskId;
}
