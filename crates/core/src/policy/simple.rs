//! The paper's Listing 1 filter: steal only from cores at least two threads
//! ahead of us.

use crate::load::LoadMetric;
use crate::policy::FilterPolicy;
use crate::snapshot::CoreSnapshot;

/// `canSteal(stealee) = stealee.load() - self.load() >= threshold`.
///
/// With `metric = NrThreads` and `threshold = 2` this is exactly the filter
/// of Listing 1 (line 6).  The threshold of two is what makes the policy
/// work-conserving under concurrency: an idle thief (load 0) always passes
/// the filter against an overloaded victim (load ≥ 2), while two non-idle
/// cores can never ping-pong a thread back and forth (stealing requires a
/// strict imbalance, and the steal strictly reduces it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaFilter {
    metric: LoadMetric,
    threshold: u64,
}

impl DeltaFilter {
    /// The exact Listing 1 filter: thread counts, threshold 2.
    pub fn listing1() -> Self {
        DeltaFilter { metric: LoadMetric::NrThreads, threshold: 2 }
    }

    /// A delta filter over an arbitrary metric and threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero: a zero threshold would allow stealing
    /// from a core with the same load, which cannot decrease the potential.
    pub fn new(metric: LoadMetric, threshold: u64) -> Self {
        assert!(threshold > 0, "a delta filter needs a positive threshold");
        DeltaFilter { metric, threshold }
    }

    /// The metric this filter compares.
    pub fn metric(&self) -> LoadMetric {
        self.metric
    }

    /// The minimum load difference required to steal.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

impl FilterPolicy for DeltaFilter {
    fn can_steal(&self, thief: &CoreSnapshot, victim: &CoreSnapshot) -> bool {
        let thief_load = thief.load(self.metric);
        let victim_load = victim.load(self.metric);
        victim_load >= thief_load + self.threshold
    }

    fn name(&self) -> &'static str {
        "delta_filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SystemSnapshot;
    use crate::system::SystemState;
    use crate::CoreId;

    fn snaps(loads: &[usize]) -> SystemSnapshot {
        SystemSnapshot::capture(&SystemState::from_loads(loads))
    }

    #[test]
    fn idle_thief_can_steal_from_overloaded_victim() {
        let s = snaps(&[0, 2]);
        let f = DeltaFilter::listing1();
        assert!(f.can_steal(s.core(CoreId(0)), s.core(CoreId(1))));
    }

    #[test]
    fn idle_thief_cannot_steal_from_busy_but_not_overloaded_victim() {
        let s = snaps(&[0, 1]);
        let f = DeltaFilter::listing1();
        assert!(!f.can_steal(s.core(CoreId(0)), s.core(CoreId(1))));
    }

    #[test]
    fn equal_loads_never_steal() {
        let s = snaps(&[3, 3]);
        let f = DeltaFilter::listing1();
        assert!(!f.can_steal(s.core(CoreId(0)), s.core(CoreId(1))));
        assert!(!f.can_steal(s.core(CoreId(1)), s.core(CoreId(0))));
    }

    #[test]
    fn difference_of_one_is_not_enough() {
        // This is what rules out the §4.3 ping-pong: cores 1 and 2 of the
        // counterexample (loads 1 and 2) must not want to steal from each
        // other.
        let s = snaps(&[1, 2]);
        let f = DeltaFilter::listing1();
        assert!(!f.can_steal(s.core(CoreId(0)), s.core(CoreId(1))));
    }

    #[test]
    fn difference_of_two_or_more_is_enough_even_for_busy_thieves() {
        let s = snaps(&[1, 3]);
        let f = DeltaFilter::listing1();
        assert!(f.can_steal(s.core(CoreId(0)), s.core(CoreId(1))));
    }

    #[test]
    fn weighted_variant_uses_weighted_loads() {
        let s = snaps(&[0, 2]);
        let f = DeltaFilter::new(LoadMetric::Weighted, 2048);
        assert!(f.can_steal(s.core(CoreId(0)), s.core(CoreId(1))));
        let g = DeltaFilter::new(LoadMetric::Weighted, 4096);
        assert!(!g.can_steal(s.core(CoreId(0)), s.core(CoreId(1))));
    }

    #[test]
    #[should_panic(expected = "positive threshold")]
    fn zero_threshold_is_rejected() {
        let _ = DeltaFilter::new(LoadMetric::NrThreads, 0);
    }

    #[test]
    fn accessors() {
        let f = DeltaFilter::listing1();
        assert_eq!(f.metric(), LoadMetric::NrThreads);
        assert_eq!(f.threshold(), 2);
        assert_eq!(f.name(), "delta_filter");
    }
}
