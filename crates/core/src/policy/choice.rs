//! Step-2 choice policies.
//!
//! "The exact choice of the core does not matter for the correctness proof.
//! This provides a notable simplification of the proving effort as the
//! counterpart of the choice step in legacy OSes usually contains all the
//! complex heuristics used to perform smart thread placement (e.g., giving
//! priority to some core to improve cache locality, NUMA-aware decisions,
//! etc.)." (§3.1)
//!
//! Every policy here only promises to return a member of the candidate list;
//! experiment E1 verifies that swapping any of them in or out leaves every
//! lemma intact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sched_topology::MachineTopology;

use crate::load::LoadMetric;
use crate::policy::ChoicePolicy;
use crate::snapshot::CoreSnapshot;
use crate::CoreId;

/// Picks the first candidate (lowest core id).  The simplest valid choice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirstChoice;

impl ChoicePolicy for FirstChoice {
    fn choose(&self, _thief: &CoreSnapshot, candidates: &[CoreSnapshot]) -> Option<CoreId> {
        candidates.first().map(|c| c.id)
    }

    fn name(&self) -> &'static str {
        "first"
    }
}

/// Picks the most loaded candidate, breaking ties towards the lowest id.
///
/// This mirrors CFS's `find_busiest_queue` heuristic and is the default
/// choice step of [`crate::Policy::simple`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxLoadChoice {
    metric: LoadMetric,
}

impl MaxLoadChoice {
    /// Creates the choice policy for the given metric.
    pub fn new(metric: LoadMetric) -> Self {
        MaxLoadChoice { metric }
    }
}

impl ChoicePolicy for MaxLoadChoice {
    fn choose(&self, _thief: &CoreSnapshot, candidates: &[CoreSnapshot]) -> Option<CoreId> {
        candidates
            .iter()
            .max_by(|a, b| a.load(self.metric).cmp(&b.load(self.metric)).then(b.id.cmp(&a.id)))
            .map(|c| c.id)
    }

    fn name(&self) -> &'static str {
        "max_load"
    }
}

/// Picks a pseudo-random candidate from a deterministic internal stream.
///
/// The stream is a splitmix64 generator seeded at construction, so runs are
/// reproducible; randomness models policies that deliberately spread stealing
/// pressure across victims.
#[derive(Debug)]
pub struct RandomChoice {
    state: AtomicU64,
}

impl RandomChoice {
    /// Creates the policy with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomChoice { state: AtomicU64::new(seed.wrapping_add(0x9E37_79B9_7F4A_7C15)) }
    }

    fn next(&self) -> u64 {
        // splitmix64: a full-period 64-bit mixer; good enough to spread
        // victim selection, not meant to be cryptographic.
        let mut z = self.state.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl ChoicePolicy for RandomChoice {
    fn choose(&self, _thief: &CoreSnapshot, candidates: &[CoreSnapshot]) -> Option<CoreId> {
        if candidates.is_empty() {
            return None;
        }
        let idx = (self.next() % candidates.len() as u64) as usize;
        Some(candidates[idx].id)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Prefers candidates on the thief's own NUMA node, then nearer nodes, and
/// only then remote ones; within a distance class, prefers the most loaded.
///
/// This is the "NUMA-aware thread placement" heuristic the paper cites as a
/// requirement for realistic schedulers (§1) and as a free extension in
/// step 2 (§5).
#[derive(Debug, Clone)]
pub struct NumaAwareChoice {
    topo: Arc<MachineTopology>,
    metric: LoadMetric,
}

impl NumaAwareChoice {
    /// Creates the policy for the given machine topology.
    pub fn new(topo: Arc<MachineTopology>, metric: LoadMetric) -> Self {
        NumaAwareChoice { topo, metric }
    }
}

impl ChoicePolicy for NumaAwareChoice {
    fn choose(&self, thief: &CoreSnapshot, candidates: &[CoreSnapshot]) -> Option<CoreId> {
        candidates
            .iter()
            .min_by(|a, b| {
                let da = self.topo.distances().distance(thief.node, a.node);
                let db = self.topo.distances().distance(thief.node, b.node);
                da.cmp(&db)
                    .then(b.load(self.metric).cmp(&a.load(self.metric)))
                    .then(a.id.cmp(&b.id))
            })
            .map(|c| c.id)
    }

    fn name(&self) -> &'static str {
        "numa_aware"
    }
}

/// Picks the candidate with the lowest thread-migration cost (same LLC before
/// same node before remote node), breaking ties towards the most loaded.
///
/// Models cache-locality-preserving stealing.
#[derive(Debug, Clone)]
pub struct MinMigrationCostChoice {
    topo: Arc<MachineTopology>,
    metric: LoadMetric,
}

impl MinMigrationCostChoice {
    /// Creates the policy for the given machine topology.
    pub fn new(topo: Arc<MachineTopology>, metric: LoadMetric) -> Self {
        MinMigrationCostChoice { topo, metric }
    }
}

impl ChoicePolicy for MinMigrationCostChoice {
    fn choose(&self, thief: &CoreSnapshot, candidates: &[CoreSnapshot]) -> Option<CoreId> {
        candidates
            .iter()
            .min_by(|a, b| {
                let ca = self.topo.migration_cost(a.id, thief.id);
                let cb = self.topo.migration_cost(b.id, thief.id);
                ca.cmp(&cb)
                    .then(b.load(self.metric).cmp(&a.load(self.metric)))
                    .then(a.id.cmp(&b.id))
            })
            .map(|c| c.id)
    }

    fn name(&self) -> &'static str {
        "min_migration_cost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SystemSnapshot;
    use crate::system::SystemState;
    use sched_topology::TopologyBuilder;

    fn candidates(loads: &[usize], thief: usize) -> (CoreSnapshot, Vec<CoreSnapshot>) {
        let snap = SystemSnapshot::capture(&SystemState::from_loads(loads));
        (*snap.core(CoreId(thief)), snap.others(CoreId(thief)))
    }

    #[test]
    fn first_choice_picks_lowest_id() {
        let (thief, cands) = candidates(&[0, 2, 3], 0);
        assert_eq!(FirstChoice.choose(&thief, &cands), Some(CoreId(1)));
        assert_eq!(FirstChoice.choose(&thief, &[]), None);
    }

    #[test]
    fn max_load_picks_busiest_and_breaks_ties_low() {
        let (thief, cands) = candidates(&[0, 2, 5, 5], 0);
        assert_eq!(
            MaxLoadChoice::new(LoadMetric::NrThreads).choose(&thief, &cands),
            Some(CoreId(2))
        );
    }

    #[test]
    fn random_choice_is_deterministic_per_seed_and_stays_in_candidates() {
        let (thief, cands) = candidates(&[0, 2, 3, 4, 5], 0);
        let a = RandomChoice::new(42);
        let b = RandomChoice::new(42);
        let ids: Vec<_> = cands.iter().map(|c| c.id).collect();
        for _ in 0..32 {
            let ca = a.choose(&thief, &cands).unwrap();
            let cb = b.choose(&thief, &cands).unwrap();
            assert_eq!(ca, cb);
            assert!(ids.contains(&ca));
        }
    }

    #[test]
    fn numa_aware_prefers_local_node() {
        let topo = Arc::new(TopologyBuilder::new().sockets(2).cores_per_socket(2).build());
        let mut system = SystemState::with_topology(&topo);
        // Overload one core on each node; the thief is core 0 on node 0.
        for i in 0..2u64 {
            system.core_mut(CoreId(1)).enqueue(crate::Task::new(crate::TaskId(100 + i)));
            system.core_mut(CoreId(3)).enqueue(crate::Task::new(crate::TaskId(200 + i)));
        }
        let snap = SystemSnapshot::capture(&system);
        let policy = NumaAwareChoice::new(topo, LoadMetric::NrThreads);
        let chosen = policy.choose(snap.core(CoreId(0)), &snap.others(CoreId(0))).unwrap();
        assert_eq!(chosen, CoreId(1), "core 1 is on the thief's node");
    }

    #[test]
    fn min_migration_cost_prefers_same_llc() {
        let topo = Arc::new(
            TopologyBuilder::new().sockets(1).cores_per_socket(4).llcs_per_socket(2).build(),
        );
        let mut system = SystemState::with_topology(&topo);
        for core in [1usize, 2, 3] {
            for t in 0..2 {
                system
                    .core_mut(CoreId(core))
                    .enqueue(crate::Task::new(crate::TaskId((core * 10 + t) as u64)));
            }
        }
        let snap = SystemSnapshot::capture(&system);
        let policy = MinMigrationCostChoice::new(topo, LoadMetric::NrThreads);
        let chosen = policy.choose(snap.core(CoreId(0)), &snap.others(CoreId(0))).unwrap();
        assert_eq!(chosen, CoreId(1), "core 1 shares the LLC with core 0");
    }
}
