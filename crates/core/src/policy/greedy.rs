//! The §4.3 counterexample filter: steal from any overloaded core.

use crate::policy::FilterPolicy;
use crate::snapshot::CoreSnapshot;

/// `canSteal(stealee) = stealee.load() >= 2`.
///
/// This is the filter the paper uses to show that a seemingly reasonable
/// policy is **not** work-conserving once concurrency and failures are taken
/// into account: on a three-core machine with loads `[0, 1, 2]`, cores 0 and
/// 1 can both target core 2, core 1 can win every round, and the thread can
/// ping-pong between cores 1 and 2 forever while core 0 stays idle (§4.3).
///
/// The filter is *sound* in the sequential setting (it satisfies Lemma 1),
/// which is exactly why the paper needs the stronger, concurrency-aware
/// properties P1/P2 — `sched-verify` finds the ping-pong automatically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyFilter {
    _private: (),
}

impl GreedyFilter {
    /// Creates the greedy filter.
    pub fn new() -> Self {
        GreedyFilter { _private: () }
    }
}

impl FilterPolicy for GreedyFilter {
    fn can_steal(&self, _thief: &CoreSnapshot, victim: &CoreSnapshot) -> bool {
        victim.nr_threads >= 2
    }

    fn name(&self) -> &'static str {
        "greedy_filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SystemSnapshot;
    use crate::system::SystemState;
    use crate::CoreId;

    #[test]
    fn any_core_may_target_an_overloaded_victim() {
        let s = SystemSnapshot::capture(&SystemState::from_loads(&[0, 1, 2]));
        let f = GreedyFilter::new();
        // Both the idle core 0 and the busy core 1 want to steal from core 2:
        // this is the root cause of the ping-pong counterexample.
        assert!(f.can_steal(s.core(CoreId(0)), s.core(CoreId(2))));
        assert!(f.can_steal(s.core(CoreId(1)), s.core(CoreId(2))));
        assert!(!f.can_steal(s.core(CoreId(0)), s.core(CoreId(1))));
    }

    #[test]
    fn still_satisfies_lemma1_in_isolation() {
        // The greedy filter is sound sequentially: an idle thief targets a
        // core iff that core is overloaded.
        let s = SystemSnapshot::capture(&SystemState::from_loads(&[0, 1, 2, 5]));
        let f = GreedyFilter::new();
        let thief = s.core(CoreId(0));
        for victim in s.others(CoreId(0)) {
            assert_eq!(f.can_steal(thief, &victim), victim.is_overloaded());
        }
    }
}
