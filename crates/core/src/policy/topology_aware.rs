//! Distance-ordered victim search: the topology-aware step-2 choice.
//!
//! The "wasted cores" family of bugs is a family of *topology* bugs:
//! balancing logic that either ignores NUMA distance (shredding locality on
//! every steal) or hard-codes it into the filter (starving idle cores next
//! to overloaded remote nodes).  [`TopologyAwareChoice`] threads the needle
//! the way the paper prescribes (§3.1, §5): all topology awareness lives in
//! the **choice** step, so every work-conservation lemma carries over
//! unchanged, while victims are searched in distance order —
//! SMT sibling → same LLC → same node → remote node — with a per-level
//! steal threshold and a per-level failure backoff.
//!
//! Two properties keep the proofs intact:
//!
//! * **Thresholds bias, they never block.**  A level's threshold demands a
//!   bigger imbalance before stealing across that boundary, but if *no*
//!   level meets its threshold the search falls back to the nearest
//!   candidate anyway: the choice returns `Some` whenever the candidate
//!   list is non-empty, which is all the proofs require of step 2.
//! * **Backoff deprioritises, it never excludes.**  A level whose steals
//!   keep failing their re-check (contended victims) is pushed to the back
//!   of the search order for a few rounds, but its candidates remain
//!   eligible through the fallback.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use sched_topology::{MachineTopology, StealLevel};

use crate::load::LoadMetric;
use crate::policy::ChoicePolicy;
use crate::snapshot::CoreSnapshot;
use crate::CoreId;

/// Minimum load surplus (`victim − thief`) demanded before stealing across
/// each boundary, indexed by [`StealLevel`].
///
/// The defaults mirror Listing 1's `delta >= 2` for every local level and
/// demand twice that before paying a cross-node migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelThresholds {
    deltas: [u64; 4],
}

impl Default for LevelThresholds {
    fn default() -> Self {
        LevelThresholds { deltas: [2, 2, 2, 4] }
    }
}

impl LevelThresholds {
    /// Explicit per-level thresholds, innermost first.
    pub fn new(smt: u64, llc: u64, node: u64, remote: u64) -> Self {
        LevelThresholds { deltas: [smt, llc, node, remote] }
    }

    /// A uniform threshold: every level behaves like Listing 1.
    pub fn uniform(delta: u64) -> Self {
        LevelThresholds { deltas: [delta; 4] }
    }

    /// The surplus demanded at `level`.
    pub fn delta(&self, level: StealLevel) -> u64 {
        self.deltas[level.index()]
    }
}

/// How many consecutive failed steals at one level push that level to the
/// back of the search order.
const BACKOFF_AFTER: u32 = 3;

/// The distance-ordered, threshold-gated, backoff-aware choice policy.
///
/// Shared by all three backends: the pure model executes it inside
/// [`crate::round::ConcurrentRound`], the simulator inside its balance
/// rounds, and the real-thread runqueues inside `MultiQueue::balance_once` —
/// the identical policy object at every altitude.
#[derive(Debug)]
pub struct TopologyAwareChoice {
    topo: Arc<MachineTopology>,
    metric: LoadMetric,
    thresholds: LevelThresholds,
    /// Consecutive re-check failures per level, fed by
    /// [`ChoicePolicy::observe`]; reset on any success at that level.
    failure_streaks: [AtomicU32; 4],
}

impl TopologyAwareChoice {
    /// Creates the policy with default thresholds.
    pub fn new(topo: Arc<MachineTopology>, metric: LoadMetric) -> Self {
        Self::with_thresholds(topo, metric, LevelThresholds::default())
    }

    /// Creates the policy with explicit per-level thresholds.
    pub fn with_thresholds(
        topo: Arc<MachineTopology>,
        metric: LoadMetric,
        thresholds: LevelThresholds,
    ) -> Self {
        TopologyAwareChoice {
            topo,
            metric,
            thresholds,
            failure_streaks: [const { AtomicU32::new(0) }; 4],
        }
    }

    /// The machine this policy searches over.
    pub fn topology(&self) -> &Arc<MachineTopology> {
        &self.topo
    }

    /// Current consecutive-failure streak of `level` (for tests and stats).
    pub fn failure_streak(&self, level: StealLevel) -> u32 {
        self.failure_streaks[level.index()].load(Ordering::Relaxed)
    }

    /// Returns `true` if `level` is currently deprioritised.
    fn backed_off(&self, level: StealLevel) -> bool {
        self.failure_streak(level) >= BACKOFF_AFTER
    }

    /// The best candidate of one level: deepest injector first, then most
    /// loaded, ties to the lowest id.
    ///
    /// The injector key makes the choice **injector-aware**: a victim whose
    /// waiting work sits in its shared overflow injector is the cheapest
    /// steal there is — a thief claims a whole batch under one uncontended
    /// lock round-trip — while a victim whose work sits in a hot ring makes
    /// every thief race CASes against the owner and each other.  Preferring
    /// depth over raw load routes thieves away from those CAS storms.  On
    /// substrates without injectors every snapshot reports `injected == 0`,
    /// and the ordering degenerates to the original most-loaded rule, so
    /// the model and the mutex backends are unaffected.  Like every step-2
    /// refinement, this is proof-preserving: the returned core is still a
    /// member of the filtered candidate list.
    fn best_of<'c>(&self, group: &[&'c CoreSnapshot]) -> Option<&'c CoreSnapshot> {
        group
            .iter()
            .max_by(|a, b| {
                a.injected
                    .cmp(&b.injected)
                    .then(a.load(self.metric).cmp(&b.load(self.metric)))
                    .then(b.id.cmp(&a.id))
            })
            .copied()
    }
}

impl ChoicePolicy for TopologyAwareChoice {
    fn choose(&self, thief: &CoreSnapshot, candidates: &[CoreSnapshot]) -> Option<CoreId> {
        if candidates.is_empty() {
            return None;
        }
        // Bucket the filtered candidates by distance class.
        let mut by_level: [Vec<&CoreSnapshot>; 4] = [vec![], vec![], vec![], vec![]];
        for c in candidates {
            by_level[self.topo.steal_level(thief.id, c.id).index()].push(c);
        }

        // Preferred walk: innermost level first, skipping levels that are
        // backed off; a skipped level's streak decays by one so it rejoins
        // the walk after a few rounds even without an intervening success.
        let thief_load = thief.load(self.metric);
        let mut deferred: Vec<StealLevel> = Vec::new();
        for level in StealLevel::ALL {
            let group = &by_level[level.index()];
            if group.is_empty() {
                continue;
            }
            if self.backed_off(level) {
                // Saturating decay: concurrent thieves may race this, and a
                // plain fetch_sub could underflow past zero, pinning the
                // level in back-off forever.
                let _ = self.failure_streaks[level.index()].fetch_update(
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                    |s| Some(s.saturating_sub(1)),
                );
                deferred.push(level);
                continue;
            }
            if let Some(best) = self.best_of(group) {
                if best.load(self.metric) >= thief_load + self.thresholds.delta(level) {
                    return Some(best.id);
                }
            }
        }
        // Second chance for the backed-off levels, still in distance order.
        for level in deferred {
            if let Some(best) = self.best_of(&by_level[level.index()]) {
                if best.load(self.metric) >= thief_load + self.thresholds.delta(level) {
                    return Some(best.id);
                }
            }
        }
        // Fallback: no level met its threshold, but the filter admitted the
        // candidates — pick the nearest one so the choice never blocks a
        // steal the proofs count on.
        for level in StealLevel::ALL {
            if let Some(best) = self.best_of(&by_level[level.index()]) {
                return Some(best.id);
            }
        }
        unreachable!("candidates is non-empty, so some level has a best candidate")
    }

    /// Topology-aware wakeup placement: the previous core while it is idle
    /// (cache warmth is worth more than any balance heuristic), then the
    /// *nearest* idle core in distance order — SMT sibling → LLC → node →
    /// remote — with idleness ties inside a level broken by the lowest
    /// **tracked** load, then the lowest id.  The tracked tie-break is the
    /// point: an instantaneously idle core that was busy a millisecond ago
    /// still carries decayed load, and a waking task placed there just
    /// collides with the next blip; the core whose tracked load is lowest
    /// has genuinely been idle.  With no idle core at all, fall back to the
    /// least-tracked-loaded candidate anywhere.
    fn place_wakeup(&self, prev: CoreId, candidates: &[CoreSnapshot]) -> Option<CoreId> {
        if candidates.iter().any(|c| c.id == prev && c.is_idle()) {
            return Some(prev);
        }
        let mut by_level: [Vec<&CoreSnapshot>; 4] = [vec![], vec![], vec![], vec![]];
        for c in candidates {
            // `prev` itself is not idle (checked above); it re-enters only
            // through the no-idle-core fallback, where distance is moot.
            if c.id != prev {
                by_level[self.topo.steal_level(prev, c.id).index()].push(c);
            }
        }
        for level in StealLevel::ALL {
            if let Some(best) = by_level[level.index()]
                .iter()
                .filter(|c| c.is_idle())
                .min_by_key(|c| (c.tracked_scaled, c.id.0))
            {
                return Some(best.id);
            }
        }
        candidates.iter().min_by_key(|c| (c.tracked_scaled, c.id.0)).map(|c| c.id)
    }

    fn observe(&self, thief: CoreId, victim: CoreId, success: bool) {
        if thief == victim {
            return;
        }
        let idx = self.topo.steal_level(thief, victim).index();
        if success {
            self.failure_streaks[idx].store(0, Ordering::Relaxed);
        } else {
            self.failure_streaks[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn name(&self) -> &'static str {
        "topology_aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SystemSnapshot;
    use crate::system::SystemState;
    use crate::task::{Task, TaskId};
    use sched_topology::TopologyBuilder;

    /// 2 sockets × 4 cores × 2 LLCs × SMT-2 = 16 CPUs; cpu0's sibling is
    /// cpu1, its LLC is cpus 0..4, its node cpus 0..8.
    fn rich_topo() -> Arc<MachineTopology> {
        Arc::new(
            TopologyBuilder::new().sockets(2).cores_per_socket(4).llcs_per_socket(2).smt(2).build(),
        )
    }

    fn loaded_system(topo: &Arc<MachineTopology>, loads: &[(usize, usize)]) -> SystemState {
        let mut system = SystemState::with_topology(topo);
        let mut next = 0u64;
        for &(core, n) in loads {
            for _ in 0..n {
                system.core_mut(CoreId(core)).enqueue(Task::new(TaskId(next)));
                next += 1;
            }
        }
        system
    }

    /// Mirrors the selection phase: filter with Listing 1, then choose.
    fn choose_for(choice: &TopologyAwareChoice, system: &SystemState, thief: usize) -> CoreId {
        use crate::policy::{DeltaFilter, FilterPolicy};
        let snap = SystemSnapshot::capture(system);
        let thief_snap = *snap.core(CoreId(thief));
        let filter = DeltaFilter::listing1();
        let candidates: Vec<_> = snap
            .others(CoreId(thief))
            .into_iter()
            .filter(|v| filter.can_steal(&thief_snap, v))
            .collect();
        choice.choose(&thief_snap, &candidates).unwrap()
    }

    #[test]
    fn prefers_the_closest_loaded_level() {
        let topo = rich_topo();
        // Equal overloads at every distance from cpu0: sibling (1), LLC (2),
        // node (4), remote (8) — the sibling must win.
        let system = loaded_system(&topo, &[(1, 3), (2, 3), (4, 3), (8, 3)]);
        let choice = TopologyAwareChoice::new(Arc::clone(&topo), LoadMetric::NrThreads);
        assert_eq!(choose_for(&choice, &system, 0), CoreId(1));
    }

    #[test]
    fn remote_threshold_defers_to_a_local_victim() {
        let topo = rich_topo();
        // Remote cpu8 has 3 threads (below the remote threshold of 4),
        // node-local cpu4 has 2 (meets the local threshold): stay local even
        // though the remote victim is more loaded.
        let system = loaded_system(&topo, &[(4, 2), (8, 3)]);
        let choice = TopologyAwareChoice::new(Arc::clone(&topo), LoadMetric::NrThreads);
        assert_eq!(choose_for(&choice, &system, 0), CoreId(4));
    }

    #[test]
    fn falls_back_rather_than_blocking() {
        let topo = rich_topo();
        // Only a remote victim exists and it is below the remote threshold:
        // the choice must still return it (thresholds bias, never block).
        let system = loaded_system(&topo, &[(8, 3)]);
        let choice = TopologyAwareChoice::new(Arc::clone(&topo), LoadMetric::NrThreads);
        assert_eq!(choose_for(&choice, &system, 0), CoreId(8));
    }

    #[test]
    fn never_returns_none_for_nonempty_candidates() {
        let topo = rich_topo();
        let system = loaded_system(&topo, &[(5, 2)]);
        let snap = SystemSnapshot::capture(&system);
        let choice = TopologyAwareChoice::new(Arc::clone(&topo), LoadMetric::NrThreads);
        let candidates = snap.others(CoreId(0));
        // Unfiltered candidate list, almost all idle: still Some.
        assert!(choice.choose(snap.core(CoreId(0)), &candidates).is_some());
        assert_eq!(choice.choose(snap.core(CoreId(0)), &[]), None);
    }

    #[test]
    fn repeated_failures_back_a_level_off() {
        let topo = rich_topo();
        // Sibling cpu1 and LLC-mate cpu2 both overloaded.
        let system = loaded_system(&topo, &[(1, 3), (2, 3)]);
        let choice = TopologyAwareChoice::new(Arc::clone(&topo), LoadMetric::NrThreads);
        assert_eq!(choose_for(&choice, &system, 0), CoreId(1), "sibling wins at first");
        for _ in 0..BACKOFF_AFTER {
            choice.observe(CoreId(0), CoreId(1), false);
        }
        assert!(choice.backed_off(StealLevel::SmtSibling));
        assert_eq!(
            choose_for(&choice, &system, 0),
            CoreId(2),
            "a backed-off SMT level yields to the LLC level"
        );
        // A success at the SMT level clears the streak immediately.
        choice.observe(CoreId(0), CoreId(1), true);
        assert_eq!(choice.failure_streak(StealLevel::SmtSibling), 0);
        assert_eq!(choose_for(&choice, &system, 0), CoreId(1));
    }

    #[test]
    fn backoff_decays_without_successes() {
        let topo = rich_topo();
        let system = loaded_system(&topo, &[(1, 3), (2, 3)]);
        let choice = TopologyAwareChoice::new(Arc::clone(&topo), LoadMetric::NrThreads);
        for _ in 0..BACKOFF_AFTER {
            choice.observe(CoreId(0), CoreId(1), false);
        }
        // Each skipped walk decays the streak by one; after BACKOFF_AFTER
        // choices the level is eligible again.
        for _ in 0..BACKOFF_AFTER {
            let _ = choose_for(&choice, &system, 0);
        }
        assert_eq!(choose_for(&choice, &system, 0), CoreId(1));
    }

    #[test]
    fn a_deep_injector_outranks_a_hot_ring_within_a_level() {
        let topo = rich_topo();
        let choice = TopologyAwareChoice::new(Arc::clone(&topo), LoadMetric::NrThreads);
        let snap = |id: usize, nr_threads: u64, injected: u64| CoreSnapshot {
            id: CoreId(id),
            node: topo.cpus()[id].node,
            nr_threads,
            weighted_load: nr_threads * 1024,
            lightest_ready_weight: (nr_threads > 1).then_some(1024),
            tracked_scaled: 0,
            injected,
        };
        let thief = snap(0, 0, 0);
        // Same LLC, both overloaded: cpu3 is *less* loaded but its waiting
        // work sits in its injector — one uncontended batched lock claim —
        // while cpu2's work is all in a hot ring.  The choice must route
        // the thief to the injector.
        let candidates = [snap(2, 6, 0), snap(3, 5, 4)];
        assert_eq!(choice.choose(&thief, &candidates), Some(CoreId(3)));
        // With injectors equal (here: both empty), the original
        // most-loaded rule decides — zero-injector substrates see no
        // behaviour change from injector awareness.
        let candidates = [snap(2, 6, 0), snap(3, 5, 0)];
        assert_eq!(choice.choose(&thief, &candidates), Some(CoreId(2)));
        // Distance still dominates: a remote deep injector does not beat a
        // local victim that meets its level threshold.
        let candidates = [snap(2, 6, 0), snap(8, 6, 8)];
        assert_eq!(choice.choose(&thief, &candidates), Some(CoreId(2)));
    }

    #[test]
    fn place_wakeup_breaks_idleness_ties_by_tracked_load() {
        let topo = rich_topo();
        let choice = TopologyAwareChoice::new(Arc::clone(&topo), LoadMetric::NrThreads);
        let snap = |id: usize, nr_threads: u64, tracked_scaled: u64| CoreSnapshot {
            id: CoreId(id),
            node: topo.cpus()[id].node,
            nr_threads,
            weighted_load: nr_threads * 1024,
            lightest_ready_weight: None,
            tracked_scaled,
            injected: 0,
        };
        // cpu2 and cpu3 share cpu0's LLC and both look idle *right now*,
        // but cpu2 was busy a moment ago (high decayed load) while cpu3 has
        // genuinely been idle.  The instantaneous queue length cannot tell
        // them apart; the tracked load must.
        let candidates = [snap(2, 0, 900), snap(3, 0, 10)];
        assert_eq!(choice.place_wakeup(CoreId(0), &candidates), Some(CoreId(3)));
        // The previous core wins outright while idle, whatever its history.
        let candidates = [snap(0, 0, 900), snap(3, 0, 10)];
        assert_eq!(choice.place_wakeup(CoreId(0), &candidates), Some(CoreId(0)));
        // Distance outranks the tie-break: a same-LLC idle core beats a
        // remote one that is even quieter.
        let candidates = [snap(2, 0, 100), snap(8, 0, 0)];
        assert_eq!(choice.place_wakeup(CoreId(0), &candidates), Some(CoreId(2)));
        // No idle core at all: least tracked load anywhere.
        let candidates = [snap(2, 2, 500), snap(8, 1, 50)];
        assert_eq!(choice.place_wakeup(CoreId(0), &candidates), Some(CoreId(8)));
    }

    #[test]
    fn default_place_wakeup_also_prefers_tracked_idleness() {
        use crate::policy::FirstChoice;
        let mk = |id: usize, nr_threads: u64, tracked_scaled: u64| CoreSnapshot {
            id: CoreId(id),
            node: sched_topology::NodeId(0),
            nr_threads,
            weighted_load: nr_threads * 1024,
            lightest_ready_weight: None,
            tracked_scaled,
            injected: 0,
        };
        let candidates = [mk(1, 0, 700), mk(2, 0, 3)];
        assert_eq!(FirstChoice.place_wakeup(CoreId(0), &candidates), Some(CoreId(2)));
        assert_eq!(FirstChoice.place_wakeup(CoreId(0), &[]), None);
    }

    #[test]
    fn uniform_thresholds_match_numa_aware_preference() {
        let topo = rich_topo();
        let system = loaded_system(&topo, &[(4, 2), (8, 5)]);
        let choice = TopologyAwareChoice::with_thresholds(
            Arc::clone(&topo),
            LoadMetric::NrThreads,
            LevelThresholds::uniform(2),
        );
        // With a uniform threshold the node-local victim still wins: the
        // search is distance-ordered, not load-ordered.
        assert_eq!(choose_for(&choice, &system, 0), CoreId(4));
    }
}
