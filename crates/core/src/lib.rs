//! Optimistic multicore scheduler model — the paper's primary contribution.
//!
//! This crate implements, as a pure and deterministic state machine, the
//! scheduler model of *Towards Proving Optimistic Multicore Schedulers*
//! (Lepers et al., HotOS 2017):
//!
//! * per-core runqueues ([`CoreState`], [`SystemState`]) with the paper's
//!   definitions of *idle* and *overloaded* cores (§3.1),
//! * the **three-step load-balancing round** of Figure 1 — *filter*, *choice*,
//!   *steal* — with a lock-less, read-only selection phase operating on
//!   [`snapshot::CoreSnapshot`]s and an atomic stealing phase that re-checks
//!   the filter and may fail ([`balancer`], [`round`]),
//! * the work-conservation definition of §3.2 and the convergence runner that
//!   searches for the bound `N` ([`work_conservation`]),
//! * the pairwise load-difference potential `d(c₁, …, cₙ)` of §4.3 used to
//!   bound the number of successful steals ([`mod@potential`]),
//! * a library of filter/choice/steal policies: the paper's Listing 1
//!   balancer, the §4.3 non-work-conserving greedy filter, a weighted
//!   (niceness-aware) balancer, and the §5 future-work NUMA-aware and
//!   hierarchical policies expressed purely in step 2
//!   ([`policy`]).
//!
//! The same policy objects are executed by the discrete-event simulator
//! (`sched-sim`), model-checked exhaustively (`sched-verify`), driven from the
//! DSL (`sched-dsl`) and mounted on real concurrent runqueues (`sched-rq`).
//!
//! # Quick example
//!
//! ```
//! use sched_core::prelude::*;
//!
//! // Four cores: one idle, one overloaded with three threads, two busy.
//! let mut system = SystemState::from_loads(&[0, 3, 1, 1]);
//! assert!(!system.is_work_conserving());
//!
//! // The Listing-1 balancer, sequential rounds.
//! let balancer = Balancer::new(Policy::simple());
//! let result = converge(&mut system, &balancer, RoundSchedule::Sequential, 16);
//! assert_eq!(result.rounds, Some(1));
//! assert!(system.is_work_conserving());
//! ```

pub mod balancer;
pub mod core_state;
pub mod hierarchy;
pub mod load;
pub mod outcome;
pub mod policy;
pub mod potential;
pub mod prelude;
pub mod round;
pub mod snapshot;
pub mod system;
pub mod task;
pub mod tracker;
pub mod work_conservation;

pub use balancer::Balancer;
pub use core_state::CoreState;
pub use hierarchy::{HierarchicalReport, HierarchicalRound, LevelPass};
pub use load::LoadMetric;
pub use outcome::{BalanceAttempt, RoundReport, StealOutcome};
pub use policy::{ChoicePolicy, FilterPolicy, Policy, StealPolicy};
pub use potential::{potential, potential_between};
pub use round::{ConcurrentRound, Phase, RoundSchedule, Step};
pub use snapshot::{CoreSnapshot, SystemSnapshot};
pub use system::SystemState;
pub use task::{Nice, Task, TaskId, Weight};
pub use tracker::{
    decay_scaled, LoadTracker, NrThreadsTracker, PeltTracker, TrackedLoad, TrackerSpec,
    WeightedTracker, TRACK_SCALE,
};
pub use work_conservation::{converge, ConvergenceResult};

/// Identifier of a core.
///
/// The scheduler model identifies cores by the same indices as the machine
/// topology, so the topology's CPU id type is reused directly.
pub use sched_topology::CpuId as CoreId;
