//! Load metrics.
//!
//! "The simplest load balancers try to balance the number of threads in
//! runqueues, but realistic schedulers usually adopt more complex load
//! balancing strategies […] the load balancer tries to balance the number of
//! threads weighted by their importance.  We make no assumption on the
//! criteria used to define how the load should be balanced." (§3.1)
//!
//! [`LoadMetric`] names the *views* of a core's load that policies can
//! read; the semantics of the [`Tracked`](LoadMetric::Tracked) view — which
//! entities it weights and how it decays — live in the pluggable
//! [`crate::tracker::LoadTracker`] implementations.

/// The quantity a balancing policy tries to equalise across cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LoadMetric {
    /// Number of threads on the core (current thread plus runqueue length).
    ///
    /// This is the metric of the paper's Listing 1 (`load() = ready.size +
    /// current.size`).
    #[default]
    NrThreads,
    /// Sum of the CFS load weights of the threads on the core, expressed in
    /// `nice 0` units of 1024.
    Weighted,
    /// The tracker-maintained load average of the core, rounded to base
    /// units (see [`crate::tracker`]).  What this view *means* is defined by
    /// whichever [`crate::tracker::LoadTracker`] maintains it — e.g. a
    /// PELT-style decayed thread count.
    Tracked,
}

impl LoadMetric {
    /// Human-readable name, used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            LoadMetric::NrThreads => "nr_threads",
            LoadMetric::Weighted => "weighted",
            LoadMetric::Tracked => "tracked",
        }
    }
}

impl std::fmt::Display for LoadMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_metric_is_thread_count() {
        assert_eq!(LoadMetric::default(), LoadMetric::NrThreads);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(LoadMetric::NrThreads.to_string(), "nr_threads");
        assert_eq!(LoadMetric::Weighted.to_string(), "weighted");
        assert_eq!(LoadMetric::Tracked.to_string(), "tracked");
    }
}
