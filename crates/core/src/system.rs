//! Whole-system scheduler state.

use sched_topology::MachineTopology;

use crate::core_state::CoreState;
use crate::load::LoadMetric;
use crate::task::{Nice, Task, TaskId};
use crate::tracker::LoadTracker;
use crate::CoreId;

/// The scheduling state of every core of the machine.
///
/// This is the `(c₁, …, cₙ)` tuple of the paper's work-conservation
/// definition (§3.2).  All balancing operations, the model checker and the
/// simulator manipulate values of this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemState {
    cores: Vec<CoreState>,
}

impl SystemState {
    /// Creates a system of `nr_cores` idle cores, all on node 0.
    pub fn new(nr_cores: usize) -> Self {
        let cores = (0..nr_cores).map(|i| CoreState::new(CoreId(i))).collect();
        SystemState { cores }
    }

    /// Creates a system of idle cores whose node assignment follows the
    /// given machine topology.
    pub fn with_topology(topo: &MachineTopology) -> Self {
        let cores = topo.cpus().iter().map(|c| CoreState::on_node(c.id, c.node)).collect();
        SystemState { cores }
    }

    /// Creates a system where core `i` holds `loads[i]` freshly numbered
    /// `nice 0` threads (the first one running, the rest waiting).
    ///
    /// # Examples
    ///
    /// ```
    /// use sched_core::SystemState;
    ///
    /// let s = SystemState::from_loads(&[0, 3, 1]);
    /// assert!(s.core(sched_core::CoreId(0)).is_idle());
    /// assert!(s.core(sched_core::CoreId(1)).is_overloaded());
    /// assert_eq!(s.total_threads(), 4);
    /// ```
    pub fn from_loads(loads: &[usize]) -> Self {
        Self::from_loads_with_nice(loads, Nice::NORMAL)
    }

    /// Like [`SystemState::from_loads`] but every thread gets niceness `nice`.
    pub fn from_loads_with_nice(loads: &[usize], nice: Nice) -> Self {
        let mut system = SystemState::new(loads.len());
        let mut next_id = 0u64;
        for (i, &n) in loads.iter().enumerate() {
            for _ in 0..n {
                system.cores[i].enqueue(Task::with_nice(TaskId(next_id), nice));
                next_id += 1;
            }
        }
        system
    }

    /// Number of cores in the system.
    pub fn nr_cores(&self) -> usize {
        self.cores.len()
    }

    /// Immutable access to one core.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core(&self, id: CoreId) -> &CoreState {
        &self.cores[id.0]
    }

    /// Mutable access to one core.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core_mut(&mut self, id: CoreId) -> &mut CoreState {
        &mut self.cores[id.0]
    }

    /// All cores, in id order.
    pub fn cores(&self) -> &[CoreState] {
        &self.cores
    }

    /// Mutable access to all cores.
    pub fn cores_mut(&mut self) -> &mut [CoreState] {
        &mut self.cores
    }

    /// Ids of all cores.
    pub fn core_ids(&self) -> Vec<CoreId> {
        self.cores.iter().map(|c| c.id).collect()
    }

    /// Total number of threads in the system.
    pub fn total_threads(&self) -> u64 {
        self.cores.iter().map(CoreState::nr_threads).sum()
    }

    /// Per-core loads under the given metric, in id order.
    pub fn loads(&self, metric: LoadMetric) -> Vec<u64> {
        self.cores.iter().map(|c| c.load(metric)).collect()
    }

    /// Ids of all idle cores.
    pub fn idle_cores(&self) -> Vec<CoreId> {
        self.cores.iter().filter(|c| c.is_idle()).map(|c| c.id).collect()
    }

    /// Ids of all overloaded cores.
    pub fn overloaded_cores(&self) -> Vec<CoreId> {
        self.cores.iter().filter(|c| c.is_overloaded()).map(|c| c.id).collect()
    }

    /// Returns `true` if the system is in a work-conserving state.
    ///
    /// "No core is idle while a core is overloaded" — the per-state
    /// predicate of the §3.2 definition (`idle(c'ᵢ) ⇒ ¬overloaded(c'ⱼ)`).
    pub fn is_work_conserving(&self) -> bool {
        let any_idle = self.cores.iter().any(CoreState::is_idle);
        let any_overloaded = self.cores.iter().any(CoreState::is_overloaded);
        !(any_idle && any_overloaded)
    }

    /// Atomically migrates the waiting thread `task` from `from` to `to`.
    ///
    /// Returns `true` if the thread was present (and therefore moved).  The
    /// current thread of `from` is never migrated.  This is the only
    /// operation that modifies runqueues during a balancing round, which is
    /// what makes the failure analysis of §4.3 tractable.
    ///
    /// # Panics
    ///
    /// Panics if `from == to`, which would be a scheduler bug.
    pub fn migrate(&mut self, from: CoreId, to: CoreId, task: TaskId) -> bool {
        assert_ne!(from, to, "a core cannot steal from itself");
        match self.cores[from.0].remove_ready(task) {
            Some(t) => {
                self.cores[to.0].push_ready(t);
                true
            }
            None => false,
        }
    }

    /// Advances every core's tracked load average to `now_ns` under
    /// `tracker` — the pure model's analogue of a scheduler tick.
    ///
    /// The model itself is timeless; drivers that balance on a decayed
    /// criterion ([`LoadMetric::Tracked`]) call this between balancing
    /// rounds with whatever logical clock they maintain.  For instantaneous
    /// trackers this simply mirrors the current loads into the tracked
    /// accumulators.
    pub fn tick(&mut self, now_ns: u64, tracker: &dyn LoadTracker) {
        for core in &mut self.cores {
            core.track(now_ns, tracker);
        }
    }

    /// Checks that every task id appears at most once in the whole system.
    ///
    /// The stealing phase is required to be atomic precisely so that "no two
    /// cores should be able to steal the same thread" (§3.1); this invariant
    /// is asserted throughout the test-suite and the model checker.
    pub fn tasks_are_unique(&self) -> bool {
        let mut ids: Vec<TaskId> = self.cores.iter().flat_map(|c| c.task_ids()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        ids.len() == before
    }

    /// A compact `[load₀, load₁, …]` description used in traces and
    /// counterexample reports.
    pub fn load_vector_string(&self, metric: LoadMetric) -> String {
        let loads: Vec<String> = self.loads(metric).iter().map(u64::to_string).collect();
        format!("[{}]", loads.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_loads_assigns_unique_task_ids() {
        let s = SystemState::from_loads(&[2, 3, 0, 1]);
        assert_eq!(s.total_threads(), 6);
        assert!(s.tasks_are_unique());
        assert_eq!(s.loads(LoadMetric::NrThreads), vec![2, 3, 0, 1]);
    }

    #[test]
    fn work_conservation_predicate() {
        assert!(SystemState::from_loads(&[1, 1, 1]).is_work_conserving());
        assert!(SystemState::from_loads(&[0, 0, 0]).is_work_conserving());
        assert!(SystemState::from_loads(&[0, 1, 1]).is_work_conserving());
        assert!(!SystemState::from_loads(&[0, 2, 1]).is_work_conserving());
        // Overloaded but nobody idle: still work-conserving.
        assert!(SystemState::from_loads(&[1, 5, 1]).is_work_conserving());
    }

    #[test]
    fn idle_and_overloaded_sets() {
        let s = SystemState::from_loads(&[0, 2, 1, 3]);
        assert_eq!(s.idle_cores(), vec![CoreId(0)]);
        assert_eq!(s.overloaded_cores(), vec![CoreId(1), CoreId(3)]);
    }

    #[test]
    fn migrate_moves_a_waiting_thread() {
        let mut s = SystemState::from_loads(&[0, 3]);
        let victim_tasks = s.core(CoreId(1)).task_ids();
        let stolen = victim_tasks[2];
        assert!(s.migrate(CoreId(1), CoreId(0), stolen));
        assert_eq!(s.core(CoreId(0)).nr_threads(), 1);
        assert_eq!(s.core(CoreId(1)).nr_threads(), 2);
        assert!(s.tasks_are_unique());
        // A second migration of the same task must fail: it is gone.
        assert!(!s.migrate(CoreId(1), CoreId(0), stolen));
    }

    #[test]
    fn migrate_never_moves_the_current_thread() {
        let mut s = SystemState::from_loads(&[0, 1]);
        let running = s.core(CoreId(1)).current.as_ref().unwrap().id;
        assert!(!s.migrate(CoreId(1), CoreId(0), running));
        assert_eq!(s.core(CoreId(1)).nr_threads(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot steal from itself")]
    fn migrate_to_self_is_a_bug() {
        let mut s = SystemState::from_loads(&[2]);
        let t = s.core(CoreId(0)).task_ids()[1];
        let _ = s.migrate(CoreId(0), CoreId(0), t);
    }

    #[test]
    fn topology_constructor_assigns_nodes() {
        let topo = sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).build();
        let s = SystemState::with_topology(&topo);
        assert_eq!(s.nr_cores(), 4);
        assert_ne!(s.core(CoreId(0)).node, s.core(CoreId(3)).node);
    }

    #[test]
    fn load_vector_string_formats_compactly() {
        let s = SystemState::from_loads(&[0, 2]);
        assert_eq!(s.load_vector_string(LoadMetric::NrThreads), "[0, 2]");
    }
}
