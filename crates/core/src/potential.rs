//! The pairwise load-difference potential of §4.3.
//!
//! "We show that the absolute 'load difference' between cores, computed as
//! follows, decreases with every successful stealing attempt:
//! `d(c₁, …, cₙ) = Σᵢ Σⱼ |cᵢ.load − cⱼ.load|`.
//! If `d` always decreases when a core steals threads then, because `d ≥ 0`,
//! the number of successful work-stealing operations is bounded."
//!
//! The potential is the heart of the termination argument: together with P1
//! ("a failure implies a concurrent success") it bounds the number of
//! failures and hence yields work conservation.

use sched_topology::{MachineTopology, StealLevel};

use crate::load::LoadMetric;
use crate::system::SystemState;

/// Computes the paper's potential `d` over the whole system.
///
/// The double sum counts every ordered pair, exactly as written in §4.3
/// (each unordered pair therefore contributes twice).
pub fn potential(system: &SystemState, metric: LoadMetric) -> u64 {
    potential_of_loads(&system.loads(metric))
}

/// Computes the potential from a plain load vector.
pub fn potential_of_loads(loads: &[u64]) -> u64 {
    let mut d = 0u64;
    for &a in loads {
        for &b in loads {
            d += a.abs_diff(b);
        }
    }
    d
}

/// The contribution of one pair of cores to the potential (counted once).
pub fn potential_between(a: u64, b: u64) -> u64 {
    a.abs_diff(b)
}

/// Aggregate load of each region of the machine at `level` (see
/// [`MachineTopology::level_regions`]), in region order.
///
/// # Panics
///
/// Panics if `loads` is shorter than the machine.
pub fn region_loads(loads: &[u64], topo: &MachineTopology, level: StealLevel) -> Vec<u64> {
    topo.level_regions(level)
        .iter()
        .map(|region| region.iter().map(|cpu| loads[cpu.0]).sum())
        .collect()
}

/// The paper's potential `d`, computed over the aggregate loads of the
/// regions at `level` instead of over individual cores.
///
/// This is the per-level potential of the hierarchical convergence
/// argument: a steal classified at or below `level` moves load *within* one
/// region, so it leaves this potential unchanged — inner balancing passes
/// can never disturb the balance already achieved at coarser levels, and
/// the §4.3 termination argument therefore applies independently per level.
pub fn level_potential(loads: &[u64], topo: &MachineTopology, level: StealLevel) -> u64 {
    potential_of_loads(&region_loads(loads, topo, level))
}

/// Convenience wrapper over [`level_potential`] for a live system.
pub fn level_potential_of_system(
    system: &SystemState,
    topo: &MachineTopology,
    level: StealLevel,
    metric: LoadMetric,
) -> u64 {
    level_potential(&system.loads(metric), topo, level)
}

/// The change in potential caused by moving `delta` units of load from a
/// core currently at `victim_load` to a core currently at `thief_load`,
/// keeping every other core fixed.
///
/// Returns a signed value: negative means the steal decreased the potential.
/// Only the terms involving the two affected cores change, so the difference
/// can be computed locally — this is the observation that lets the verifier
/// check the potential lemma per-steal instead of per-system.
pub fn potential_delta_of_steal(loads: &[u64], thief: usize, victim: usize, delta: u64) -> i128 {
    assert_ne!(thief, victim, "a core cannot steal from itself");
    assert!(loads[victim] >= delta, "cannot move more load than the victim has");
    let before = potential_of_loads(loads);
    let mut after_loads = loads.to_vec();
    after_loads[victim] -= delta;
    after_loads[thief] += delta;
    let after = potential_of_loads(&after_loads);
    i128::from(after) - i128::from(before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn potential_is_zero_iff_perfectly_balanced() {
        assert_eq!(potential_of_loads(&[3, 3, 3, 3]), 0);
        assert_eq!(potential_of_loads(&[0, 0]), 0);
        assert!(potential_of_loads(&[3, 3, 4]) > 0);
    }

    #[test]
    fn potential_matches_hand_computation() {
        // loads [0, 1, 3]: ordered pairs |0-1|+|0-3|+|1-0|+|1-3|+|3-0|+|3-1| = 1+3+1+2+3+2 = 12.
        assert_eq!(potential_of_loads(&[0, 1, 3]), 12);
        let system = SystemState::from_loads(&[0, 1, 3]);
        assert_eq!(potential(&system, LoadMetric::NrThreads), 12);
    }

    #[test]
    fn potential_between_is_symmetric() {
        assert_eq!(potential_between(2, 7), 5);
        assert_eq!(potential_between(7, 2), 5);
    }

    #[test]
    fn listing1_steal_strictly_decreases_the_potential() {
        // Whenever the Listing 1 filter holds (difference >= 2) and one
        // thread moves, the potential strictly decreases.
        let loads = [0u64, 1, 3, 5];
        for thief in 0..loads.len() {
            for victim in 0..loads.len() {
                if thief == victim || loads[victim] < loads[thief] + 2 {
                    continue;
                }
                let delta = potential_delta_of_steal(&loads, thief, victim, 1);
                assert!(delta < 0, "steal {victim}->{thief} must decrease d, got {delta}");
            }
        }
    }

    #[test]
    fn pingpong_steal_does_not_decrease_the_potential() {
        // The §4.3 greedy filter lets core 1 (load 1) steal from core 2
        // (load 2): the potential does not decrease, which is why the
        // termination argument breaks for that filter.
        let delta = potential_delta_of_steal(&[0, 1, 2], 1, 2, 1);
        assert!(delta >= 0, "the ping-pong steal must not decrease d, got {delta}");
    }

    #[test]
    #[should_panic(expected = "cannot steal from itself")]
    fn self_steal_is_rejected() {
        let _ = potential_delta_of_steal(&[1, 1], 0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "more load than the victim has")]
    fn overdraft_is_rejected() {
        let _ = potential_delta_of_steal(&[0, 1], 0, 1, 2);
    }

    #[test]
    fn level_potential_aggregates_per_region() {
        // 2 sockets × 2 cores: nodes are {0,1} and {2,3}.
        let topo = sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).build();
        let loads = [4u64, 0, 1, 1];
        // Node loads [4, 2]: ordered-pair potential 2·|4−2| = 4.
        assert_eq!(level_potential(&loads, &topo, StealLevel::SameNode), 4);
        // The machine level has a single region: always perfectly balanced.
        assert_eq!(level_potential(&loads, &topo, StealLevel::Remote), 0);
    }

    #[test]
    fn intra_region_steals_preserve_coarser_potentials() {
        let topo = sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).build();
        let before = [4u64, 0, 1, 1];
        // Steal within node 0 (core 0 → core 1): node loads unchanged.
        let after = [3u64, 1, 1, 1];
        assert_eq!(
            level_potential(&before, &topo, StealLevel::SameNode),
            level_potential(&after, &topo, StealLevel::SameNode),
        );
        // The per-core potential still strictly decreased.
        assert!(potential_of_loads(&after) < potential_of_loads(&before));
    }
}
