//! Hierarchical balancing: balance within domains before across them.
//!
//! §5 of the paper proposes "balancing load between groups of cores, and
//! then inside groups, instead of balancing load directly between individual
//! cores".  [`HierarchicalRound`] realises that as a stack of concurrent
//! balancing passes, one per [`StealLevel`], innermost first: the SMT pass
//! only admits sibling victims, the LLC pass cache-local ones, the node pass
//! NUMA-local ones, and the final pass is completely unrestricted.
//!
//! Two facts make this safe and convergent *per level*:
//!
//! * **Work conservation is inherited from the last pass.**  The level cap
//!   narrows a pass's candidate list, never the policy's filter, and the
//!   outermost pass runs the plain machine-wide round — so any state the
//!   flat balancer would fix, the hierarchical one fixes too (the
//!   `NodeRestrictedFilter` starvation bug is impossible by construction).
//! * **Inner passes cannot disturb coarser balance.**  A steal admitted by
//!   the pass at `level` moves load within one region of every partition at
//!   `level` or coarser ([`MachineTopology::level_regions`]), so the
//!   per-level potential [`crate::potential::level_potential`] at those
//!   levels is unchanged; the §4.3 potential argument therefore applies
//!   independently at every level, which is what `sched-verify`'s
//!   hierarchy lemma checks exhaustively.

use std::sync::Arc;

use sched_topology::{MachineTopology, StealLevel};

use crate::balancer::Balancer;
use crate::outcome::{BalanceAttempt, RoundReport, StealOutcome};
use crate::round::{Phase, RoundSchedule};
use crate::snapshot::SystemSnapshot;
use crate::system::SystemState;

/// One level-capped concurrent pass of a hierarchical round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelPass {
    /// The outermost steal level this pass admitted.
    pub level: Option<StealLevel>,
    /// What every core's balancing attempt did during the pass.
    pub report: RoundReport,
}

/// Everything that happened during one hierarchical round (up to one pass
/// per steal level; passes stop as soon as the system is work-conserving).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchicalReport {
    /// The executed passes, innermost first.
    pub passes: Vec<LevelPass>,
}

impl HierarchicalReport {
    /// Total threads migrated across all passes.
    pub fn nr_stolen(&self) -> usize {
        self.passes.iter().map(|p| p.report.nr_stolen()).sum()
    }

    /// Total successful attempts across all passes.
    pub fn nr_successes(&self) -> usize {
        self.passes.iter().map(|p| p.report.nr_successes()).sum()
    }

    /// Total failed attempts across all passes.
    pub fn nr_failures(&self) -> usize {
        self.passes.iter().map(|p| p.report.nr_failures()).sum()
    }

    /// Threads migrated by the pass capped at `level`, if it ran.
    pub fn stolen_at(&self, level: StealLevel) -> usize {
        self.passes.iter().filter(|p| p.level == Some(level)).map(|p| p.report.nr_stolen()).sum()
    }

    /// Returns `true` if no pass migrated anything.
    pub fn is_quiescent(&self) -> bool {
        self.nr_stolen() == 0
    }

    /// Folds another round's passes into this report.
    pub fn merge(&mut self, other: HierarchicalReport) {
        self.passes.extend(other.passes);
    }
}

/// Executes hierarchical rounds of a [`Balancer`] over a machine topology.
#[derive(Debug)]
pub struct HierarchicalRound<'a> {
    balancer: &'a Balancer,
    topo: Arc<MachineTopology>,
}

impl<'a> HierarchicalRound<'a> {
    /// Creates an executor for `balancer` on `topo`.
    pub fn new(balancer: &'a Balancer, topo: Arc<MachineTopology>) -> Self {
        HierarchicalRound { balancer, topo }
    }

    /// The topology the level caps are derived from.
    pub fn topology(&self) -> &Arc<MachineTopology> {
        &self.topo
    }

    /// Executes one hierarchical round: a level-capped concurrent pass per
    /// steal level, innermost first, stopping early once the system is
    /// work-conserving (escalate to a wider domain only while the narrower
    /// ones could not fix the violation).
    ///
    /// # Panics
    ///
    /// Panics if the materialised schedule is not a valid round, or if the
    /// topology does not match the system's core count.
    pub fn execute(
        &self,
        system: &mut SystemState,
        schedule: &RoundSchedule,
    ) -> HierarchicalReport {
        assert_eq!(
            self.topo.nr_cpus(),
            system.nr_cores(),
            "topology and system must describe the same machine"
        );
        let mut report = HierarchicalReport::default();
        for level in StealLevel::ALL {
            if system.is_work_conserving() {
                break;
            }
            // Derive a distinct interleaving per pass so seeded schedules
            // race differently at each level.
            let pass_schedule = schedule.for_round(level.index());
            let pass = self.execute_pass(system, &pass_schedule, level);
            report.passes.push(LevelPass { level: Some(level), report: pass });
        }
        report
    }

    /// One concurrent pass admitting only victims within `level` of their
    /// thief.
    fn execute_pass(
        &self,
        system: &mut SystemState,
        schedule: &RoundSchedule,
        level: StealLevel,
    ) -> RoundReport {
        let steps = schedule.steps(system.nr_cores());
        RoundSchedule::validate(&steps, system.nr_cores())
            .unwrap_or_else(|e| panic!("invalid round schedule: {e}"));
        let mut pending = vec![None; system.nr_cores()];
        let mut report = RoundReport::default();
        for (time, step) in steps.iter().enumerate() {
            match step.phase {
                Phase::Select => {
                    let snapshot = SystemSnapshot::capture(system);
                    let selection = self.balancer.select_within(&snapshot, step.core, |victim| {
                        self.topo.steal_level(step.core, victim) <= level
                    });
                    pending[step.core.0] = Some((selection, time));
                }
                Phase::Steal => {
                    let (selection, select_time) = pending[step.core.0]
                        .take()
                        .expect("validated schedule guarantees select before steal");
                    let outcome = match selection.chosen {
                        Some(victim) => self.balancer.steal(system, step.core, victim),
                        None => StealOutcome::NoCandidates,
                    };
                    report.attempts.push(BalanceAttempt {
                        thief: step.core,
                        select_time,
                        steal_time: time,
                        candidates: selection.candidates,
                        chosen: selection.chosen,
                        outcome,
                    });
                }
            }
        }
        report
    }

    /// Runs hierarchical rounds until the system is work-conserving or the
    /// budget is exhausted; returns the rounds used (if converged) and the
    /// merged report.
    pub fn converge(
        &self,
        system: &mut SystemState,
        schedule: &RoundSchedule,
        max_rounds: usize,
    ) -> (Option<usize>, HierarchicalReport) {
        let mut total = HierarchicalReport::default();
        for round in 0..=max_rounds {
            if system.is_work_conserving() {
                return (Some(round), total);
            }
            if round == max_rounds {
                break;
            }
            total.merge(self.execute(system, &schedule.for_round(round)));
        }
        (None, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadMetric;
    use crate::policy::{Policy, TopologyAwareChoice};
    use crate::potential::{level_potential, potential_of_loads};
    use crate::task::{Task, TaskId};
    use crate::CoreId;
    use sched_topology::TopologyBuilder;

    fn rich_topo() -> Arc<MachineTopology> {
        Arc::new(
            TopologyBuilder::new().sockets(2).cores_per_socket(2).llcs_per_socket(1).smt(2).build(),
        )
    }

    fn topo_policy(topo: &Arc<MachineTopology>) -> Policy {
        Policy::simple().with_choice(Box::new(TopologyAwareChoice::new(
            Arc::clone(topo),
            LoadMetric::NrThreads,
        )))
    }

    fn hot_core_system(topo: &Arc<MachineTopology>, core: usize, threads: u64) -> SystemState {
        let mut system = SystemState::with_topology(topo);
        for t in 0..threads {
            system.core_mut(CoreId(core)).enqueue(Task::new(TaskId(t)));
        }
        system
    }

    #[test]
    fn hierarchical_round_fixes_a_local_imbalance_locally() {
        let topo = rich_topo();
        // cpu0 holds 2 threads; its SMT sibling cpu1 is idle.  The SMT pass
        // alone must fix the violation — no outer pass should run.
        let mut system = hot_core_system(&topo, 0, 2);
        let balancer = Balancer::new(topo_policy(&topo));
        let hier = HierarchicalRound::new(&balancer, Arc::clone(&topo));
        let report = hier.execute(&mut system, &RoundSchedule::AllSelectThenSteal);
        assert!(system.is_work_conserving());
        assert!(report.stolen_at(StealLevel::SmtSibling) >= 1);
        assert_eq!(
            report.passes.last().unwrap().level,
            Some(StealLevel::SmtSibling),
            "balancing must not escalate past the level that fixed the violation"
        );
    }

    #[test]
    fn hierarchical_round_escalates_to_remote_when_needed() {
        let topo = rich_topo();
        // All work on node 0; node 1 is idle: only the Remote pass can make
        // node 1's cores non-idle.
        let mut system = hot_core_system(&topo, 0, 16);
        let balancer = Balancer::new(topo_policy(&topo));
        let hier = HierarchicalRound::new(&balancer, Arc::clone(&topo));
        let (rounds, report) = hier.converge(&mut system, &RoundSchedule::AllSelectThenSteal, 64);
        assert!(rounds.is_some(), "hierarchical balancing must still converge");
        assert!(system.is_work_conserving());
        assert!(report.stolen_at(StealLevel::Remote) >= 1, "cross-node steals were required");
    }

    #[test]
    fn inner_passes_preserve_the_node_level_potential() {
        let topo = rich_topo();
        // Node loads already equal (4 threads on cpu0, 4 on cpu4): every
        // remaining imbalance is intra-node, so no pass may change the
        // node-level potential.
        let mut system = hot_core_system(&topo, 0, 4);
        for t in 100..104 {
            system.core_mut(CoreId(4)).enqueue(Task::new(TaskId(t)));
        }
        let balancer = Balancer::new(topo_policy(&topo));
        let hier = HierarchicalRound::new(&balancer, Arc::clone(&topo));
        let node_d_before =
            level_potential(&system.loads(LoadMetric::NrThreads), &topo, StealLevel::SameNode);
        let core_d_before = potential_of_loads(&system.loads(LoadMetric::NrThreads));
        let (rounds, _) = hier.converge(&mut system, &RoundSchedule::AllSelectThenSteal, 64);
        assert!(rounds.is_some());
        let loads = system.loads(LoadMetric::NrThreads);
        assert_eq!(
            level_potential(&loads, &topo, StealLevel::SameNode),
            node_d_before,
            "intra-node balancing must not disturb node-level balance"
        );
        assert!(potential_of_loads(&loads) < core_d_before);
    }

    #[test]
    fn hierarchical_rounds_conserve_threads() {
        let topo = rich_topo();
        let mut system = hot_core_system(&topo, 2, 9);
        let before = system.total_threads();
        let balancer = Balancer::new(topo_policy(&topo));
        let hier = HierarchicalRound::new(&balancer, Arc::clone(&topo));
        let _ = hier.converge(&mut system, &RoundSchedule::Seeded(11), 64);
        assert_eq!(system.total_threads(), before);
        assert!(system.tasks_are_unique());
    }

    #[test]
    #[should_panic(expected = "same machine")]
    fn mismatched_topology_is_rejected() {
        let topo = rich_topo();
        let mut system = SystemState::from_loads(&[1, 1]);
        let balancer = Balancer::new(Policy::simple());
        let hier = HierarchicalRound::new(&balancer, topo);
        let _ = hier.execute(&mut system, &RoundSchedule::Sequential);
    }
}
