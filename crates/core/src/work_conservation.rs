//! Work conservation: the §3.2 definition and a convergence runner.
//!
//! "A scheduler is work-conserving iff there exists an integer N such that
//! after N load balancing rounds no core is idle while a core is
//! overloaded." (§3.2)
//!
//! [`converge`] runs rounds of a concrete balancer under a concrete
//! interleaving policy until the system reaches a work-conserving state (or
//! a round budget is exhausted), reporting the `N` it found.  The exhaustive
//! quantification over initial states and interleavings — the actual proof
//! obligation — lives in `sched-verify`; this module provides the executable
//! core both the verifier and the simulator share.

use crate::balancer::Balancer;
use crate::outcome::RoundReport;
use crate::round::{ConcurrentRound, RoundSchedule};
use crate::system::SystemState;

/// The result of running load-balancing rounds until work conservation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceResult {
    /// Number of rounds needed to reach a work-conserving state: the `N` of
    /// the paper's definition.  `Some(0)` means the initial state was already
    /// work-conserving; `None` means the budget was exhausted first (which,
    /// for a correct policy, the verifier proves cannot happen).
    pub rounds: Option<usize>,
    /// Per-round reports, in execution order.
    pub reports: Vec<RoundReport>,
}

impl ConvergenceResult {
    /// Total number of successful steals across all executed rounds.
    pub fn total_successes(&self) -> usize {
        self.reports.iter().map(RoundReport::nr_successes).sum()
    }

    /// Total number of failed steal attempts across all executed rounds.
    pub fn total_failures(&self) -> usize {
        self.reports.iter().map(RoundReport::nr_failures).sum()
    }

    /// Total number of threads migrated across all executed rounds.
    pub fn total_migrations(&self) -> usize {
        self.reports.iter().map(RoundReport::nr_stolen).sum()
    }

    /// Returns `true` if the run reached a work-conserving state.
    pub fn converged(&self) -> bool {
        self.rounds.is_some()
    }
}

/// Runs load-balancing rounds on `system` until it is work-conserving.
///
/// The check is performed *before* each round, so a state that is already
/// work-conserving reports `rounds == Some(0)` without executing anything —
/// "it is perfectly acceptable for a core to become temporarily idle" (§1),
/// idleness without overload is not a violation.
///
/// At most `max_rounds` rounds are executed.  The schedule is re-derived per
/// round via [`RoundSchedule::for_round`], so seeded schedules race
/// differently every round.
pub fn converge(
    system: &mut SystemState,
    balancer: &Balancer,
    schedule: RoundSchedule,
    max_rounds: usize,
) -> ConvergenceResult {
    let executor = ConcurrentRound::new(balancer);
    let mut reports = Vec::new();
    for round in 0..=max_rounds {
        if system.is_work_conserving() {
            return ConvergenceResult { rounds: Some(round), reports };
        }
        if round == max_rounds {
            break;
        }
        let report = executor.execute(system, &schedule.for_round(round));
        reports.push(report);
    }
    let rounds = if system.is_work_conserving() { Some(max_rounds) } else { None };
    ConvergenceResult { rounds, reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadMetric;
    use crate::policy::Policy;

    #[test]
    fn already_balanced_systems_need_zero_rounds() {
        let mut system = SystemState::from_loads(&[1, 1, 1]);
        let balancer = Balancer::new(Policy::simple());
        let result = converge(&mut system, &balancer, RoundSchedule::Sequential, 10);
        assert_eq!(result.rounds, Some(0));
        assert_eq!(result.total_successes(), 0);
    }

    #[test]
    fn a_single_hot_core_converges() {
        let mut system = SystemState::from_loads(&[8, 0, 0, 0]);
        let balancer = Balancer::new(Policy::simple());
        let result = converge(&mut system, &balancer, RoundSchedule::Sequential, 32);
        assert!(result.converged(), "sequential rounds must converge");
        assert!(system.is_work_conserving());
        assert!(system.tasks_are_unique());
        assert_eq!(system.total_threads(), 8);
    }

    #[test]
    fn concurrent_rounds_with_failures_still_converge() {
        // Three idle cores all target the single overloaded core: only one
        // can win, the others' optimistic selections go stale and fail.
        let mut system = SystemState::from_loads(&[0, 0, 0, 2]);
        let balancer = Balancer::new(Policy::simple());
        let result = converge(&mut system, &balancer, RoundSchedule::AllSelectThenSteal, 64);
        assert!(result.converged());
        assert!(system.is_work_conserving());
        assert!(result.total_failures() > 0, "the maximally concurrent schedule should conflict");
        assert_eq!(result.total_successes(), 1);
    }

    #[test]
    fn seeded_rounds_converge_and_preserve_threads() {
        let mut system = SystemState::from_loads(&[0, 9, 0, 3, 0, 1]);
        let before = system.total_threads();
        let balancer = Balancer::new(Policy::simple());
        let result = converge(&mut system, &balancer, RoundSchedule::Seeded(1234), 64);
        assert!(result.converged());
        assert_eq!(system.total_threads(), before);
        assert!(system.tasks_are_unique());
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        // A zero-round budget on a non-work-conserving state cannot converge.
        let mut system = SystemState::from_loads(&[0, 2]);
        let balancer = Balancer::new(Policy::simple());
        let result = converge(&mut system, &balancer, RoundSchedule::Sequential, 0);
        assert_eq!(result.rounds, None);
        assert!(!result.converged());
        assert!(result.reports.is_empty());
    }

    #[test]
    fn weighted_policy_also_converges() {
        let mut system = SystemState::from_loads(&[0, 6, 0, 2]);
        let balancer = Balancer::new(Policy::weighted());
        let result = converge(&mut system, &balancer, RoundSchedule::AllSelectThenSteal, 64);
        assert!(result.converged());
        assert!(system.is_work_conserving());
        assert_eq!(system.loads(LoadMetric::NrThreads).iter().sum::<u64>(), 8);
    }
}
