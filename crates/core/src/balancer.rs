//! The three-step balancer of Figure 1, applied to the pure scheduler state.

use crate::outcome::{BalanceAttempt, RoundReport, StealOutcome};
use crate::policy::Policy;
use crate::snapshot::{CoreSnapshot, SystemSnapshot};
use crate::system::SystemState;
use crate::CoreId;

/// The result of a selection phase: the filtered candidates (step 1) and the
/// chosen victim (step 2), both computed from a read-only snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Cores that passed the filter, in id order.
    pub candidates: Vec<CoreId>,
    /// The victim chosen among the candidates, if any.
    pub chosen: Option<CoreId>,
}

/// Executes a [`Policy`] against a [`SystemState`].
///
/// The balancer exposes the selection and stealing phases separately so that
/// the concurrent-round executor ([`crate::round::ConcurrentRound`]) and the
/// model checker can interleave them; [`Balancer::balance_core`] performs
/// the whole round for one core in isolation (the §4.2 sequential setting).
pub struct Balancer {
    policy: Policy,
}

impl Balancer {
    /// Creates a balancer executing `policy`.
    pub fn new(policy: Policy) -> Self {
        Balancer { policy }
    }

    /// The policy being executed.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Selection phase (steps 1 and 2): lock-less and read-only.
    ///
    /// Consumes only the snapshot — by construction it cannot modify any
    /// runqueue, which is the concurrency model restriction of §3.1.
    pub fn select(&self, snapshot: &SystemSnapshot, thief: CoreId) -> Selection {
        self.select_within(snapshot, thief, |_| true)
    }

    /// Selection phase restricted to victims for which `admit` holds.
    ///
    /// Used by hierarchical balancing to cap one pass at a topology level
    /// (balance within a domain before across it).  The restriction narrows
    /// only this pass's candidate list, never the policy's filter itself, so
    /// an unrestricted final pass retains the full work-conservation
    /// guarantees.
    pub fn select_within(
        &self,
        snapshot: &SystemSnapshot,
        thief: CoreId,
        admit: impl Fn(CoreId) -> bool,
    ) -> Selection {
        let thief_snap = *snapshot.core(thief);
        let candidates: Vec<CoreSnapshot> = snapshot
            .others(thief)
            .into_iter()
            .filter(|victim| admit(victim.id) && self.policy.filter.can_steal(&thief_snap, victim))
            .collect();
        let mut chosen = self.policy.choice.choose(&thief_snap, &candidates);
        // Enforce Listing 1's post-condition `ensuring(res => cores.contains(res))`:
        // a choice outside the filtered list would invalidate the proof, so it
        // is clamped back onto the list (and flagged in debug builds).
        if let Some(c) = chosen {
            if !candidates.iter().any(|s| s.id == c) {
                debug_assert!(false, "choice policy returned a core outside the candidate list");
                chosen = candidates.first().map(|s| s.id);
            }
        }
        Selection { candidates: candidates.iter().map(|c| c.id).collect(), chosen }
    }

    /// Stealing phase (step 3): atomic with respect to the two runqueues.
    ///
    /// Re-checks the filter against the *live* state before migrating, as in
    /// Listing 1 line 12 — this is where optimistic selections are detected
    /// to have gone stale.
    pub fn steal(&self, system: &mut SystemState, thief: CoreId, victim: CoreId) -> StealOutcome {
        let outcome = self.steal_inner(system, thief, victim);
        // Adaptive choice policies (topology-aware backoff) learn from the
        // outcome; the default observe is a no-op.
        self.policy.choice.observe(thief, victim, outcome.is_success());
        outcome
    }

    fn steal_inner(&self, system: &mut SystemState, thief: CoreId, victim: CoreId) -> StealOutcome {
        let thief_snap = CoreSnapshot::capture(system.core(thief));
        let victim_snap = CoreSnapshot::capture(system.core(victim));
        if !self.policy.filter.can_steal(&thief_snap, &victim_snap) {
            return StealOutcome::RecheckFailed { victim };
        }
        let tasks = self.policy.steal.select_tasks(system.core(thief), system.core(victim));
        if tasks.is_empty() {
            return StealOutcome::NothingToSteal { victim };
        }
        let mut moved = Vec::with_capacity(tasks.len());
        for id in tasks {
            if system.migrate(victim, thief, id) {
                moved.push(id);
            }
        }
        if moved.is_empty() {
            StealOutcome::NothingToSteal { victim }
        } else {
            StealOutcome::Stole { victim, tasks: moved }
        }
    }

    /// Runs all three steps for one core in isolation.
    ///
    /// The snapshot is taken immediately before the stealing phase, so the
    /// selection can never be stale: this is the no-concurrency setting of
    /// §4.2 in which failures cannot occur.
    pub fn balance_core(
        &self,
        system: &mut SystemState,
        thief: CoreId,
        time: usize,
    ) -> BalanceAttempt {
        let snapshot = SystemSnapshot::capture(system);
        let selection = self.select(&snapshot, thief);
        let outcome = match selection.chosen {
            Some(victim) => self.steal(system, thief, victim),
            None => StealOutcome::NoCandidates,
        };
        BalanceAttempt {
            thief,
            select_time: time,
            steal_time: time,
            candidates: selection.candidates,
            chosen: selection.chosen,
            outcome,
        }
    }

    /// Runs a fully sequential load-balancing round: every core executes its
    /// three steps in isolation, in core-id order.
    ///
    /// "In this setup, in each load-balancing round the load-balancing
    /// operations do not overlap (i.e., core 0 first does all three
    /// load-balancing steps in isolation, then core 1 does all three steps,
    /// etc.)." (§4.2)
    pub fn run_round_sequential(&self, system: &mut SystemState) -> RoundReport {
        let ids = system.core_ids();
        let mut report = RoundReport::default();
        for (time, id) in ids.into_iter().enumerate() {
            report.attempts.push(self.balance_core(system, id, time));
        }
        report
    }
}

impl std::fmt::Debug for Balancer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Balancer").field("policy", &self.policy).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadMetric;
    use crate::policy::Policy;

    #[test]
    fn sequential_round_fixes_a_simple_imbalance() {
        let mut system = SystemState::from_loads(&[0, 3, 1]);
        let balancer = Balancer::new(Policy::simple());
        let report = balancer.run_round_sequential(&mut system);
        assert_eq!(report.nr_successes(), 1);
        assert_eq!(report.nr_failures(), 0, "no failures without concurrency");
        assert!(system.is_work_conserving());
        assert!(system.tasks_are_unique());
        assert_eq!(system.loads(LoadMetric::NrThreads), vec![1, 2, 1]);
    }

    #[test]
    fn idle_system_has_no_candidates() {
        let mut system = SystemState::from_loads(&[0, 0, 0]);
        let balancer = Balancer::new(Policy::simple());
        let report = balancer.run_round_sequential(&mut system);
        assert!(report.attempts.iter().all(|a| a.outcome == StealOutcome::NoCandidates));
    }

    #[test]
    fn selection_is_read_only() {
        let system = SystemState::from_loads(&[0, 3]);
        let snapshot = SystemSnapshot::capture(&system);
        let balancer = Balancer::new(Policy::simple());
        let before = system.clone();
        let selection = balancer.select(&snapshot, CoreId(0));
        assert_eq!(selection.chosen, Some(CoreId(1)));
        assert_eq!(system, before, "the selection phase must not modify runqueues");
    }

    #[test]
    fn steal_recheck_fails_on_stale_selection() {
        // Core 0 selects core 2 while it is overloaded; the state then
        // changes (someone else stole first); core 0's steal must fail.
        let mut system = SystemState::from_loads(&[0, 0, 2]);
        let balancer = Balancer::new(Policy::simple());
        let snapshot = SystemSnapshot::capture(&system);
        let selection = balancer.select(&snapshot, CoreId(0));
        assert_eq!(selection.chosen, Some(CoreId(2)));

        // A concurrent steal by core 1 empties core 2's runqueue.
        let stolen = system.core(CoreId(2)).ready[0].id;
        system.migrate(CoreId(2), CoreId(1), stolen);

        let outcome = balancer.steal(&mut system, CoreId(0), CoreId(2));
        assert_eq!(outcome, StealOutcome::RecheckFailed { victim: CoreId(2) });
        assert!(system.tasks_are_unique());
    }

    #[test]
    fn steal_never_takes_the_victims_current_thread() {
        let mut system = SystemState::from_loads(&[0, 2]);
        let balancer = Balancer::new(Policy::simple());
        let running = system.core(CoreId(1)).current.as_ref().unwrap().id;
        let attempt = balancer.balance_core(&mut system, CoreId(0), 0);
        match attempt.outcome {
            StealOutcome::Stole { tasks, .. } => assert!(!tasks.contains(&running)),
            other => panic!("expected a successful steal, got {other:?}"),
        }
        assert!(!system.core(CoreId(1)).is_idle(), "a steal must never empty the victim");
    }

    #[test]
    fn non_idle_cores_also_balance() {
        // Core 0 has one thread, core 1 has four: even though core 0 is not
        // idle, the model lets every core run balancing operations (§3.1).
        let mut system = SystemState::from_loads(&[1, 4]);
        let balancer = Balancer::new(Policy::simple());
        let attempt = balancer.balance_core(&mut system, CoreId(0), 0);
        assert!(attempt.is_success());
        assert_eq!(system.loads(LoadMetric::NrThreads), vec![2, 3]);
    }
}
