//! Pluggable per-entity load tracking — the *criterion* of load balancing.
//!
//! "We make no assumption on the criteria used to define how the load
//! should be balanced." (§3.1)  Earlier revisions hard-coded that criterion
//! as a two-variant enum (instantaneous thread counts or instantaneous
//! weighted load); this module makes it a first-class abstraction: a
//! [`LoadTracker`] owns both the *definition* of a core's load and the way
//! that definition *evolves over time*.
//!
//! Three trackers ship with the crate:
//!
//! * [`NrThreadsTracker`] — instantaneous thread counts (Listing 1's
//!   `load() = ready.size + current.size`),
//! * [`WeightedTracker`] — instantaneous niceness-weighted load (§4.2),
//! * [`PeltTracker`] — a PELT-style **geometrically decayed** load average
//!   with a configurable half-life, modelled on CFS's per-entity load
//!   tracking: the tracked value converges toward the instantaneous load,
//!   and the *deviation* halves every half-life.  A core that briefly goes
//!   idle keeps most of its history, so balancers driven by this tracker do
//!   not thrash on bursty on/off workloads the way instantaneous balancers
//!   do.
//!
//! Tracked values are maintained per core as a [`TrackedLoad`] accumulator
//! (fixed point, scaled by [`TRACK_SCALE`]) and surfaced to the lock-less
//! selection phase through [`crate::CoreSnapshot::tracked_scaled`]; policies
//! read them via [`crate::LoadMetric::Tracked`].  Each backend updates the
//! accumulator at its own natural points: the pure model on explicit
//! [`crate::SystemState::tick`]s, the simulator on every run/sleep/wakeup
//! event, and the concurrent runqueues on enqueue/dequeue/tick under the
//! runqueue lock.

use std::sync::Arc;

use crate::load::LoadMetric;

/// Fixed-point scale of tracked load values: one unit of instantaneous load
/// is `TRACK_SCALE` scaled units.
pub const TRACK_SCALE: u64 = 1024;

/// Per-core decayed-load accumulator.
///
/// `scaled` is in units of the tracker's base metric times [`TRACK_SCALE`];
/// `last_update_ns` is the timestamp of the most recent fold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TrackedLoad {
    /// Tracked load, scaled by [`TRACK_SCALE`].
    pub scaled: u64,
    /// Time of the last update, in nanoseconds.
    pub last_update_ns: u64,
}

impl TrackedLoad {
    /// The tracked load rounded back to base-metric units.
    pub fn load(&self) -> u64 {
        round_scaled(self.scaled)
    }
}

/// Rounds a scaled tracked value back to base-metric units (round half
/// up).  The single definition of this rule: the locked [`TrackedLoad`]
/// view and the lock-less snapshot view must agree bit for bit, or the
/// selection phase and the steal-phase re-check would judge the same
/// tracked load differently.
pub fn round_scaled(scaled: u64) -> u64 {
    (scaled + TRACK_SCALE / 2) / TRACK_SCALE
}

/// Pure geometric decay: halves `scaled` for every full `half_life_ns` of
/// `elapsed_ns`, interpolating linearly within a half-life.
///
/// The result is never larger than the input, is the identity at zero
/// elapsed time, and is monotonically non-increasing in `elapsed_ns` — the
/// three properties the decay proptests pin down.
///
/// # Panics
///
/// Panics if `half_life_ns` is zero.
pub fn decay_scaled(scaled: u64, elapsed_ns: u64, half_life_ns: u64) -> u64 {
    assert!(half_life_ns > 0, "a decay needs a positive half-life");
    let halvings = elapsed_ns / half_life_ns;
    if halvings >= u64::BITS as u64 {
        return 0;
    }
    let whole = scaled >> halvings;
    let frac = elapsed_ns % half_life_ns;
    if frac == 0 {
        return whole;
    }
    // Linear interpolation of 2^-x on [0, 1): factor (2h - frac) / 2h walks
    // from 1 at frac = 0 to 1/2 at frac = h, so the decay is continuous
    // across half-life boundaries and exact at every multiple of h.
    let num = u128::from(whole) * u128::from(2 * half_life_ns - frac);
    (num / u128::from(2 * half_life_ns)) as u64
}

/// The load criterion a balancing policy is built around.
///
/// A tracker defines (a) which snapshot field the policy's filter and
/// choice steps read ([`LoadTracker::view`]), (b) the instantaneous metric
/// entities are weighted by ([`LoadTracker::base`]), and (c) how a core's
/// [`TrackedLoad`] accumulator folds in a new observation
/// ([`LoadTracker::update`]).  Implementations must be *monotone*: a larger
/// instantaneous load never yields a smaller tracked value, which is what
/// the work-conservation lemma for tracked policies relies on (see
/// `sched-verify`'s decay lemmas).
pub trait LoadTracker: Send + Sync + std::fmt::Debug {
    /// The snapshot view the balancing steps read under this criterion.
    ///
    /// Instantaneous trackers return their base metric; decayed trackers
    /// return [`LoadMetric::Tracked`].
    fn view(&self) -> LoadMetric;

    /// The instantaneous metric a core's entities are weighted by.
    fn base(&self) -> LoadMetric;

    /// Folds the instantaneous load `inst` (in base-metric units) observed
    /// at `now_ns` into `state`.
    fn update(&self, state: &mut TrackedLoad, now_ns: u64, inst: u64);

    /// Returns `true` if the tracked value decays over time (and therefore
    /// needs periodic ticks even when the queues do not change).
    fn is_decayed(&self) -> bool {
        false
    }

    /// Human-readable name used in reports and experiment records.
    fn name(&self) -> String;
}

/// Instantaneous thread counts: the tracker behind the paper's Listing 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NrThreadsTracker;

impl LoadTracker for NrThreadsTracker {
    fn view(&self) -> LoadMetric {
        LoadMetric::NrThreads
    }

    fn base(&self) -> LoadMetric {
        LoadMetric::NrThreads
    }

    fn update(&self, state: &mut TrackedLoad, now_ns: u64, inst: u64) {
        state.scaled = inst * TRACK_SCALE;
        state.last_update_ns = now_ns;
    }

    fn name(&self) -> String {
        "nr_threads".into()
    }
}

/// Instantaneous niceness-weighted load (§4.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeightedTracker;

impl LoadTracker for WeightedTracker {
    fn view(&self) -> LoadMetric {
        LoadMetric::Weighted
    }

    fn base(&self) -> LoadMetric {
        LoadMetric::Weighted
    }

    fn update(&self, state: &mut TrackedLoad, now_ns: u64, inst: u64) {
        state.scaled = inst * TRACK_SCALE;
        state.last_update_ns = now_ns;
    }

    fn name(&self) -> String {
        "weighted".into()
    }
}

/// PELT-style decayed load average with a configurable half-life.
///
/// The tracked value is an exponential average that chases the
/// instantaneous load: after an update at distance `t` from the previous
/// one, the *deviation* from the instantaneous load is multiplied by
/// `2^(-t / half_life)`.  Steady loads therefore converge to their
/// instantaneous value (the decay-convergence lemma), while short bursts
/// and brief idle gaps barely move the average — the hysteresis that stops
/// balancers from thrashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeltTracker {
    base: LoadMetric,
    half_life_ns: u64,
}

impl PeltTracker {
    /// Creates a tracker decaying `base` loads with the given half-life.
    ///
    /// # Panics
    ///
    /// Panics if `half_life_ns` is zero or `base` is itself
    /// [`LoadMetric::Tracked`] (a tracker cannot track itself).
    pub fn new(base: LoadMetric, half_life_ns: u64) -> Self {
        assert!(half_life_ns > 0, "a PELT tracker needs a positive half-life");
        assert!(base != LoadMetric::Tracked, "a PELT tracker needs an instantaneous base metric");
        PeltTracker { base, half_life_ns }
    }

    /// The half-life of the decayed average, in nanoseconds.
    pub fn half_life_ns(&self) -> u64 {
        self.half_life_ns
    }
}

impl LoadTracker for PeltTracker {
    fn view(&self) -> LoadMetric {
        LoadMetric::Tracked
    }

    fn base(&self) -> LoadMetric {
        self.base
    }

    fn update(&self, state: &mut TrackedLoad, now_ns: u64, inst: u64) {
        let elapsed = now_ns.saturating_sub(state.last_update_ns);
        let target = inst * TRACK_SCALE;
        // Decay the deviation, not the sum: new = inst + (old - inst)·2^-t/h.
        // Both branches stay within [min(old, target), max(old, target)], so
        // the tracked value is never negative and never overshoots.
        state.scaled = if state.scaled >= target {
            target + decay_scaled(state.scaled - target, elapsed, self.half_life_ns)
        } else {
            target - decay_scaled(target - state.scaled, elapsed, self.half_life_ns)
        };
        state.last_update_ns = now_ns;
    }

    fn is_decayed(&self) -> bool {
        true
    }

    fn name(&self) -> String {
        let base = match self.base {
            LoadMetric::NrThreads => "nr_threads",
            LoadMetric::Weighted => "weighted",
            LoadMetric::Tracked => unreachable!("rejected by the constructor"),
        };
        format!("pelt({base}, {}ms)", self.half_life_ns / 1_000_000)
    }
}

/// A cheap, copyable recipe for building a tracker — the configuration-layer
/// companion of the [`LoadTracker`] trait (the DSL front-end and the bench
/// runner hold specs; execution layers hold built trackers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerSpec {
    /// Instantaneous thread counts.
    NrThreads,
    /// Instantaneous weighted load.
    Weighted,
    /// PELT-style decayed average of `base` with the given half-life.
    Pelt {
        /// Instantaneous metric underneath the decayed average.
        base: LoadMetric,
        /// Half-life of the decay, in nanoseconds.
        half_life_ns: u64,
    },
}

impl TrackerSpec {
    /// Builds the tracker this spec describes.
    pub fn build(self) -> Arc<dyn LoadTracker> {
        match self {
            TrackerSpec::NrThreads => Arc::new(NrThreadsTracker),
            TrackerSpec::Weighted => Arc::new(WeightedTracker),
            TrackerSpec::Pelt { base, half_life_ns } => {
                Arc::new(PeltTracker::new(base, half_life_ns))
            }
        }
    }

    /// The spec matching an instantaneous metric.
    ///
    /// # Panics
    ///
    /// Panics on [`LoadMetric::Tracked`]: a tracked view does not determine
    /// which tracker maintains it.
    pub fn instantaneous(metric: LoadMetric) -> Self {
        match metric {
            LoadMetric::NrThreads => TrackerSpec::NrThreads,
            LoadMetric::Weighted => TrackerSpec::Weighted,
            LoadMetric::Tracked => {
                panic!("LoadMetric::Tracked does not name a tracker; build one explicitly")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_is_identity_at_zero_elapsed_time() {
        for v in [0u64, 1, 1024, 88761 * 1024] {
            assert_eq!(decay_scaled(v, 0, 1_000_000), v);
        }
    }

    #[test]
    fn decay_halves_per_full_half_life() {
        assert_eq!(decay_scaled(4096, 1_000_000, 1_000_000), 2048);
        assert_eq!(decay_scaled(4096, 2_000_000, 1_000_000), 1024);
        assert_eq!(decay_scaled(4096, 64_000_000, 1_000_000), 0);
    }

    #[test]
    fn decay_is_monotone_and_bounded() {
        let mut prev = 10_000u64;
        for elapsed in (0..4_000_000u64).step_by(100_000) {
            let v = decay_scaled(10_000, elapsed, 1_000_000);
            assert!(v <= prev, "decay must be monotone in elapsed time");
            assert!(v <= 10_000);
            prev = v;
        }
    }

    #[test]
    fn huge_elapsed_times_decay_to_zero() {
        assert_eq!(decay_scaled(u64::MAX, u64::MAX, 1), 0);
    }

    #[test]
    fn instantaneous_trackers_mirror_the_input() {
        let tracker = NrThreadsTracker;
        let mut state = TrackedLoad::default();
        tracker.update(&mut state, 123, 7);
        assert_eq!(state.scaled, 7 * TRACK_SCALE);
        assert_eq!(state.load(), 7);
        assert!(!tracker.is_decayed());
        assert_eq!(tracker.view(), LoadMetric::NrThreads);
    }

    #[test]
    fn pelt_converges_toward_a_steady_load() {
        let tracker = PeltTracker::new(LoadMetric::NrThreads, 1_000_000);
        let mut state = TrackedLoad::default();
        let mut prev_gap = 4 * TRACK_SCALE;
        for tick in 1..=20u64 {
            tracker.update(&mut state, tick * 1_000_000, 4);
            let gap = (4 * TRACK_SCALE).abs_diff(state.scaled);
            assert!(gap <= prev_gap / 2 + 1, "deviation must halve per half-life");
            prev_gap = gap;
        }
        assert_eq!(state.load(), 4, "a steady load converges to its instantaneous value");
    }

    #[test]
    fn pelt_retains_history_through_a_brief_idle_gap() {
        let tracker = PeltTracker::new(LoadMetric::NrThreads, 8_000_000);
        let mut state = TrackedLoad::default();
        // Warm up at load 2 for many half-lives.
        tracker.update(&mut state, 100 * 8_000_000, 2);
        assert_eq!(state.load(), 2);
        // A 1 ms idle blip (an eighth of a half-life) barely moves it.
        tracker.update(&mut state, 100 * 8_000_000 + 1_000_000, 0);
        assert_eq!(state.load(), 2, "a brief idle gap must not erase the tracked load");
        // A sustained idle period does decay it away.
        tracker.update(&mut state, 200 * 8_000_000, 0);
        assert_eq!(state.load(), 0);
    }

    #[test]
    fn pelt_update_is_idempotent_at_the_same_timestamp() {
        let tracker = PeltTracker::new(LoadMetric::NrThreads, 1_000_000);
        let mut state = TrackedLoad::default();
        tracker.update(&mut state, 5_000_000, 3);
        let frozen = state;
        // Time has not advanced: the deviation decays by 2^0 = 1.
        tracker.update(&mut state, 5_000_000, 9);
        assert_eq!(state.scaled, frozen.scaled, "no elapsed time, no movement");
    }

    #[test]
    fn tracker_specs_build_their_trackers() {
        assert_eq!(TrackerSpec::NrThreads.build().name(), "nr_threads");
        assert_eq!(TrackerSpec::Weighted.build().name(), "weighted");
        let pelt =
            TrackerSpec::Pelt { base: LoadMetric::NrThreads, half_life_ns: 8_000_000 }.build();
        assert_eq!(pelt.name(), "pelt(nr_threads, 8ms)");
        assert!(pelt.is_decayed());
        assert_eq!(pelt.view(), LoadMetric::Tracked);
        assert_eq!(
            TrackerSpec::instantaneous(LoadMetric::Weighted).build().view(),
            LoadMetric::Weighted
        );
    }

    #[test]
    #[should_panic(expected = "positive half-life")]
    fn zero_half_life_is_rejected() {
        let _ = PeltTracker::new(LoadMetric::NrThreads, 0);
    }

    #[test]
    #[should_panic(expected = "instantaneous base metric")]
    fn tracked_base_is_rejected() {
        let _ = PeltTracker::new(LoadMetric::Tracked, 1);
    }
}
