//! Tasks (threads), their niceness and their load weights.

use sched_topology::NodeId;

/// Globally unique identifier of a task (a schedulable thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl TaskId {
    /// Returns the raw id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Unix niceness of a task, clamped to the conventional `[-20, 19]` range.
///
/// "CFS considers some threads more important (different niceness), and gives
/// them a higher share of CPU resources" (§3.1) — the weighted load metric
/// and the weighted balancing policy consume this value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nice(i8);

impl Nice {
    /// The default niceness.
    pub const NORMAL: Nice = Nice(0);

    /// Creates a niceness, clamping to `[-20, 19]`.
    pub fn new(nice: i8) -> Self {
        Nice(nice.clamp(-20, 19))
    }

    /// Returns the raw niceness value.
    pub fn value(self) -> i8 {
        self.0
    }

    /// Converts the niceness to its CFS load weight.
    pub fn weight(self) -> Weight {
        Weight::from_nice(self)
    }
}

impl Default for Nice {
    fn default() -> Self {
        Nice::NORMAL
    }
}

/// Load weight of a task, in the same units as Linux (`nice 0` ⇒ 1024).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Weight(pub u64);

/// The CFS `sched_prio_to_weight` table: weight for each niceness from -20
/// (index 0) to 19 (index 39).  Each step multiplies the CPU share by ~1.25.
const PRIO_TO_WEIGHT: [u64; 40] = [
    88761, 71755, 56483, 46273, 36291, // -20 .. -16
    29154, 23254, 18705, 14949, 11916, // -15 .. -11
    9548, 7620, 6100, 4904, 3906, // -10 .. -6
    3121, 2501, 1991, 1586, 1277, // -5 .. -1
    1024, 820, 655, 526, 423, // 0 .. 4
    335, 272, 215, 172, 137, // 5 .. 9
    110, 87, 70, 56, 45, // 10 .. 14
    36, 29, 23, 18, 15, // 15 .. 19
];

impl Weight {
    /// Weight of a `nice 0` task.
    pub const NICE_0: Weight = Weight(1024);

    /// Smallest weight in the niceness table (`nice 19`).
    pub const MIN: Weight = Weight(15);

    /// Largest weight in the niceness table (`nice -20`).
    pub const MAX: Weight = Weight(88761);

    /// Converts a niceness value to its load weight using the CFS table.
    pub fn from_nice(nice: Nice) -> Self {
        Weight(PRIO_TO_WEIGHT[(nice.value() as i32 + 20) as usize])
    }

    /// Returns the raw weight.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl Default for Weight {
    fn default() -> Self {
        Weight::NICE_0
    }
}

/// A schedulable thread in the scheduler model.
///
/// The model only tracks the properties load balancing consumes: identity,
/// importance (niceness/weight) and an optional preferred NUMA node used by
/// the NUMA-aware choice policy of step 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Unique identity of the task.
    pub id: TaskId,
    /// Niceness (importance) of the task.
    pub nice: Nice,
    /// Node the task would prefer to run on (e.g. where its memory lives).
    pub preferred_node: Option<NodeId>,
}

impl Task {
    /// Creates a `nice 0` task with no NUMA preference.
    pub fn new(id: TaskId) -> Self {
        Task { id, nice: Nice::NORMAL, preferred_node: None }
    }

    /// Creates a task with the given niceness.
    pub fn with_nice(id: TaskId, nice: Nice) -> Self {
        Task { id, nice, preferred_node: None }
    }

    /// Sets the preferred NUMA node.
    pub fn with_preferred_node(mut self, node: NodeId) -> Self {
        self.preferred_node = Some(node);
        self
    }

    /// Load weight of this task.
    pub fn weight(&self) -> Weight {
        self.nice.weight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice_is_clamped() {
        assert_eq!(Nice::new(-100).value(), -20);
        assert_eq!(Nice::new(100).value(), 19);
        assert_eq!(Nice::new(5).value(), 5);
    }

    #[test]
    fn nice_zero_weight_is_1024() {
        assert_eq!(Nice::NORMAL.weight(), Weight::NICE_0);
    }

    #[test]
    fn weight_table_is_monotonically_decreasing_in_nice() {
        let mut prev = Weight::from_nice(Nice::new(-20));
        for n in -19..=19 {
            let w = Weight::from_nice(Nice::new(n));
            assert!(w < prev, "weight must decrease as niceness increases");
            prev = w;
        }
        assert_eq!(Weight::from_nice(Nice::new(-20)), Weight::MAX);
        assert_eq!(Weight::from_nice(Nice::new(19)), Weight::MIN);
    }

    #[test]
    fn each_nice_step_changes_share_by_about_25_percent() {
        for n in -20..19 {
            let w0 = Weight::from_nice(Nice::new(n)).raw() as f64;
            let w1 = Weight::from_nice(Nice::new(n + 1)).raw() as f64;
            let ratio = w0 / w1;
            assert!((1.15..1.40).contains(&ratio), "ratio {ratio} at nice {n}");
        }
    }

    #[test]
    fn task_builders() {
        let t = Task::with_nice(TaskId(7), Nice::new(-5)).with_preferred_node(NodeId(1));
        assert_eq!(t.id.raw(), 7);
        assert_eq!(t.weight(), Weight::from_nice(Nice::new(-5)));
        assert_eq!(t.preferred_node, Some(NodeId(1)));
        assert_eq!(t.id.to_string(), "task7");
    }
}
