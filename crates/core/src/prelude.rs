//! Convenience re-exports for downstream crates, examples and tests.
//!
//! ```
//! use sched_core::prelude::*;
//!
//! let mut system = SystemState::from_loads(&[0, 4]);
//! let balancer = Balancer::new(Policy::simple());
//! let result = converge(&mut system, &balancer, RoundSchedule::Sequential, 8);
//! assert!(result.converged());
//! ```

pub use crate::balancer::{Balancer, Selection};
pub use crate::core_state::CoreState;
pub use crate::hierarchy::{HierarchicalReport, HierarchicalRound, LevelPass};
pub use crate::load::LoadMetric;
pub use crate::outcome::{BalanceAttempt, RoundReport, StealOutcome};
pub use crate::policy::{
    ChoicePolicy, DeltaFilter, FilterPolicy, FirstChoice, GreedyFilter, GroupAwareChoice,
    LevelThresholds, MaxLoadChoice, MinMigrationCostChoice, NodeRestrictedFilter, NumaAwareChoice,
    Policy, RandomChoice, StealHalfImbalance, StealLightest, StealOne, StealPolicy,
    TopologyAwareChoice, WeightedDeltaFilter,
};
pub use crate::potential::{
    level_potential, level_potential_of_system, potential, potential_between,
    potential_delta_of_steal, potential_of_loads, region_loads,
};
pub use crate::round::{ConcurrentRound, Phase, RoundSchedule, Step};
pub use crate::snapshot::{CoreSnapshot, SystemSnapshot};
pub use crate::system::SystemState;
pub use crate::task::{Nice, Task, TaskId, Weight};
pub use crate::tracker::{
    decay_scaled, LoadTracker, NrThreadsTracker, PeltTracker, TrackedLoad, TrackerSpec,
    WeightedTracker, TRACK_SCALE,
};
pub use crate::work_conservation::{converge, ConvergenceResult};
pub use crate::CoreId;
