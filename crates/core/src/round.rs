//! Concurrent load-balancing rounds with interleaved phases.
//!
//! "The operations of a load balancing round might be performed
//! simultaneously on multiple cores, both idle and non-idle. […] When load
//! balancing operations happen simultaneously on multiple cores, some of
//! them may conflict." (§3.1)
//!
//! A round is modelled as an interleaving of per-core *phase steps*: each
//! core contributes a [`Phase::Select`] step (take the optimistic snapshot,
//! run the filter and the choice) followed later by a [`Phase::Steal`] step
//! (lock both runqueues, re-check the filter, migrate or fail).  The
//! interleaving decides how stale each core's selection is by the time it
//! steals; enumerating all interleavings is how `sched-verify` explores
//! every possible conflict, and seeding them randomly is how `sched-sim`
//! produces realistic races.

use crate::balancer::{Balancer, Selection};
use crate::outcome::{BalanceAttempt, RoundReport, StealOutcome};
use crate::snapshot::SystemSnapshot;
use crate::system::SystemState;
use crate::CoreId;

/// The two atomic phases of one core's balancing operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Steps 1 + 2 of Figure 1: lock-less, read-only selection.
    Select,
    /// Step 3 of Figure 1: the locked, atomic stealing operation.
    Steal,
}

/// One step of a round's interleaving: a core performing one of its phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    /// The core performing the step.
    pub core: CoreId,
    /// Which phase it performs.
    pub phase: Phase,
}

impl Step {
    /// Convenience constructor for a selection step.
    pub fn select(core: CoreId) -> Self {
        Step { core, phase: Phase::Select }
    }

    /// Convenience constructor for a stealing step.
    pub fn steal(core: CoreId) -> Self {
        Step { core, phase: Phase::Steal }
    }
}

/// How the per-core phases of one round are interleaved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundSchedule {
    /// Core 0 runs Select then Steal, then core 1, etc. — the no-concurrency
    /// setting of §4.2 in which selections are never stale.
    Sequential,
    /// Every core runs Select (in id order), then every core runs Steal (in
    /// id order) — the maximally stale interleaving, where every selection
    /// observes the same initial state.  This models CFS's "load balancing
    /// operations are performed simultaneously on all cores every 4ms".
    AllSelectThenSteal,
    /// An explicit interleaving, used by the model checker to enumerate every
    /// possible conflict.
    Explicit(Vec<Step>),
    /// A pseudo-random valid interleaving derived from the seed, used by the
    /// simulator; different rounds should use different seeds.
    Seeded(u64),
}

impl RoundSchedule {
    /// Materialises the schedule into an ordered list of steps for a system
    /// of `nr_cores` cores.
    pub fn steps(&self, nr_cores: usize) -> Vec<Step> {
        match self {
            RoundSchedule::Sequential => (0..nr_cores)
                .flat_map(|i| [Step::select(CoreId(i)), Step::steal(CoreId(i))])
                .collect(),
            RoundSchedule::AllSelectThenSteal => (0..nr_cores)
                .map(|i| Step::select(CoreId(i)))
                .chain((0..nr_cores).map(|i| Step::steal(CoreId(i))))
                .collect(),
            RoundSchedule::Explicit(steps) => steps.clone(),
            RoundSchedule::Seeded(seed) => seeded_interleaving(nr_cores, *seed),
        }
    }

    /// Derives the schedule to use for round number `round`.
    ///
    /// Deterministic schedules are reused unchanged; seeded schedules derive
    /// a fresh interleaving per round so that races differ between rounds.
    pub fn for_round(&self, round: usize) -> RoundSchedule {
        match self {
            RoundSchedule::Seeded(seed) => RoundSchedule::Seeded(
                seed.wrapping_add(round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            ),
            other => other.clone(),
        }
    }

    /// Checks that `steps` forms a valid round for `nr_cores` cores: every
    /// core appears exactly once per phase and selects before it steals.
    pub fn validate(steps: &[Step], nr_cores: usize) -> Result<(), String> {
        let mut selected = vec![false; nr_cores];
        let mut stolen = vec![false; nr_cores];
        for step in steps {
            let i = step.core.0;
            if i >= nr_cores {
                return Err(format!("step references unknown core {}", step.core));
            }
            match step.phase {
                Phase::Select => {
                    if selected[i] {
                        return Err(format!("{} selects twice", step.core));
                    }
                    selected[i] = true;
                }
                Phase::Steal => {
                    if !selected[i] {
                        return Err(format!("{} steals before selecting", step.core));
                    }
                    if stolen[i] {
                        return Err(format!("{} steals twice", step.core));
                    }
                    stolen[i] = true;
                }
            }
        }
        for i in 0..nr_cores {
            if !selected[i] || !stolen[i] {
                return Err(format!("core {i} did not complete its round"));
            }
        }
        Ok(())
    }
}

/// Builds a valid pseudo-random interleaving of `nr_cores` rounds.
fn seeded_interleaving(nr_cores: usize, seed: u64) -> Vec<Step> {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*: deterministic, seed-reproducible stream.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    // Start from the fully concurrent interleaving and shuffle it while
    // preserving the per-core Select-before-Steal order.
    let mut remaining_select: Vec<usize> = (0..nr_cores).collect();
    let mut pending_steal: Vec<usize> = Vec::new();
    let mut steps = Vec::with_capacity(nr_cores * 2);
    while !remaining_select.is_empty() || !pending_steal.is_empty() {
        let pick_select = if remaining_select.is_empty() {
            false
        } else if pending_steal.is_empty() {
            true
        } else {
            next() % 2 == 0
        };
        if pick_select {
            let idx = (next() % remaining_select.len() as u64) as usize;
            let core = remaining_select.swap_remove(idx);
            pending_steal.push(core);
            steps.push(Step::select(CoreId(core)));
        } else {
            let idx = (next() % pending_steal.len() as u64) as usize;
            let core = pending_steal.swap_remove(idx);
            steps.push(Step::steal(CoreId(core)));
        }
    }
    steps
}

/// Executes concurrent rounds of a [`Balancer`] under a given interleaving.
#[derive(Debug)]
pub struct ConcurrentRound<'a> {
    balancer: &'a Balancer,
}

impl<'a> ConcurrentRound<'a> {
    /// Creates an executor for `balancer`.
    pub fn new(balancer: &'a Balancer) -> Self {
        ConcurrentRound { balancer }
    }

    /// Executes one round under `schedule`, mutating `system` in place.
    ///
    /// # Panics
    ///
    /// Panics if the materialised schedule is not a valid round (see
    /// [`RoundSchedule::validate`]).
    pub fn execute(&self, system: &mut SystemState, schedule: &RoundSchedule) -> RoundReport {
        let steps = schedule.steps(system.nr_cores());
        RoundSchedule::validate(&steps, system.nr_cores())
            .unwrap_or_else(|e| panic!("invalid round schedule: {e}"));
        self.execute_steps(system, &steps)
    }

    /// Executes one round described by an explicit, already validated list of
    /// steps.  Exposed separately for the model checker, which generates and
    /// validates interleavings itself.
    pub fn execute_steps(&self, system: &mut SystemState, steps: &[Step]) -> RoundReport {
        let mut pending: Vec<Option<(Selection, usize)>> = vec![None; system.nr_cores()];
        let mut report = RoundReport::default();
        for (time, step) in steps.iter().enumerate() {
            match step.phase {
                Phase::Select => {
                    // The snapshot is taken *now*: every later mutation makes
                    // it stale, which is exactly the optimism of the model.
                    let snapshot = SystemSnapshot::capture(system);
                    let selection = self.balancer.select(&snapshot, step.core);
                    pending[step.core.0] = Some((selection, time));
                }
                Phase::Steal => {
                    let (selection, select_time) = pending[step.core.0]
                        .take()
                        .expect("validated schedule guarantees select before steal");
                    let outcome = match selection.chosen {
                        Some(victim) => self.balancer.steal(system, step.core, victim),
                        None => StealOutcome::NoCandidates,
                    };
                    report.attempts.push(BalanceAttempt {
                        thief: step.core,
                        select_time,
                        steal_time: time,
                        candidates: selection.candidates,
                        chosen: selection.chosen,
                        outcome,
                    });
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadMetric;
    use crate::policy::Policy;

    #[test]
    fn schedules_materialise_to_valid_rounds() {
        for schedule in [
            RoundSchedule::Sequential,
            RoundSchedule::AllSelectThenSteal,
            RoundSchedule::Seeded(7),
            RoundSchedule::Seeded(u64::MAX),
        ] {
            for n in 1..8 {
                let steps = schedule.steps(n);
                assert_eq!(steps.len(), 2 * n);
                RoundSchedule::validate(&steps, n).unwrap();
            }
        }
    }

    #[test]
    fn validate_rejects_malformed_schedules() {
        let missing = vec![Step::select(CoreId(0)), Step::steal(CoreId(0))];
        assert!(RoundSchedule::validate(&missing, 2).is_err());
        let reversed = vec![
            Step::steal(CoreId(0)),
            Step::select(CoreId(0)),
            Step::select(CoreId(1)),
            Step::steal(CoreId(1)),
        ];
        assert!(RoundSchedule::validate(&reversed, 2).is_err());
        let double = vec![
            Step::select(CoreId(0)),
            Step::select(CoreId(0)),
            Step::steal(CoreId(0)),
            Step::steal(CoreId(0)),
        ];
        assert!(RoundSchedule::validate(&double, 1).is_err());
    }

    #[test]
    fn seeded_schedules_differ_across_rounds_but_are_reproducible() {
        let schedule = RoundSchedule::Seeded(3);
        let a = schedule.for_round(1).steps(6);
        let b = schedule.for_round(2).steps(6);
        let a2 = schedule.for_round(1).steps(6);
        assert_eq!(a, a2);
        assert_ne!(a, b, "different rounds should race differently");
    }

    #[test]
    fn concurrent_round_produces_the_papers_conflict() {
        // §3.1's example: "if two cores simultaneously try to steal a thread
        // from a third core that has only one thread waiting in its runqueue,
        // then one of the two cores will fail to steal a thread."
        let mut system = SystemState::from_loads(&[0, 0, 2]);
        let balancer = Balancer::new(Policy::simple());
        let round = ConcurrentRound::new(&balancer);
        let report = round.execute(&mut system, &RoundSchedule::AllSelectThenSteal);
        assert_eq!(report.nr_successes(), 1);
        assert_eq!(report.nr_failures(), 1);
        assert!(system.tasks_are_unique());
        assert_eq!(system.total_threads(), 2);
    }

    #[test]
    fn sequential_schedule_through_the_executor_matches_the_balancer() {
        let mut a = SystemState::from_loads(&[0, 4, 1, 0]);
        let mut b = a.clone();
        let balancer = Balancer::new(Policy::simple());
        let round = ConcurrentRound::new(&balancer);
        let ra = round.execute(&mut a, &RoundSchedule::Sequential);
        let rb = balancer.run_round_sequential(&mut b);
        assert_eq!(a, b);
        assert_eq!(ra.nr_successes(), rb.nr_successes());
        assert_eq!(a.loads(LoadMetric::NrThreads), b.loads(LoadMetric::NrThreads));
    }

    #[test]
    fn explicit_interleavings_are_respected() {
        // Interleave so that core 1 steals before core 0: core 0's selection
        // becomes stale and its steal fails.
        let steps = vec![
            Step::select(CoreId(0)),
            Step::select(CoreId(1)),
            Step::steal(CoreId(1)),
            Step::steal(CoreId(0)),
            Step::select(CoreId(2)),
            Step::steal(CoreId(2)),
        ];
        let mut system = SystemState::from_loads(&[0, 0, 2]);
        let balancer = Balancer::new(Policy::simple());
        let round = ConcurrentRound::new(&balancer);
        let report = round.execute(&mut system, &RoundSchedule::Explicit(steps));
        let core0 = report.attempts.iter().find(|a| a.thief == CoreId(0)).unwrap();
        let core1 = report.attempts.iter().find(|a| a.thief == CoreId(1)).unwrap();
        assert!(core1.is_success());
        assert!(core0.is_failure());
    }
}
