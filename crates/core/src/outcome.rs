//! Outcomes of balancing attempts and per-round reports.
//!
//! "Our scheduler model integrates potential failures of the load balancing
//! round operations" (§3.1).  Failure is therefore a first-class value here,
//! not an error: the verifier's P1 lemma (§4.3) is a statement *about*
//! [`StealOutcome`] values.

use crate::task::TaskId;
use crate::CoreId;

/// The result of one core's balancing attempt within a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StealOutcome {
    /// The stealing phase succeeded and migrated `tasks` from `victim`.
    Stole {
        /// The core threads were taken from.
        victim: CoreId,
        /// The migrated threads, in migration order.
        tasks: Vec<TaskId>,
    },
    /// The filter produced an empty candidate list; nothing was attempted.
    ///
    /// Not a failure: it is the normal outcome when no core is overloaded
    /// (or none is sufficiently more loaded than the thief).
    NoCandidates,
    /// The optimistic selection was stale: the filter no longer held when
    /// re-checked under the runqueue locks (Listing 1, line 12).
    ///
    /// This is the paper's *failed work-stealing attempt*.
    RecheckFailed {
        /// The victim chosen during the selection phase.
        victim: CoreId,
    },
    /// The filter still held but the steal policy selected no thread (e.g.
    /// every remaining thread of the victim is its running thread).
    NothingToSteal {
        /// The victim chosen during the selection phase.
        victim: CoreId,
    },
}

impl StealOutcome {
    /// Returns `true` if threads were migrated.
    pub fn is_success(&self) -> bool {
        matches!(self, StealOutcome::Stole { .. })
    }

    /// Returns `true` if a steal was *attempted* (a victim had been chosen)
    /// but nothing was migrated — the paper's notion of a failure.
    pub fn is_failure(&self) -> bool {
        matches!(self, StealOutcome::RecheckFailed { .. } | StealOutcome::NothingToSteal { .. })
    }

    /// The victim this attempt targeted, if a victim was chosen at all.
    pub fn victim(&self) -> Option<CoreId> {
        match self {
            StealOutcome::Stole { victim, .. }
            | StealOutcome::RecheckFailed { victim }
            | StealOutcome::NothingToSteal { victim } => Some(*victim),
            StealOutcome::NoCandidates => None,
        }
    }

    /// Number of threads migrated by this attempt.
    pub fn nr_stolen(&self) -> usize {
        match self {
            StealOutcome::Stole { tasks, .. } => tasks.len(),
            _ => 0,
        }
    }
}

/// One core's complete pass through the three steps of Figure 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalanceAttempt {
    /// The core that initiated the balancing (it may or may not be idle:
    /// "load balancing operations are performed simultaneously on all cores",
    /// §3.1).
    pub thief: CoreId,
    /// Logical time (index in the round's interleaving) of the selection
    /// phase, i.e. when the optimistic snapshot was taken.
    pub select_time: usize,
    /// Logical time of the stealing phase.
    pub steal_time: usize,
    /// Cores that passed the filter (step 1), in id order.
    pub candidates: Vec<CoreId>,
    /// Core chosen among the candidates (step 2), if any.
    pub chosen: Option<CoreId>,
    /// What happened during the stealing phase (step 3).
    pub outcome: StealOutcome,
}

impl BalanceAttempt {
    /// Returns `true` if this attempt migrated at least one thread.
    pub fn is_success(&self) -> bool {
        self.outcome.is_success()
    }

    /// Returns `true` if this attempt chose a victim but failed to steal.
    pub fn is_failure(&self) -> bool {
        self.outcome.is_failure()
    }
}

/// Everything that happened during one load-balancing round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundReport {
    /// One entry per core that executed its balancing operation this round,
    /// ordered by stealing-phase time.
    pub attempts: Vec<BalanceAttempt>,
}

impl RoundReport {
    /// Attempts that migrated threads.
    pub fn successes(&self) -> impl Iterator<Item = &BalanceAttempt> {
        self.attempts.iter().filter(|a| a.is_success())
    }

    /// Attempts that chose a victim but migrated nothing.
    pub fn failures(&self) -> impl Iterator<Item = &BalanceAttempt> {
        self.attempts.iter().filter(|a| a.is_failure())
    }

    /// Number of successful attempts.
    pub fn nr_successes(&self) -> usize {
        self.successes().count()
    }

    /// Number of failed attempts.
    pub fn nr_failures(&self) -> usize {
        self.failures().count()
    }

    /// Total number of threads migrated during the round.
    pub fn nr_stolen(&self) -> usize {
        self.attempts.iter().map(|a| a.outcome.nr_stolen()).sum()
    }

    /// Returns `true` if no thread moved during the round.
    pub fn is_quiescent(&self) -> bool {
        self.nr_stolen() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attempt(thief: usize, outcome: StealOutcome) -> BalanceAttempt {
        BalanceAttempt {
            thief: CoreId(thief),
            select_time: 0,
            steal_time: 1,
            candidates: vec![],
            chosen: outcome.victim(),
            outcome,
        }
    }

    #[test]
    fn outcome_classification() {
        let stole = StealOutcome::Stole { victim: CoreId(1), tasks: vec![TaskId(0)] };
        let none = StealOutcome::NoCandidates;
        let recheck = StealOutcome::RecheckFailed { victim: CoreId(1) };
        let empty = StealOutcome::NothingToSteal { victim: CoreId(1) };

        assert!(stole.is_success() && !stole.is_failure());
        assert!(!none.is_success() && !none.is_failure());
        assert!(!recheck.is_success() && recheck.is_failure());
        assert!(!empty.is_success() && empty.is_failure());

        assert_eq!(stole.nr_stolen(), 1);
        assert_eq!(recheck.nr_stolen(), 0);
        assert_eq!(none.victim(), None);
        assert_eq!(empty.victim(), Some(CoreId(1)));
    }

    #[test]
    fn round_report_counts() {
        let report = RoundReport {
            attempts: vec![
                attempt(0, StealOutcome::Stole { victim: CoreId(2), tasks: vec![TaskId(5)] }),
                attempt(1, StealOutcome::RecheckFailed { victim: CoreId(2) }),
                attempt(2, StealOutcome::NoCandidates),
            ],
        };
        assert_eq!(report.nr_successes(), 1);
        assert_eq!(report.nr_failures(), 1);
        assert_eq!(report.nr_stolen(), 1);
        assert!(!report.is_quiescent());
    }

    #[test]
    fn empty_round_is_quiescent() {
        assert!(RoundReport::default().is_quiescent());
    }
}
