//! Read-only load snapshots used by the lock-less selection phase.
//!
//! "In our model, the selection phase may not modify runqueues, and all
//! accesses to shared variables must be read-only." (§3.1)  This module
//! enforces that constraint *by construction*: filter and choice policies
//! only ever see [`CoreSnapshot`] values, which carry no reference back to
//! the mutable [`crate::SystemState`], so they cannot modify any runqueue.
//!
//! Because the selection phase is optimistic, a snapshot may be stale by the
//! time the stealing phase runs; the balancer re-checks the filter against
//! the live state before migrating (Listing 1, line 12).

use sched_topology::NodeId;

use crate::core_state::CoreState;
use crate::load::LoadMetric;
use crate::system::SystemState;
use crate::tracker::round_scaled;
use crate::CoreId;

/// An immutable observation of one core, taken during the selection phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreSnapshot {
    /// Core the observation describes.
    pub id: CoreId,
    /// NUMA node of the core.
    pub node: NodeId,
    /// Number of threads observed (current plus runqueue).
    pub nr_threads: u64,
    /// Weighted load observed.
    pub weighted_load: u64,
    /// Weight of the lightest thread waiting in the runqueue, if any.
    ///
    /// Weighted filters need this to guarantee that stealing the lightest
    /// waiting thread still strictly reduces the weighted imbalance (the P2
    /// potential argument of §4.3).
    pub lightest_ready_weight: Option<u64>,
    /// The tracker-maintained load average observed, scaled by
    /// [`crate::tracker::TRACK_SCALE`] (see [`crate::tracker`]).
    pub tracked_scaled: u64,
    /// Number of the observed threads parked in the core's shared overflow
    /// injector (zero on substrates without one — the model, the simulator
    /// and the mutex runqueues).
    ///
    /// Injector residents are already counted in `nr_threads` /
    /// `weighted_load`; this field only exposes *where* they sit.  Deep
    /// injectors are the cheapest steal source there is — a thief claims a
    /// whole batch under one uncontended lock round-trip instead of racing
    /// CASes on a hot ring — so injector-aware choice policies prefer such
    /// victims at equal distance.
    pub injected: u64,
}

impl CoreSnapshot {
    /// Captures a snapshot of `core`.
    pub fn capture(core: &CoreState) -> Self {
        CoreSnapshot {
            id: core.id,
            node: core.node,
            nr_threads: core.nr_threads(),
            weighted_load: core.weighted_load(),
            lightest_ready_weight: core.lightest_ready_weight().map(|w| w.raw()),
            tracked_scaled: core.tracked.scaled,
            injected: 0,
        }
    }

    /// Load of the observed core under the given metric.
    pub fn load(&self, metric: LoadMetric) -> u64 {
        match metric {
            LoadMetric::NrThreads => self.nr_threads,
            LoadMetric::Weighted => self.weighted_load,
            LoadMetric::Tracked => round_scaled(self.tracked_scaled),
        }
    }

    /// Returns `true` if the observed core looked idle.
    pub fn is_idle(&self) -> bool {
        self.nr_threads == 0
    }

    /// Returns `true` if the observed core looked overloaded.
    pub fn is_overloaded(&self) -> bool {
        self.nr_threads >= 2
    }
}

/// An immutable observation of every core, taken during the selection phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemSnapshot {
    cores: Vec<CoreSnapshot>,
}

impl SystemSnapshot {
    /// Captures a snapshot of every core of `system`.
    pub fn capture(system: &SystemState) -> Self {
        SystemSnapshot { cores: system.cores().iter().map(CoreSnapshot::capture).collect() }
    }

    /// The observation of one core.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core(&self, id: CoreId) -> &CoreSnapshot {
        &self.cores[id.0]
    }

    /// All observations, in id order.
    pub fn cores(&self) -> &[CoreSnapshot] {
        &self.cores
    }

    /// Number of observed cores.
    pub fn nr_cores(&self) -> usize {
        self.cores.len()
    }

    /// Observations of every core except `thief`, in id order.
    ///
    /// This is the "All cores" input of Figure 1's step 1.
    pub fn others(&self, thief: CoreId) -> Vec<CoreSnapshot> {
        self.cores.iter().filter(|c| c.id != thief).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_loads_at_capture_time() {
        let mut system = SystemState::from_loads(&[0, 3]);
        let snap = SystemSnapshot::capture(&system);
        assert!(snap.core(CoreId(0)).is_idle());
        assert!(snap.core(CoreId(1)).is_overloaded());
        assert_eq!(snap.core(CoreId(1)).nr_threads, 3);

        // Mutating the system afterwards does not affect the snapshot:
        // the selection phase works on stale, optimistic data.
        let t = system.core(CoreId(1)).task_ids()[1];
        system.migrate(CoreId(1), CoreId(0), t);
        assert_eq!(snap.core(CoreId(1)).nr_threads, 3);
        assert_eq!(system.core(CoreId(1)).nr_threads(), 2);
    }

    #[test]
    fn others_excludes_the_thief() {
        let system = SystemState::from_loads(&[1, 1, 1]);
        let snap = SystemSnapshot::capture(&system);
        let others = snap.others(CoreId(1));
        assert_eq!(others.len(), 2);
        assert!(others.iter().all(|c| c.id != CoreId(1)));
    }

    #[test]
    fn snapshot_load_respects_metric() {
        let system = SystemState::from_loads(&[2]);
        let snap = SystemSnapshot::capture(&system);
        assert_eq!(snap.core(CoreId(0)).load(LoadMetric::NrThreads), 2);
        assert_eq!(snap.core(CoreId(0)).load(LoadMetric::Weighted), 2048);
        assert_eq!(snap.nr_cores(), 1);
    }
}
