//! JSON emission: the writer behind `BENCH_results.json`.
//!
//! Hand-rolls the one JSON shape the harness emits: an object with a small
//! header and an array of flat record objects.  Strings are escaped per
//! RFC 8259; floats are emitted with enough precision to round-trip the
//! measurements.  The matching reader lives in [`crate::read`], and the
//! crate-level tests pin the round-trip.

use std::fmt::Write as _;

/// A JSON value restricted to what experiment records need.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (emitted without a fraction).
    Int(i64),
    /// A float (emitted via Rust's shortest round-trip formatting, which
    /// never uses exponent notation and re-parses to the same bits;
    /// NaN/inf → null).
    Float(f64),
    /// A string (escaped on emission).
    Str(String),
    /// An ordered object.
    Object(Vec<(String, JsonValue)>),
    /// An array.
    Array(Vec<JsonValue>),
}

impl JsonValue {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    /// Renders the value as indented JSON (two spaces per level).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Object(fields) => {
                write_items(out, depth, pretty, '{', '}', fields.iter(), |out, (k, v)| {
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, depth + 1, pretty);
                });
            }
            JsonValue::Array(items) => {
                write_items(out, depth, pretty, '[', ']', items.iter(), |out, v| {
                    v.write(out, depth + 1, pretty);
                });
            }
        }
    }
}

fn write_items<T>(
    out: &mut String,
    depth: usize,
    pretty: bool,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T),
) {
    if items.len() == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    let indent = "  ".repeat(depth + 1);
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            out.push_str(&indent);
        }
        write_item(out, item);
    }
    if pretty {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: an object from key/value pairs.
pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_nesting() {
        let v = object(vec![
            ("name", JsonValue::Str("quote \" slash \\ tab \t".into())),
            ("n", JsonValue::Int(-3)),
            ("x", JsonValue::Float(0.25)),
            ("none", JsonValue::Null),
            ("arr", JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Int(2)])),
        ]);
        let text = v.render();
        assert_eq!(
            text,
            "{\"name\":\"quote \\\" slash \\\\ tab \\t\",\"n\":-3,\"x\":0.25,\"none\":null,\"arr\":[true,2]}"
        );
    }

    #[test]
    fn floats_round_trip_without_truncation() {
        // Absolute-precision truncation (`{v:.6}`) would turn these into 0.
        let tiny = 4.2e-9;
        let rendered = JsonValue::Float(tiny).render();
        assert_eq!(rendered.parse::<f64>().unwrap(), tiny);
        assert!(!rendered.contains(['e', 'E']), "JSON-safe plain decimal: {rendered}");
    }

    #[test]
    fn pretty_rendering_is_indented_and_balanced() {
        let v = object(vec![("a", JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Int(2)]))]);
        let text = v.render_pretty();
        assert!(text.contains("\n  \"a\": [\n    1,\n    2\n  ]\n"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::Array(vec![]).render_pretty(), "[]\n");
        assert_eq!(object(vec![]).render(), "{}");
    }
}
