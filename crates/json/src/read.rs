//! JSON parsing: the reader behind the bench-regression gate.
//!
//! A small recursive-descent parser covering exactly the JSON the
//! [`crate::write`] writer emits (objects, arrays, strings with escapes,
//! f64 numbers, booleans, null) — kept in the same crate as the writer so
//! the two can never disagree on encoding.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, kept as `f64` (the gate only does arithmetic on floats).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is irrelevant to the gate.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => return Err(format!("expected , or }} got {other:?} at {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected , or ] got {other:?} at {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?} at {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the writer only emits valid UTF-8).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().ok_or("truncated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_harness_document_shape() {
        let doc = parse(
            r#"{"paper": "x", "schema_version": 2,
                "records": [{"experiment": "e1", "throughput": 72158.8281,
                             "convergence_rounds": null, "ok": true,
                             "per_node_violating_idle": [0.5, 0.0]}]}"#,
        )
        .unwrap();
        assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(2.0));
        let rec = &doc.get("records").unwrap().as_array().unwrap()[0];
        assert_eq!(rec.get("experiment").and_then(Json::as_str), Some("e1"));
        assert!(rec.get("throughput").and_then(Json::as_f64).unwrap() > 72158.0);
        assert_eq!(rec.get("convergence_rounds"), Some(&Json::Null));
        assert_eq!(rec.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(rec.get("per_node_violating_idle").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn parses_escapes_and_negative_exponents() {
        let doc = parse(r#"{"s": "a\"b\\c\nd", "n": -1.5e-3}"#).unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a\"b\\c\nd"));
        assert!((doc.get("n").and_then(Json::as_f64).unwrap() + 0.0015).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse("nul").is_err());
    }
}
