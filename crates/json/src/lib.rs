//! Shared offline JSON codec for the experiment harness.
//!
//! The workspace builds with no network access, so instead of `serde` this
//! crate hand-rolls exactly the JSON the harness needs — and, crucially, it
//! holds **both directions in one place**: the writer the `experiments
//! --json` runner emits `BENCH_results.json` with ([`JsonValue`]) and the
//! reader the `xtask bench-diff` regression gate parses it back with
//! ([`parse`]).  Keeping encoder and decoder in a single crate means the
//! gate and the runner can never disagree on encoding details (escaping,
//! float formatting, nesting) — the round-trip is pinned by tests here
//! rather than by two hand-rolled implementations drifting apart.

pub mod read;
pub mod write;

pub use read::{parse, Json};
pub use write::{object, JsonValue};

/// Schema version of the `BENCH_results.json` document.
///
/// Lives here — next to the codec both the writer (`sched-bench`) and the
/// gate (`xtask bench-diff`) share — so the two sides can never disagree
/// about what a version means.
///
/// * v2: per-level steal counts, `remote_steal_rate`, per-node idle.
/// * v3: per-record `tracker` (load criterion).
/// * v4: per-record `rq_backend` (runqueue discipline: `mutex` vs the
///   lock-free `deque`) and `p99_sched_latency_us` (the reactivity SLO the
///   gate's absolute p99 ceiling applies to; `null` on backends without a
///   latency recorder).
/// * v5: per-record `steal_batch_k` (the E23 batch-size sweep point:
///   `"1"`, `"2"`, `"4"`, `"8"`, `"half"`) and `tasks_per_acquisition`
///   (threads migrated per successful steal acquisition — exactly 1.0 at
///   `k = 1`, above it when batching amortises; the gate compares it
///   relatively).  Both `null` outside the batch sweep.
/// * v6: per-record `sim_engine` (`"tick"` for the cycle-accurate
///   simulator, `"event"` for the event-driven one) and
///   `events_processed` (events the engine handled before finishing or
///   exhausting the scenario's event budget; the gate compares it
///   relatively).  Both `null` on non-simulator backends.
/// * v7: optional per-record `final_loads` (the final per-core thread
///   counts the invariant checks run against), emitted only when the
///   harness is invoked with `--full-records`; the key is omitted
///   entirely — not `null` — on default runs, so default documents keep
///   their v6 shape byte for byte.
/// * v8: per-record `e2e_p99_us` and `e2e_p999_us` — measured wall-clock
///   end-to-end request latency (submit to completion) on the real
///   work-stealing executor under open-loop arrivals (the E26 ladder; the
///   gate's absolute `--p99-ceiling-us` applies to both).  `null` on
///   every backend except `exec`.
pub const SCHEMA_VERSION: i64 = 8;

/// The identity of one `BENCH_results.json` record.
///
/// Both sides of the pipeline key records the same way: the `sched-bench`
/// catalog-parity tests match committed records against declarative
/// scenario documents with it, and the `xtask bench-diff` gate pairs
/// baseline and current runs (and rejects duplicate keys) with it.  Living
/// here, next to the codec, the two ends can never drift apart on what
/// makes a record unique.
#[must_use]
pub fn record_key(experiment: &str, scenario: &str, backend: &str) -> String {
    format!("{experiment} | {scenario} | {backend}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The property the two halves of this crate exist to guarantee: every
    /// document the writer can produce is parsed back by the reader into
    /// the same values.
    #[test]
    fn writer_output_round_trips_through_the_reader() {
        let doc = object(vec![
            ("schema_version", JsonValue::Int(3)),
            ("name", JsonValue::Str("quote \" slash \\ tab \t newline \n".into())),
            ("tiny", JsonValue::Float(4.2e-9)),
            ("neg", JsonValue::Int(-17)),
            ("none", JsonValue::Null),
            (
                "records",
                JsonValue::Array(vec![
                    JsonValue::Bool(true),
                    JsonValue::Float(0.25),
                    object(vec![("nested", JsonValue::Array(vec![]))]),
                ]),
            ),
        ]);
        for rendered in [doc.render(), doc.render_pretty()] {
            let parsed = parse(&rendered).expect("writer output must parse");
            assert_eq!(parsed.get("schema_version").and_then(Json::as_f64), Some(3.0));
            assert_eq!(
                parsed.get("name").and_then(Json::as_str),
                Some("quote \" slash \\ tab \t newline \n")
            );
            assert_eq!(parsed.get("tiny").and_then(Json::as_f64), Some(4.2e-9));
            assert_eq!(parsed.get("neg").and_then(Json::as_f64), Some(-17.0));
            assert_eq!(parsed.get("none"), Some(&Json::Null));
            let records = parsed.get("records").and_then(Json::as_array).unwrap();
            assert_eq!(records[0], Json::Bool(true));
            assert_eq!(records[1].as_f64(), Some(0.25));
        }
    }

    #[test]
    fn non_finite_floats_round_trip_as_null() {
        let rendered = JsonValue::Float(f64::NAN).render();
        assert_eq!(parse(&rendered).unwrap(), Json::Null);
    }
}
