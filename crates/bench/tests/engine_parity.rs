//! Tick-vs-event engine parity, pinned exactly.
//!
//! The event-driven engine is an *optimisation*, not a different model:
//! under the default priority tie-break it must reproduce the cycle-accurate
//! tick engine's results bit for bit — same completion, same operation
//! count, same makespan, same migration and failure counts, same idle and
//! latency accounting.  Two legs pin that claim:
//!
//! * a **catalog sweep** over every sim-compatible E1–E16 scenario — the
//!   replay and workload shapes the paper's experiments actually run;
//! * a **property leg** over random small replay specs, so the parity does
//!   not silently hold only on the hand-picked catalog shapes.
//!
//! Equality here is `assert_eq!`, not a tolerance: both engines are
//! deterministic, so any divergence is an ordering or decay bug in one of
//! them, found at the exact scenario that triggers it.

use proptest::prelude::*;

use sched_bench::{run_sim_result, ExperimentId, ExperimentSpec, PolicySpec, SimEngine, TopoSpec};

/// Runs `spec` on both engines and asserts exact result parity.  Returns
/// `false` when the simulator declines the spec (storm or batch shapes).
fn engines_agree(spec: &ExperimentSpec) -> bool {
    let Some(tick) = run_sim_result(SimEngine::Tick, spec) else {
        return false;
    };
    let event = run_sim_result(SimEngine::Event, spec).expect("engines decline the same specs");
    let name = &spec.scenario;
    assert_eq!(tick.finished, event.finished, "{name}: completion diverged");
    assert_eq!(tick.operations, event.operations, "{name}: operation counts diverged");
    assert_eq!(tick.makespan_ns, event.makespan_ns, "{name}: makespans diverged");
    assert_eq!(
        tick.balance.migrations, event.balance.migrations,
        "{name}: migration counts diverged"
    );
    assert_eq!(tick.balance.failures, event.balance.failures, "{name}: failure counts diverged");
    assert_eq!(
        tick.violating_idle_fraction(),
        event.violating_idle_fraction(),
        "{name}: violating-idle accounting diverged"
    );
    for q in [0.5, 0.99, 1.0] {
        assert_eq!(
            tick.latency.quantile(q),
            event.latency.quantile(q),
            "{name}: p{} scheduling latency diverged",
            q * 100.0
        );
    }
    true
}

/// The catalog sweep: every sim-compatible E1–E16 scenario, exact parity.
#[test]
fn the_catalogued_e1_to_e16_scenarios_agree_across_engines() {
    let first_sixteen: Vec<ExperimentId> = ExperimentId::all().into_iter().take(16).collect();
    assert_eq!(first_sixteen.last(), Some(&ExperimentId::E16));
    let mut checked = 0;
    for spec in sched_bench::catalog() {
        if first_sixteen.contains(&spec.id) && engines_agree(&spec) {
            checked += 1;
        }
    }
    assert_eq!(checked, 16, "every E1-E16 scenario is sim-compatible and must be swept");
}

proptest! {
    /// The property leg: random small replay imbalances agree exactly too.
    #[test]
    fn random_replay_specs_agree_across_engines(
        loads in prop::collection::vec(0usize..5, 2..8),
        hot in 0usize..8,
        steal_half in any::<bool>(),
    ) {
        let mut loads = loads;
        let slot = hot % loads.len();
        loads[slot] += 2 * loads.len(); // one hot core, so balancing has work to do
        let cores = loads.len();
        let policy = if steal_half { PolicySpec::StealHalf } else { PolicySpec::Listing1 };
        let spec = ExperimentSpec::builder(ExperimentId::E1, "random replay parity")
            .loads(loads)
            .topo(TopoSpec::Flat(cores))
            .policy(policy)
            .budget_rounds(8 * cores + 256)
            .build()
            .expect("random replay specs are valid");
        prop_assert!(engines_agree(&spec));
    }
}
