//! The experiment catalog, loaded from declarative scenario documents.
//!
//! Every catalogued experiment lives in `experiments/eN.scn` at the
//! workspace root: a [`ScenarioDoc`] embedding the scenario's topology,
//! load vector, policy (named or an inline DSL program), backend matrix,
//! arrival driver and expected-invariant block.  This module is the bridge
//! between those documents and the executable [`ExperimentSpec`]s of
//! [`crate::runner`]:
//!
//! * [`builtin`] parses the embedded copies of the workspace documents
//!   (compiled in with `include_str!`, so the binary needs no filesystem)
//!   into [`LoadedScenario`]s — the catalog every harness entry point runs;
//! * [`load_dir`]/[`load_str`] load *external* documents at runtime, which
//!   is how `experiments --scenarios DIR` and the fuzzer's repro files
//!   execute scenarios that were never compiled in;
//! * [`from_doc`]/[`to_doc`] convert one scenario each way; conversion into
//!   a spec funnels through [`ExperimentSpec::builder`], so a document
//!   cannot express a combination the builder would reject.
//!
//! The expected-invariant block (`expect { … }`) is carried on the
//! [`LoadedScenario`], not the spec: invariants are claims *about* a run,
//! checked by [`crate::fuzz`] after the fact, not inputs to it.

use std::path::Path;

use sched_dsl::{
    DocBatch, DocDriver, DocInvariant, DocPolicy, DocService, DocTopology, ScenarioDoc,
};
use sched_exec::ServiceMix;

use crate::experiments::ExperimentId;
use crate::runner::{
    BatchK, BurstSpec, Driver, ExperimentSpec, OpenLoopDriverSpec, PolicySpec, SpecError,
    StormSpec, TopoSpec, WorkloadKind, WorkloadSpec,
};

/// One scenario as loaded from a document: the parsed document (carrying
/// the name, backend matrix and expected invariants) plus the validated,
/// executable spec built from it.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedScenario {
    /// The declarative form, as parsed.
    pub doc: ScenarioDoc,
    /// The executable form, validated by [`ExperimentSpec::builder`].
    pub spec: ExperimentSpec,
}

impl LoadedScenario {
    /// The invariants this scenario's records are expected to satisfy.
    pub fn expectations(&self) -> &[DocInvariant] {
        &self.doc.expect
    }
}

/// The embedded sources of the builtin catalog, one `(file name, source)`
/// pair per experiment, in index order.  These are compiled-in copies of
/// the workspace's `experiments/*.scn` files.
pub fn builtin_sources() -> Vec<(&'static str, &'static str)> {
    macro_rules! sources {
        ($($name:literal),* $(,)?) => {
            vec![$(($name, include_str!(concat!("../../../experiments/", $name)))),*]
        };
    }
    sources![
        "e1.scn", "e2.scn", "e3.scn", "e4.scn", "e5.scn", "e6.scn", "e7.scn", "e8.scn", "e9.scn",
        "e10.scn", "e11.scn", "e12.scn", "e13.scn", "e14.scn", "e15.scn", "e16.scn", "e17.scn",
        "e18.scn", "e19.scn", "e20.scn", "e21.scn", "e22.scn", "e23.scn", "e24.scn", "e25.scn",
        "e26.scn",
    ]
}

/// Parses the builtin catalog.  Panics if an embedded document is invalid —
/// the workspace's own scenario files are part of the build, and a broken
/// one is a build defect, not a runtime condition.
pub fn builtin() -> Vec<LoadedScenario> {
    builtin_sources()
        .into_iter()
        .flat_map(|(name, source)| {
            load_str(source, name).unwrap_or_else(|e| panic!("builtin scenario {name}: {e}"))
        })
        .collect()
}

/// The catalogued specs, in catalog order — the unified runner's input.
pub fn catalog() -> Vec<ExperimentSpec> {
    builtin().into_iter().map(|s| s.spec).collect()
}

/// The first catalogued spec of one experiment (E17/E21/E23 have several;
/// use [`specs_of`] for the full sweep).
pub fn spec(id: ExperimentId) -> ExperimentSpec {
    specs_of(id).into_iter().next().expect("catalogued experiment")
}

/// Every catalogued spec of one experiment, in catalog order.
pub fn specs_of(id: ExperimentId) -> Vec<ExperimentSpec> {
    catalog().into_iter().filter(|s| s.id == id).collect()
}

/// Parses scenario documents from `source` (one or more `scenario` blocks)
/// and validates each into a spec.  `origin` labels errors.
pub fn load_str(source: &str, origin: &str) -> Result<Vec<LoadedScenario>, SpecError> {
    let docs =
        sched_dsl::parse_doc(source).map_err(|e| SpecError::new(format!("{origin}: {e}")))?;
    let mut loaded = Vec::with_capacity(docs.len());
    for doc in docs {
        let spec = from_doc(&doc).map_err(|e| SpecError::new(format!("{origin}: {e}")))?;
        let duplicate = loaded
            .iter()
            .any(|prior: &LoadedScenario| prior.spec.id == spec.id && prior.doc.name == doc.name);
        if duplicate {
            // Records are keyed `experiment | scenario | backend`; two
            // scenarios with the same key would collide silently in the
            // bench-diff gate.
            return Err(SpecError::new(format!(
                "{origin}: duplicate scenario `{}` for {:?}",
                doc.name, spec.id
            )));
        }
        loaded.push(LoadedScenario { doc, spec });
    }
    Ok(loaded)
}

/// Loads every `*.scn` document in `dir` (sorted by file name).
pub fn load_dir(dir: &Path) -> Result<Vec<LoadedScenario>, SpecError> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| SpecError::new(format!("{}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
        .collect();
    paths.sort();
    let mut loaded = Vec::new();
    for path in paths {
        let source = std::fs::read_to_string(&path)
            .map_err(|e| SpecError::new(format!("{}: {e}", path.display())))?;
        loaded.extend(load_str(&source, &path.display().to_string())?);
    }
    Ok(loaded)
}

/// Builds the executable spec one document describes.  All structural
/// validation funnels through [`ExperimentSpec::builder`].
pub fn from_doc(doc: &ScenarioDoc) -> Result<ExperimentSpec, SpecError> {
    let name = &doc.name;
    let id = ExperimentId::parse(&doc.experiment).ok_or_else(|| {
        SpecError::new(format!("{name}: unknown experiment `{}`", doc.experiment))
    })?;
    let topo = match doc.topology {
        DocTopology::Flat(cores) => TopoSpec::Flat(cores as usize),
        DocTopology::DualSocket => TopoSpec::DualSocket,
        DocTopology::EightNode => TopoSpec::EightNode,
    };
    let policy = policy_from_doc(name, &doc.policy)?;
    let driver = driver_from_doc(name, &doc.driver)?;

    let mut builder = ExperimentSpec::builder(id, doc.name.clone())
        .loads(doc.loads.iter().map(|&l| l as usize).collect())
        .topo(topo)
        .policy(policy)
        .driver(driver)
        .budget_rounds(doc.budget as usize)
        .mixed_nice(doc.mixed_nice);
    if let Some(batch) = doc.batch {
        builder = builder.batch(match batch {
            DocBatch::Fixed(k) if k >= 1 => BatchK::Fixed(k as usize),
            DocBatch::Fixed(k) => {
                return Err(SpecError::new(format!("{name}: batch size {k} must be at least 1")))
            }
            DocBatch::Half => BatchK::HalfImbalance,
        });
    }
    if let Some(backends) = &doc.backends {
        builder = builder.backends(backends.clone());
    }
    if let Some(events) = doc.events {
        builder = builder.events(events);
    }
    if let Some(order) = doc.order {
        builder = builder.order(order);
    }
    builder.build()
}

fn policy_from_doc(scenario: &str, policy: &DocPolicy) -> Result<PolicySpec, SpecError> {
    let named = match policy {
        DocPolicy::Inline(def) => return Ok(PolicySpec::Dsl(def.clone())),
        DocPolicy::Named { name, arg } => match (name.as_str(), arg) {
            ("listing1", None) => PolicySpec::Listing1,
            ("greedy", None) => PolicySpec::Greedy,
            ("weighted", None) => PolicySpec::Weighted,
            ("steal_half", None) => PolicySpec::StealHalf,
            ("numa_aware", None) => PolicySpec::NumaAware,
            ("topo_aware", None) => PolicySpec::TopoAware,
            ("hierarchical", None) => PolicySpec::Hierarchical,
            ("pelt", None) => PolicySpec::Pelt,
            ("pelt_weighted", None) => PolicySpec::PeltWeighted,
            ("pelt_half_life", Some(ms)) if (1..=3_600_000).contains(ms) => {
                PolicySpec::PeltHalfLife(*ms as u32)
            }
            ("pelt_half_life", arg) => {
                return Err(SpecError::new(format!(
                    "{scenario}: pelt_half_life needs a half-life in milliseconds, got {arg:?}"
                )))
            }
            (other, Some(arg)) => {
                return Err(SpecError::new(format!(
                    "{scenario}: policy `{other}` takes no argument (got {arg})"
                )))
            }
            (other, None) => {
                return Err(SpecError::new(format!(
                "{scenario}: unknown policy `{other}` (write an inline `policy {other} {{ … }}` \
                     block to define one)"
            )))
            }
        },
    };
    Ok(named)
}

fn driver_from_doc(scenario: &str, driver: &DocDriver) -> Result<Driver, SpecError> {
    Ok(match driver {
        DocDriver::Replay => Driver::Replay,
        DocDriver::Workload { kind, seed, jitter_pct } => {
            let kind = match kind.as_str() {
                "scientific" => WorkloadKind::Scientific,
                "oltp" => WorkloadKind::Oltp,
                "sleepers" => WorkloadKind::Sleepers,
                other => {
                    return Err(SpecError::new(format!(
                        "{scenario}: unknown workload `{other}` (scientific, oltp, sleepers)"
                    )))
                }
            };
            let mut spec = WorkloadSpec::new(kind);
            if let Some(seed) = seed {
                spec.seed = *seed;
            }
            if let Some(jitter) = jitter_pct {
                spec.jitter_pct = *jitter;
            }
            Driver::Workload(spec)
        }
        DocDriver::Burst { epochs, epoch_ns, warmup_ns, seed, jitter_pct } => {
            let mut spec = BurstSpec::new(*epochs as usize, *epoch_ns, *warmup_ns);
            if let Some(seed) = seed {
                spec.seed = *seed;
            }
            if let Some(jitter) = jitter_pct {
                spec.jitter_pct = *jitter;
            }
            Driver::Burst(spec)
        }
        DocDriver::Storm { epochs, fanout, rounds } => Driver::Storm(StormSpec {
            epochs: *epochs as usize,
            fanout: *fanout as usize,
            rounds_per_epoch: *rounds as usize,
        }),
        DocDriver::OpenLoop { rate_hz, duration_ms, service, seed } => {
            let service = match service {
                DocService::Fixed(ns) => ServiceMix::Fixed { ns: *ns },
                DocService::Exp(mean_ns) => ServiceMix::Exp { mean_ns: *mean_ns },
                // The document parser bounds the percentage to 0–100.
                DocService::Bimodal(short_ns, long_ns, long_pct) => ServiceMix::Bimodal {
                    short_ns: *short_ns,
                    long_ns: *long_ns,
                    long_pct: *long_pct as u8,
                },
            };
            let mut spec = OpenLoopDriverSpec::new(*rate_hz, *duration_ms, service);
            if let Some(seed) = seed {
                spec.seed = *seed;
            }
            Driver::OpenLoop(spec)
        }
    })
}

/// Renders one spec back into its declarative form, attaching `expect` as
/// the document's invariant block.  `from_doc(&to_doc(spec, _))` rebuilds
/// an equal spec — the regeneration path the builtin documents were
/// originally produced with.
pub fn to_doc(spec: &ExperimentSpec, expect: &[DocInvariant]) -> ScenarioDoc {
    let policy = match &spec.policy {
        PolicySpec::Listing1 => named("listing1"),
        PolicySpec::Greedy => named("greedy"),
        PolicySpec::Weighted => named("weighted"),
        PolicySpec::StealHalf => named("steal_half"),
        PolicySpec::NumaAware => named("numa_aware"),
        PolicySpec::TopoAware => named("topo_aware"),
        PolicySpec::Hierarchical => named("hierarchical"),
        PolicySpec::Pelt => named("pelt"),
        PolicySpec::PeltWeighted => named("pelt_weighted"),
        PolicySpec::PeltHalfLife(ms) => {
            DocPolicy::Named { name: "pelt_half_life".into(), arg: Some(i64::from(*ms)) }
        }
        PolicySpec::Dsl(def) => DocPolicy::Inline(def.clone()),
    };
    let driver = match spec.driver {
        Driver::Replay => DocDriver::Replay,
        Driver::Workload(w) => DocDriver::Workload {
            kind: match w.kind {
                WorkloadKind::Scientific => "scientific".into(),
                WorkloadKind::Oltp => "oltp".into(),
                WorkloadKind::Sleepers => "sleepers".into(),
            },
            seed: Some(w.seed),
            jitter_pct: Some(w.jitter_pct),
        },
        Driver::Burst(b) => DocDriver::Burst {
            epochs: b.epochs as u64,
            epoch_ns: b.epoch_ns,
            warmup_ns: b.warmup_ns,
            seed: Some(b.seed),
            jitter_pct: Some(b.jitter_pct),
        },
        Driver::Storm(s) => DocDriver::Storm {
            epochs: s.epochs as u64,
            fanout: s.fanout as u64,
            rounds: s.rounds_per_epoch as u64,
        },
        Driver::OpenLoop(o) => DocDriver::OpenLoop {
            rate_hz: o.rate_hz,
            duration_ms: o.duration_ms,
            service: match o.service {
                ServiceMix::Fixed { ns } => DocService::Fixed(ns),
                ServiceMix::Exp { mean_ns } => DocService::Exp(mean_ns),
                ServiceMix::Bimodal { short_ns, long_ns, long_pct } => {
                    DocService::Bimodal(short_ns, long_ns, u64::from(long_pct))
                }
            },
            seed: Some(o.seed),
        },
    };
    ScenarioDoc {
        name: spec.scenario.clone(),
        experiment: format!("{:?}", spec.id).to_ascii_lowercase(),
        topology: match spec.topo {
            TopoSpec::Flat(cores) => DocTopology::Flat(cores as u64),
            TopoSpec::DualSocket => DocTopology::DualSocket,
            TopoSpec::EightNode => DocTopology::EightNode,
        },
        loads: spec.loads.iter().map(|&l| l as u64).collect(),
        policy,
        backends: spec.backends.clone(),
        driver,
        budget: spec.budget_rounds as u64,
        events: spec.events,
        order: spec.order,
        batch: spec.batch.map(|b| match b {
            BatchK::Fixed(k) => DocBatch::Fixed(k as i64),
            BatchK::HalfImbalance => DocBatch::Half,
        }),
        mixed_nice: spec.mixed_nice,
        expect: expect.to_vec(),
    }
}

fn named(name: &str) -> DocPolicy {
    DocPolicy::Named { name: name.into(), arg: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PELT_HALF_LIFE_NS;
    use sched_workloads::{ImbalancePattern, StaticImbalance};

    /// The catalog as it was hardcoded before the declarative documents
    /// existed — the parity fixture the builtin `.scn` files are pinned
    /// against, spec for spec.  (This is also the source the documents were
    /// generated from; see `regenerate_builtin_documents`.)
    fn legacy_catalog() -> Vec<ExperimentSpec> {
        use ExperimentId::*;
        let build = |id,
                     scenario: &str,
                     loads: Vec<usize>,
                     topo,
                     policy,
                     driver,
                     budget: usize,
                     mixed: bool,
                     batch: Option<BatchK>| {
            let mut b = ExperimentSpec::builder(id, scenario)
                .loads(loads)
                .topo(topo)
                .policy(policy)
                .driver(driver)
                .budget_rounds(budget)
                .mixed_nice(mixed);
            if let Some(batch) = batch {
                b = b.batch(batch);
            }
            b.build().expect("legacy catalog specs are valid")
        };
        let replay = Driver::Replay;
        let mut specs = vec![
            build(
                E1,
                "choice-irrelevance: four hot cores of sixteen",
                vec![12, 0, 0, 0, 4, 0, 0, 0, 2, 0, 0, 0, 6, 0, 0, 0],
                TopoSpec::Flat(16),
                PolicySpec::Listing1,
                replay,
                256,
                false,
                None,
            ),
            build(
                E2,
                "listing1: all threads on core 0 of 8",
                vec![16, 0, 0, 0, 0, 0, 0, 0],
                TopoSpec::Flat(8),
                PolicySpec::Listing1,
                replay,
                128,
                false,
                None,
            ),
            build(
                E3,
                "lemma1 scope: three cores, loads [4,1,0]",
                vec![4, 1, 0],
                TopoSpec::Flat(3),
                PolicySpec::Listing1,
                replay,
                64,
                false,
                None,
            ),
            build(
                E4,
                "sequential WC: step imbalance on four cores",
                StaticImbalance::new(4, 8, ImbalancePattern::Step).loads(),
                TopoSpec::Flat(4),
                PolicySpec::Weighted,
                replay,
                64,
                false,
                None,
            ),
            build(
                E5,
                "greedy filter on the ping-pong-prone shape",
                vec![4, 1, 0, 0],
                TopoSpec::Flat(4),
                PolicySpec::Greedy,
                replay,
                64,
                false,
                None,
            ),
            build(
                E6,
                "contention: one hot core, seven thieves",
                vec![8, 0, 0, 0, 0, 0, 0, 0],
                TopoSpec::Flat(8),
                PolicySpec::Listing1,
                replay,
                128,
                false,
                None,
            ),
            build(
                E7,
                "potential drain: step imbalance, 8 cores 16 threads",
                StaticImbalance::new(8, 16, ImbalancePattern::Step).loads(),
                TopoSpec::Flat(8),
                PolicySpec::Listing1,
                replay,
                128,
                false,
                None,
            ),
            build(
                E8,
                "convergence at scale: 64 cores, single hot",
                StaticImbalance::new(64, 128, ImbalancePattern::SingleHot).loads(),
                TopoSpec::Flat(64),
                PolicySpec::StealHalf,
                replay,
                1024,
                false,
                None,
            ),
            build(
                E9,
                "scientific fork-join on the dual-socket server",
                {
                    let mut loads = vec![0; 16];
                    loads[0] = 16;
                    loads
                },
                TopoSpec::DualSocket,
                PolicySpec::Listing1,
                Driver::Workload(WorkloadSpec::new(WorkloadKind::Scientific)),
                256,
                false,
                None,
            ),
            build(
                E10,
                "OLTP on the dual-socket server",
                {
                    let mut loads = vec![0; 16];
                    for slot in loads.iter_mut().take(4) {
                        *slot = 8;
                    }
                    loads
                },
                TopoSpec::DualSocket,
                PolicySpec::Listing1,
                Driver::Workload(WorkloadSpec::new(WorkloadKind::Oltp)),
                256,
                false,
                None,
            ),
            build(
                E11,
                "lock-less overhead: every fourth core hot, 64 cores",
                (0..64).map(|i| if i % 4 == 0 { 6 } else { 0 }).collect(),
                TopoSpec::Flat(64),
                PolicySpec::Listing1,
                replay,
                512,
                false,
                None,
            ),
            build(
                E12,
                "hierarchical: one hot core per NUMA node",
                numa_loads(),
                TopoSpec::EightNode,
                PolicySpec::NumaAware,
                replay,
                512,
                false,
                None,
            ),
            build(
                E13,
                "DSL-compiled listing1: all threads on core 0 of 8",
                vec![16, 0, 0, 0, 0, 0, 0, 0],
                TopoSpec::Flat(8),
                PolicySpec::dsl_listing1(),
                replay,
                128,
                false,
                None,
            ),
            build(
                E14,
                "NUMA imbalance: node 0 saturated, node 1 idle",
                {
                    let mut loads = vec![0; 16];
                    for slot in loads.iter_mut().take(8) {
                        *slot = 4;
                    }
                    loads
                },
                TopoSpec::DualSocket,
                PolicySpec::TopoAware,
                replay,
                256,
                false,
                None,
            ),
            build(
                E15,
                "cross-node ping-pong bait: hot cores on distant nodes",
                distant_hot_loads(),
                TopoSpec::EightNode,
                PolicySpec::TopoAware,
                replay,
                512,
                false,
                None,
            ),
            build(
                E16,
                "hierarchical convergence: one hot core per NUMA node",
                numa_loads(),
                TopoSpec::EightNode,
                PolicySpec::Hierarchical,
                replay,
                512,
                false,
                None,
            ),
        ];
        for (policy, scenario) in [
            (PolicySpec::Listing1, "bursty on/off: instantaneous balancing"),
            (PolicySpec::Pelt, "bursty on/off: PELT balancing"),
        ] {
            specs.push(build(
                E17,
                scenario,
                vec![2; 8],
                TopoSpec::Flat(8),
                policy,
                Driver::Burst(BurstSpec::new(32, 1_000_000, 32 * PELT_HALF_LIFE_NS)),
                64,
                false,
                None,
            ));
        }
        specs.push(build(
            E18,
            "mixed niceness: PELT-decayed weighted balancing",
            StaticImbalance::new(8, 24, ImbalancePattern::SingleHot).loads(),
            TopoSpec::Flat(8),
            PolicySpec::PeltWeighted,
            replay,
            512,
            true,
            None,
        ));
        specs.push(build(
            E19,
            "tracker overhead: every fourth core hot, 64 cores",
            (0..64).map(|i| if i % 4 == 0 { 6 } else { 0 }).collect(),
            TopoSpec::Flat(64),
            PolicySpec::Pelt,
            replay,
            512,
            false,
            None,
        ));
        specs.push(build(
            E20,
            "steal-heavy fan-out: one producer core, fifteen thieves",
            fan_out_loads(64),
            TopoSpec::Flat(16),
            PolicySpec::Listing1,
            replay,
            256,
            false,
            None,
        ));
        for half_life_ms in [1u32, 4, 16, 64] {
            specs.push(build(
                E21,
                &format!("half-life sweep: pelt({half_life_ms}ms) vs 4ms bursts"),
                vec![2; 8],
                TopoSpec::Flat(8),
                PolicySpec::PeltHalfLife(half_life_ms),
                Driver::Burst(BurstSpec::new(32, 4_000_000, 32 * 64_000_000)),
                64,
                false,
                None,
            ));
        }
        specs.push(build(
            E22,
            "overflow storm: fan-out bursts on tiny rings",
            fan_out_loads(1),
            TopoSpec::Flat(16),
            PolicySpec::Listing1,
            Driver::Storm(StormSpec { epochs: 16, fanout: 24, rounds_per_epoch: 2 }),
            0,
            false,
            None,
        ));
        for batch in BatchK::SWEEP {
            specs.push(build(
                E23,
                &format!("batch sweep k={}: steal-heavy fan-out", batch.name()),
                fan_out_loads(64),
                TopoSpec::Flat(16),
                PolicySpec::Listing1,
                replay,
                256,
                false,
                Some(batch),
            ));
        }
        for batch in BatchK::SWEEP {
            specs.push(build(
                E23,
                &format!("batch sweep k={}: overflow storm", batch.name()),
                fan_out_loads(1),
                TopoSpec::Flat(16),
                PolicySpec::Listing1,
                Driver::Storm(StormSpec { epochs: 16, fanout: 24, rounds_per_epoch: 2 }),
                0,
                false,
                Some(batch),
            ));
        }
        // E24 carries builder clauses the closure above has no slots for
        // (a backend matrix and an event budget): a million mostly-sleeping
        // tasks on 256 flat cores, simulator engines only.  The budget is
        // sized so the event engine finishes (~2 events per sleeping task)
        // while the tick engine — 256 cores x 1ms timers across 20-second
        // sleeps — exhausts it and records the cap.
        specs.push(
            ExperimentSpec::builder(E24, "event engine at scale: 1M sleepers on 256 cores")
                .loads(vec![0; 256])
                .topo(TopoSpec::Flat(256))
                .policy(PolicySpec::Listing1)
                .driver(Driver::Workload(WorkloadSpec::new(WorkloadKind::Sleepers)))
                .budget_rounds(0)
                .backends(vec!["sim".into(), "sim-event".into()])
                .events(4_000_000)
                .build()
                .expect("legacy catalog specs are valid"),
        );
        // E25: the E22 storm re-shaped for the trace-only verdict.  The
        // fan-out (128) exceeds what fifteen one-task thieves can claim in
        // six rounds (90), so the injector never runs dry mid-epoch and a
        // conserving discipline's trace carries no suspicious failure
        // window; the spill baseline strands the same thieves for all six
        // rounds, which is past the checker's consecutive-failure
        // threshold.
        specs.push(build(
            E25,
            "trace-only detection: overflow storm under the sanity checker",
            fan_out_loads(1),
            TopoSpec::Flat(16),
            PolicySpec::Listing1,
            Driver::Storm(StormSpec { epochs: 8, fanout: 128, rounds_per_epoch: 6 }),
            0,
            false,
            None,
        ));
        // E26: the open-loop latency ladder on the real executor.  Three
        // rungs of rising offered rate, each far below the machine's
        // service capacity, so the measured p99/p999 is queueing-plus-
        // wakeup cost rather than overload collapse.  The load vector is
        // all-zero — every request arrives through the generator — and
        // the matrix names the executor alone, the only backend with OS
        // worker threads and a wall clock to measure against.
        for (rate_hz, service, rung) in [
            (2_000, ServiceMix::Fixed { ns: 3_000 }, "fixed 3us"),
            (6_000, ServiceMix::Exp { mean_ns: 4_000 }, "exp 4us"),
            (
                12_000,
                ServiceMix::Bimodal { short_ns: 2_000, long_ns: 20_000, long_pct: 5 },
                "bimodal 2us/20us/5%",
            ),
        ] {
            specs.push(
                ExperimentSpec::builder(E26, format!("open-loop ladder: {rate_hz}/s, {rung}"))
                    .loads(vec![0; 4])
                    .topo(TopoSpec::Flat(4))
                    .policy(PolicySpec::TopoAware)
                    .driver(Driver::OpenLoop(OpenLoopDriverSpec::new(rate_hz, 150, service)))
                    .budget_rounds(0)
                    .backends(vec!["exec".into()])
                    .build()
                    .expect("legacy catalog specs are valid"),
            );
        }
        specs
    }

    /// One hot core per NUMA node of the eight-node machine, holding the
    /// node's entire 2x-cores share.
    fn numa_loads() -> Vec<usize> {
        let topo = TopoSpec::EightNode.build();
        let mut loads = vec![0; topo.nr_cpus()];
        let per_node = 2 * topo.nr_cpus() / topo.nr_nodes();
        for node in 0..topo.nr_nodes() {
            loads[topo.cpus_of_node(sched_topology::NodeId(node))[0].0] = per_node;
        }
        loads
    }

    /// Hot cores on ring-distant nodes 0 and 4 of the eight-node machine.
    fn distant_hot_loads() -> Vec<usize> {
        let topo = TopoSpec::EightNode.build();
        let mut loads = vec![0; topo.nr_cpus()];
        let per_node = topo.nr_cpus() / topo.nr_nodes();
        for node in [0usize, 4] {
            loads[topo.cpus_of_node(sched_topology::NodeId(node))[0].0] = 2 * per_node;
        }
        loads
    }

    /// `n` threads on core 0 of a 16-core flat machine.
    fn fan_out_loads(n: usize) -> Vec<usize> {
        let mut loads = vec![0; 16];
        loads[0] = n;
        loads
    }

    /// The invariants each legacy scenario's records are expected to
    /// satisfy — the `expect` blocks of the generated documents.
    fn legacy_expectations(spec: &ExperimentSpec) -> Vec<DocInvariant> {
        // A sim-only scenario (E24) has no final residency to check:
        // simulator tasks run to completion, so only task conservation —
        // vacuously satisfied by design, checked by the ordering sweep's
        // finished/operations comparison instead — is claimed.
        // The same applies to the executor-only ladder (E26): its requests
        // run to completion, so `final_loads` stays empty and only the
        // vacuously-satisfied task conservation is claimed.
        if spec
            .backends
            .as_ref()
            .is_some_and(|b| b.iter().all(|x| x.starts_with("sim") || x == "exec"))
        {
            return vec![DocInvariant::ConservationOfTasks];
        }
        match spec.driver {
            // Storm epochs *measure* a conservation hole on the spill
            // baseline, and burst blips park tasks outside the system, so
            // only task conservation is claimed there.
            Driver::Storm(_) | Driver::Burst(_) => vec![DocInvariant::ConservationOfTasks],
            // The greedy filter is the refuted baseline: it may ping-pong
            // forever, so work conservation is deliberately not claimed.
            _ if spec.policy == PolicySpec::Greedy => {
                vec![DocInvariant::ConservationOfTasks, DocInvariant::NonInversion]
            }
            _ => vec![
                DocInvariant::WorkConservation,
                DocInvariant::ConservationOfTasks,
                DocInvariant::NonInversion,
            ],
        }
    }

    #[test]
    fn builtin_documents_reproduce_the_legacy_catalog_exactly() {
        let legacy = legacy_catalog();
        let loaded = builtin();
        assert_eq!(
            loaded.len(),
            legacy.len(),
            "the declarative catalog must have one scenario per legacy spec"
        );
        for (scenario, want) in loaded.iter().zip(&legacy) {
            assert_eq!(
                &scenario.spec, want,
                "scenario `{}` drifted from the legacy catalog",
                scenario.doc.name
            );
            assert!(
                !scenario.doc.expect.is_empty(),
                "scenario `{}` must claim at least one invariant",
                scenario.doc.name
            );
        }
    }

    #[test]
    fn catalog_covers_every_experiment() {
        let specs = catalog();
        assert_eq!(specs.len(), 41);
        let mut seen = std::collections::BTreeSet::new();
        for spec in &specs {
            assert!(
                seen.insert(format!("{:?}|{}", spec.id, spec.scenario)),
                "duplicate scenario {:?} `{}`",
                spec.id,
                spec.scenario
            );
            assert_eq!(
                spec.topo.build().nr_cpus(),
                spec.loads.len(),
                "{:?}: load vector must match the machine",
                spec.id
            );
            // A workload driver generates its threads itself, and an
            // open-loop stream arrives entirely through the generator;
            // every other driver replays the load vector, which must hold
            // some.
            assert!(
                spec.nr_threads() > 0
                    || matches!(spec.driver, Driver::Workload(_) | Driver::OpenLoop(_)),
                "{:?}: a scenario needs threads",
                spec.id
            );
        }
        let ids: std::collections::BTreeSet<String> =
            specs.iter().map(|s| format!("{:?}", s.id)).collect();
        assert_eq!(ids.len(), ExperimentId::all().len(), "every experiment is catalogued");
        let count = |id| specs.iter().filter(|s| s.id == id).count();
        assert_eq!(count(ExperimentId::E17), 2, "E17 sweeps two criteria");
        assert_eq!(count(ExperimentId::E21), 4, "E21 sweeps four half-lives");
        assert_eq!(count(ExperimentId::E23), 10, "E23 sweeps five batch sizes on two shapes");
        assert_eq!(count(ExperimentId::E24), 1, "E24 is the event-engine scaling scenario");
        assert_eq!(count(ExperimentId::E25), 1, "E25 is the trace-only detection storm");
        assert_eq!(count(ExperimentId::E26), 3, "E26 climbs three open-loop rungs");
        for spec in specs.iter().filter(|s| s.id == ExperimentId::E26) {
            assert_eq!(
                spec.backends.as_deref(),
                Some(&["exec".to_string()][..]),
                "E26 runs on the executor alone"
            );
            assert!(spec.driver.openloop().is_some(), "E26 rungs are open-loop");
        }
        for spec in specs.iter().filter(|s| s.id == ExperimentId::E24) {
            assert_eq!(
                spec.backends.as_deref(),
                Some(&["sim".to_string(), "sim-event".into()][..])
            );
            assert!(spec.events.is_some(), "E24 declares the event budget that caps the tick run");
        }
        for spec in specs.iter().filter(|s| s.id == ExperimentId::E23) {
            assert!(spec.batch.is_some(), "E23 specs carry a batch size");
        }
    }

    #[test]
    fn every_builtin_document_round_trips_through_to_doc() {
        for scenario in builtin() {
            let doc = to_doc(&scenario.spec, &scenario.doc.expect);
            let spec = from_doc(&doc).expect("regenerated documents stay valid");
            assert_eq!(spec, scenario.spec, "{}: to_doc changed the spec", scenario.doc.name);
        }
    }

    #[test]
    fn committed_results_match_the_declarative_catalog() {
        // The parity pin against the *records*: the committed
        // BENCH_results.json was produced by the hardcoded catalog; its
        // deterministic fields must be exactly what the declarative catalog
        // predicts, record for record, in order.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_results.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_results.json");
        let json = sched_json::parse(&text).expect("valid JSON");
        let records = json.get("records").and_then(|r| r.as_array()).expect("records array");

        let mut predicted: Vec<(String, String, String, String, String, usize)> = Vec::new();
        for spec in catalog() {
            // A declared backend matrix (E24: the sim engines only) wins;
            // otherwise the driver shape picks the default matrix.
            let backends: Vec<String> = if let Some(named) = &spec.backends {
                named.clone()
            } else if spec.driver.storm().is_some() {
                ["rq", "rq-deque", "rq-deque-tiny", "rq-deque-spill"]
                    .map(String::from)
                    .into_iter()
                    .collect()
            } else if spec.batch.is_some() {
                ["rq", "rq-deque"].map(String::from).into_iter().collect()
            } else {
                ["model", "sim", "sim-event", "rq", "rq-deque"]
                    .map(String::from)
                    .into_iter()
                    .collect()
            };
            let experiment = format!("{:?}", spec.id).to_ascii_lowercase();
            for backend in backends {
                predicted.push((
                    experiment.clone(),
                    spec.scenario.clone(),
                    backend,
                    spec.policy.name(),
                    spec.policy.tracker_name(),
                    spec.loads.len(),
                ));
            }
        }
        assert_eq!(records.len(), predicted.len(), "record count must match the catalog");
        for (record, want) in records.iter().zip(&predicted) {
            let field = |k: &str| record.get(k).and_then(|v| v.as_str()).unwrap_or_default();
            let got = (
                field("experiment").to_string(),
                field("scenario").to_string(),
                field("backend").to_string(),
                field("policy").to_string(),
                field("tracker").to_string(),
                record.get("cores").and_then(|v| v.as_f64()).unwrap_or_default() as usize,
            );
            assert_eq!(
                &got,
                want,
                "committed record {} diverges from the declarative catalog",
                sched_json::record_key(&want.0, &want.1, &want.2)
            );
        }
    }

    #[test]
    fn loader_rejects_duplicates_and_bad_documents() {
        let duplicate = r#"
scenario "twin" { experiment e2; topology flat(2); loads [2, 0]; policy listing1; budget 8; }
scenario "twin" { experiment e2; topology flat(2); loads [2, 0]; policy listing1; budget 8; }
"#;
        let err = load_str(duplicate, "test").unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");

        let unknown_policy =
            r#"scenario "x" { experiment e2; topology flat(2); loads [2, 0]; policy bogus; }"#;
        let err = load_str(unknown_policy, "test").unwrap_err();
        assert!(err.to_string().contains("unknown policy"), "{err}");

        let unknown_experiment =
            r#"scenario "x" { experiment e99; topology flat(2); loads [2, 0]; policy listing1; }"#;
        let err = load_str(unknown_experiment, "test").unwrap_err();
        assert!(err.to_string().contains("unknown experiment"), "{err}");

        let wrong_size =
            r#"scenario "x" { experiment e2; topology flat(4); loads [2, 0]; policy listing1; }"#;
        let err = load_str(wrong_size, "test").unwrap_err();
        assert!(err.to_string().contains("cores"), "{err}");
    }

    /// Regenerates `experiments/*.scn` from the legacy fixture.  Run once
    /// by hand (`cargo test -p sched-bench regenerate_builtin -- --ignored`)
    /// whenever the fixture changes; the parity tests above then pin the
    /// files.
    #[test]
    #[ignore = "writes the workspace scenario documents; run by hand"]
    fn regenerate_builtin_documents() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../experiments");
        std::fs::create_dir_all(root).expect("experiments directory");
        let legacy = legacy_catalog();
        for id in ExperimentId::all() {
            let docs: Vec<ScenarioDoc> = legacy
                .iter()
                .filter(|s| s.id == id)
                .map(|s| to_doc(s, &legacy_expectations(s)))
                .collect();
            assert!(!docs.is_empty(), "{id:?} missing from the legacy fixture");
            let name = format!("{id:?}").to_ascii_lowercase();
            let header = format!(
                "# {}\n# {}\n\n",
                id.title().trim(),
                "Declarative scenario document; the sched-bench catalog loads this at build time."
            );
            let path = format!("{root}/{name}.scn");
            std::fs::write(&path, format!("{header}{}", sched_dsl::print_doc(&docs)))
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
        }
    }
}
